//! Property-style guard for the text edge adapter: arbitrary (consistent)
//! `FamilySnapshot` sets must survive `encode_text` → `parse_families`
//! unchanged.  This is what licenses the scraper to treat the text path and
//! the typed path as interchangeable at the edges.
//!
//! One caveat is intentional: a family with zero points only leaves a
//! `# TYPE` line on the wire, which the parser cannot turn back into a
//! family, so generated families always carry at least one point.

use teemon_metrics::exposition::{encode_text, parse_families};
use teemon_metrics::{
    FamilySnapshot, Histogram, Labels, MetricKind, MetricPoint, PointValue, Summary,
};

fn counter_family(name: &str, help: &str, points: &[(f64, String, Option<u64>)]) -> FamilySnapshot {
    let mut family = FamilySnapshot::new(name, help, MetricKind::Counter);
    for (value, label, ts) in points {
        let mut point = MetricPoint::new(
            Labels::from_pairs([("syscall", label.clone())]),
            PointValue::Counter(*value),
        );
        point.timestamp_ms = *ts;
        family.points.push(point);
    }
    family
}

proptest::proptest! {
    #[test]
    fn counters_and_gauges_round_trip(
        values in proptest::collection::vec((0.0f64..1e12, "[a-z_]{1,10}", 0u64..3), 1..6),
        gauge_value in -1.0e9f64..1e9,
        help in "[ -~]{0,30}",
        timestamp in 1u64..1_000_000,
    ) {
        let points: Vec<(f64, String, Option<u64>)> = values
            .iter()
            .enumerate()
            .map(|(i, (v, s, t))| {
                // Make label values unique so points stay distinguishable.
                (*v, format!("{s}_{i}"), (*t > 0).then_some(timestamp + *t))
            })
            .collect();
        // HELP text parsing trims leading whitespace; keep the generated help
        // representative but normalised.
        let help = help.trim().to_string();
        let families = vec![
            counter_family("req_total", &help, &points),
            FamilySnapshot::new("temp_gauge", "a gauge", MetricKind::Gauge).with_point(
                MetricPoint::new(Labels::new(), PointValue::Gauge(gauge_value)),
            ),
        ];
        let text = encode_text(&families);
        let parsed = parse_families(&text).unwrap();
        proptest::prop_assert_eq!(parsed, families);
    }

    #[test]
    fn histograms_and_summaries_round_trip(
        observations in proptest::collection::vec(0.0f64..20.0, 1..40),
        summary_observations in proptest::collection::vec(0.0f64..100.0, 1..25),
        label in "[a-z]{1,6}",
    ) {
        let histogram = Histogram::new(vec![0.5, 2.0, 10.0]).unwrap();
        for v in &observations {
            histogram.observe(*v);
        }
        let summary = Summary::new(vec![0.5, 0.9, 0.99]).unwrap();
        for v in &summary_observations {
            summary.observe(*v);
        }
        let families = vec![
            FamilySnapshot::new("latency_seconds", "request latency", MetricKind::Histogram)
                .with_point(MetricPoint::new(
                    Labels::from_pairs([("endpoint", label.clone())]),
                    PointValue::Histogram(histogram.snapshot()),
                )),
            FamilySnapshot::new("payload_bytes", "payload sizes", MetricKind::Summary)
                .with_point(MetricPoint::new(
                    Labels::from_pairs([("endpoint", label)]),
                    PointValue::Summary(summary.snapshot()),
                )),
        ];
        let text = encode_text(&families);
        let parsed = parse_families(&text).unwrap();
        proptest::prop_assert_eq!(parsed, families);
    }

    #[test]
    fn mixed_label_values_round_trip(
        value in "[ -~]{0,24}",
        count in 1.0f64..1e6,
    ) {
        let mut labels = Labels::new();
        labels.insert("path", value);
        let families = vec![FamilySnapshot::new("files_total", "", MetricKind::Counter)
            .with_point(MetricPoint::new(labels, PointValue::Counter(count)))];
        let parsed = parse_families(&encode_text(&families)).unwrap();
        proptest::prop_assert_eq!(parsed, families);
    }
}

#[test]
fn multi_point_histogram_families_round_trip() {
    let mut family =
        FamilySnapshot::new("queue_depth", "queue depth distribution", MetricKind::Histogram);
    for (node, observations) in [("a", vec![0.1, 0.7]), ("b", vec![5.0, 0.2, 9.0])] {
        let histogram = Histogram::new(vec![0.5, 1.0, 8.0]).unwrap();
        for v in observations {
            histogram.observe(v);
        }
        family.points.push(MetricPoint::new(
            Labels::from_pairs([("node", node)]),
            PointValue::Histogram(histogram.snapshot()),
        ));
    }
    let families = vec![family];
    let parsed = parse_families(&encode_text(&families)).unwrap();
    assert_eq!(parsed, families);
}

#[test]
fn untyped_samples_survive_without_type_metadata() {
    let text = "plain_metric{x=\"1\"} 3.25 777\n";
    let families = parse_families(text).unwrap();
    assert_eq!(families.len(), 1);
    assert_eq!(families[0].kind, MetricKind::Untyped);
    assert_eq!(families[0].points[0].value, PointValue::Untyped(3.25));
    assert_eq!(families[0].points[0].timestamp_ms, Some(777));
    // Untyped families re-encode and re-parse stably too.
    assert_eq!(parse_families(&encode_text(&families)).unwrap(), families);
}
