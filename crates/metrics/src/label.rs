//! Metric and label names plus normalised label sets.
//!
//! Names follow the Prometheus/OpenMetrics data model: metric names match
//! `[a-zA-Z_:][a-zA-Z0-9_:]*`, label names match `[a-zA-Z_][a-zA-Z0-9_]*` and
//! must not start with `__` (reserved for internal use by the aggregator).

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::MetricError;

/// A validated metric name.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MetricName(String);

impl MetricName {
    /// Validates and constructs a metric name.
    ///
    /// # Errors
    ///
    /// Returns [`MetricError::InvalidMetricName`] when the name is empty or
    /// contains characters outside `[a-zA-Z0-9_:]` (or starts with a digit).
    pub fn new(name: impl Into<String>) -> Result<Self, MetricError> {
        let name = name.into();
        if Self::is_valid(&name) {
            Ok(Self(name))
        } else {
            Err(MetricError::InvalidMetricName(name))
        }
    }

    /// Returns `true` when `name` is a valid metric name.
    pub fn is_valid(name: &str) -> bool {
        let mut chars = name.chars();
        match chars.next() {
            Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
            _ => return false,
        }
        chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    }

    /// Returns the name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for MetricName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl AsRef<str> for MetricName {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

/// A validated label name.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LabelName(String);

impl LabelName {
    /// Validates and constructs a label name.
    ///
    /// # Errors
    ///
    /// Returns [`MetricError::InvalidLabelName`] when the name is empty,
    /// starts with `__`, or contains characters outside `[a-zA-Z0-9_]`.
    pub fn new(name: impl Into<String>) -> Result<Self, MetricError> {
        let name = name.into();
        if Self::is_valid(&name) {
            Ok(Self(name))
        } else {
            Err(MetricError::InvalidLabelName(name))
        }
    }

    /// Returns `true` when `name` is a valid, non-reserved label name.
    pub fn is_valid(name: &str) -> bool {
        if name.starts_with("__") {
            return false;
        }
        let mut chars = name.chars();
        match chars.next() {
            Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
            _ => return false,
        }
        chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
    }

    /// Returns the name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for LabelName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// A normalised set of labels attached to a metric point.
///
/// Labels are stored sorted by name so that two label sets with the same
/// key/value pairs compare equal and hash identically regardless of insertion
/// order.  This mirrors the identity rule used by Prometheus series.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Labels(BTreeMap<String, String>);

impl Labels {
    /// Creates an empty label set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a label set from `(name, value)` pairs.
    ///
    /// Invalid label names are silently skipped by [`Labels::try_from_pairs`]'s
    /// infallible counterpart only in the sense that this constructor panics in
    /// debug builds; use [`Labels::try_from_pairs`] when the input is untrusted.
    pub fn from_pairs<I, K, V>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (K, V)>,
        K: Into<String>,
        V: Into<String>,
    {
        let mut map = BTreeMap::new();
        for (k, v) in pairs {
            let k = k.into();
            debug_assert!(LabelName::is_valid(&k), "invalid label name {k:?}");
            map.insert(k, v.into());
        }
        Self(map)
    }

    /// Builds a label set from pairs, validating every label name.
    ///
    /// # Errors
    ///
    /// Returns [`MetricError::InvalidLabelName`] for the first invalid name.
    pub fn try_from_pairs<I, K, V>(pairs: I) -> Result<Self, MetricError>
    where
        I: IntoIterator<Item = (K, V)>,
        K: Into<String>,
        V: Into<String>,
    {
        let mut map = BTreeMap::new();
        for (k, v) in pairs {
            let k = k.into();
            if !LabelName::is_valid(&k) {
                return Err(MetricError::InvalidLabelName(k));
            }
            map.insert(k, v.into());
        }
        Ok(Self(map))
    }

    /// Returns a new label set with `name=value` added (replacing any existing
    /// value for `name`).
    #[must_use]
    pub fn with(&self, name: impl Into<String>, value: impl Into<String>) -> Self {
        let mut map = self.0.clone();
        map.insert(name.into(), value.into());
        Self(map)
    }

    /// Inserts a label in place, replacing any previous value.
    pub fn insert(&mut self, name: impl Into<String>, value: impl Into<String>) {
        self.0.insert(name.into(), value.into());
    }

    /// Removes a label, returning its previous value if present.
    pub fn remove(&mut self, name: &str) -> Option<String> {
        self.0.remove(name)
    }

    /// Looks up the value of a label.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.0.get(name).map(String::as_str)
    }

    /// Returns `true` when no labels are present.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Number of labels in the set.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Iterates over `(name, value)` pairs in sorted name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.0.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Returns `true` when every label in `other` is present in `self` with an
    /// equal value.  Used by query label matchers.
    pub fn matches(&self, other: &Labels) -> bool {
        other.iter().all(|(k, v)| self.get(k) == Some(v))
    }

    /// Merges `other` into a copy of `self`; labels in `other` win on conflict.
    #[must_use]
    pub fn merged(&self, other: &Labels) -> Self {
        let mut map = self.0.clone();
        for (k, v) in other.iter() {
            map.insert(k.to_string(), v.to_string());
        }
        Self(map)
    }
}

impl fmt::Display for Labels {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{k}={v:?}")?;
        }
        write!(f, "}}")
    }
}

impl<K: Into<String>, V: Into<String>> FromIterator<(K, V)> for Labels {
    fn from_iter<T: IntoIterator<Item = (K, V)>>(iter: T) -> Self {
        Self::from_pairs(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_name_validation() {
        assert!(MetricName::new("teemon_syscalls_total").is_ok());
        assert!(MetricName::new("node:cpu:rate5m").is_ok());
        assert!(MetricName::new("_private").is_ok());
        assert!(MetricName::new("9starts_with_digit").is_err());
        assert!(MetricName::new("has space").is_err());
        assert!(MetricName::new("").is_err());
        assert!(MetricName::new("dash-es").is_err());
    }

    #[test]
    fn label_name_validation() {
        assert!(LabelName::new("syscall").is_ok());
        assert!(LabelName::new("_internal").is_ok());
        assert!(LabelName::new("__reserved").is_err());
        assert!(LabelName::new("1digit").is_err());
        assert!(LabelName::new("colon:bad").is_err());
        assert!(LabelName::new("").is_err());
    }

    #[test]
    fn labels_are_order_insensitive() {
        let a = Labels::from_pairs([("b", "2"), ("a", "1")]);
        let b = Labels::from_pairs([("a", "1"), ("b", "2")]);
        assert_eq!(a, b);
        let collected: Vec<_> = a.iter().map(|(k, _)| k.to_string()).collect();
        assert_eq!(collected, vec!["a", "b"]);
    }

    #[test]
    fn labels_with_and_get() {
        let base = Labels::from_pairs([("job", "sgx_exporter")]);
        let derived = base.with("instance", "node-1");
        assert_eq!(derived.get("job"), Some("sgx_exporter"));
        assert_eq!(derived.get("instance"), Some("node-1"));
        assert_eq!(base.get("instance"), None);
        assert_eq!(derived.len(), 2);
    }

    #[test]
    fn labels_matches_is_subset_semantics() {
        let series = Labels::from_pairs([("job", "redis"), ("node", "n1"), ("syscall", "read")]);
        let selector = Labels::from_pairs([("job", "redis")]);
        assert!(series.matches(&selector));
        assert!(series.matches(&Labels::new()));
        let wrong = Labels::from_pairs([("job", "nginx")]);
        assert!(!series.matches(&wrong));
        let missing = Labels::from_pairs([("pod", "p1")]);
        assert!(!series.matches(&missing));
    }

    #[test]
    fn labels_merge_prefers_other() {
        let a = Labels::from_pairs([("job", "redis"), ("node", "n1")]);
        let b = Labels::from_pairs([("node", "n2"), ("extra", "x")]);
        let merged = a.merged(&b);
        assert_eq!(merged.get("node"), Some("n2"));
        assert_eq!(merged.get("job"), Some("redis"));
        assert_eq!(merged.get("extra"), Some("x"));
    }

    #[test]
    fn try_from_pairs_rejects_reserved() {
        let err = Labels::try_from_pairs([("__name__", "x")]).unwrap_err();
        assert!(matches!(err, MetricError::InvalidLabelName(_)));
    }

    #[test]
    fn display_is_stable() {
        let l = Labels::from_pairs([("b", "2"), ("a", "1")]);
        assert_eq!(l.to_string(), "{a=\"1\",b=\"2\"}");
        assert_eq!(Labels::new().to_string(), "{}");
    }
}
