//! The typed collection contract between exporters and the aggregation
//! component.
//!
//! The paper's deployment separates exporters and Prometheus into different
//! processes, so every scrape serialises the exporter's state to OpenMetrics
//! text and parses it back.  In this reproduction both sides live in one
//! process, so the scrape contract is typed instead: a [`Collector`] hands
//! the scraper owned [`FamilySnapshot`]s directly and the text format becomes
//! an explicit edge adapter (see [`crate::exposition`] and
//! `teemon_tsdb::TextEndpoint`), applied only where an external party speaks
//! the wire format.

use std::fmt;
use std::sync::Arc;

use crate::error::MetricError;
use crate::registry::Registry;
use crate::snapshot::FamilySnapshot;

/// Why a collection attempt failed.
#[derive(Debug, Clone, PartialEq)]
pub enum CollectError {
    /// The underlying source is unreachable or refused to produce metrics
    /// (the typed equivalent of a failed HTTP GET on `/metrics`).
    Unavailable(String),
    /// The source produced metrics that violate the metric model.
    Invalid(MetricError),
}

impl CollectError {
    /// Convenience constructor for an unavailable source.
    pub fn unavailable(reason: impl Into<String>) -> Self {
        CollectError::Unavailable(reason.into())
    }
}

impl fmt::Display for CollectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CollectError::Unavailable(reason) => write!(f, "collector unavailable: {reason}"),
            CollectError::Invalid(err) => write!(f, "collector produced invalid metrics: {err}"),
        }
    }
}

impl std::error::Error for CollectError {}

impl From<MetricError> for CollectError {
    fn from(err: MetricError) -> Self {
        CollectError::Invalid(err)
    }
}

/// A typed metrics source: the scrape contract of every TEEMon exporter.
///
/// Implementors hand the aggregation component structured snapshots; no text
/// round-trip is involved on the in-process path.
pub trait Collector: Send + Sync {
    /// The job name scrape configurations use for this source
    /// (`sgx_exporter`, `ebpf_exporter`, `node_exporter`, `cadvisor`).
    fn job_name(&self) -> &str;

    /// Refreshes dynamic state (reads driver counters, dumps BPF maps, …).
    /// Called right before [`Collector::collect`]; sources that read at
    /// gather time may keep this a no-op.
    fn refresh(&self) {}

    /// Produces the current snapshots of every family this source owns.
    ///
    /// # Errors
    ///
    /// Returns [`CollectError`] when the source is unreachable or produced
    /// metrics violating the metric model; the scraper records such targets
    /// as `up == 0`.
    fn collect(&self) -> Result<Vec<FamilySnapshot>, CollectError>;
}

impl<C: Collector + ?Sized> Collector for Arc<C> {
    fn job_name(&self) -> &str {
        (**self).job_name()
    }

    fn refresh(&self) {
        (**self).refresh()
    }

    fn collect(&self) -> Result<Vec<FamilySnapshot>, CollectError> {
        (**self).collect()
    }
}

impl<C: Collector + ?Sized> Collector for Box<C> {
    fn job_name(&self) -> &str {
        (**self).job_name()
    }

    fn refresh(&self) {
        (**self).refresh()
    }

    fn collect(&self) -> Result<Vec<FamilySnapshot>, CollectError> {
        (**self).collect()
    }
}

/// Adapter exposing a bare [`Registry`] as a [`Collector`] under a job name.
///
/// Used for ad-hoc registries (tests, custom user metrics) that are not
/// wrapped in one of the standard exporters.
#[derive(Clone)]
pub struct RegistryCollector {
    job: String,
    registry: Registry,
}

impl RegistryCollector {
    /// Wraps `registry` under `job`.
    pub fn new(job: impl Into<String>, registry: Registry) -> Self {
        Self { job: job.into(), registry }
    }

    /// The wrapped registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }
}

impl Collector for RegistryCollector {
    fn job_name(&self) -> &str {
        &self.job
    }

    fn collect(&self) -> Result<Vec<FamilySnapshot>, CollectError> {
        Ok(self.registry.gather())
    }
}

impl fmt::Debug for RegistryCollector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RegistryCollector")
            .field("job", &self.job)
            .field("registry", &self.registry)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::Labels;

    #[test]
    fn registry_collector_gathers_typed_snapshots() {
        let registry = Registry::new();
        registry
            .counter_family("jobs_total", "jobs")
            .with(&Labels::from_pairs([("q", "high")]))
            .inc_by(3.0);
        let collector = RegistryCollector::new("custom", registry);
        assert_eq!(collector.job_name(), "custom");
        let families = collector.collect().unwrap();
        assert_eq!(families.len(), 1);
        assert_eq!(families[0].name, "jobs_total");
        assert_eq!(families[0].total(), 3.0);
    }

    #[test]
    fn arc_and_box_delegate() {
        let collector = RegistryCollector::new("wrapped", Registry::new());
        let arc: Arc<dyn Collector> = Arc::new(collector.clone());
        assert_eq!(arc.job_name(), "wrapped");
        assert!(arc.collect().unwrap().is_empty());
        let boxed: Box<dyn Collector> = Box::new(collector);
        boxed.refresh();
        assert_eq!(boxed.job_name(), "wrapped");
    }

    #[test]
    fn collect_error_displays_both_shapes() {
        let unavailable = CollectError::unavailable("connection refused");
        assert!(unavailable.to_string().contains("connection refused"));
        let invalid: CollectError = MetricError::InvalidMetricName("0bad".into()).into();
        assert!(invalid.to_string().contains("0bad"));
    }
}
