//! Structural identity of wire-level series.
//!
//! A scrape target emits the *same* series set round after round, so an
//! ingest cache wants a cheap, stable way to recognise "this is the sample I
//! saw last round" without interning strings or consulting any index.  This
//! module provides that identity:
//!
//! * [`series_hash`] — a stable structural hash of a borrowed
//!   `(name, Labels)` pair.  No allocation, no hasher state to set up, and
//!   independent of process, run, or label insertion order ([`Labels`] is
//!   already order-normalised).
//! * [`SeriesKey`] — the owned form a cache stores per series, carrying the
//!   pre-computed hash plus the key strings so a hash match can be verified
//!   by real equality over the borrowed data (a hash collision must degrade
//!   to a cache miss, never to a wrong-series hit).
//!
//! The hash is FNV-1a over the metric name and every `(key, value)` pair,
//! with a `0xFF` separator byte between components.  `0xFF` never occurs in
//! UTF-8, so component boundaries cannot be forged by crafted strings
//! (`("ab", "c")` and `("a", "bc")` hash differently).

use crate::label::Labels;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
const SEPARATOR: u8 = 0xFF;

#[inline]
fn fnv_bytes(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

#[inline]
fn fnv_sep(hash: u64) -> u64 {
    fnv_bytes(hash, &[SEPARATOR])
}

/// Stable structural hash of one wire series: metric name plus its
/// (normalised) label set.  Allocation-free and deterministic across runs —
/// safe to persist in caches that outlive any one scrape round.
pub fn series_hash(name: &str, labels: &Labels) -> u64 {
    let mut hash = fnv_bytes(FNV_OFFSET, name.as_bytes());
    for (key, value) in labels.iter() {
        hash = fnv_sep(hash);
        hash = fnv_bytes(hash, key.as_bytes());
        hash = fnv_sep(hash);
        hash = fnv_bytes(hash, value.as_bytes());
    }
    hash
}

/// The owned identity of one series as a cache stores it: the structural
/// hash plus the key strings for collision-proof verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeriesKey {
    name: String,
    labels: Labels,
    hash: u64,
}

impl SeriesKey {
    /// Captures the identity of a borrowed `(name, labels)` pair.  This is
    /// the only allocating operation of the module — caches pay it when a
    /// series first appears, never on a steady-state hit.
    pub fn capture(name: &str, labels: &Labels) -> Self {
        Self { name: name.to_string(), labels: labels.clone(), hash: series_hash(name, labels) }
    }

    /// The pre-computed structural hash.
    pub fn hash(&self) -> u64 {
        self.hash
    }

    /// The captured metric name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The captured label set.
    pub fn labels(&self) -> &Labels {
        &self.labels
    }

    /// `true` when the borrowed `(name, labels)` pair — whose
    /// [`series_hash`] the caller has already computed as `hash` — is this
    /// series.  The hash comparison rejects non-matches in one instruction;
    /// on a hash match the key strings are compared for real, so a collision
    /// reads as a miss rather than a wrong-series hit.  Allocation-free.
    pub fn matches(&self, hash: u64, name: &str, labels: &Labels) -> bool {
        self.hash == hash && self.name == name && &self.labels == labels
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(pairs: &[(&str, &str)]) -> Labels {
        Labels::from_pairs(pairs.iter().copied())
    }

    #[test]
    fn hash_is_stable_and_order_insensitive() {
        let a = labels(&[("node", "n1"), ("job", "sgx_exporter")]);
        let b = labels(&[("job", "sgx_exporter"), ("node", "n1")]);
        assert_eq!(series_hash("up", &a), series_hash("up", &a), "same inputs, same hash");
        assert_eq!(series_hash("up", &a), series_hash("up", &b), "Labels normalise order");
    }

    #[test]
    fn hash_distinguishes_names_labels_and_values() {
        let l = labels(&[("node", "n1")]);
        assert_ne!(series_hash("up", &l), series_hash("down", &l));
        assert_ne!(series_hash("up", &l), series_hash("up", &labels(&[("node", "n2")])));
        assert_ne!(series_hash("up", &l), series_hash("up", &labels(&[("pod", "n1")])));
        assert_ne!(series_hash("up", &l), series_hash("up", &Labels::new()));
    }

    #[test]
    fn component_boundaries_cannot_be_forged() {
        // Without separators these four would hash the same byte stream.
        assert_ne!(
            series_hash("m", &labels(&[("ab", "c")])),
            series_hash("m", &labels(&[("a", "bc")])),
        );
        assert_ne!(series_hash("ma", &Labels::new()), series_hash("m", &labels(&[("a", "x")])));
        assert_ne!(
            series_hash("m", &labels(&[("a", "bc")])),
            series_hash("m", &labels(&[("a", "b"), ("c", "")])),
        );
    }

    #[test]
    fn key_matches_verifies_equality_not_just_hash() {
        let l = labels(&[("node", "n1"), ("syscall", "read")]);
        let key = SeriesKey::capture("teemon_syscalls_total", &l);
        let hash = series_hash("teemon_syscalls_total", &l);
        assert_eq!(key.hash(), hash);
        assert_eq!(key.name(), "teemon_syscalls_total");
        assert_eq!(key.labels(), &l);
        assert!(key.matches(hash, "teemon_syscalls_total", &l));
        // Right hash, wrong data: a simulated collision must read as a miss.
        assert!(!key.matches(hash, "other_metric", &l));
        assert!(!key.matches(hash, "teemon_syscalls_total", &labels(&[("node", "n2")])));
        // Wrong hash short-circuits without touching the strings.
        assert!(!key.matches(hash ^ 1, "teemon_syscalls_total", &l));
    }

    #[test]
    fn captured_keys_compare_structurally() {
        let l = labels(&[("node", "n1")]);
        assert_eq!(SeriesKey::capture("up", &l), SeriesKey::capture("up", &l));
        assert_ne!(SeriesKey::capture("up", &l), SeriesKey::capture("up", &Labels::new()));
    }
}
