//! Metric registries and the [`SnapshotSource`] abstraction.
//!
//! A [`Registry`] is what one exporter (TME, eBPF exporter, node exporter,
//! container exporter) owns behind its collection interface: a set of metric
//! families plus optional dynamic sources that compute their snapshot at
//! gather time (mirroring how the paper's SGX exporter reads
//! `/sys/module/isgx/parameters/*` on every scrape).  The scrape-facing
//! contract — job name, refresh, fallible collection — lives in
//! [`crate::collector::Collector`]; a registry is the building block behind
//! such a collector.

use std::sync::Arc;

use parking_lot::{LockClass, RwLock};

use crate::error::MetricError;
use crate::family::{CounterFamily, GaugeFamily, HistogramFamily, SummaryFamily};
use crate::label::Labels;
use crate::snapshot::FamilySnapshot;

/// An infallible source of metric family snapshots evaluated at gather time,
/// registered inside a [`Registry`] (e.g. a closure reading driver counters).
pub trait SnapshotSource: Send + Sync {
    /// Produces the current snapshots of every family this source owns.
    fn snapshots(&self) -> Vec<FamilySnapshot>;
}

impl<F> SnapshotSource for F
where
    F: Fn() -> Vec<FamilySnapshot> + Send + Sync,
{
    fn snapshots(&self) -> Vec<FamilySnapshot> {
        (self)()
    }
}

enum Registered {
    Counter(CounterFamily),
    Gauge(GaugeFamily),
    Histogram(HistogramFamily),
    Summary(SummaryFamily),
    Dynamic(Arc<dyn SnapshotSource>),
}

impl Registered {
    fn collect(&self) -> Vec<FamilySnapshot> {
        match self {
            Registered::Counter(f) => vec![f.snapshot()],
            Registered::Gauge(f) => vec![f.snapshot()],
            Registered::Histogram(f) => vec![f.snapshot()],
            Registered::Summary(f) => vec![f.snapshot()],
            Registered::Dynamic(c) => c.snapshots(),
        }
    }

    fn name(&self) -> Option<&str> {
        match self {
            Registered::Counter(f) => Some(f.name()),
            Registered::Gauge(f) => Some(f.name()),
            Registered::Histogram(f) => Some(f.name()),
            Registered::Summary(f) => Some(f.name()),
            Registered::Dynamic(_) => None,
        }
    }
}

/// A registry of metric families exposed by one exporter endpoint.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<RwLock<Vec<Registered>>>,
    constant_labels: Labels,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a registry whose gathered snapshots all carry `constant_labels`
    /// (e.g. `{node="worker-3"}`), the way DaemonSet-deployed exporters tag
    /// their metrics with the node they run on.
    pub fn with_constant_labels(constant_labels: Labels) -> Self {
        Self {
            inner: Arc::new(RwLock::named(Vec::new(), LockClass::new("metrics.registry"))),
            constant_labels,
        }
    }

    fn check_duplicate(&self, name: &str) -> Result<(), MetricError> {
        if self.inner.read().iter().any(|r| r.name() == Some(name)) {
            return Err(MetricError::AlreadyRegistered(name.to_string()));
        }
        Ok(())
    }

    /// Registers and returns a new counter family.
    ///
    /// # Panics
    ///
    /// Panics on an invalid or duplicate name; use
    /// [`Registry::try_counter_family`] for fallible registration.
    pub fn counter_family(&self, name: &str, help: &str) -> CounterFamily {
        self.try_counter_family(name, help).expect("invalid or duplicate counter family")
    }

    /// Registers a counter family, reporting errors.
    ///
    /// # Errors
    ///
    /// Returns [`MetricError::InvalidMetricName`] or
    /// [`MetricError::AlreadyRegistered`].
    pub fn try_counter_family(&self, name: &str, help: &str) -> Result<CounterFamily, MetricError> {
        self.check_duplicate(name)?;
        let fam = CounterFamily::counters(name, help)?;
        self.inner.write().push(Registered::Counter(fam.clone()));
        Ok(fam)
    }

    /// Registers and returns a new gauge family.
    ///
    /// # Panics
    ///
    /// Panics on an invalid or duplicate name; use
    /// [`Registry::try_gauge_family`] for fallible registration.
    pub fn gauge_family(&self, name: &str, help: &str) -> GaugeFamily {
        self.try_gauge_family(name, help).expect("invalid or duplicate gauge family")
    }

    /// Registers a gauge family, reporting errors.
    ///
    /// # Errors
    ///
    /// Returns [`MetricError::InvalidMetricName`] or
    /// [`MetricError::AlreadyRegistered`].
    pub fn try_gauge_family(&self, name: &str, help: &str) -> Result<GaugeFamily, MetricError> {
        self.check_duplicate(name)?;
        let fam = GaugeFamily::gauges(name, help)?;
        self.inner.write().push(Registered::Gauge(fam.clone()));
        Ok(fam)
    }

    /// Registers and returns a new histogram family.
    ///
    /// # Panics
    ///
    /// Panics on invalid input; use [`Registry::try_histogram_family`] for
    /// fallible registration.
    pub fn histogram_family(&self, name: &str, help: &str, bounds: Vec<f64>) -> HistogramFamily {
        self.try_histogram_family(name, help, bounds)
            .expect("invalid or duplicate histogram family")
    }

    /// Registers a histogram family, reporting errors.
    ///
    /// # Errors
    ///
    /// Returns [`MetricError::InvalidMetricName`],
    /// [`MetricError::InvalidBuckets`] or [`MetricError::AlreadyRegistered`].
    pub fn try_histogram_family(
        &self,
        name: &str,
        help: &str,
        bounds: Vec<f64>,
    ) -> Result<HistogramFamily, MetricError> {
        self.check_duplicate(name)?;
        let fam = HistogramFamily::histograms(name, help, bounds)?;
        self.inner.write().push(Registered::Histogram(fam.clone()));
        Ok(fam)
    }

    /// Registers and returns a new summary family.
    ///
    /// # Panics
    ///
    /// Panics on invalid input; use [`Registry::try_summary_family`] for
    /// fallible registration.
    pub fn summary_family(&self, name: &str, help: &str, quantiles: Vec<f64>) -> SummaryFamily {
        self.try_summary_family(name, help, quantiles).expect("invalid or duplicate summary family")
    }

    /// Registers a summary family, reporting errors.
    ///
    /// # Errors
    ///
    /// Returns [`MetricError::InvalidMetricName`],
    /// [`MetricError::InvalidQuantile`] or [`MetricError::AlreadyRegistered`].
    pub fn try_summary_family(
        &self,
        name: &str,
        help: &str,
        quantiles: Vec<f64>,
    ) -> Result<SummaryFamily, MetricError> {
        self.check_duplicate(name)?;
        let fam = SummaryFamily::summaries(name, help, quantiles)?;
        self.inner.write().push(Registered::Summary(fam.clone()));
        Ok(fam)
    }

    /// Registers a dynamic snapshot source evaluated at gather time.
    pub fn register_source(&self, source: Arc<dyn SnapshotSource>) {
        self.inner.write().push(Registered::Dynamic(source));
    }

    /// Gathers snapshots of every registered family and collector, applying
    /// the registry's constant labels, sorted by family name.
    pub fn gather(&self) -> Vec<FamilySnapshot> {
        let mut out: Vec<FamilySnapshot> = Vec::new();
        for registered in self.inner.read().iter() {
            for mut fam in registered.collect() {
                if !self.constant_labels.is_empty() {
                    for point in &mut fam.points {
                        point.labels = point.labels.merged(&self.constant_labels);
                    }
                }
                out.push(fam);
            }
        }
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// Number of registered families and collectors.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// `true` when nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry").field("entries", &self.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{MetricKind, MetricPoint, PointValue};

    #[test]
    fn registry_gathers_sorted_families() {
        let r = Registry::new();
        r.counter_family("z_total", "z").default_instance().inc();
        r.gauge_family("a_gauge", "a").default_instance().set(1.0);
        let gathered = r.gather();
        let names: Vec<_> = gathered.iter().map(|f| f.name.clone()).collect();
        assert_eq!(names, vec!["a_gauge", "z_total"]);
    }

    #[test]
    fn duplicate_names_rejected() {
        let r = Registry::new();
        r.counter_family("dup_total", "first");
        let err = r.try_counter_family("dup_total", "second").unwrap_err();
        assert!(matches!(err, MetricError::AlreadyRegistered(_)));
        // A different name still works.
        assert!(r.try_gauge_family("other", "ok").is_ok());
    }

    #[test]
    fn constant_labels_are_applied() {
        let r = Registry::with_constant_labels(Labels::from_pairs([("node", "n1")]));
        r.counter_family("events_total", "events")
            .with(&Labels::from_pairs([("kind", "page_fault")]))
            .inc_by(4.0);
        let gathered = r.gather();
        let point = &gathered[0].points[0];
        assert_eq!(point.labels.get("node"), Some("n1"));
        assert_eq!(point.labels.get("kind"), Some("page_fault"));
    }

    #[test]
    fn dynamic_collectors_run_at_gather_time() {
        let r = Registry::new();
        let counter = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        let c2 = counter.clone();
        r.register_source(Arc::new(move || {
            let v = c2.load(std::sync::atomic::Ordering::Relaxed) as f64;
            vec![FamilySnapshot::new("dyn_gauge", "dynamic", MetricKind::Gauge)
                .with_point(MetricPoint::new(Labels::new(), PointValue::Gauge(v)))]
        }));
        assert_eq!(r.gather()[0].points[0].value.scalar(), 0.0);
        counter.store(7, std::sync::atomic::Ordering::Relaxed);
        assert_eq!(r.gather()[0].points[0].value.scalar(), 7.0);
    }

    #[test]
    fn histogram_and_summary_registration() {
        let r = Registry::new();
        let h = r.histogram_family("lat", "latency", vec![0.1, 1.0, 10.0]);
        h.default_instance().observe(0.5);
        let s = r.summary_family("size", "sizes", vec![0.5]);
        s.default_instance().observe(128.0);
        assert_eq!(r.gather().len(), 2);
        assert!(r.try_histogram_family("bad", "x", vec![]).is_err());
        assert!(r.try_summary_family("bad2", "x", vec![3.0]).is_err());
    }
}
