//! Point-in-time snapshots of metric families.
//!
//! Exporters gather their live metric values into [`FamilySnapshot`]s which are
//! then encoded to the exposition format, transferred to the aggregation
//! component and decoded back into the same types.  The types are therefore
//! the wire-level data model of TEEMon.

use serde::{Deserialize, Serialize};

use crate::error::MetricError;
use crate::label::Labels;
use crate::value::{HistogramSnapshot, SummarySnapshot};

/// The kind of a metric family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MetricKind {
    /// Monotonically increasing counter.
    Counter,
    /// Value that can move up and down.
    Gauge,
    /// Bucketed distribution.
    Histogram,
    /// Quantile summary.
    Summary,
    /// Untyped sample (e.g. parsed from an exposition without metadata).
    Untyped,
}

impl MetricKind {
    /// Canonical lowercase name used in `# TYPE` exposition lines.
    pub fn as_str(&self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
            MetricKind::Summary => "summary",
            MetricKind::Untyped => "untyped",
        }
    }

    /// Parses a `# TYPE` token.
    pub fn from_str_token(token: &str) -> Option<Self> {
        match token {
            "counter" => Some(MetricKind::Counter),
            "gauge" => Some(MetricKind::Gauge),
            "histogram" => Some(MetricKind::Histogram),
            "summary" => Some(MetricKind::Summary),
            "untyped" | "unknown" => Some(MetricKind::Untyped),
            _ => None,
        }
    }
}

/// The value of a single metric point.
#[derive(Debug, Clone, PartialEq)]
pub enum PointValue {
    /// Counter total.
    Counter(f64),
    /// Gauge reading.
    Gauge(f64),
    /// Histogram state.
    Histogram(HistogramSnapshot),
    /// Summary state.
    Summary(SummarySnapshot),
    /// Untyped raw value.
    Untyped(f64),
}

impl PointValue {
    /// Scalar representation of the point: the counter/gauge value, or the sum
    /// for histograms and summaries.
    pub fn scalar(&self) -> f64 {
        match self {
            PointValue::Counter(v) | PointValue::Gauge(v) | PointValue::Untyped(v) => *v,
            PointValue::Histogram(h) => h.sum,
            PointValue::Summary(s) => s.sum,
        }
    }

    /// Kind of this point value.
    pub fn kind(&self) -> MetricKind {
        match self {
            PointValue::Counter(_) => MetricKind::Counter,
            PointValue::Gauge(_) => MetricKind::Gauge,
            PointValue::Histogram(_) => MetricKind::Histogram,
            PointValue::Summary(_) => MetricKind::Summary,
            PointValue::Untyped(_) => MetricKind::Untyped,
        }
    }
}

/// One metric point: a label set plus its value, with an optional explicit
/// timestamp in milliseconds since the (simulated) epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricPoint {
    /// Label set identifying the point within the family.
    pub labels: Labels,
    /// The observed value.
    pub value: PointValue,
    /// Optional timestamp in milliseconds.
    pub timestamp_ms: Option<u64>,
}

impl MetricPoint {
    /// Creates a point without an explicit timestamp.
    pub fn new(labels: Labels, value: PointValue) -> Self {
        Self { labels, value, timestamp_ms: None }
    }

    /// Sets the explicit timestamp in milliseconds.
    #[must_use]
    pub fn at(mut self, timestamp_ms: u64) -> Self {
        self.timestamp_ms = Some(timestamp_ms);
        self
    }
}

/// Snapshot of an entire metric family: name, help text, kind and points.
#[derive(Debug, Clone, PartialEq)]
pub struct FamilySnapshot {
    /// Metric family name (e.g. `teemon_syscalls_total`).
    pub name: String,
    /// Human readable help text.
    pub help: String,
    /// Family kind.
    pub kind: MetricKind,
    /// All points of the family.
    pub points: Vec<MetricPoint>,
}

impl FamilySnapshot {
    /// Creates an empty family snapshot.
    pub fn new(name: impl Into<String>, help: impl Into<String>, kind: MetricKind) -> Self {
        Self { name: name.into(), help: help.into(), kind, points: Vec::new() }
    }

    /// Adds a point and returns `self` for chaining.
    #[must_use]
    pub fn with_point(mut self, point: MetricPoint) -> Self {
        self.points.push(point);
        self
    }

    /// Returns the point whose labels exactly equal `labels`.
    pub fn point(&self, labels: &Labels) -> Option<&MetricPoint> {
        self.points.iter().find(|p| &p.labels == labels)
    }

    /// Sum of the scalar values of all points (useful for totals across labels).
    pub fn total(&self) -> f64 {
        self.points.iter().map(|p| p.value.scalar()).sum()
    }

    /// Merges `constant` into the labels of every point (`constant` wins on
    /// conflict, matching [`crate::Registry`] constant-label semantics and the
    /// per-sample merge the scraper performs for `job`/`instance` labels).
    /// Use this to relabel whole snapshots when composing collectors.
    pub fn add_labels(&mut self, constant: &Labels) {
        if constant.is_empty() {
            return;
        }
        for point in &mut self.points {
            point.labels = point.labels.merged(constant);
        }
    }

    /// Absorbs the points of `other` into this family.
    ///
    /// # Errors
    ///
    /// Returns [`MetricError::AlreadyRegistered`] when `other` has the same
    /// name but a different kind — merging those would corrupt the family.
    pub fn merge(&mut self, other: FamilySnapshot) -> Result<(), MetricError> {
        if other.name != self.name || other.kind != self.kind {
            return Err(MetricError::AlreadyRegistered(other.name));
        }
        if self.help.is_empty() {
            self.help = other.help;
        }
        self.points.extend(other.points);
        Ok(())
    }

    /// Visits every wire-level sample of the family without materialising a
    /// `Vec<Sample>`: plain counter/gauge/untyped points are passed with
    /// **borrowed** name and labels (zero clones — this is the scraper's hot
    /// path), while histogram and summary expansions pass locally built
    /// `_bucket`/`_sum`/`_count` names and `le`/`quantile` label sets.
    pub fn for_each_sample(&self, mut visit: impl FnMut(&str, &Labels, f64, Option<u64>)) {
        let mut scratch = String::new();
        let suffixed = |suffix: &str, scratch: &mut String| {
            scratch.clear();
            scratch.push_str(&self.name);
            scratch.push_str(suffix);
        };
        for point in &self.points {
            let ts = point.timestamp_ms;
            match &point.value {
                PointValue::Counter(v) | PointValue::Gauge(v) | PointValue::Untyped(v) => {
                    visit(&self.name, &point.labels, *v, ts);
                }
                PointValue::Histogram(h) => {
                    suffixed("_bucket", &mut scratch);
                    for (i, bound) in h.bounds.iter().enumerate() {
                        let labels = point.labels.with("le", format_bound(*bound));
                        visit(&scratch, &labels, h.cumulative_counts[i] as f64, ts);
                    }
                    let inf_labels = point.labels.with("le", "+Inf");
                    visit(
                        &scratch,
                        &inf_labels,
                        *h.cumulative_counts.last().unwrap_or(&0) as f64,
                        ts,
                    );
                    suffixed("_sum", &mut scratch);
                    visit(&scratch, &point.labels, h.sum, ts);
                    suffixed("_count", &mut scratch);
                    visit(&scratch, &point.labels, h.count as f64, ts);
                }
                PointValue::Summary(s) => {
                    for (q, v) in &s.quantiles {
                        let labels = point.labels.with("quantile", format_bound(*q));
                        visit(&self.name, &labels, *v, ts);
                    }
                    suffixed("_sum", &mut scratch);
                    visit(&scratch, &point.labels, s.sum, ts);
                    suffixed("_count", &mut scratch);
                    visit(&scratch, &point.labels, s.count as f64, ts);
                }
            }
        }
    }

    /// Flattens the family into individual owned [`Sample`]s as they appear on
    /// the wire (histograms expand into `_bucket`, `_sum` and `_count`
    /// samples).  Prefer [`FamilySnapshot::for_each_sample`] on hot paths.
    pub fn samples(&self) -> Vec<Sample> {
        let mut out = Vec::new();
        self.for_each_sample(|name, labels, value, timestamp_ms| {
            out.push(Sample {
                name: name.to_string(),
                labels: labels.clone(),
                value,
                timestamp_ms,
            });
        });
        out
    }
}

/// Collapses families that share a name into one family each (points are
/// concatenated in input order, families sorted by name).  Families whose
/// kinds conflict are kept separate rather than silently corrupted.
pub fn merge_families(families: Vec<FamilySnapshot>) -> Vec<FamilySnapshot> {
    let mut merged: Vec<FamilySnapshot> = Vec::with_capacity(families.len());
    for family in families {
        match merged.iter_mut().find(|f| f.name == family.name && f.kind == family.kind) {
            Some(existing) => {
                existing.merge(family).expect("name and kind checked above");
            }
            None => merged.push(family),
        }
    }
    merged.sort_by(|a, b| a.name.cmp(&b.name));
    merged
}

/// A single flattened sample as it appears on the exposition wire.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Sample name (family name, possibly with a `_bucket`/`_sum`/`_count` suffix).
    pub name: String,
    /// Label set.
    pub labels: Labels,
    /// Sample value.
    pub value: f64,
    /// Optional timestamp in milliseconds.
    pub timestamp_ms: Option<u64>,
}

/// Formats a bucket bound or quantile the way the exposition format expects
/// (`+Inf`/`-Inf` specials, plain `{}` otherwise).  Public so out-of-crate
/// expanders — notably the self-telemetry snapshot in `teemon_obs` — produce
/// byte-identical `le` labels to [`FamilySnapshot::for_each_sample`].
pub fn format_bound(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else if v == v.trunc() && v.abs() < 1e15 {
        // Keep integers un-suffixed but make sure they stay parseable as f64.
        format!("{v}")
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Histogram;

    #[test]
    fn kind_round_trips_through_token() {
        for kind in [
            MetricKind::Counter,
            MetricKind::Gauge,
            MetricKind::Histogram,
            MetricKind::Summary,
            MetricKind::Untyped,
        ] {
            assert_eq!(MetricKind::from_str_token(kind.as_str()), Some(kind));
        }
        assert_eq!(MetricKind::from_str_token("bogus"), None);
        assert_eq!(MetricKind::from_str_token("unknown"), Some(MetricKind::Untyped));
    }

    #[test]
    fn scalar_of_each_value_kind() {
        assert_eq!(PointValue::Counter(3.0).scalar(), 3.0);
        assert_eq!(PointValue::Gauge(-1.0).scalar(), -1.0);
        assert_eq!(PointValue::Untyped(7.0).scalar(), 7.0);
        let h = Histogram::new(vec![1.0]).unwrap();
        h.observe(0.5);
        h.observe(0.25);
        assert_eq!(PointValue::Histogram(h.snapshot()).scalar(), 0.75);
    }

    #[test]
    fn family_total_sums_points() {
        let fam = FamilySnapshot::new("x_total", "help", MetricKind::Counter)
            .with_point(MetricPoint::new(
                Labels::from_pairs([("a", "1")]),
                PointValue::Counter(2.0),
            ))
            .with_point(MetricPoint::new(
                Labels::from_pairs([("a", "2")]),
                PointValue::Counter(3.0),
            ));
        assert_eq!(fam.total(), 5.0);
        assert!(fam.point(&Labels::from_pairs([("a", "2")])).is_some());
        assert!(fam.point(&Labels::from_pairs([("a", "3")])).is_none());
    }

    #[test]
    fn histogram_samples_expand_buckets() {
        let h = Histogram::new(vec![1.0, 2.0]).unwrap();
        h.observe(0.5);
        h.observe(1.5);
        h.observe(9.0);
        let fam = FamilySnapshot::new("lat", "latency", MetricKind::Histogram)
            .with_point(MetricPoint::new(Labels::new(), PointValue::Histogram(h.snapshot())));
        let samples = fam.samples();
        let names: Vec<_> = samples.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["lat_bucket", "lat_bucket", "lat_bucket", "lat_sum", "lat_count"]);
        let inf = samples.iter().find(|s| s.labels.get("le") == Some("+Inf")).unwrap();
        assert_eq!(inf.value, 3.0);
        let count = samples.iter().find(|s| s.name == "lat_count").unwrap();
        assert_eq!(count.value, 3.0);
    }

    #[test]
    fn timestamps_are_propagated() {
        let fam = FamilySnapshot::new("g", "gauge", MetricKind::Gauge)
            .with_point(MetricPoint::new(Labels::new(), PointValue::Gauge(1.0)).at(12345));
        assert_eq!(fam.samples()[0].timestamp_ms, Some(12345));
    }

    #[test]
    fn add_labels_merges_point_labels_win() {
        let mut fam = FamilySnapshot::new("x_total", "", MetricKind::Counter).with_point(
            MetricPoint::new(Labels::from_pairs([("job", "mine")]), PointValue::Counter(1.0)),
        );
        fam.add_labels(&Labels::from_pairs([("job", "scraped"), ("instance", "n1:9090")]));
        let labels = &fam.points[0].labels;
        assert_eq!(labels.get("job"), Some("scraped"), "target labels win on conflict");
        assert_eq!(labels.get("instance"), Some("n1:9090"));
    }

    #[test]
    fn merge_concatenates_and_rejects_kind_conflicts() {
        let mut a = FamilySnapshot::new("m", "help", MetricKind::Gauge)
            .with_point(MetricPoint::new(Labels::new(), PointValue::Gauge(1.0)));
        let b = FamilySnapshot::new("m", "", MetricKind::Gauge)
            .with_point(MetricPoint::new(Labels::from_pairs([("a", "1")]), PointValue::Gauge(2.0)));
        a.merge(b).unwrap();
        assert_eq!(a.points.len(), 2);
        let conflicting = FamilySnapshot::new("m", "", MetricKind::Counter);
        assert!(a.merge(conflicting).is_err());
    }

    #[test]
    fn merge_families_collapses_duplicates_sorted() {
        let families = vec![
            FamilySnapshot::new("z", "", MetricKind::Counter)
                .with_point(MetricPoint::new(Labels::new(), PointValue::Counter(1.0))),
            FamilySnapshot::new("a", "", MetricKind::Gauge),
            FamilySnapshot::new("z", "late help", MetricKind::Counter).with_point(
                MetricPoint::new(Labels::from_pairs([("i", "2")]), PointValue::Counter(2.0)),
            ),
        ];
        let merged = merge_families(families);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].name, "a");
        assert_eq!(merged[1].name, "z");
        assert_eq!(merged[1].points.len(), 2);
        assert_eq!(merged[1].help, "late help");
    }

    #[test]
    fn for_each_sample_matches_samples_and_borrows_plain_points() {
        let h = Histogram::new(vec![1.0, 2.0]).unwrap();
        h.observe(0.5);
        let fam = FamilySnapshot::new("lat", "latency", MetricKind::Histogram)
            .with_point(MetricPoint::new(Labels::new(), PointValue::Histogram(h.snapshot())));
        let mut visited = Vec::new();
        fam.for_each_sample(|name, labels, value, ts| {
            visited.push(Sample {
                name: name.to_string(),
                labels: labels.clone(),
                value,
                timestamp_ms: ts,
            });
        });
        assert_eq!(visited, fam.samples());

        // A plain counter family passes the family name pointer straight through.
        let plain = FamilySnapshot::new("c_total", "", MetricKind::Counter)
            .with_point(MetricPoint::new(Labels::new(), PointValue::Counter(4.0)));
        plain.for_each_sample(|name, _, value, _| {
            assert!(std::ptr::eq(name.as_ptr(), plain.name.as_ptr()));
            assert_eq!(value, 4.0);
        });
    }

    #[test]
    fn format_bound_handles_specials() {
        assert_eq!(format_bound(f64::INFINITY), "+Inf");
        assert_eq!(format_bound(f64::NEG_INFINITY), "-Inf");
        assert_eq!(format_bound(2.0), "2");
        assert_eq!(format_bound(0.5), "0.5");
    }
}
