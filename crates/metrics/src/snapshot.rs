//! Point-in-time snapshots of metric families.
//!
//! Exporters gather their live metric values into [`FamilySnapshot`]s which are
//! then encoded to the exposition format, transferred to the aggregation
//! component and decoded back into the same types.  The types are therefore
//! the wire-level data model of TEEMon.

use serde::{Deserialize, Serialize};

use crate::label::Labels;
use crate::value::{HistogramSnapshot, SummarySnapshot};

/// The kind of a metric family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MetricKind {
    /// Monotonically increasing counter.
    Counter,
    /// Value that can move up and down.
    Gauge,
    /// Bucketed distribution.
    Histogram,
    /// Quantile summary.
    Summary,
    /// Untyped sample (e.g. parsed from an exposition without metadata).
    Untyped,
}

impl MetricKind {
    /// Canonical lowercase name used in `# TYPE` exposition lines.
    pub fn as_str(&self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
            MetricKind::Summary => "summary",
            MetricKind::Untyped => "untyped",
        }
    }

    /// Parses a `# TYPE` token.
    pub fn from_str_token(token: &str) -> Option<Self> {
        match token {
            "counter" => Some(MetricKind::Counter),
            "gauge" => Some(MetricKind::Gauge),
            "histogram" => Some(MetricKind::Histogram),
            "summary" => Some(MetricKind::Summary),
            "untyped" | "unknown" => Some(MetricKind::Untyped),
            _ => None,
        }
    }
}

/// The value of a single metric point.
#[derive(Debug, Clone, PartialEq)]
pub enum PointValue {
    /// Counter total.
    Counter(f64),
    /// Gauge reading.
    Gauge(f64),
    /// Histogram state.
    Histogram(HistogramSnapshot),
    /// Summary state.
    Summary(SummarySnapshot),
    /// Untyped raw value.
    Untyped(f64),
}

impl PointValue {
    /// Scalar representation of the point: the counter/gauge value, or the sum
    /// for histograms and summaries.
    pub fn scalar(&self) -> f64 {
        match self {
            PointValue::Counter(v) | PointValue::Gauge(v) | PointValue::Untyped(v) => *v,
            PointValue::Histogram(h) => h.sum,
            PointValue::Summary(s) => s.sum,
        }
    }

    /// Kind of this point value.
    pub fn kind(&self) -> MetricKind {
        match self {
            PointValue::Counter(_) => MetricKind::Counter,
            PointValue::Gauge(_) => MetricKind::Gauge,
            PointValue::Histogram(_) => MetricKind::Histogram,
            PointValue::Summary(_) => MetricKind::Summary,
            PointValue::Untyped(_) => MetricKind::Untyped,
        }
    }
}

/// One metric point: a label set plus its value, with an optional explicit
/// timestamp in milliseconds since the (simulated) epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricPoint {
    /// Label set identifying the point within the family.
    pub labels: Labels,
    /// The observed value.
    pub value: PointValue,
    /// Optional timestamp in milliseconds.
    pub timestamp_ms: Option<u64>,
}

impl MetricPoint {
    /// Creates a point without an explicit timestamp.
    pub fn new(labels: Labels, value: PointValue) -> Self {
        Self { labels, value, timestamp_ms: None }
    }

    /// Sets the explicit timestamp in milliseconds.
    #[must_use]
    pub fn at(mut self, timestamp_ms: u64) -> Self {
        self.timestamp_ms = Some(timestamp_ms);
        self
    }
}

/// Snapshot of an entire metric family: name, help text, kind and points.
#[derive(Debug, Clone, PartialEq)]
pub struct FamilySnapshot {
    /// Metric family name (e.g. `teemon_syscalls_total`).
    pub name: String,
    /// Human readable help text.
    pub help: String,
    /// Family kind.
    pub kind: MetricKind,
    /// All points of the family.
    pub points: Vec<MetricPoint>,
}

impl FamilySnapshot {
    /// Creates an empty family snapshot.
    pub fn new(name: impl Into<String>, help: impl Into<String>, kind: MetricKind) -> Self {
        Self { name: name.into(), help: help.into(), kind, points: Vec::new() }
    }

    /// Adds a point and returns `self` for chaining.
    #[must_use]
    pub fn with_point(mut self, point: MetricPoint) -> Self {
        self.points.push(point);
        self
    }

    /// Returns the point whose labels exactly equal `labels`.
    pub fn point(&self, labels: &Labels) -> Option<&MetricPoint> {
        self.points.iter().find(|p| &p.labels == labels)
    }

    /// Sum of the scalar values of all points (useful for totals across labels).
    pub fn total(&self) -> f64 {
        self.points.iter().map(|p| p.value.scalar()).sum()
    }

    /// Flattens the family into individual [`Sample`]s as they appear on the
    /// wire (histograms expand into `_bucket`, `_sum` and `_count` samples).
    pub fn samples(&self) -> Vec<Sample> {
        let mut out = Vec::new();
        for point in &self.points {
            match &point.value {
                PointValue::Counter(v) | PointValue::Gauge(v) | PointValue::Untyped(v) => {
                    out.push(Sample {
                        name: self.name.clone(),
                        labels: point.labels.clone(),
                        value: *v,
                        timestamp_ms: point.timestamp_ms,
                    });
                }
                PointValue::Histogram(h) => {
                    for (i, bound) in h.bounds.iter().enumerate() {
                        let labels = point.labels.with("le", format_bound(*bound));
                        out.push(Sample {
                            name: format!("{}_bucket", self.name),
                            labels,
                            value: h.cumulative_counts[i] as f64,
                            timestamp_ms: point.timestamp_ms,
                        });
                    }
                    let inf_labels = point.labels.with("le", "+Inf");
                    out.push(Sample {
                        name: format!("{}_bucket", self.name),
                        labels: inf_labels,
                        value: *h.cumulative_counts.last().unwrap_or(&0) as f64,
                        timestamp_ms: point.timestamp_ms,
                    });
                    out.push(Sample {
                        name: format!("{}_sum", self.name),
                        labels: point.labels.clone(),
                        value: h.sum,
                        timestamp_ms: point.timestamp_ms,
                    });
                    out.push(Sample {
                        name: format!("{}_count", self.name),
                        labels: point.labels.clone(),
                        value: h.count as f64,
                        timestamp_ms: point.timestamp_ms,
                    });
                }
                PointValue::Summary(s) => {
                    for (q, v) in &s.quantiles {
                        let labels = point.labels.with("quantile", format_bound(*q));
                        out.push(Sample {
                            name: self.name.clone(),
                            labels,
                            value: *v,
                            timestamp_ms: point.timestamp_ms,
                        });
                    }
                    out.push(Sample {
                        name: format!("{}_sum", self.name),
                        labels: point.labels.clone(),
                        value: s.sum,
                        timestamp_ms: point.timestamp_ms,
                    });
                    out.push(Sample {
                        name: format!("{}_count", self.name),
                        labels: point.labels.clone(),
                        value: s.count as f64,
                        timestamp_ms: point.timestamp_ms,
                    });
                }
            }
        }
        out
    }
}

/// A single flattened sample as it appears on the exposition wire.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Sample name (family name, possibly with a `_bucket`/`_sum`/`_count` suffix).
    pub name: String,
    /// Label set.
    pub labels: Labels,
    /// Sample value.
    pub value: f64,
    /// Optional timestamp in milliseconds.
    pub timestamp_ms: Option<u64>,
}

/// Formats a bucket bound or quantile the way the exposition format expects.
pub(crate) fn format_bound(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else if v == v.trunc() && v.abs() < 1e15 {
        // Keep integers un-suffixed but make sure they stay parseable as f64.
        format!("{v}")
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Histogram;

    #[test]
    fn kind_round_trips_through_token() {
        for kind in [
            MetricKind::Counter,
            MetricKind::Gauge,
            MetricKind::Histogram,
            MetricKind::Summary,
            MetricKind::Untyped,
        ] {
            assert_eq!(MetricKind::from_str_token(kind.as_str()), Some(kind));
        }
        assert_eq!(MetricKind::from_str_token("bogus"), None);
        assert_eq!(MetricKind::from_str_token("unknown"), Some(MetricKind::Untyped));
    }

    #[test]
    fn scalar_of_each_value_kind() {
        assert_eq!(PointValue::Counter(3.0).scalar(), 3.0);
        assert_eq!(PointValue::Gauge(-1.0).scalar(), -1.0);
        assert_eq!(PointValue::Untyped(7.0).scalar(), 7.0);
        let h = Histogram::new(vec![1.0]).unwrap();
        h.observe(0.5);
        h.observe(0.25);
        assert_eq!(PointValue::Histogram(h.snapshot()).scalar(), 0.75);
    }

    #[test]
    fn family_total_sums_points() {
        let fam = FamilySnapshot::new("x_total", "help", MetricKind::Counter)
            .with_point(MetricPoint::new(
                Labels::from_pairs([("a", "1")]),
                PointValue::Counter(2.0),
            ))
            .with_point(MetricPoint::new(
                Labels::from_pairs([("a", "2")]),
                PointValue::Counter(3.0),
            ));
        assert_eq!(fam.total(), 5.0);
        assert!(fam.point(&Labels::from_pairs([("a", "2")])).is_some());
        assert!(fam.point(&Labels::from_pairs([("a", "3")])).is_none());
    }

    #[test]
    fn histogram_samples_expand_buckets() {
        let h = Histogram::new(vec![1.0, 2.0]).unwrap();
        h.observe(0.5);
        h.observe(1.5);
        h.observe(9.0);
        let fam = FamilySnapshot::new("lat", "latency", MetricKind::Histogram).with_point(
            MetricPoint::new(Labels::new(), PointValue::Histogram(h.snapshot())),
        );
        let samples = fam.samples();
        let names: Vec<_> = samples.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["lat_bucket", "lat_bucket", "lat_bucket", "lat_sum", "lat_count"]
        );
        let inf = samples.iter().find(|s| s.labels.get("le") == Some("+Inf")).unwrap();
        assert_eq!(inf.value, 3.0);
        let count = samples.iter().find(|s| s.name == "lat_count").unwrap();
        assert_eq!(count.value, 3.0);
    }

    #[test]
    fn timestamps_are_propagated() {
        let fam = FamilySnapshot::new("g", "gauge", MetricKind::Gauge).with_point(
            MetricPoint::new(Labels::new(), PointValue::Gauge(1.0)).at(12345),
        );
        assert_eq!(fam.samples()[0].timestamp_ms, Some(12345));
    }

    #[test]
    fn format_bound_handles_specials() {
        assert_eq!(format_bound(f64::INFINITY), "+Inf");
        assert_eq!(format_bound(f64::NEG_INFINITY), "-Inf");
        assert_eq!(format_bound(2.0), "2");
        assert_eq!(format_bound(0.5), "0.5");
    }
}
