//! Metric families: collections of metric instances keyed by label set.
//!
//! A family corresponds to one exposition-format metric name (e.g.
//! `teemon_syscalls_total`) with one live instance per distinct label set
//! (e.g. `{syscall="read"}`, `{syscall="clock_gettime"}`).

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::{LockClass, RwLock};

use crate::error::MetricError;
use crate::label::{Labels, MetricName};
use crate::snapshot::{FamilySnapshot, MetricKind, MetricPoint, PointValue};
use crate::value::{Counter, Gauge, Histogram, Summary};

/// A generic family of metric instances keyed by label set.
pub struct MetricFamily<M> {
    name: MetricName,
    help: Arc<String>,
    kind: MetricKind,
    make: Arc<dyn Fn() -> M + Send + Sync>,
    instances: Arc<RwLock<HashMap<Labels, M>>>,
}

impl<M> Clone for MetricFamily<M> {
    fn clone(&self) -> Self {
        Self {
            name: self.name.clone(),
            help: Arc::clone(&self.help),
            kind: self.kind,
            make: Arc::clone(&self.make),
            instances: Arc::clone(&self.instances),
        }
    }
}

impl<M: Clone + Send + Sync + 'static> MetricFamily<M> {
    /// Creates a family with a constructor for new instances.
    ///
    /// # Errors
    ///
    /// Returns [`MetricError::InvalidMetricName`] when `name` is invalid.
    pub fn new(
        name: impl Into<String>,
        help: impl Into<String>,
        kind: MetricKind,
        make: impl Fn() -> M + Send + Sync + 'static,
    ) -> Result<Self, MetricError> {
        Ok(Self {
            name: MetricName::new(name)?,
            help: Arc::new(help.into()),
            kind,
            make: Arc::new(make),
            instances: Arc::new(RwLock::named(HashMap::new(), LockClass::new("metrics.family"))),
        })
    }

    /// Family name.
    pub fn name(&self) -> &str {
        self.name.as_str()
    }

    /// Family help text.
    pub fn help(&self) -> &str {
        &self.help
    }

    /// Family kind.
    pub fn kind(&self) -> MetricKind {
        self.kind
    }

    /// Returns the instance for `labels`, creating it on first use.
    pub fn with(&self, labels: &Labels) -> M {
        if let Some(existing) = self.instances.read().get(labels) {
            return existing.clone();
        }
        let mut guard = self.instances.write();
        guard.entry(labels.clone()).or_insert_with(|| (self.make)()).clone()
    }

    /// Returns the instance with no labels (the "default" series).
    pub fn default_instance(&self) -> M {
        self.with(&Labels::new())
    }

    /// Removes the instance for `labels`, if present.
    pub fn remove(&self, labels: &Labels) -> bool {
        self.instances.write().remove(labels).is_some()
    }

    /// Removes every instance (e.g. after a monitored process exits).
    pub fn clear(&self) {
        self.instances.write().clear();
    }

    /// Number of live instances.
    pub fn len(&self) -> usize {
        self.instances.read().len()
    }

    /// `true` when the family has no instances.
    pub fn is_empty(&self) -> bool {
        self.instances.read().is_empty()
    }

    /// Visits every `(labels, instance)` pair.
    pub fn for_each(&self, mut f: impl FnMut(&Labels, &M)) {
        for (labels, m) in self.instances.read().iter() {
            f(labels, m);
        }
    }

    fn snapshot_with(&self, to_point: impl Fn(&M) -> PointValue) -> FamilySnapshot {
        let mut snap = FamilySnapshot::new(self.name.as_str(), self.help.as_str(), self.kind);
        let guard = self.instances.read();
        let mut entries: Vec<_> = guard.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        for (labels, m) in entries {
            snap.points.push(MetricPoint::new(labels.clone(), to_point(m)));
        }
        snap
    }
}

impl<M> std::fmt::Debug for MetricFamily<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricFamily")
            .field("name", &self.name)
            .field("kind", &self.kind)
            .field("instances", &self.instances.read().len())
            .finish()
    }
}

/// A family of [`Counter`]s.
pub type CounterFamily = MetricFamily<Counter>;
/// A family of [`Gauge`]s.
pub type GaugeFamily = MetricFamily<Gauge>;
/// A family of [`Histogram`]s.
pub type HistogramFamily = MetricFamily<Histogram>;
/// A family of [`Summary`]s.
pub type SummaryFamily = MetricFamily<Summary>;

impl CounterFamily {
    /// Creates a counter family.
    ///
    /// # Errors
    ///
    /// Returns [`MetricError::InvalidMetricName`] when `name` is invalid.
    pub fn counters(name: impl Into<String>, help: impl Into<String>) -> Result<Self, MetricError> {
        MetricFamily::new(name, help, MetricKind::Counter, Counter::new)
    }

    /// Takes a snapshot of all counter instances.
    pub fn snapshot(&self) -> FamilySnapshot {
        self.snapshot_with(|c| PointValue::Counter(c.get()))
    }
}

impl GaugeFamily {
    /// Creates a gauge family.
    ///
    /// # Errors
    ///
    /// Returns [`MetricError::InvalidMetricName`] when `name` is invalid.
    pub fn gauges(name: impl Into<String>, help: impl Into<String>) -> Result<Self, MetricError> {
        MetricFamily::new(name, help, MetricKind::Gauge, Gauge::new)
    }

    /// Takes a snapshot of all gauge instances.
    pub fn snapshot(&self) -> FamilySnapshot {
        self.snapshot_with(|g| PointValue::Gauge(g.get()))
    }
}

impl HistogramFamily {
    /// Creates a histogram family with shared bucket `bounds`.
    ///
    /// # Errors
    ///
    /// Returns [`MetricError::InvalidMetricName`] for an invalid name and
    /// [`MetricError::InvalidBuckets`] for invalid bounds.
    pub fn histograms(
        name: impl Into<String>,
        help: impl Into<String>,
        bounds: Vec<f64>,
    ) -> Result<Self, MetricError> {
        // Validate the bounds once, eagerly, so the constructor closure cannot fail.
        Histogram::new(bounds.clone())?;
        MetricFamily::new(name, help, MetricKind::Histogram, move || {
            Histogram::new(bounds.clone()).expect("bounds validated at family construction")
        })
    }

    /// Takes a snapshot of all histogram instances.
    pub fn snapshot(&self) -> FamilySnapshot {
        self.snapshot_with(|h| PointValue::Histogram(h.snapshot()))
    }
}

impl SummaryFamily {
    /// Creates a summary family tracking `quantiles`.
    ///
    /// # Errors
    ///
    /// Returns [`MetricError::InvalidMetricName`] for an invalid name and
    /// [`MetricError::InvalidQuantile`] for out-of-range quantiles.
    pub fn summaries(
        name: impl Into<String>,
        help: impl Into<String>,
        quantiles: Vec<f64>,
    ) -> Result<Self, MetricError> {
        Summary::new(quantiles.clone())?;
        MetricFamily::new(name, help, MetricKind::Summary, move || {
            Summary::new(quantiles.clone()).expect("quantiles validated at family construction")
        })
    }

    /// Takes a snapshot of all summary instances.
    pub fn snapshot(&self) -> FamilySnapshot {
        self.snapshot_with(|s| PointValue::Summary(s.snapshot()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_family_creates_instances_lazily() {
        let fam = CounterFamily::counters("syscalls_total", "syscalls").unwrap();
        assert!(fam.is_empty());
        let read = fam.with(&Labels::from_pairs([("syscall", "read")]));
        read.inc_by(3.0);
        let read_again = fam.with(&Labels::from_pairs([("syscall", "read")]));
        assert_eq!(read_again.get(), 3.0);
        assert_eq!(fam.len(), 1);
        fam.with(&Labels::from_pairs([("syscall", "write")])).inc();
        assert_eq!(fam.len(), 2);
        assert_eq!(fam.snapshot().total(), 4.0);
    }

    #[test]
    fn snapshot_points_are_sorted_by_labels() {
        let fam = GaugeFamily::gauges("epc_pages", "pages").unwrap();
        fam.with(&Labels::from_pairs([("state", "free")])).set(10.0);
        fam.with(&Labels::from_pairs([("state", "evicted")])).set(2.0);
        let snap = fam.snapshot();
        let states: Vec<_> =
            snap.points.iter().map(|p| p.labels.get("state").unwrap().to_string()).collect();
        assert_eq!(states, vec!["evicted", "free"]);
    }

    #[test]
    fn histogram_family_shares_bounds() {
        let fam = HistogramFamily::histograms("lat_seconds", "latency", vec![0.1, 1.0]).unwrap();
        fam.with(&Labels::from_pairs([("op", "get")])).observe(0.05);
        fam.with(&Labels::from_pairs([("op", "set")])).observe(5.0);
        let snap = fam.snapshot();
        assert_eq!(snap.points.len(), 2);
        assert_eq!(snap.kind, MetricKind::Histogram);
    }

    #[test]
    fn histogram_family_rejects_bad_bounds() {
        assert!(HistogramFamily::histograms("x", "h", vec![]).is_err());
        assert!(HistogramFamily::histograms("x", "h", vec![2.0, 1.0]).is_err());
    }

    #[test]
    fn remove_and_clear() {
        let fam = CounterFamily::counters("c_total", "c").unwrap();
        let l = Labels::from_pairs([("pid", "42")]);
        fam.with(&l).inc();
        assert!(fam.remove(&l));
        assert!(!fam.remove(&l));
        fam.with(&l).inc();
        fam.clear();
        assert!(fam.is_empty());
    }

    #[test]
    fn invalid_family_name_rejected() {
        assert!(CounterFamily::counters("bad name", "help").is_err());
        assert!(GaugeFamily::gauges("", "help").is_err());
    }

    #[test]
    fn summary_family_snapshot() {
        let fam = SummaryFamily::summaries("req_lat", "latency", vec![0.5, 0.9]).unwrap();
        for i in 0..100 {
            fam.default_instance().observe(i as f64);
        }
        let snap = fam.snapshot();
        assert_eq!(snap.points.len(), 1);
        match &snap.points[0].value {
            PointValue::Summary(s) => assert_eq!(s.count, 100),
            other => panic!("expected summary, got {other:?}"),
        }
    }
}
