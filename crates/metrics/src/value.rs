//! Metric value primitives: counters, gauges, histograms and summaries.
//!
//! All values are cheap to clone (internally `Arc`-backed) and thread safe so
//! that simulated kernel hooks, eBPF programs and exporters can update them
//! concurrently, mirroring how the paper's exporters update counters from
//! kernel context while a scraper reads them.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{LockClass, Mutex};

use crate::error::MetricError;

/// Atomically stored `f64` built on top of an [`AtomicU64`] bit pattern.
#[derive(Debug, Default)]
struct AtomicF64(AtomicU64);

impl AtomicF64 {
    fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    fn add(&self, delta: f64) {
        let mut current = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + delta).to_bits();
            match self.0.compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(observed) => current = observed,
            }
        }
    }
}

/// A monotonically increasing counter.
///
/// Counters model event totals such as `teemon_syscalls_total` or
/// `sgx_pages_evicted_total`; they can only grow (or be reset to zero, which
/// the aggregator detects as a counter reset).
#[derive(Debug, Clone, Default)]
pub struct Counter {
    value: Arc<AtomicF64>,
}

impl Counter {
    /// Creates a counter starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments the counter by one.
    pub fn inc(&self) {
        self.value.add(1.0);
    }

    /// Increments the counter by `delta`.
    ///
    /// Negative or NaN increments are ignored (counters are monotonic); use
    /// [`Counter::try_inc_by`] to observe the rejection.
    pub fn inc_by(&self, delta: f64) {
        let _ = self.try_inc_by(delta);
    }

    /// Increments the counter by `delta`, rejecting negative or NaN deltas.
    ///
    /// # Errors
    ///
    /// Returns [`MetricError::NegativeCounterIncrement`] when `delta < 0` or
    /// `delta` is NaN.
    pub fn try_inc_by(&self, delta: f64) -> Result<(), MetricError> {
        if delta.is_nan() || delta < 0.0 {
            return Err(MetricError::NegativeCounterIncrement(delta));
        }
        self.value.add(delta);
        Ok(())
    }

    /// Current counter value.
    pub fn get(&self) -> f64 {
        self.value.get()
    }

    /// Resets the counter to zero (models a process or driver restart).
    pub fn reset(&self) {
        self.value.set(0.0);
    }
}

/// A gauge: a value that can go up and down.
///
/// Gauges model instantaneous readings such as `sgx_nr_free_pages` or memory
/// consumption of a TEEMon component.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    value: Arc<AtomicF64>,
}

impl Gauge {
    /// Creates a gauge starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the gauge to `value`.
    pub fn set(&self, value: f64) {
        self.value.set(value);
    }

    /// Adds `delta` (which may be negative) to the gauge.
    pub fn add(&self, delta: f64) {
        self.value.add(delta);
    }

    /// Subtracts `delta` from the gauge.
    pub fn sub(&self, delta: f64) {
        self.value.add(-delta);
    }

    /// Increments the gauge by one.
    pub fn inc(&self) {
        self.add(1.0);
    }

    /// Decrements the gauge by one.
    pub fn dec(&self) {
        self.sub(1.0);
    }

    /// Current gauge value.
    pub fn get(&self) -> f64 {
        self.value.get()
    }
}

/// Immutable snapshot of a histogram's state.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Upper bounds of each bucket (excluding the implicit `+Inf` bucket).
    pub bounds: Vec<f64>,
    /// Cumulative observation counts per bucket, same length as `bounds`,
    /// followed by the `+Inf` bucket appended at the end.
    pub cumulative_counts: Vec<u64>,
    /// Sum of all observed values.
    pub sum: f64,
    /// Total number of observations.
    pub count: u64,
}

impl HistogramSnapshot {
    /// Estimates the `q`-quantile (0 ≤ q ≤ 1) assuming a uniform distribution
    /// within each bucket — the same estimation Prometheus' `histogram_quantile`
    /// performs and which PMAN uses for box plots.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = q * self.count as f64;
        let mut prev_count = 0u64;
        let mut prev_bound = 0.0f64;
        for (i, bound) in self.bounds.iter().enumerate() {
            let c = self.cumulative_counts[i];
            if (c as f64) >= rank {
                let bucket_count = c - prev_count;
                if bucket_count == 0 {
                    return *bound;
                }
                let within = (rank - prev_count as f64) / bucket_count as f64;
                return prev_bound + (bound - prev_bound) * within;
            }
            prev_count = c;
            prev_bound = *bound;
        }
        // Falls into the +Inf bucket: report the largest finite bound.
        self.bounds.last().copied().unwrap_or(f64::NAN)
    }

    /// Mean of the observed values.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum / self.count as f64
        }
    }
}

#[derive(Debug, Default)]
struct HistogramInner {
    counts: Vec<u64>,
    inf_count: u64,
    sum: f64,
    total: u64,
}

/// A histogram with fixed bucket boundaries.
///
/// Used for latency-style metrics (e.g. scrape durations, request latencies in
/// the Redis benchmark reproduction).
#[derive(Debug, Clone)]
pub struct Histogram {
    bounds: Arc<Vec<f64>>,
    inner: Arc<Mutex<HistogramInner>>,
}

impl Histogram {
    /// Creates a histogram with the provided strictly increasing bucket bounds.
    ///
    /// # Errors
    ///
    /// Returns [`MetricError::InvalidBuckets`] when `bounds` is empty, contains
    /// NaN, or is not strictly increasing.
    pub fn new(bounds: Vec<f64>) -> Result<Self, MetricError> {
        if bounds.is_empty() {
            return Err(MetricError::InvalidBuckets("no bucket bounds".into()));
        }
        if bounds.iter().any(|b| b.is_nan()) {
            return Err(MetricError::InvalidBuckets("NaN bucket bound".into()));
        }
        if bounds.windows(2).any(|w| w[0] >= w[1]) {
            return Err(MetricError::InvalidBuckets(
                "bucket bounds must be strictly increasing".into(),
            ));
        }
        let counts = vec![0; bounds.len()];
        Ok(Self {
            bounds: Arc::new(bounds),
            inner: Arc::new(Mutex::named(
                HistogramInner { counts, inf_count: 0, sum: 0.0, total: 0 },
                LockClass::new("metrics.value"),
            )),
        })
    }

    /// Creates a histogram with exponential bucket bounds
    /// `start, start*factor, ...` (`count` buckets).
    ///
    /// # Errors
    ///
    /// Returns [`MetricError::InvalidBuckets`] for non-positive `start`,
    /// `factor <= 1` or `count == 0`.
    pub fn exponential(start: f64, factor: f64, count: usize) -> Result<Self, MetricError> {
        if start <= 0.0 || factor <= 1.0 || count == 0 {
            return Err(MetricError::InvalidBuckets(format!(
                "invalid exponential bucket spec start={start} factor={factor} count={count}"
            )));
        }
        let mut bounds = Vec::with_capacity(count);
        let mut bound = start;
        for _ in 0..count {
            bounds.push(bound);
            bound *= factor;
        }
        Self::new(bounds)
    }

    /// Creates a histogram with linear bucket bounds.
    ///
    /// # Errors
    ///
    /// Returns [`MetricError::InvalidBuckets`] for non-positive `width` or
    /// `count == 0`.
    pub fn linear(start: f64, width: f64, count: usize) -> Result<Self, MetricError> {
        if width <= 0.0 || count == 0 {
            return Err(MetricError::InvalidBuckets(format!(
                "invalid linear bucket spec start={start} width={width} count={count}"
            )));
        }
        let bounds = (0..count).map(|i| start + width * i as f64).collect();
        Self::new(bounds)
    }

    /// Records a single observation.
    pub fn observe(&self, value: f64) {
        let mut inner = self.inner.lock();
        inner.sum += value;
        inner.total += 1;
        match self.bounds.iter().position(|b| value <= *b) {
            Some(idx) => inner.counts[idx] += 1,
            None => inner.inf_count += 1,
        }
    }

    /// Bucket upper bounds (excluding `+Inf`).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Takes an immutable snapshot with cumulative bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let inner = self.inner.lock();
        let mut cumulative = Vec::with_capacity(self.bounds.len() + 1);
        let mut running = 0u64;
        for c in &inner.counts {
            running += c;
            cumulative.push(running);
        }
        cumulative.push(running + inner.inf_count);
        HistogramSnapshot {
            bounds: self.bounds.as_ref().clone(),
            cumulative_counts: cumulative,
            sum: inner.sum,
            count: inner.total,
        }
    }

    /// Resets all buckets, the sum and the count to zero.
    pub fn reset(&self) {
        let mut inner = self.inner.lock();
        for c in inner.counts.iter_mut() {
            *c = 0;
        }
        inner.inf_count = 0;
        inner.sum = 0.0;
        inner.total = 0;
    }
}

/// Immutable snapshot of a [`Summary`].
#[derive(Debug, Clone, PartialEq)]
pub struct SummarySnapshot {
    /// `(quantile, estimated value)` pairs in ascending quantile order.
    pub quantiles: Vec<(f64, f64)>,
    /// Sum of all observations.
    pub sum: f64,
    /// Number of observations.
    pub count: u64,
}

#[derive(Debug, Default)]
struct SummaryInner {
    samples: Vec<f64>,
    sum: f64,
    count: u64,
}

/// A summary computing exact quantiles over a bounded reservoir of recent
/// observations.
///
/// The paper's PMAN component reports box-plot statistics (median, quartiles)
/// over sliding windows; [`Summary`] provides the underlying quantile sketch.
#[derive(Debug, Clone)]
pub struct Summary {
    quantiles: Arc<Vec<f64>>,
    capacity: usize,
    inner: Arc<Mutex<SummaryInner>>,
}

impl Summary {
    /// Default reservoir capacity.
    pub const DEFAULT_CAPACITY: usize = 4096;

    /// Creates a summary tracking the given quantiles (each in `[0, 1]`).
    ///
    /// # Errors
    ///
    /// Returns [`MetricError::InvalidQuantile`] for out-of-range quantiles.
    pub fn new(quantiles: Vec<f64>) -> Result<Self, MetricError> {
        Self::with_capacity(quantiles, Self::DEFAULT_CAPACITY)
    }

    /// Creates a summary with an explicit reservoir capacity.
    ///
    /// # Errors
    ///
    /// Returns [`MetricError::InvalidQuantile`] for out-of-range quantiles.
    pub fn with_capacity(quantiles: Vec<f64>, capacity: usize) -> Result<Self, MetricError> {
        for q in &quantiles {
            if q.is_nan() || *q < 0.0 || *q > 1.0 {
                return Err(MetricError::InvalidQuantile(*q));
            }
        }
        let mut quantiles = quantiles;
        quantiles.sort_by(|a, b| a.partial_cmp(b).expect("quantiles validated as non-NaN"));
        Ok(Self {
            quantiles: Arc::new(quantiles),
            capacity: capacity.max(1),
            inner: Arc::new(Mutex::named(SummaryInner::default(), LockClass::new("metrics.value"))),
        })
    }

    /// Records an observation.  When the reservoir is full the oldest half is
    /// discarded (a cheap sliding behaviour adequate for monitoring).
    pub fn observe(&self, value: f64) {
        let mut inner = self.inner.lock();
        inner.sum += value;
        inner.count += 1;
        if inner.samples.len() >= self.capacity {
            let keep_from = self.capacity / 2;
            inner.samples.drain(..keep_from);
        }
        inner.samples.push(value);
    }

    /// Takes an immutable snapshot with estimated quantiles.
    pub fn snapshot(&self) -> SummarySnapshot {
        let inner = self.inner.lock();
        let mut sorted = inner.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let quantiles = self.quantiles.iter().map(|q| (*q, exact_quantile(&sorted, *q))).collect();
        SummarySnapshot { quantiles, sum: inner.sum, count: inner.count }
    }
}

/// Exact quantile of a sorted slice using linear interpolation between ranks.
pub(crate) fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lower = pos.floor() as usize;
    let upper = pos.ceil() as usize;
    if lower == upper {
        sorted[lower]
    } else {
        let weight = pos - lower as f64;
        sorted[lower] * (1.0 - weight) + sorted[upper] * weight
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_increments_and_rejects_negative() {
        let c = Counter::new();
        c.inc();
        c.inc_by(2.5);
        assert_eq!(c.get(), 3.5);
        assert!(c.try_inc_by(-1.0).is_err());
        assert!(c.try_inc_by(f64::NAN).is_err());
        assert_eq!(c.get(), 3.5);
        c.reset();
        assert_eq!(c.get(), 0.0);
    }

    #[test]
    fn counter_clones_share_state() {
        let c = Counter::new();
        let c2 = c.clone();
        c2.inc_by(10.0);
        assert_eq!(c.get(), 10.0);
    }

    #[test]
    fn gauge_moves_both_directions() {
        let g = Gauge::new();
        g.set(5.0);
        g.add(2.0);
        g.sub(4.0);
        g.inc();
        g.dec();
        assert_eq!(g.get(), 3.0);
    }

    #[test]
    fn histogram_rejects_bad_buckets() {
        assert!(Histogram::new(vec![]).is_err());
        assert!(Histogram::new(vec![1.0, 1.0]).is_err());
        assert!(Histogram::new(vec![2.0, 1.0]).is_err());
        assert!(Histogram::new(vec![1.0, f64::NAN]).is_err());
        assert!(Histogram::exponential(0.0, 2.0, 4).is_err());
        assert!(Histogram::linear(0.0, 0.0, 4).is_err());
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let h = Histogram::new(vec![1.0, 2.0, 4.0]).unwrap();
        for v in [0.5, 1.5, 1.7, 3.0, 10.0] {
            h.observe(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.cumulative_counts, vec![1, 3, 4, 5]);
        assert_eq!(snap.count, 5);
        assert!((snap.sum - 16.7).abs() < 1e-9);
        assert!(snap.cumulative_counts.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn histogram_quantile_estimation() {
        let h = Histogram::linear(10.0, 10.0, 10).unwrap();
        for i in 1..=100 {
            h.observe(i as f64);
        }
        let snap = h.snapshot();
        let median = snap.quantile(0.5);
        assert!((median - 50.0).abs() <= 10.0, "median estimate {median} too far from 50");
        assert!((snap.mean() - 50.5).abs() < 1e-9);
        assert!(snap.quantile(0.0) <= snap.quantile(0.5));
        assert!(snap.quantile(0.5) <= snap.quantile(1.0));
    }

    #[test]
    fn histogram_quantile_of_empty_is_nan() {
        let h = Histogram::linear(1.0, 1.0, 3).unwrap();
        assert!(h.snapshot().quantile(0.5).is_nan());
        assert!(h.snapshot().mean().is_nan());
    }

    #[test]
    fn exponential_buckets_grow_by_factor() {
        let h = Histogram::exponential(1.0, 2.0, 5).unwrap();
        assert_eq!(h.bounds(), &[1.0, 2.0, 4.0, 8.0, 16.0]);
    }

    #[test]
    fn summary_quantiles_track_distribution() {
        let s = Summary::new(vec![0.5, 0.9, 0.99]).unwrap();
        for i in 1..=1000 {
            s.observe(i as f64);
        }
        let snap = s.snapshot();
        assert_eq!(snap.count, 1000);
        let median = snap.quantiles.iter().find(|(q, _)| *q == 0.5).unwrap().1;
        assert!((median - 500.0).abs() < 20.0);
        let p99 = snap.quantiles.iter().find(|(q, _)| *q == 0.99).unwrap().1;
        assert!(p99 > 950.0);
    }

    #[test]
    fn summary_rejects_invalid_quantiles() {
        assert!(Summary::new(vec![1.5]).is_err());
        assert!(Summary::new(vec![-0.1]).is_err());
        assert!(Summary::new(vec![f64::NAN]).is_err());
    }

    #[test]
    fn summary_reservoir_is_bounded() {
        let s = Summary::with_capacity(vec![0.5], 128).unwrap();
        for i in 0..10_000 {
            s.observe(i as f64);
        }
        let snap = s.snapshot();
        assert_eq!(snap.count, 10_000);
        // Median of the retained window must be near the end of the stream.
        let median = snap.quantiles[0].1;
        assert!(median > 9000.0, "median {median} should reflect recent samples");
    }

    #[test]
    fn exact_quantile_interpolates() {
        let v = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(exact_quantile(&v, 0.0), 1.0);
        assert_eq!(exact_quantile(&v, 1.0), 4.0);
        assert!((exact_quantile(&v, 0.5) - 2.5).abs() < 1e-9);
        assert!(exact_quantile(&[], 0.5).is_nan());
    }

    #[test]
    fn concurrent_counter_updates() {
        let c = Counter::new();
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    c.inc();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 80_000.0);
    }
}
