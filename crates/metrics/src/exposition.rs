//! OpenMetrics-style text exposition: encoding and parsing.
//!
//! The encoder turns gathered [`FamilySnapshot`]s into the text format that
//! the paper's exporters publish on their `/metrics` endpoints; the parser is
//! used by the aggregation component (PMAG) when it scrapes those endpoints.
//!
//! The format is line oriented:
//!
//! ```text
//! # HELP teemon_syscalls_total System calls observed
//! # TYPE teemon_syscalls_total counter
//! teemon_syscalls_total{syscall="read"} 42 1607731200000
//! ```

use std::collections::BTreeMap;

use crate::collector::{CollectError, Collector};
use crate::error::MetricError;
use crate::label::Labels;
use crate::snapshot::{FamilySnapshot, MetricKind, MetricPoint, PointValue, Sample};
use crate::value::{HistogramSnapshot, SummarySnapshot};

/// Renders a [`Collector`]'s current state as exposition text: refreshes,
/// collects typed snapshots and encodes them.  This is the outbound half of
/// the text edge (what an HTTP `/metrics` handler would serve to an external
/// Prometheus).
///
/// # Errors
///
/// Propagates the collector's [`CollectError`].
pub fn render_collector(collector: &dyn Collector) -> Result<String, CollectError> {
    collector.refresh();
    Ok(encode_text(&collector.collect()?))
}

/// Encodes family snapshots into the text exposition format.
pub fn encode_text(families: &[FamilySnapshot]) -> String {
    let mut out = String::new();
    for family in families {
        if !family.help.is_empty() {
            out.push_str("# HELP ");
            out.push_str(&family.name);
            out.push(' ');
            out.push_str(&escape_help(&family.help));
            out.push('\n');
        }
        out.push_str("# TYPE ");
        out.push_str(&family.name);
        out.push(' ');
        out.push_str(family.kind.as_str());
        out.push('\n');
        for sample in family.samples() {
            encode_sample(&mut out, &sample);
        }
    }
    out
}

fn encode_sample(out: &mut String, sample: &Sample) {
    out.push_str(&sample.name);
    if !sample.labels.is_empty() {
        out.push('{');
        for (i, (k, v)) in sample.labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(&escape_label_value(v));
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(&format_value(sample.value));
    if let Some(ts) = sample.timestamp_ms {
        out.push(' ');
        out.push_str(&ts.to_string());
    }
    out.push('\n');
}

/// Formats a sample value: integral values print without a decimal point,
/// specials print as `NaN`, `+Inf`, `-Inf`.
pub fn format_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Reverses [`escape_help`]; found by the round-trip property tests, which
/// caught the parser storing help text with its escapes still applied.
fn unescape_help(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('\\') => out.push('\\'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

fn escape_label_value(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

fn unescape_label_value(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// A scrape result: parsed samples plus per-family metadata.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParsedExposition {
    /// All samples in document order.
    pub samples: Vec<Sample>,
    /// `# TYPE` declarations by family name.
    pub types: BTreeMap<String, MetricKind>,
    /// `# HELP` declarations by family name.
    pub help: BTreeMap<String, String>,
}

impl ParsedExposition {
    /// Returns all samples whose name equals `name`.
    pub fn samples_named(&self, name: &str) -> Vec<&Sample> {
        self.samples.iter().filter(|s| s.name == name).collect()
    }

    /// Returns the single value of `name` with exactly `labels`, if present.
    pub fn value(&self, name: &str, labels: &Labels) -> Option<f64> {
        self.samples.iter().find(|s| s.name == name && &s.labels == labels).map(|s| s.value)
    }

    /// Sum of all samples named `name` (across label sets).
    pub fn total(&self, name: &str) -> f64 {
        self.samples.iter().filter(|s| s.name == name).map(|s| s.value).sum()
    }

    /// Reassembles typed [`FamilySnapshot`]s from the flat samples, using the
    /// `# TYPE` declarations to fold `_bucket`/`_sum`/`_count` samples back
    /// into histogram and summary points.  Families appear in document order;
    /// samples without a `# TYPE` declaration become untyped families.
    pub fn to_families(&self) -> Vec<FamilySnapshot> {
        let mut families: Vec<FamilySnapshot> = Vec::new();
        // Distribution accumulators keyed by (family index, grouping labels).
        let mut accs: Vec<(usize, Labels, DistAcc)> = Vec::new();

        let family_index = |families: &mut Vec<FamilySnapshot>, name: &str| -> usize {
            if let Some(i) = families.iter().position(|f| f.name == name) {
                return i;
            }
            let kind = self.types.get(name).copied().unwrap_or(MetricKind::Untyped);
            let help = self.help.get(name).cloned().unwrap_or_default();
            families.push(FamilySnapshot::new(name, help, kind));
            families.len() - 1
        };

        for sample in &self.samples {
            let (family_name, part) = self.split_sample_name(&sample.name);
            let index = family_index(&mut families, family_name);
            let kind = families[index].kind;
            match kind {
                MetricKind::Counter | MetricKind::Gauge | MetricKind::Untyped => {
                    let value = match kind {
                        MetricKind::Counter => PointValue::Counter(sample.value),
                        MetricKind::Gauge => PointValue::Gauge(sample.value),
                        _ => PointValue::Untyped(sample.value),
                    };
                    let mut point = MetricPoint::new(sample.labels.clone(), value);
                    point.timestamp_ms = sample.timestamp_ms;
                    families[index].points.push(point);
                }
                MetricKind::Histogram | MetricKind::Summary => {
                    let mut group_labels = sample.labels.clone();
                    let detail = match part {
                        SamplePart::Value if kind == MetricKind::Summary => {
                            group_labels.remove("quantile")
                        }
                        SamplePart::Bucket => group_labels.remove("le"),
                        _ => None,
                    };
                    let found = accs
                        .iter()
                        .position(|(i, labels, _)| *i == index && *labels == group_labels);
                    let pos = match found {
                        Some(pos) => pos,
                        None => {
                            families[index].points.push(MetricPoint::new(
                                group_labels.clone(),
                                PointValue::Untyped(0.0), // patched below
                            ));
                            let acc = DistAcc {
                                point_slot: families[index].points.len() - 1,
                                ..DistAcc::default()
                            };
                            accs.push((index, group_labels, acc));
                            accs.len() - 1
                        }
                    };
                    let acc = &mut accs[pos].2;
                    acc.timestamp_ms = acc.timestamp_ms.or(sample.timestamp_ms);
                    match part {
                        SamplePart::Bucket => {
                            if let Some(bound) = detail.as_deref().and_then(parse_bound) {
                                if bound.is_finite() {
                                    acc.buckets.push((bound, sample.value as u64));
                                } else {
                                    acc.inf_count = sample.value as u64;
                                }
                            }
                        }
                        SamplePart::Sum => acc.sum = sample.value,
                        SamplePart::Count => acc.count = sample.value as u64,
                        SamplePart::Value => {
                            if let Some(q) = detail.as_deref().and_then(parse_bound) {
                                acc.quantiles.push((q, sample.value));
                            }
                        }
                    }
                }
            }
        }

        // Patch the accumulated distribution points in place.
        for (index, _, acc) in accs {
            let kind = families[index].kind;
            let point = &mut families[index].points[acc.point_slot];
            point.timestamp_ms = acc.timestamp_ms;
            point.value = if kind == MetricKind::Histogram {
                let mut buckets = acc.buckets;
                buckets.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
                let bounds: Vec<f64> = buckets.iter().map(|(b, _)| *b).collect();
                let mut cumulative_counts: Vec<u64> = buckets.iter().map(|(_, c)| *c).collect();
                cumulative_counts.push(acc.inf_count);
                PointValue::Histogram(HistogramSnapshot {
                    bounds,
                    cumulative_counts,
                    sum: acc.sum,
                    count: acc.count,
                })
            } else {
                PointValue::Summary(SummarySnapshot {
                    quantiles: acc.quantiles,
                    sum: acc.sum,
                    count: acc.count,
                })
            };
        }
        families
    }

    /// Splits a wire sample name into its family name and role, honouring the
    /// `# TYPE` declarations (`lat_bucket` only folds into `lat` when `lat`
    /// is a declared histogram).
    fn split_sample_name<'a>(&self, name: &'a str) -> (&'a str, SamplePart) {
        for (suffix, part) in [
            ("_bucket", SamplePart::Bucket),
            ("_sum", SamplePart::Sum),
            ("_count", SamplePart::Count),
        ] {
            if let Some(base) = name.strip_suffix(suffix) {
                match self.types.get(base) {
                    Some(MetricKind::Histogram) => return (base, part),
                    Some(MetricKind::Summary) if part != SamplePart::Bucket => return (base, part),
                    _ => {}
                }
            }
        }
        (name, SamplePart::Value)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SamplePart {
    Value,
    Bucket,
    Sum,
    Count,
}

/// Accumulates one histogram/summary point while its wire samples stream in.
#[derive(Debug, Default)]
struct DistAcc {
    point_slot: usize,
    buckets: Vec<(f64, u64)>,
    inf_count: u64,
    quantiles: Vec<(f64, f64)>,
    sum: f64,
    count: u64,
    timestamp_ms: Option<u64>,
}

fn parse_bound(s: &str) -> Option<f64> {
    parse_value(s)
}

/// Resource limits applied to an inbound exposition document while it is
/// parsed.  Documents arriving over the network (a scraped target, a
/// remote-write push) are attacker-shaped input: without bounds, one
/// hostile peer can make the parser materialise an unbounded number of
/// samples or one pathologically long line.  Exceeding a limit fails the
/// whole parse with [`MetricError::LimitExceeded`] — never a silent
/// truncation, which would mis-report a broken target as healthy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseLimits {
    /// Maximum length of a single line, in bytes.
    pub max_line_bytes: usize,
    /// Maximum number of samples in the document.
    pub max_samples: usize,
    /// Maximum number of distinct family names (across `# TYPE`, `# HELP`
    /// and sample lines).
    pub max_families: usize,
}

impl ParseLimits {
    /// The defaults applied to documents fetched from the network: 16 KiB
    /// lines, 100 000 samples, 4096 families — far above anything a healthy
    /// exporter emits, far below what exhausts the scraper.
    pub const fn network() -> Self {
        Self { max_line_bytes: 16 * 1024, max_samples: 100_000, max_families: 4096 }
    }

    /// No limits (trusted in-process input).
    pub const fn unbounded() -> Self {
        Self { max_line_bytes: usize::MAX, max_samples: usize::MAX, max_families: usize::MAX }
    }
}

impl Default for ParseLimits {
    fn default() -> Self {
        Self::network()
    }
}

/// Parses a text exposition document straight into typed family snapshots:
/// the inbound half of the text edge, used when scraping targets that only
/// speak the wire format.  Equivalent to
/// [`parse_text`]`(input)?.`[`to_families`](ParsedExposition::to_families)`()`.
///
/// # Errors
///
/// Returns [`MetricError::Parse`] describing the first malformed line.
pub fn parse_families(input: &str) -> Result<Vec<FamilySnapshot>, MetricError> {
    Ok(parse_text(input)?.to_families())
}

/// [`parse_families`] with [`ParseLimits`] enforced — the entry point for
/// documents received from the network.
///
/// # Errors
///
/// Returns [`MetricError::Parse`] for the first malformed line or
/// [`MetricError::LimitExceeded`] when the document overruns a limit.
pub fn parse_families_bounded(
    input: &str,
    limits: ParseLimits,
) -> Result<Vec<FamilySnapshot>, MetricError> {
    Ok(parse_text_bounded(input, limits)?.to_families())
}

/// Parses a text exposition document.
///
/// # Errors
///
/// Returns [`MetricError::Parse`] describing the first malformed line.
pub fn parse_text(input: &str) -> Result<ParsedExposition, MetricError> {
    parse_text_bounded(input, ParseLimits::unbounded())
}

/// [`parse_text`] with [`ParseLimits`] enforced while the document streams
/// through the parser (a limit trips before the oversized structure is
/// materialised, not after).
///
/// # Errors
///
/// Returns [`MetricError::Parse`] for the first malformed line or
/// [`MetricError::LimitExceeded`] when the document overruns a limit.
pub fn parse_text_bounded(
    input: &str,
    limits: ParseLimits,
) -> Result<ParsedExposition, MetricError> {
    let mut parsed = ParsedExposition::default();
    let mut family_names: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    let note_family = |family_names: &mut std::collections::BTreeSet<String>,
                       name: &str|
     -> Result<(), MetricError> {
        if !family_names.contains(name) {
            if family_names.len() >= limits.max_families {
                return Err(MetricError::LimitExceeded {
                    what: "families",
                    limit: limits.max_families,
                    actual: family_names.len() + 1,
                });
            }
            family_names.insert(name.to_string());
        }
        Ok(())
    };
    for (idx, raw_line) in input.lines().enumerate() {
        let line_no = idx + 1;
        if raw_line.len() > limits.max_line_bytes {
            return Err(MetricError::LimitExceeded {
                what: "line bytes",
                limit: limits.max_line_bytes,
                actual: raw_line.len(),
            });
        }
        let line = raw_line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.splitn(2, ' ');
            let name = parts.next().unwrap_or_default().to_string();
            let kind_token = parts.next().unwrap_or_default().trim();
            let kind = MetricKind::from_str_token(kind_token).ok_or(MetricError::Parse {
                line: line_no,
                message: format!("unknown metric type {kind_token:?}"),
            })?;
            note_family(&mut family_names, &name)?;
            parsed.types.insert(name, kind);
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let mut parts = rest.splitn(2, ' ');
            let name = parts.next().unwrap_or_default().to_string();
            let help = unescape_help(parts.next().unwrap_or_default());
            note_family(&mut family_names, &name)?;
            parsed.help.insert(name, help);
            continue;
        }
        if line.starts_with('#') {
            // Other comments are ignored.
            continue;
        }
        if parsed.samples.len() >= limits.max_samples {
            return Err(MetricError::LimitExceeded {
                what: "samples",
                limit: limits.max_samples,
                actual: parsed.samples.len() + 1,
            });
        }
        let sample = parse_sample_line(line, line_no)?;
        note_family(&mut family_names, &sample.name)?;
        parsed.samples.push(sample);
    }
    Ok(parsed)
}

fn parse_sample_line(line: &str, line_no: usize) -> Result<Sample, MetricError> {
    let err = |message: String| MetricError::Parse { line: line_no, message };

    let (name_and_labels, value_part) = match line.find('{') {
        Some(open) => {
            let close = line.rfind('}').ok_or_else(|| err("missing closing '}'".into()))?;
            if close < open {
                return Err(err("'}' before '{'".into()));
            }
            (&line[..close + 1], line[close + 1..].trim())
        }
        None => {
            let mut split = line.splitn(2, char::is_whitespace);
            let name = split.next().unwrap_or_default();
            let rest = split.next().unwrap_or_default().trim();
            (&line[..name.len()], rest)
        }
    };

    let (name, labels) = match name_and_labels.find('{') {
        Some(open) => {
            let name = &name_and_labels[..open];
            let labels_str = &name_and_labels[open + 1..name_and_labels.len() - 1];
            (name, parse_labels(labels_str, line_no)?)
        }
        None => (name_and_labels, Labels::new()),
    };

    if name.is_empty() {
        return Err(err("empty metric name".into()));
    }

    let mut value_fields = value_part.split_whitespace();
    let value_str = value_fields.next().ok_or_else(|| err("missing sample value".into()))?;
    let value = parse_value(value_str).ok_or_else(|| err(format!("bad value {value_str:?}")))?;
    let timestamp_ms = match value_fields.next() {
        Some(ts) => Some(ts.parse::<u64>().map_err(|_| err(format!("bad timestamp {ts:?}")))?),
        None => None,
    };
    if value_fields.next().is_some() {
        return Err(err("trailing garbage after timestamp".into()));
    }

    Ok(Sample { name: name.to_string(), labels, value, timestamp_ms })
}

fn parse_value(s: &str) -> Option<f64> {
    match s {
        "NaN" => Some(f64::NAN),
        "+Inf" | "Inf" => Some(f64::INFINITY),
        "-Inf" => Some(f64::NEG_INFINITY),
        other => other.parse().ok(),
    }
}

fn parse_labels(s: &str, line_no: usize) -> Result<Labels, MetricError> {
    let err = |message: String| MetricError::Parse { line: line_no, message };
    let mut labels = Labels::new();
    let mut rest = s.trim();
    while !rest.is_empty() {
        let eq =
            rest.find('=').ok_or_else(|| err(format!("missing '=' in labels near {rest:?}")))?;
        let key = rest[..eq].trim();
        let after_eq = rest[eq + 1..].trim_start();
        if !after_eq.starts_with('"') {
            return Err(err(format!("label value for {key:?} not quoted")));
        }
        // Find the closing quote, skipping escaped quotes.
        let bytes = after_eq.as_bytes();
        let mut i = 1;
        let mut escaped = false;
        let mut end = None;
        while i < bytes.len() {
            let c = bytes[i] as char;
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                end = Some(i);
                break;
            }
            i += 1;
        }
        let end = end.ok_or_else(|| err(format!("unterminated label value for {key:?}")))?;
        let raw_value = &after_eq[1..end];
        labels.insert(key, unescape_label_value(raw_value));
        rest = after_eq[end + 1..].trim_start();
        if let Some(stripped) = rest.strip_prefix(',') {
            rest = stripped.trim_start();
        } else if !rest.is_empty() {
            return Err(err(format!("expected ',' between labels near {rest:?}")));
        }
    }
    Ok(labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;
    use crate::snapshot::{MetricPoint, PointValue};

    fn sample_registry() -> Registry {
        let r = Registry::new();
        let c = r.counter_family("teemon_syscalls_total", "System calls observed");
        c.with(&Labels::from_pairs([("syscall", "read")])).inc_by(42.0);
        c.with(&Labels::from_pairs([("syscall", "clock_gettime")])).inc_by(370_000.0);
        let g = r.gauge_family("sgx_nr_free_pages", "Free EPC pages");
        g.default_instance().set(23014.0);
        let h = r.histogram_family("scrape_duration_seconds", "Scrape time", vec![0.01, 0.1, 1.0]);
        h.default_instance().observe(0.05);
        r
    }

    #[test]
    fn encode_contains_metadata_and_samples() {
        let text = encode_text(&sample_registry().gather());
        assert!(text.contains("# HELP teemon_syscalls_total System calls observed"));
        assert!(text.contains("# TYPE teemon_syscalls_total counter"));
        assert!(text.contains("teemon_syscalls_total{syscall=\"read\"} 42"));
        assert!(text.contains("sgx_nr_free_pages 23014"));
        assert!(text.contains("scrape_duration_seconds_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("scrape_duration_seconds_count 1"));
    }

    #[test]
    fn encode_parse_round_trip_preserves_samples() {
        let families = sample_registry().gather();
        let text = encode_text(&families);
        let parsed = parse_text(&text).unwrap();
        assert_eq!(
            parsed.value(
                "teemon_syscalls_total",
                &Labels::from_pairs([("syscall", "clock_gettime")])
            ),
            Some(370_000.0)
        );
        assert_eq!(parsed.types.get("sgx_nr_free_pages"), Some(&MetricKind::Gauge));
        assert_eq!(
            parsed.help.get("teemon_syscalls_total").map(String::as_str),
            Some("System calls observed")
        );
        assert_eq!(parsed.total("teemon_syscalls_total"), 370_042.0);
    }

    #[test]
    fn parse_handles_timestamps_and_specials() {
        let doc = "\
# TYPE up gauge
up{job=\"sgx_exporter\"} 1 1607731200000
temp NaN
pressure +Inf
vacuum -Inf
";
        let parsed = parse_text(doc).unwrap();
        let up = &parsed.samples[0];
        assert_eq!(up.timestamp_ms, Some(1_607_731_200_000));
        assert!(parsed.samples[1].value.is_nan());
        assert_eq!(parsed.samples[2].value, f64::INFINITY);
        assert_eq!(parsed.samples[3].value, f64::NEG_INFINITY);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse_text("metric_without_value").is_err());
        assert!(parse_text("name{unclosed=\"x} 1").is_err());
        assert!(parse_text("name{a=\"1\"} not_a_number").is_err());
        assert!(parse_text("name 1 2 3").is_err());
        assert!(parse_text("# TYPE foo wat").is_err());
        assert!(parse_text("name{a=1} 5").is_err());
    }

    #[test]
    fn parse_ignores_blank_lines_and_comments() {
        let parsed = parse_text("\n# just a comment\n\nfoo 1\n").unwrap();
        assert_eq!(parsed.samples.len(), 1);
    }

    #[test]
    fn label_values_with_escapes_round_trip() {
        let mut labels = Labels::new();
        labels.insert("path", "C:\\weird\"dir\nname");
        let fam = FamilySnapshot::new("files_total", "", MetricKind::Counter)
            .with_point(MetricPoint::new(labels.clone(), PointValue::Counter(1.0)));
        let text = encode_text(&[fam]);
        let parsed = parse_text(&text).unwrap();
        assert_eq!(parsed.samples[0].labels, labels);
    }

    #[test]
    fn bounded_parse_rejects_oversized_documents_instead_of_truncating() {
        let limits = ParseLimits { max_line_bytes: 64, max_samples: 4, max_families: 3 };
        // A line over the byte limit.
        let long_line = format!("m{{v=\"{}\"}} 1\n", "x".repeat(128));
        assert_eq!(
            parse_text_bounded(&long_line, limits),
            Err(MetricError::LimitExceeded { what: "line bytes", limit: 64, actual: 137 })
        );
        // One sample over the sample limit: the parse fails, nothing is kept.
        let many = "a 1\na 2\na 3\na 4\na 5\n";
        assert_eq!(
            parse_text_bounded(many, limits),
            Err(MetricError::LimitExceeded { what: "samples", limit: 4, actual: 5 })
        );
        // Distinct family names over the family limit (TYPE lines count too).
        let families = "# TYPE a counter\n# TYPE b counter\n# TYPE c counter\nd 1\n";
        assert_eq!(
            parse_text_bounded(families, limits),
            Err(MetricError::LimitExceeded { what: "families", limit: 3, actual: 4 })
        );
        // Within limits the bounded parse equals the unbounded one.
        let ok = "# TYPE a counter\na 1\na 2\nb 3\n";
        assert_eq!(parse_text_bounded(ok, limits), Ok(parse_text(ok).unwrap()));
        assert_eq!(parse_families_bounded(ok, limits), Ok(parse_families(ok).unwrap()));
    }

    #[test]
    fn network_limits_pass_healthy_exporter_documents() {
        let text = encode_text(&sample_registry().gather());
        let bounded = parse_text_bounded(&text, ParseLimits::network()).unwrap();
        assert_eq!(bounded, parse_text(&text).unwrap());
    }

    #[test]
    fn empty_labels_parse_as_bare_name() {
        let parsed = parse_text("plain_metric 3.25\n").unwrap();
        assert_eq!(parsed.samples[0].name, "plain_metric");
        assert!(parsed.samples[0].labels.is_empty());
        assert_eq!(parsed.samples[0].value, 3.25);
    }

    proptest::proptest! {
        #[test]
        fn prop_counter_round_trip(value in 0.0f64..1e12, syscall in "[a-z_]{1,12}") {
            let r = Registry::new();
            let c = r.counter_family("prop_total", "prop");
            c.with(&Labels::from_pairs([("syscall", syscall.clone())])).inc_by(value);
            let text = encode_text(&r.gather());
            let parsed = parse_text(&text).unwrap();
            let got = parsed
                .value("prop_total", &Labels::from_pairs([("syscall", syscall)]))
                .unwrap();
            let round_trip_error = (got - value).abs();
            proptest::prop_assert!(round_trip_error <= value.abs() * 1e-12 + 1e-12);
        }

        #[test]
        fn prop_label_values_round_trip(value in "[ -~]{0,24}") {
            let mut labels = Labels::new();
            labels.insert("v", value.clone());
            let fam = FamilySnapshot::new("m", "", MetricKind::Gauge)
                .with_point(MetricPoint::new(labels.clone(), PointValue::Gauge(1.0)));
            let parsed = parse_text(&encode_text(&[fam])).unwrap();
            proptest::prop_assert_eq!(parsed.samples[0].labels.get("v"), Some(value.as_str()));
        }
    }
}
