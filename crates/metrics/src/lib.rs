//! Metric primitives for the TEEMon monitoring framework.
//!
//! This crate provides the building blocks shared by every other TEEMon
//! component:
//!
//! * [`Counter`], [`Gauge`], [`Histogram`] and [`Summary`] metric values,
//! * [`Labels`] — validated, order-normalised label sets,
//! * [`MetricFamily`] and [`Registry`] — grouping of metric instances and the
//!   gathering machinery used by exporters (the PME component of the paper),
//! * [`Collector`] — the **typed scrape contract**: exporters hand the
//!   aggregation component (PMAG) structured [`FamilySnapshot`]s directly,
//!   with no text round-trip on the in-process path,
//! * [`series_hash`] / [`SeriesKey`] — stable structural identity of wire
//!   series over borrowed snapshot data, the foundation of the aggregator's
//!   per-target scrape cache (zero allocation on a steady-state hit),
//! * [`encode_text`](exposition::encode_text) /
//!   [`parse_families`](exposition::parse_families) — the OpenMetrics-style
//!   text exposition format, kept as an explicit edge adapter for external
//!   producers and consumers of the wire format.
//!
//! The paper's exporters publish their measurements "in the standard
//! text-based format as specified by the OpenMetrics project" (§4) because
//! exporters and Prometheus run as separate processes there; in this
//! in-process reproduction the same data flows as typed snapshots and the
//! text format only appears at the edges.
//!
//! # Example
//!
//! ```
//! use teemon_metrics::{Collector, Labels, Registry, RegistryCollector, exposition};
//!
//! let registry = Registry::new();
//! let syscalls = registry.counter_family("teemon_syscalls_total", "System calls observed");
//! syscalls.with(&Labels::from_pairs([("syscall", "read")])).inc_by(42.0);
//!
//! // The typed scrape path: structured snapshots, no text in between.
//! let collector = RegistryCollector::new("custom", registry);
//! let families = collector.collect().unwrap();
//! assert_eq!(families[0].name, "teemon_syscalls_total");
//! assert_eq!(families[0].total(), 42.0);
//!
//! // The text exposition stays available as an edge adapter and round-trips.
//! let text = exposition::encode_text(&families);
//! assert!(text.contains("teemon_syscalls_total{syscall=\"read\"} 42"));
//! assert_eq!(exposition::parse_families(&text).unwrap(), families);
//! ```

#![warn(missing_docs)]

pub mod collector;
pub mod error;
pub mod exposition;
pub mod family;
pub mod identity;
pub mod label;
pub mod registry;
pub mod snapshot;
pub mod value;

pub use collector::{CollectError, Collector, RegistryCollector};
pub use error::MetricError;
pub use family::{CounterFamily, GaugeFamily, HistogramFamily, MetricFamily, SummaryFamily};
pub use identity::{series_hash, SeriesKey};
pub use label::{LabelName, Labels, MetricName};
pub use registry::{Registry, SnapshotSource};
pub use snapshot::{
    format_bound, merge_families, FamilySnapshot, MetricKind, MetricPoint, PointValue, Sample,
};
pub use value::{Counter, Gauge, Histogram, HistogramSnapshot, Summary, SummarySnapshot};
