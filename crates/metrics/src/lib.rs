//! Metric primitives for the TEEMon monitoring framework.
//!
//! This crate provides the building blocks shared by every other TEEMon
//! component:
//!
//! * [`Counter`], [`Gauge`], [`Histogram`] and [`Summary`] metric values,
//! * [`Labels`] — validated, order-normalised label sets,
//! * [`MetricFamily`] and [`Registry`] — grouping of metric instances and the
//!   collection interface used by exporters (the PME component of the paper),
//! * [`encode_text`](exposition::encode_text) /
//!   [`parse_text`](exposition::parse_text) — the OpenMetrics-style text
//!   exposition format that the aggregation component (PMAG) scrapes.
//!
//! The paper's exporters publish their measurements "in the standard
//! text-based format as specified by the OpenMetrics project" (§4); this crate
//! is the Rust equivalent of that contract.
//!
//! # Example
//!
//! ```
//! use teemon_metrics::{Registry, Labels, exposition};
//!
//! let registry = Registry::new();
//! let syscalls = registry.counter_family("teemon_syscalls_total", "System calls observed");
//! syscalls.with(&Labels::from_pairs([("syscall", "read")])).inc_by(42.0);
//!
//! let text = exposition::encode_text(&registry.gather());
//! assert!(text.contains("teemon_syscalls_total{syscall=\"read\"} 42"));
//! ```

#![warn(missing_docs)]

pub mod error;
pub mod exposition;
pub mod family;
pub mod label;
pub mod registry;
pub mod snapshot;
pub mod value;

pub use error::MetricError;
pub use family::{CounterFamily, GaugeFamily, HistogramFamily, MetricFamily, SummaryFamily};
pub use label::{LabelName, Labels, MetricName};
pub use registry::{Collector, Registry};
pub use snapshot::{FamilySnapshot, MetricKind, MetricPoint, PointValue, Sample};
pub use value::{Counter, Gauge, Histogram, HistogramSnapshot, Summary, SummarySnapshot};
