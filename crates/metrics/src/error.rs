//! Error types for metric construction and parsing.

use std::fmt;

/// Errors produced while constructing, registering or parsing metrics.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricError {
    /// A metric name did not match `[a-zA-Z_:][a-zA-Z0-9_:]*`.
    InvalidMetricName(String),
    /// A label name did not match `[a-zA-Z_][a-zA-Z0-9_]*` or used a reserved prefix.
    InvalidLabelName(String),
    /// A metric family with the same name but a different kind or help text
    /// is already registered.
    AlreadyRegistered(String),
    /// A counter was decremented or incremented by a negative amount.
    NegativeCounterIncrement(f64),
    /// Histogram bucket boundaries were empty or not strictly increasing.
    InvalidBuckets(String),
    /// A summary quantile was outside `[0, 1]`.
    InvalidQuantile(f64),
    /// The text exposition parser encountered a malformed line.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Human readable description of the problem.
        message: String,
    },
    /// An inbound exposition document exceeded a parse limit.  Raised
    /// instead of silently truncating: the document may come from an
    /// untrusted network peer and a partial parse would mis-report the
    /// target as healthy.
    LimitExceeded {
        /// Which limit tripped: `line bytes`, `samples` or `families`.
        what: &'static str,
        /// The configured limit.
        limit: usize,
        /// The observed size that exceeded it.
        actual: usize,
    },
}

impl fmt::Display for MetricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricError::InvalidMetricName(name) => {
                write!(f, "invalid metric name: {name:?}")
            }
            MetricError::InvalidLabelName(name) => {
                write!(f, "invalid label name: {name:?}")
            }
            MetricError::AlreadyRegistered(name) => {
                write!(f, "metric family {name:?} already registered with different metadata")
            }
            MetricError::NegativeCounterIncrement(v) => {
                write!(f, "counters may only increase, got increment {v}")
            }
            MetricError::InvalidBuckets(msg) => write!(f, "invalid histogram buckets: {msg}"),
            MetricError::InvalidQuantile(q) => write!(f, "quantile {q} outside [0, 1]"),
            MetricError::Parse { line, message } => {
                write!(f, "exposition parse error at line {line}: {message}")
            }
            MetricError::LimitExceeded { what, limit, actual } => {
                write!(f, "exposition document over the {what} limit: {actual} > {limit}")
            }
        }
    }
}

impl std::error::Error for MetricError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = MetricError::InvalidMetricName("0bad".into());
        assert!(e.to_string().contains("0bad"));
        let e = MetricError::Parse { line: 7, message: "boom".into() };
        assert!(e.to_string().contains("line 7"));
        assert!(e.to_string().contains("boom"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_e: &E) {}
        assert_err(&MetricError::InvalidQuantile(2.0));
    }
}
