//! Threshold rules and anomaly reports.

use serde::{Deserialize, Serialize};
use teemon_tsdb::Selector;

use crate::stats::WindowStats;

/// How a window statistic is compared against the threshold value.
///
/// This fixed comparison set predates TeeQL and is kept for the sliding
/// window analytics of [`crate::Analyzer`]; for alerting, prefer TeeQL alert
/// rules (`teemon_query::AlertRule`), which express these comparisons — and
/// arbitrarily richer ones — as query expressions.
/// `teemon_query::compile_threshold` converts any [`Threshold`] into the
/// equivalent TeeQL expression (e.g. `MeanAbove(v)` becomes
/// `avg_over_time(sel[w]) > v`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ThresholdKind {
    /// Fire when the window mean exceeds the value.
    MeanAbove(f64),
    /// Fire when the window mean falls below the value.
    MeanBelow(f64),
    /// Fire when the window maximum exceeds the value.
    MaxAbove(f64),
    /// Fire when the window median exceeds the value.
    MedianAbove(f64),
}

/// Severity attached to an anomaly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    /// Informational — worth plotting, not worth waking anyone.
    Info,
    /// Warning — a dashboard highlight.
    Warning,
    /// Critical — alert/logging channels fire.
    Critical,
}

/// A user-defined threshold rule.
///
/// The paper identifies thresholds "using benchmarking with real-world
/// SGX-based applications"; [`Threshold::sgx_defaults`] encodes that set for
/// the simulated substrate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Threshold {
    /// Rule name (appears in alerts).
    pub name: String,
    /// Series this rule applies to.
    pub selector: Selector,
    /// Comparison performed on each window.
    pub kind: ThresholdKind,
    /// Severity of the resulting anomaly.
    pub severity: Severity,
    /// Human-oriented description of the likely root cause.
    pub hint: String,
}

impl Threshold {
    /// Creates a threshold rule.
    pub fn new(
        name: impl Into<String>,
        selector: Selector,
        kind: ThresholdKind,
        severity: Severity,
        hint: impl Into<String>,
    ) -> Self {
        Self { name: name.into(), selector, kind, severity, hint: hint.into() }
    }

    /// The default SGX rule set: high EPC eviction rate, exhausted free pages,
    /// syscall floods and excessive context switches.
    pub fn sgx_defaults() -> Vec<Threshold> {
        vec![
            Threshold::new(
                "epc_evictions_high",
                Selector::metric("sgx_pages_evicted_per_second"),
                ThresholdKind::MeanAbove(1_000.0),
                Severity::Warning,
                "working set exceeds the EPC; expect paging-dominated latency",
            ),
            Threshold::new(
                "epc_free_pages_low",
                Selector::metric("sgx_nr_free_pages"),
                ThresholdKind::MeanBelow(512.0),
                Severity::Warning,
                "EPC nearly exhausted; ksgxswapd will start evicting",
            ),
            Threshold::new(
                "syscall_flood",
                Selector::metric("teemon_syscalls_per_second"),
                ThresholdKind::MeanAbove(100_000.0),
                Severity::Warning,
                "system calls dominate; every call forces an enclave exit",
            ),
            Threshold::new(
                "context_switch_storm",
                Selector::metric("teemon_context_switches_per_second"),
                ThresholdKind::MeanAbove(50_000.0),
                Severity::Critical,
                "host context switches excessive; check framework threading",
            ),
        ]
    }

    /// Evaluates the rule against one window's statistics.
    pub fn fires_on(&self, window: &WindowStats) -> bool {
        match self.kind {
            ThresholdKind::MeanAbove(v) => window.summary.mean > v,
            ThresholdKind::MeanBelow(v) => window.summary.mean < v,
            ThresholdKind::MaxAbove(v) => window.summary.max > v,
            ThresholdKind::MedianAbove(v) => window.summary.median > v,
        }
    }
}

/// An anomaly produced by a fired threshold rule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Anomaly {
    /// The rule that fired.
    pub rule: String,
    /// Severity of the rule.
    pub severity: Severity,
    /// Metric the rule matched.
    pub metric: String,
    /// Series labels (rendered) the rule matched.
    pub series: String,
    /// Window that triggered the rule.
    pub window: WindowStats,
    /// The rule's root-cause hint.
    pub hint: String,
}

/// Evaluates a set of threshold rules against windowed series data.
#[derive(Debug, Clone, Default)]
pub struct AnomalyDetector {
    rules: Vec<Threshold>,
}

impl AnomalyDetector {
    /// Creates a detector with no rules.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a detector with the default SGX rule set.
    pub fn with_sgx_defaults() -> Self {
        Self { rules: Threshold::sgx_defaults() }
    }

    /// Adds a rule.
    pub fn add_rule(&mut self, rule: Threshold) {
        self.rules.push(rule);
    }

    /// The configured rules.
    pub fn rules(&self) -> &[Threshold] {
        &self.rules
    }

    /// Evaluates every rule against a series' windows.  `metric` and `series`
    /// describe the series the windows came from; only rules whose selector
    /// matches are evaluated.
    pub fn evaluate(
        &self,
        metric: &str,
        labels: &teemon_metrics::Labels,
        windows: &[WindowStats],
    ) -> Vec<Anomaly> {
        let mut anomalies = Vec::new();
        for rule in &self.rules {
            if !rule.selector.matches(metric, labels) {
                continue;
            }
            for window in windows {
                if rule.fires_on(window) {
                    anomalies.push(Anomaly {
                        rule: rule.name.clone(),
                        severity: rule.severity,
                        metric: metric.to_string(),
                        series: labels.to_string(),
                        window: *window,
                        hint: rule.hint.clone(),
                    });
                }
            }
        }
        anomalies
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::BoxPlot;
    use teemon_metrics::Labels;

    fn window(mean: f64, max: f64) -> WindowStats {
        WindowStats {
            start_ms: 0,
            end_ms: 60_000,
            summary: BoxPlot {
                min: 0.0,
                q1: mean / 2.0,
                median: mean,
                q3: mean * 1.5,
                max,
                mean,
                count: 60,
            },
        }
    }

    #[test]
    fn threshold_kinds_fire_correctly() {
        let w = window(100.0, 500.0);
        let sel = Selector::metric("m");
        assert!(Threshold::new(
            "a",
            sel.clone(),
            ThresholdKind::MeanAbove(50.0),
            Severity::Info,
            ""
        )
        .fires_on(&w));
        assert!(!Threshold::new(
            "b",
            sel.clone(),
            ThresholdKind::MeanAbove(150.0),
            Severity::Info,
            ""
        )
        .fires_on(&w));
        assert!(Threshold::new(
            "c",
            sel.clone(),
            ThresholdKind::MeanBelow(150.0),
            Severity::Info,
            ""
        )
        .fires_on(&w));
        assert!(Threshold::new(
            "d",
            sel.clone(),
            ThresholdKind::MaxAbove(400.0),
            Severity::Info,
            ""
        )
        .fires_on(&w));
        assert!(Threshold::new("e", sel, ThresholdKind::MedianAbove(99.0), Severity::Info, "")
            .fires_on(&w));
    }

    #[test]
    fn detector_matches_rules_by_selector() {
        let detector = AnomalyDetector::with_sgx_defaults();
        let labels = Labels::from_pairs([("node", "n1")]);
        // High eviction rate fires the EPC rule.
        let anomalies =
            detector.evaluate("sgx_pages_evicted_per_second", &labels, &[window(5_000.0, 9_000.0)]);
        assert_eq!(anomalies.len(), 1);
        assert_eq!(anomalies[0].rule, "epc_evictions_high");
        assert_eq!(anomalies[0].severity, Severity::Warning);
        assert!(anomalies[0].hint.contains("EPC"));

        // The same windows on an unrelated metric fire nothing.
        assert!(detector
            .evaluate("unrelated_metric", &labels, &[window(5_000.0, 9_000.0)])
            .is_empty());

        // Low free pages fires the MeanBelow rule.
        let low = detector.evaluate("sgx_nr_free_pages", &labels, &[window(100.0, 200.0)]);
        assert_eq!(low.len(), 1);
        assert_eq!(low[0].rule, "epc_free_pages_low");
    }

    #[test]
    fn custom_rules_can_be_added() {
        let mut detector = AnomalyDetector::new();
        assert!(detector.rules().is_empty());
        detector.add_rule(Threshold::new(
            "latency_high",
            Selector::metric("latency_ms").with_label("app", "redis"),
            ThresholdKind::MedianAbove(10.0),
            Severity::Critical,
            "latency above SLO",
        ));
        let redis = Labels::from_pairs([("app", "redis")]);
        let nginx = Labels::from_pairs([("app", "nginx")]);
        assert_eq!(detector.evaluate("latency_ms", &redis, &[window(20.0, 40.0)]).len(), 1);
        assert!(detector.evaluate("latency_ms", &nginx, &[window(20.0, 40.0)]).is_empty());
    }

    #[test]
    fn severity_orders() {
        assert!(Severity::Critical > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
    }
}
