//! The periodic analyzer and bottleneck heuristics.
//!
//! Beyond raw anomalies, PMAN "has the ability to aid the identification of
//! bottlenecks in applications running inside TEE enclaves" (§4).  The
//! heuristics here encode the two diagnoses the paper's evaluation actually
//! makes:
//!
//! * §6.4: `clock_gettime`/`futex` dominating `read`/`write` indicates that
//!   timer handling forces unnecessary enclave exits,
//! * §6.5: a high EPC eviction rate indicates the working set exceeds the EPC,
//!   and an excessive host context-switch rate indicates framework threading
//!   problems (Graphene-SGX).

use serde::{Deserialize, Serialize};
use teemon_tsdb::{query, Selector, TimeSeriesDb};

use crate::anomaly::{Anomaly, AnomalyDetector};
use crate::stats::SlidingWindow;

/// The kinds of bottleneck the analyzer can diagnose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BottleneckKind {
    /// A cheap syscall (e.g. `clock_gettime`) dominates I/O syscalls, forcing
    /// needless enclave exits.
    SyscallDominance,
    /// The EPC is oversubscribed: evictions and reclaims dominate.
    EpcThrashing,
    /// Host context switches are excessive relative to work done.
    ContextSwitchStorm,
}

/// One diagnosed bottleneck.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BottleneckFinding {
    /// The kind of bottleneck.
    pub kind: BottleneckKind,
    /// Human-readable explanation with the supporting numbers.
    pub explanation: String,
    /// The metric values supporting the finding.
    pub evidence: Vec<(String, f64)>,
}

/// Analyzer configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnalyzerConfig {
    /// Sliding window used for threshold evaluation.
    pub window: SlidingWindow,
    /// Ratio of a single syscall's share above which it is considered
    /// dominant (e.g. 0.5 = more than half of all syscalls).
    pub syscall_dominance_ratio: f64,
    /// Evicted pages per 100 requests (or per scrape when request counts are
    /// unavailable) above which EPC thrashing is reported.
    pub epc_eviction_threshold: f64,
    /// Host context switches per observed request above which a storm is
    /// reported.
    pub context_switch_ratio: f64,
}

impl Default for AnalyzerConfig {
    fn default() -> Self {
        Self {
            window: SlidingWindow::default(),
            syscall_dominance_ratio: 0.5,
            epc_eviction_threshold: 50.0,
            context_switch_ratio: 2.0,
        }
    }
}

/// The periodic analysis loop over the aggregated data.
#[derive(Debug, Clone)]
pub struct Analyzer {
    db: TimeSeriesDb,
    detector: AnomalyDetector,
    config: AnalyzerConfig,
}

impl Analyzer {
    /// Creates an analyzer over `db` with the default SGX thresholds.
    pub fn new(db: TimeSeriesDb) -> Self {
        Self {
            db,
            detector: AnomalyDetector::with_sgx_defaults(),
            config: AnalyzerConfig::default(),
        }
    }

    /// Replaces the anomaly detector (custom rules).
    #[must_use]
    pub fn with_detector(mut self, detector: AnomalyDetector) -> Self {
        self.detector = detector;
        self
    }

    /// Replaces the configuration.
    #[must_use]
    pub fn with_config(mut self, config: AnalyzerConfig) -> Self {
        self.config = config;
        self
    }

    /// The underlying database.
    pub fn db(&self) -> &TimeSeriesDb {
        &self.db
    }

    /// Runs threshold-based anomaly detection over every series matching
    /// `selector` within `[start_ms, end_ms]`.
    pub fn detect_anomalies(
        &self,
        selector: &Selector,
        start_ms: u64,
        end_ms: u64,
    ) -> Vec<Anomaly> {
        let mut anomalies = Vec::new();
        for result in self.db.query_range(selector, start_ms, end_ms) {
            let windows = self.config.window.evaluate(&result.points);
            anomalies.extend(self.detector.evaluate(&result.name, &result.labels, &windows));
        }
        anomalies
    }

    /// Diagnoses syscall dominance from the per-syscall counter series
    /// (`metric{syscall=...}` counters) over a time range.
    pub fn diagnose_syscall_mix(
        &self,
        metric: &str,
        start_ms: u64,
        end_ms: u64,
    ) -> Option<BottleneckFinding> {
        let results = self.db.query_range(&Selector::metric(metric), start_ms, end_ms);
        if results.is_empty() {
            return None;
        }
        let mut per_syscall: Vec<(String, f64)> = results
            .iter()
            .filter_map(|r| {
                let syscall = r.labels.get("syscall")?.to_string();
                let total =
                    query::increase(&r.points).or_else(|| r.points.last().map(|(_, v)| *v))?;
                Some((syscall, total))
            })
            .collect();
        if per_syscall.is_empty() {
            return None;
        }
        // Merge duplicate syscall labels across nodes/instances.
        per_syscall.sort_by(|a, b| a.0.cmp(&b.0));
        let mut merged: Vec<(String, f64)> = Vec::new();
        for (name, value) in per_syscall {
            match merged.last_mut() {
                Some((last, total)) if *last == name => *total += value,
                _ => merged.push((name, value)),
            }
        }
        let total: f64 = merged.iter().map(|(_, v)| v).sum();
        if total <= 0.0 {
            return None;
        }
        merged.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        let (dominant, count) = merged[0].clone();
        let io: f64 = merged
            .iter()
            .filter(|(name, _)| matches!(name.as_str(), "read" | "write" | "recvfrom" | "sendto"))
            .map(|(_, v)| v)
            .sum();
        let share = count / total;
        let io_bound = matches!(dominant.as_str(), "read" | "write" | "recvfrom" | "sendto");
        if share >= self.config.syscall_dominance_ratio && !io_bound {
            Some(BottleneckFinding {
                kind: BottleneckKind::SyscallDominance,
                explanation: format!(
                    "{dominant} accounts for {:.0}% of system calls ({count:.0} calls vs {io:.0} I/O calls); \
                     every call triggers an expensive enclave exit — consider handling it inside the enclave",
                    share * 100.0
                ),
                evidence: merged,
            })
        } else {
            None
        }
    }

    /// Diagnoses EPC thrashing from the eviction counter series.
    pub fn diagnose_epc(
        &self,
        evicted_metric: &str,
        requests: f64,
        start_ms: u64,
        end_ms: u64,
    ) -> Option<BottleneckFinding> {
        let results = self.db.query_range(&Selector::metric(evicted_metric), start_ms, end_ms);
        let evicted: f64 = results.iter().filter_map(|r| query::increase(&r.points)).sum();
        if evicted <= 0.0 {
            return None;
        }
        let per_100 = if requests > 0.0 { evicted * 100.0 / requests } else { evicted };
        if per_100 >= self.config.epc_eviction_threshold {
            Some(BottleneckFinding {
                kind: BottleneckKind::EpcThrashing,
                explanation: format!(
                    "{per_100:.1} EPC pages evicted per 100 requests — the working set does not fit \
                     the ~94 MiB EPC; expect paging-dominated latency"
                ),
                evidence: vec![("evicted_pages".into(), evicted), ("per_100_requests".into(), per_100)],
            })
        } else {
            None
        }
    }

    /// Diagnoses a context-switch storm from host-wide switch counters.
    pub fn diagnose_context_switches(
        &self,
        switch_metric: &str,
        requests: f64,
        start_ms: u64,
        end_ms: u64,
    ) -> Option<BottleneckFinding> {
        let selector = Selector::metric(switch_metric).with_label("scope", "host_total");
        let results = self.db.query_range(&selector, start_ms, end_ms);
        let switches: f64 = results.iter().filter_map(|r| query::increase(&r.points)).sum();
        if switches <= 0.0 || requests <= 0.0 {
            return None;
        }
        let per_request = switches / requests;
        if per_request >= self.config.context_switch_ratio {
            Some(BottleneckFinding {
                kind: BottleneckKind::ContextSwitchStorm,
                explanation: format!(
                    "{per_request:.1} host context switches per request — the framework's host \
                     interaction (synchronous exits, helper threads) dominates"
                ),
                evidence: vec![
                    ("context_switches".into(), switches),
                    ("per_request".into(), per_request),
                ],
            })
        } else {
            None
        }
    }

    /// Runs all bottleneck heuristics and returns every finding.
    pub fn diagnose_all(
        &self,
        requests: f64,
        start_ms: u64,
        end_ms: u64,
    ) -> Vec<BottleneckFinding> {
        let mut findings = Vec::new();
        if let Some(f) = self.diagnose_syscall_mix("teemon_syscalls_total", start_ms, end_ms) {
            findings.push(f);
        }
        if let Some(f) = self.diagnose_epc("sgx_pages_evicted_total", requests, start_ms, end_ms) {
            findings.push(f);
        }
        if let Some(f) = self.diagnose_context_switches(
            "teemon_context_switches_total",
            requests,
            start_ms,
            end_ms,
        ) {
            findings.push(f);
        }
        findings
    }
}

/// Helper used by tests and examples to render findings.
pub fn summarize(findings: &[BottleneckFinding]) -> String {
    if findings.is_empty() {
        return "no bottlenecks detected".to_string();
    }
    findings
        .iter()
        .map(|f| format!("[{:?}] {}", f.kind, f.explanation))
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use teemon_metrics::Labels;

    fn db_with_syscall_mix(clock: f64, read: f64, write: f64) -> TimeSeriesDb {
        let db = TimeSeriesDb::new();
        for (t, fraction) in [(0u64, 0.0), (60_000u64, 1.0)] {
            db.append(
                "teemon_syscalls_total",
                &Labels::from_pairs([("syscall", "clock_gettime"), ("node", "n1")]),
                t,
                clock * fraction,
            );
            db.append(
                "teemon_syscalls_total",
                &Labels::from_pairs([("syscall", "read"), ("node", "n1")]),
                t,
                read * fraction,
            );
            db.append(
                "teemon_syscalls_total",
                &Labels::from_pairs([("syscall", "write"), ("node", "n1")]),
                t,
                write * fraction,
            );
        }
        db
    }

    #[test]
    fn clock_gettime_dominance_is_detected() {
        // The paper's Figure 6a situation: 370 000 clock_gettime vs tens of
        // reads/writes per second.
        let db = db_with_syscall_mix(370_000.0, 23.0, 23.0);
        let analyzer = Analyzer::new(db);
        let finding = analyzer
            .diagnose_syscall_mix("teemon_syscalls_total", 0, 120_000)
            .expect("dominance should be detected");
        assert_eq!(finding.kind, BottleneckKind::SyscallDominance);
        assert!(finding.explanation.contains("clock_gettime"));
        assert!(finding.explanation.contains("enclave exit"));
    }

    #[test]
    fn balanced_io_mix_is_not_flagged() {
        // Figure 6b: after the fix, reads/writes dominate.
        let db = db_with_syscall_mix(100.0, 3_200.0, 3_200.0);
        let analyzer = Analyzer::new(db);
        assert!(analyzer.diagnose_syscall_mix("teemon_syscalls_total", 0, 120_000).is_none());
    }

    #[test]
    fn epc_thrashing_is_detected_above_threshold() {
        let db = TimeSeriesDb::new();
        db.append("sgx_pages_evicted_total", &Labels::new(), 0, 0.0);
        db.append("sgx_pages_evicted_total", &Labels::new(), 60_000, 13_700.0);
        let analyzer = Analyzer::new(db);
        // 10 000 requests → 137 evicted per 100 requests (the paper's SCONE
        // value at 105 MB / 580 connections).
        let finding =
            analyzer.diagnose_epc("sgx_pages_evicted_total", 10_000.0, 0, 120_000).unwrap();
        assert_eq!(finding.kind, BottleneckKind::EpcThrashing);
        assert!(finding.explanation.contains("94 MiB"));
        // Small databases with no evictions produce no finding.
        let quiet = TimeSeriesDb::new();
        quiet.append("sgx_pages_evicted_total", &Labels::new(), 0, 0.0);
        quiet.append("sgx_pages_evicted_total", &Labels::new(), 60_000, 0.0);
        assert!(Analyzer::new(quiet)
            .diagnose_epc("sgx_pages_evicted_total", 10_000.0, 0, 120_000)
            .is_none());
    }

    #[test]
    fn context_switch_storm_detection() {
        let db = TimeSeriesDb::new();
        let labels = Labels::from_pairs([("scope", "host_total")]);
        db.append("teemon_context_switches_total", &labels, 0, 0.0);
        db.append("teemon_context_switches_total", &labels, 60_000, 30_000.0);
        let analyzer = Analyzer::new(db);
        // 10 000 requests → 3 switches per request → storm (Graphene-like).
        let finding = analyzer
            .diagnose_context_switches("teemon_context_switches_total", 10_000.0, 0, 120_000)
            .unwrap();
        assert_eq!(finding.kind, BottleneckKind::ContextSwitchStorm);
        // 100 000 requests → 0.3 per request → fine (SCONE-like).
        assert!(analyzer
            .diagnose_context_switches("teemon_context_switches_total", 100_000.0, 0, 120_000)
            .is_none());
    }

    #[test]
    fn diagnose_all_combines_findings_and_summarizes() {
        let db = db_with_syscall_mix(500_000.0, 50.0, 50.0);
        db.append("sgx_pages_evicted_total", &Labels::new(), 0, 0.0);
        db.append("sgx_pages_evicted_total", &Labels::new(), 60_000, 20_000.0);
        let analyzer = Analyzer::new(db);
        let findings = analyzer.diagnose_all(10_000.0, 0, 120_000);
        assert!(findings.len() >= 2);
        let summary = summarize(&findings);
        assert!(summary.contains("SyscallDominance"));
        assert!(summary.contains("EpcThrashing"));
        assert_eq!(summarize(&[]), "no bottlenecks detected");
    }

    #[test]
    fn anomaly_detection_over_db_ranges() {
        let db = TimeSeriesDb::new();
        let labels = Labels::from_pairs([("node", "n1")]);
        // Free pages collapse over 10 minutes.
        for minute in 0..10u64 {
            let free = if minute < 5 { 20_000.0 } else { 100.0 };
            db.append("sgx_nr_free_pages", &labels, minute * 60_000, free);
        }
        let analyzer = Analyzer::new(db);
        let anomalies =
            analyzer.detect_anomalies(&Selector::metric("sgx_nr_free_pages"), 0, 700_000);
        assert!(!anomalies.is_empty());
        assert!(anomalies.iter().any(|a| a.rule == "epc_free_pages_low"));
    }
}
