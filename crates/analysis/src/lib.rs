//! PMAN — the Performance Metrics Analysis component.
//!
//! §4: "we design the PMAN component to analyze the aggregated data from the
//! PMAG component in real-time, to identify the bottlenecks or potential
//! anomalies, and to report them to the visualization component … Technically,
//! we make use of threshold-based approaches to detect anomalies … PMAN
//! analyzes the time-series monitoring data using slide window computations,
//! e.g., it processes every minute for the last five minutes of the monitoring
//! data.  In each time window, PMAN not only compares the monitoring data with
//! user-defined thresholds to detect anomalies but also provides a box plot
//! for SGX metrics."
//!
//! This crate provides exactly those pieces:
//!
//! * [`SlidingWindow`] — windowed views over a series,
//! * [`BoxPlot`] — five-number summaries of SGX metrics,
//! * [`Threshold`] / [`AnomalyDetector`] — user-defined threshold rules
//!   evaluated per window, producing [`Anomaly`] reports,
//! * [`Analyzer`] — the periodic analysis loop over a
//!   [`teemon_tsdb::TimeSeriesDb`], including the bottleneck heuristics used
//!   in §6.4/§6.5 (e.g. "`clock_gettime` dominates read/write").

#![warn(missing_docs)]

pub mod anomaly;
pub mod bottleneck;
pub mod stats;

pub use anomaly::{Anomaly, AnomalyDetector, Severity, Threshold, ThresholdKind};
pub use bottleneck::{Analyzer, AnalyzerConfig, BottleneckFinding, BottleneckKind};
pub use stats::{BoxPlot, SlidingWindow, WindowStats};
