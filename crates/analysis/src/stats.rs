//! Sliding windows, window statistics and box plots.

use serde::{Deserialize, Serialize};

/// A five-number summary (plus mean) of a metric over a window — the "box plot
/// for SGX metrics" PMAN provides.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoxPlot {
    /// Minimum value.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum value.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Number of samples summarised.
    pub count: usize,
}

impl BoxPlot {
    /// Computes a box plot from raw values; returns `None` for empty input.
    pub fn from_values(values: &[f64]) -> Option<Self> {
        if values.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = values.iter().copied().filter(|v| !v.is_nan()).collect();
        if sorted.is_empty() {
            return None;
        }
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let q = |p: f64| -> f64 {
            let pos = p * (sorted.len() - 1) as f64;
            let lo = pos.floor() as usize;
            let hi = pos.ceil() as usize;
            if lo == hi {
                sorted[lo]
            } else {
                let w = pos - lo as f64;
                sorted[lo] * (1.0 - w) + sorted[hi] * w
            }
        };
        Some(Self {
            min: sorted[0],
            q1: q(0.25),
            median: q(0.5),
            q3: q(0.75),
            max: *sorted.last().expect("non-empty"),
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
            count: sorted.len(),
        })
    }

    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }

    /// `true` when `value` lies outside the Tukey fences (1.5 × IQR beyond the
    /// quartiles) — a standard box-plot outlier rule.
    pub fn is_outlier(&self, value: f64) -> bool {
        let fence = 1.5 * self.iqr();
        value < self.q1 - fence || value > self.q3 + fence
    }
}

/// Statistics of one evaluated window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WindowStats {
    /// Window start timestamp (ms).
    pub start_ms: u64,
    /// Window end timestamp (ms).
    pub end_ms: u64,
    /// Box-plot summary of the window's values.
    pub summary: BoxPlot,
}

/// A sliding window over `(timestamp_ms, value)` points.
///
/// PMAN's default is a 5-minute window advanced every minute.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlidingWindow {
    /// Window length in milliseconds.
    pub window_ms: u64,
    /// Step between successive window evaluations in milliseconds.
    pub step_ms: u64,
}

impl Default for SlidingWindow {
    fn default() -> Self {
        Self { window_ms: 5 * 60 * 1000, step_ms: 60 * 1000 }
    }
}

impl SlidingWindow {
    /// Creates a window of `window_ms` advanced by `step_ms`.
    pub fn new(window_ms: u64, step_ms: u64) -> Self {
        Self { window_ms: window_ms.max(1), step_ms: step_ms.max(1) }
    }

    /// Evaluates the window over `points`, returning one [`WindowStats`] per
    /// step that contains at least one sample.
    pub fn evaluate(&self, points: &[(u64, f64)]) -> Vec<WindowStats> {
        if points.is_empty() {
            return Vec::new();
        }
        let first = points.first().expect("non-empty").0;
        let last = points.last().expect("non-empty").0;
        let mut out = Vec::new();
        let mut end = first + self.window_ms;
        while end <= last + self.window_ms {
            let start = end.saturating_sub(self.window_ms);
            let values: Vec<f64> =
                points.iter().filter(|(t, _)| *t >= start && *t < end).map(|(_, v)| *v).collect();
            if let Some(summary) = BoxPlot::from_values(&values) {
                out.push(WindowStats { start_ms: start, end_ms: end, summary });
            }
            if end > last {
                break;
            }
            end += self.step_ms;
        }
        out
    }

    /// Evaluates only the most recent window ending at `now_ms`.
    pub fn latest(&self, points: &[(u64, f64)], now_ms: u64) -> Option<WindowStats> {
        let start = now_ms.saturating_sub(self.window_ms);
        let values: Vec<f64> =
            points.iter().filter(|(t, _)| *t >= start && *t <= now_ms).map(|(_, v)| *v).collect();
        BoxPlot::from_values(&values).map(|summary| WindowStats {
            start_ms: start,
            end_ms: now_ms,
            summary,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn box_plot_five_number_summary() {
        let values: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let bp = BoxPlot::from_values(&values).unwrap();
        assert_eq!(bp.min, 1.0);
        assert_eq!(bp.max, 100.0);
        assert!((bp.median - 50.5).abs() < 1e-9);
        assert!((bp.q1 - 25.75).abs() < 1e-9);
        assert!((bp.q3 - 75.25).abs() < 1e-9);
        assert!((bp.mean - 50.5).abs() < 1e-9);
        assert_eq!(bp.count, 100);
        assert!(bp.iqr() > 0.0);
    }

    #[test]
    fn box_plot_rejects_empty_and_nan_only() {
        assert!(BoxPlot::from_values(&[]).is_none());
        assert!(BoxPlot::from_values(&[f64::NAN, f64::NAN]).is_none());
        let single = BoxPlot::from_values(&[7.0]).unwrap();
        assert_eq!(single.min, 7.0);
        assert_eq!(single.max, 7.0);
    }

    #[test]
    fn outlier_detection_uses_tukey_fences() {
        let values: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let bp = BoxPlot::from_values(&values).unwrap();
        assert!(!bp.is_outlier(50.0));
        assert!(!bp.is_outlier(100.0));
        assert!(bp.is_outlier(500.0));
        assert!(bp.is_outlier(-500.0));
    }

    #[test]
    fn sliding_window_evaluates_per_step() {
        // One sample per second for 10 minutes; 5-minute window, 1-minute step.
        let points: Vec<(u64, f64)> =
            (0..600).map(|i| (i as u64 * 1000, (i % 60) as f64)).collect();
        let windows = SlidingWindow::default().evaluate(&points);
        assert!(windows.len() >= 5, "got {} windows", windows.len());
        for w in &windows {
            assert!(w.end_ms - w.start_ms <= 5 * 60 * 1000);
            assert!(w.summary.count > 0);
        }
        // Windows advance monotonically.
        assert!(windows.windows(2).all(|p| p[0].end_ms < p[1].end_ms));
    }

    #[test]
    fn latest_window_covers_recent_samples_only() {
        let points: Vec<(u64, f64)> = (0..100).map(|i| (i as u64 * 1000, i as f64)).collect();
        let window = SlidingWindow::new(10_000, 1_000);
        let latest = window.latest(&points, 99_000).unwrap();
        assert_eq!(latest.start_ms, 89_000);
        assert!(latest.summary.min >= 89.0);
        assert!(window.latest(&points, 1_000_000).is_none(), "stale data must not fill the window");
        assert!(window.latest(&[], 99_000).is_none());
    }

    #[test]
    fn empty_input_evaluates_to_no_windows() {
        assert!(SlidingWindow::default().evaluate(&[]).is_empty());
    }
}
