//! Cardinality defense microbenchmarks (`micro/cardinality`), recorded in
//! `BENCH_cardinality.json`.
//!
//! * `churn_round/{volatile,durable_gc}` — one full churn round (a batch of
//!   brand-new unique-labelled series interned and appended, the previous
//!   round's batch dropped, then `wal_flush`).  The volatile side never
//!   garbage-collects its symbol table — it is the leak baseline — while
//!   the durable side runs the whole lifecycle: WAL symbol deltas, cooling,
//!   the rotation-time sweep, slot reuse.  The delta is the total price of
//!   *not* leaking.
//! * `budget_scrape_round_1k/{off,on}` — one warm steady-state scrape round
//!   with admission budgets detached vs attached (sized to admit
//!   everything).  Budget admission runs entirely in the cold repair path,
//!   so the two must be indistinguishable; this bench is the regression
//!   guard for that claim (`tests/alloc_free_scrape.rs` proves the
//!   allocation half).
//! * `budget_scrape_round_1k/clipping` — the same round with the budget set
//!   to clip half the target's series every round: the steady cost of an
//!   over-budget target that keeps sending (overflow counting + the
//!   roll-up meta-metric).
//!
//! Set `TEEMON_BENCH_SMOKE=1` (as CI does) to shrink sizes for a fast
//! correctness pass.

use std::hint::black_box;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use parking_lot::Mutex;
use teemon_metrics::{FamilySnapshot, Labels, MetricKind, MetricPoint, PointValue};
use teemon_tsdb::{
    CardinalityBudgets, DurabilityOptions, FsyncMode, MetricsEndpoint, ScrapeError,
    ScrapeTargetConfig, Scraper, Selector, TimeSeriesDb, TsdbConfig,
};

fn smoke() -> bool {
    std::env::var_os("TEEMON_BENCH_SMOKE").is_some()
}

fn sample_count() -> usize {
    if smoke() {
        2
    } else {
        20
    }
}

/// Series minted (and dropped) per churn round.
fn churn_batch() -> usize {
    if smoke() {
        32
    } else {
        256
    }
}

/// A scratch directory on tmpfs (falls back to the temp dir when the
/// machine has no /dev/shm), removed on drop.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> Self {
        let base = if PathBuf::from("/dev/shm").is_dir() {
            PathBuf::from("/dev/shm")
        } else {
            std::env::temp_dir()
        };
        let dir = base.join(format!("teemon-bench-card-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Self(dir)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// One churn round: `batch` brand-new unique-labelled series appear (cold
/// path — intern, index, WAL series records), the previous round's batch is
/// dropped (symbol release, cooling), and the round commits.  On the
/// durable side small segments keep the meta log rotating, so the sweep and
/// slot reuse run inside the measured loop.
fn churn_round(db: &TimeSeriesDb, round: u64, batch: usize) {
    let now = round * 5_000;
    let tag = format!("r{round}");
    for i in 0..batch {
        let labels = Labels::from_pairs([("round", tag.as_str()), ("i", format!("{i}").as_str())]);
        db.append("teemon_churn_bench", &labels, now, i as f64);
    }
    if round > 1 {
        let gone = format!("r{}", round - 1);
        let dropped =
            db.drop_series(&Selector::metric("teemon_churn_bench").with_label("round", &gone));
        assert_eq!(dropped, batch, "previous churn batch must be live to drop");
    }
    assert!(db.wal_flush(), "bench flush must stay clean");
}

/// Churn lifecycle cost: leak baseline vs full GC.
fn bench_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/cardinality");
    group.sample_size(sample_count());
    let batch = churn_batch();
    for durable in [false, true] {
        let mode_tag = if durable { "durable_gc" } else { "volatile" };
        let scratch = ScratchDir::new(&format!("churn-{mode_tag}"));
        let db = if durable {
            let options = DurabilityOptions {
                // Small segments: the meta log rotates (sweeping cooled
                // symbols) every few rounds, inside the measurement.
                segment_bytes: 32 << 10,
                fsync: FsyncMode::OnRotation,
                ..DurabilityOptions::default()
            };
            TimeSeriesDb::open_with(&scratch.0, TsdbConfig::default(), options)
                .expect("open durable bench db")
        } else {
            TimeSeriesDb::with_config(TsdbConfig::default())
        };
        let clock = AtomicU64::new(0);
        for _ in 0..3 {
            churn_round(&db, clock.fetch_add(1, Ordering::Relaxed) + 1, batch);
        }
        group.bench_function(format!("churn_round_{batch}/{mode_tag}"), |b| {
            b.iter(|| {
                let round = clock.fetch_add(1, Ordering::Relaxed) + 1;
                churn_round(&db, round, batch);
                black_box(db.stats().symbols)
            })
        });
    }
    group.finish();
}

/// `count` gauge series shaped like a monitored node: 8 metric families,
/// series spread over 64 node labels.
fn families(count: usize) -> Vec<FamilySnapshot> {
    let mut families: Vec<FamilySnapshot> = (0..8)
        .map(|m| FamilySnapshot::new(format!("teemon_metric_{m}"), "generated", MetricKind::Gauge))
        .collect();
    for i in 0..count {
        let labels =
            Labels::from_pairs([("node", format!("node-{}", i % 64)), ("idx", format!("{i}"))]);
        families[i % 8].points.push(MetricPoint::new(labels, PointValue::Gauge(i as f64)));
    }
    families
}

/// Steady-state endpoint: refreshes gauge values in place, the series set
/// never changes (the scrape cache hits every round).
struct SteadyEndpoint(Mutex<Vec<FamilySnapshot>>);

impl MetricsEndpoint for SteadyEndpoint {
    fn scrape(&self) -> Result<Vec<FamilySnapshot>, ScrapeError> {
        Ok(self.0.lock().clone())
    }

    fn scrape_visit(&self, visit: &mut dyn FnMut(&[FamilySnapshot])) -> Result<(), ScrapeError> {
        let mut families = self.0.lock();
        for family in families.iter_mut() {
            for point in &mut family.points {
                if let PointValue::Gauge(v) = &mut point.value {
                    *v += 1.0;
                }
            }
        }
        visit(&families);
        Ok(())
    }
}

/// Warm-round budget overhead: budgets off, on-but-admitting, and
/// on-and-clipping.
fn bench_budget_rounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/cardinality");
    group.sample_size(sample_count());
    let count = if smoke() { 256 } else { 1_000 };
    let tag = if count >= 1_000 { format!("{}k", count / 1_000) } else { format!("{count}") };
    // (case tag, target series budget) — None detaches budgets entirely.
    let cases: [(&str, Option<u64>); 3] =
        [("off", None), ("on", Some(1 << 20)), ("clipping", Some(count as u64 / 2))];
    for (mode_tag, budget) in cases {
        let db = TimeSeriesDb::with_config(TsdbConfig::default());
        let scraper = match budget {
            None => Scraper::new(db.clone()),
            Some(_) => {
                let budgets = CardinalityBudgets::new();
                budgets.set_job_limit("bench_exporter", 1 << 20);
                Scraper::new(db.clone()).with_budgets(budgets)
            }
        };
        let mut config =
            ScrapeTargetConfig::new("bench_exporter", "node-1:9999").with_label("node", "node-1");
        if let Some(limit) = budget {
            config = config.with_series_budget(limit);
        }
        scraper.add_target(config, Arc::new(SteadyEndpoint(Mutex::new(families(count)))));
        let clock = AtomicU64::new(0);
        for _ in 0..3 {
            scraper.scrape_round(clock.fetch_add(5_000, Ordering::Relaxed) + 5_000);
        }
        group.bench_function(format!("budget_scrape_round_{tag}/{mode_tag}"), |b| {
            b.iter(|| {
                let now = clock.fetch_add(5_000, Ordering::Relaxed) + 5_000;
                black_box(scraper.scrape_round(now))
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_churn, bench_budget_rounds
}
criterion_main!(benches);
