//! Figure 11: detailed per-100-request metric rates per framework.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use teemon::experiments;
use teemon_bench::{format_figure11, BENCH_SAMPLES};

fn bench(c: &mut Criterion) {
    println!("{}", format_figure11(&experiments::figure11(BENCH_SAMPLES)));

    c.bench_function("figure11/metric_rates", |b| {
        b.iter(|| black_box(experiments::figure11(black_box(150))))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
