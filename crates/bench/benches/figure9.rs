//! Figure 9: Redis latency under each SGX framework (same sweep as Figure 8,
//! latency column), plus the Figure 10 head-to-head slice at 78 MB.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use teemon::experiments::{self, PAPER_CONNECTIONS};
use teemon_bench::{format_sweep, BENCH_SAMPLES};

fn bench(c: &mut Criterion) {
    let rows = experiments::figure8_9(BENCH_SAMPLES, &PAPER_CONNECTIONS);
    println!("{}", format_sweep("Figure 9: Redis latency under each SGX framework", &rows));
    let fig10: Vec<_> = rows.iter().filter(|r| r.database_mb == 78).cloned().collect();
    println!("{}", format_sweep("Figure 10: head-to-head at 78 MB", &fig10));

    c.bench_function("figure9_10/sweep_single_point", |b| {
        b.iter(|| black_box(experiments::figure10(black_box(200), &[320])))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
