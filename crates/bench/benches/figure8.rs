//! Figure 8: Redis throughput under native / SCONE / SGX-LKL / Graphene-SGX
//! across connection counts and database sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use teemon::experiments::{self, PAPER_CONNECTIONS};
use teemon_apps::{run_benchmark, MemtierConfig, NetworkModel, RedisApp};
use teemon_bench::{format_sweep, BENCH_SAMPLES};
use teemon_frameworks::{FrameworkKind, FrameworkParams};
use teemon_kernel_sim::Kernel;

fn bench(c: &mut Criterion) {
    let rows = experiments::figure8_9(BENCH_SAMPLES, &PAPER_CONNECTIONS);
    println!("{}", format_sweep("Figures 8: Redis throughput under each SGX framework", &rows));

    let mut group = c.benchmark_group("figure8");
    group.sample_size(10);
    for kind in FrameworkKind::ALL {
        group.bench_with_input(
            BenchmarkId::new("one_config_320conns_78MB", kind.name()),
            &kind,
            |b, kind| {
                b.iter(|| {
                    let app = RedisApp::paper_config(32);
                    let config = MemtierConfig::paper_default(320).with_samples(300);
                    black_box(
                        run_benchmark(
                            &Kernel::new(),
                            FrameworkParams::for_kind(*kind),
                            &app,
                            &NetworkModel::default(),
                            &config,
                        )
                        .unwrap(),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
