//! Figure 6: syscall occurrences for two SCONE releases running Redis.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use teemon::experiments;
use teemon_bench::{format_figure6, BENCH_SAMPLES};

fn bench(c: &mut Criterion) {
    println!("{}", format_figure6(&experiments::figure6(BENCH_SAMPLES)));

    c.bench_function("figure6/syscall_mix", |b| {
        b.iter(|| black_box(experiments::figure6(black_box(300))))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
