//! Durability microbenchmarks (`micro/wal`): the cost of the write-ahead
//! log on top of the ingest fast lane, recorded in `BENCH_wal.json`.
//!
//! * `round_{1k,10k}/{volatile,durable}` — one steady batch-append round
//!   (every series one sample, then `wal_flush`) against an in-memory
//!   database vs a durable one on tmpfs in the default fsync mode
//!   (sync-on-rotation).  The delta is the durability tax: staging into the
//!   shard buffers, one batched sample record + sequential write per dirty
//!   shard, one commit record.
//! * `round_{1k,10k}/durable_fsync` — the same round under
//!   `FsyncMode::EveryCommit` (power-loss-safe acks); the delta vs
//!   `durable` is pure fsync cost, one per dirty log per round.
//! * `round_1k/durable_rotating` — the same round with a tiny segment
//!   budget, so shard logs keep rotating onto Gorilla snapshots; the delta
//!   vs `durable` is the rotation cost.
//! * `scrape_round_{1k,10k}/{volatile,durable}` — the deployment-realistic
//!   comparison: one full steady scrape round (collect, ingest,
//!   meta-metrics, WAL flush) through the fast lane, mirroring
//!   `micro/ingest` — the round the "≤15% durable overhead" acceptance
//!   bound is measured on, since that is the unit of work a real
//!   deployment repeats.
//! * `replay_{1k,10k}` — `TimeSeriesDb::open` over the logs the round
//!   benches leave behind: crash-recovery throughput.
//!
//! Set `TEEMON_BENCH_SMOKE=1` (as CI does) to shrink the series counts and
//! sample counts for a fast correctness pass.

use std::hint::black_box;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use parking_lot::Mutex;
use teemon_metrics::{FamilySnapshot, Labels, MetricKind, MetricPoint, PointValue};
use teemon_tsdb::{
    DurabilityOptions, FsyncMode, MetricsEndpoint, ScrapeError, ScrapeTargetConfig, Scraper,
    SeriesHandle, TimeSeriesDb, TsdbConfig,
};

fn smoke() -> bool {
    std::env::var_os("TEEMON_BENCH_SMOKE").is_some()
}

fn sample_count() -> usize {
    if smoke() {
        2
    } else {
        20
    }
}

fn series_counts() -> &'static [usize] {
    if smoke() {
        &[256]
    } else {
        &[1_000, 10_000]
    }
}

/// A scratch directory on tmpfs (falls back to the temp dir when the
/// machine has no /dev/shm), removed on drop.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> Self {
        let base = if PathBuf::from("/dev/shm").is_dir() {
            PathBuf::from("/dev/shm")
        } else {
            std::env::temp_dir()
        };
        let dir = base.join(format!("teemon-bench-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Self(dir)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// `count` series shaped like a monitored node: series spread over 64 node
/// labels, resolved once so rounds run the handle fast lane.
fn handles(db: &TimeSeriesDb, count: usize) -> Vec<SeriesHandle> {
    (0..count)
        .map(|i| {
            let labels = Labels::from_pairs([
                ("node", format!("node-{}", i % 64).as_str()),
                ("idx", format!("{i}").as_str()),
            ]);
            db.resolve("teemon_wal_bench", &labels)
        })
        .collect()
}

/// One ingest round: every series appends one sample at `t`, then the WAL
/// flush (a no-op on volatile databases, so both sides run the same code).
fn round(
    db: &TimeSeriesDb,
    handles: &[SeriesHandle],
    batch: &mut Vec<(SeriesHandle, u64, f64)>,
    t: u64,
) {
    batch.clear();
    for (i, &handle) in handles.iter().enumerate() {
        batch.push((handle, t, i as f64));
    }
    let outcome = db.append_batch(batch);
    assert_eq!(outcome.appended as usize, handles.len());
    assert!(db.wal_flush());
}

/// Durable vs volatile steady round, plus the rotating variant.
fn bench_rounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/wal");
    group.sample_size(sample_count());
    for &count in series_counts() {
        let tag = if count >= 1_000 { format!("{}k", count / 1_000) } else { format!("{count}") };
        let cases: [(&str, Option<(u64, FsyncMode)>); 4] = [
            ("volatile", None),
            ("durable", Some((u64::MAX, FsyncMode::OnRotation))),
            ("durable_fsync", Some((u64::MAX, FsyncMode::EveryCommit))),
            ("durable_rotating", Some((64 << 10, FsyncMode::OnRotation))),
        ];
        for (mode_tag, durability) in cases {
            if mode_tag == "durable_rotating" && count >= 10_000 {
                continue; // the rotation delta is measured once, at 1k
            }
            let scratch = ScratchDir::new(&format!("round-{tag}-{mode_tag}"));
            let db = match durability {
                None => TimeSeriesDb::with_config(TsdbConfig::default()),
                Some((segment_bytes, fsync)) => {
                    let options =
                        DurabilityOptions { segment_bytes, fsync, ..DurabilityOptions::default() };
                    TimeSeriesDb::open_with(&scratch.0, TsdbConfig::default(), options)
                        .expect("open durable bench db")
                }
            };
            let handles = handles(&db, count);
            let mut batch = Vec::with_capacity(count);
            let clock = AtomicU64::new(0);
            // Warm up: grow the staging buffers, open the log files.
            for _ in 0..3 {
                round(&db, &handles, &mut batch, clock.fetch_add(5_000, Ordering::Relaxed) + 5_000);
            }
            group.bench_function(format!("round_{tag}/{mode_tag}"), |b| {
                b.iter(|| {
                    let now = clock.fetch_add(5_000, Ordering::Relaxed) + 5_000;
                    round(&db, &handles, &mut batch, now);
                    black_box(db.stats().samples)
                })
            });
        }
    }
    group.finish();
}

/// `count` gauge series shaped like a monitored node, mirroring
/// `micro/ingest`: 8 metric families, series spread over 64 node labels.
fn families(count: usize) -> Vec<FamilySnapshot> {
    let mut families: Vec<FamilySnapshot> = (0..8)
        .map(|m| FamilySnapshot::new(format!("teemon_metric_{m}"), "generated", MetricKind::Gauge))
        .collect();
    for i in 0..count {
        let labels =
            Labels::from_pairs([("node", format!("node-{}", i % 64)), ("idx", format!("{i}"))]);
        families[i % 8].points.push(MetricPoint::new(labels, PointValue::Gauge(i as f64)));
    }
    families
}

/// Steady-state endpoint: refreshes gauge values in place, the series set
/// never changes (the scrape cache hits every round).
struct SteadyEndpoint(Mutex<Vec<FamilySnapshot>>);

impl MetricsEndpoint for SteadyEndpoint {
    fn scrape(&self) -> Result<Vec<FamilySnapshot>, ScrapeError> {
        Ok(self.0.lock().clone())
    }

    fn scrape_visit(&self, visit: &mut dyn FnMut(&[FamilySnapshot])) -> Result<(), ScrapeError> {
        let mut families = self.0.lock();
        for family in families.iter_mut() {
            for point in &mut family.points {
                if let PointValue::Gauge(v) = &mut point.value {
                    *v += 1.0;
                }
            }
        }
        visit(&families);
        Ok(())
    }
}

/// One full steady scrape round per iteration — the fast lane end to end
/// (collect, ingest, meta-metrics, WAL flush), volatile vs durable.  The
/// deployment-realistic durability overhead is the delta between the two.
fn bench_scrape_rounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/wal");
    group.sample_size(sample_count());
    for &count in series_counts() {
        let tag = if count >= 1_000 { format!("{}k", count / 1_000) } else { format!("{count}") };
        for durable in [false, true] {
            let mode_tag = if durable { "durable" } else { "volatile" };
            let scratch = ScratchDir::new(&format!("scrape-{tag}-{mode_tag}"));
            let db = if durable {
                TimeSeriesDb::open(&scratch.0, TsdbConfig::default()).expect("open durable db")
            } else {
                TimeSeriesDb::with_config(TsdbConfig::default())
            };
            let scraper = Scraper::new(db);
            scraper.add_target(
                ScrapeTargetConfig::new("bench_exporter", "node-1:9999")
                    .with_label("node", "node-1"),
                Arc::new(SteadyEndpoint(Mutex::new(families(count)))),
            );
            let clock = AtomicU64::new(0);
            // Warm up: build the scrape cache, create every series, grow the
            // WAL staging buffers.
            for _ in 0..3 {
                scraper.scrape_round(clock.fetch_add(5_000, Ordering::Relaxed) + 5_000);
            }
            group.bench_function(format!("scrape_round_{tag}/{mode_tag}"), |b| {
                b.iter(|| {
                    let now = clock.fetch_add(5_000, Ordering::Relaxed) + 5_000;
                    black_box(scraper.scrape_round(now))
                })
            });
        }
    }
    group.finish();
}

/// Crash-recovery replay: `TimeSeriesDb::open` over a directory holding
/// `rounds` flushed rounds of `count` series.
fn bench_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/wal");
    group.sample_size(sample_count());
    let rounds = if smoke() { 4 } else { 50 };
    for &count in series_counts() {
        let tag = if count >= 1_000 { format!("{}k", count / 1_000) } else { format!("{count}") };
        let scratch = ScratchDir::new(&format!("replay-{tag}"));
        let expected = {
            let db = TimeSeriesDb::open(&scratch.0, TsdbConfig::default()).expect("open");
            let handles = handles(&db, count);
            let mut batch = Vec::with_capacity(count);
            for r in 1..=rounds {
                round(&db, &handles, &mut batch, r * 5_000);
            }
            db.stats().samples
        };
        group.bench_function(format!("replay_{tag}_x{rounds}_rounds"), |b| {
            b.iter(|| {
                let recovered =
                    TimeSeriesDb::open(&scratch.0, TsdbConfig::default()).expect("reopen");
                assert_eq!(recovered.stats().samples, expected);
                black_box(recovered.stats().samples)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_rounds, bench_scrape_rounds, bench_replay
}
criterion_main!(benches);
