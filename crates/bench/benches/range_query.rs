//! Range-query microbenchmarks (`micro/range_query`).
//!
//! The dashboard-driving workload: `rate()` range queries over 1 h and 24 h
//! windows at a 15 s step across 100 series.  The streaming evaluator
//! (sliding-window state machines, `O(samples touched)`) is measured against
//! the retained per-step evaluator (`O(steps × window)`), which stays in the
//! tree as `QueryEngine::range_per_step` — both the fallback and the
//! equivalence oracle — so the speedup stays visible as both paths evolve.
//!
//! A second group compares scanning sealed chunks in their Gorilla-compressed
//! form against the raw-chunk storage mode (`TsdbConfig::raw_chunks`), and
//! the run prints the storage engine's bytes/sample so compression is
//! recorded alongside the timings (see `BENCH_query_range.json`).
//!
//! Set `TEEMON_BENCH_SMOKE=1` (as CI does) to shrink the data set for a fast
//! correctness pass.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use teemon_metrics::Labels;
use teemon_query::{parse, QueryEngine};
use teemon_tsdb::{Selector, TimeSeriesDb, TsdbConfig};

fn smoke() -> bool {
    std::env::var_os("TEEMON_BENCH_SMOKE").is_some()
}

fn sample_count() -> usize {
    if smoke() {
        2
    } else {
        15
    }
}

const SERIES: usize = 100;
const SCRAPE_INTERVAL_MS: u64 = 15_000;
const STEP_MS: u64 = 15_000;

/// `SERIES` monotone counters over `span_ms` at the scrape cadence.
fn populate(span_ms: u64, raw_chunks: bool) -> TimeSeriesDb {
    let db = TimeSeriesDb::with_config(TsdbConfig {
        chunk_size: 120,
        retention_ms: u64::MAX,
        raw_chunks,
    });
    let series = if smoke() { 8 } else { SERIES };
    let keys: Vec<Labels> = (0..series)
        .map(|i| {
            Labels::from_pairs([("node", format!("node-{}", i % 10)), ("idx", format!("{i}"))])
        })
        .collect();
    let ticks = span_ms / SCRAPE_INTERVAL_MS;
    for t in 0..=ticks {
        for (i, labels) in keys.iter().enumerate() {
            db.append(
                "bench_requests_total",
                labels,
                t * SCRAPE_INTERVAL_MS,
                (t * (25 + i as u64)) as f64,
            );
        }
    }
    db
}

fn bench_range(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/range_query");
    group.sample_size(sample_count());

    let windows: &[(&str, u64)] = if smoke() {
        &[("10m", 10 * 60 * 1000)]
    } else {
        &[("1h", 60 * 60 * 1000), ("24h", 24 * 60 * 60 * 1000)]
    };
    for &(label, span_ms) in windows {
        let db = populate(span_ms, false);
        let engine = QueryEngine::new(db.clone());
        let rate = parse("rate(bench_requests_total[5m])").unwrap();
        let grouped = parse("sum by (node) (rate(bench_requests_total[5m]))").unwrap();
        assert!(engine.streams_range(&rate, 0, span_ms), "rate must take the streaming path");
        // Both paths must agree before we time them.
        assert_eq!(
            engine.range(&grouped, 0, span_ms, STEP_MS).unwrap().len(),
            engine.range_per_step(&grouped, 0, span_ms, STEP_MS).unwrap().len(),
        );

        group.bench_function(format!("rate_{label}/streaming"), |b| {
            b.iter(|| black_box(engine.range(black_box(&rate), 0, span_ms, STEP_MS).unwrap()))
        });
        group.bench_function(format!("rate_{label}/per_step_baseline"), |b| {
            b.iter(|| {
                black_box(engine.range_per_step(black_box(&rate), 0, span_ms, STEP_MS).unwrap())
            })
        });
        group.bench_function(format!("sum_by_rate_{label}/streaming"), |b| {
            b.iter(|| black_box(engine.range(black_box(&grouped), 0, span_ms, STEP_MS).unwrap()))
        });
        group.bench_function(format!("sum_by_rate_{label}/per_step_baseline"), |b| {
            b.iter(|| {
                black_box(engine.range_per_step(black_box(&grouped), 0, span_ms, STEP_MS).unwrap())
            })
        });
    }
    group.finish();
}

/// Full-range scans over sealed chunks: Gorilla-compressed vs raw storage.
fn bench_chunk_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/range_query");
    group.sample_size(sample_count());
    let span_ms = if smoke() { 10 * 60 * 1000 } else { 60 * 60 * 1000 };
    let selector = Selector::metric("bench_requests_total");

    for (label, raw_chunks) in [("compressed", false), ("raw", true)] {
        let db = populate(span_ms, raw_chunks);
        let snapshots = db.select(&selector);
        group.bench_function(format!("chunk_scan/{label}"), |b| {
            b.iter(|| {
                let mut total = 0usize;
                for snapshot in &snapshots {
                    total += black_box(snapshot.points_in(0, u64::MAX)).len();
                }
                total
            })
        });
        let stats = db.stats();
        println!(
            "micro/range_query setup: {label} storage holds {} samples in {} bytes \
             ({:.2} bytes/sample)",
            stats.samples,
            stats.resident_bytes,
            stats.bytes_per_sample()
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_range, bench_chunk_scan
}
criterion_main!(benches);
