//! Storage-engine microbenchmarks (`micro/tsdb`): append throughput,
//! selector queries at 10 k series, and multi-threaded append scaling —
//! each measured against the pre-overhaul engine (one global lock, an owned
//! `(String, Labels)` key map, and O(total-series) matcher scans with
//! deep-cloned results), which is retained here as `LinearScanDb` so the
//! speedup stays visible as both engines evolve.
//!
//! Set `TEEMON_BENCH_SMOKE=1` (as CI does) to shrink the data set and sample
//! counts for a fast correctness pass.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use criterion::{criterion_group, criterion_main, Criterion};
use parking_lot::RwLock;
use std::hint::black_box;
use teemon_metrics::Labels;
use teemon_tsdb::{Sample, Selector, Series, TimeSeriesDb};

fn smoke() -> bool {
    std::env::var_os("TEEMON_BENCH_SMOKE").is_some()
}

fn sample_count() -> usize {
    if smoke() {
        2
    } else {
        20
    }
}

/// Series cardinality for the selector benchmarks.
fn series_total() -> usize {
    if smoke() {
        512
    } else {
        10_000
    }
}

/// The storage engine this PR replaced: every series behind one `RwLock`,
/// an owned-key index that allocates `name.to_string() + labels.clone()` on
/// every lookup, and selectors answered by scanning and deep-cloning every
/// series.  Kept as the bench baseline.
#[derive(Default)]
struct LinearScanDb {
    inner: RwLock<LinearInner>,
}

#[derive(Default)]
struct LinearInner {
    series: Vec<Series>,
    index: HashMap<(String, Labels), usize>,
}

impl LinearScanDb {
    fn append(&self, name: &str, labels: &Labels, timestamp_ms: u64, value: f64) -> bool {
        let mut inner = self.inner.write();
        let idx = match inner.index.get(&(name.to_string(), labels.clone())) {
            Some(idx) => *idx,
            None => {
                let idx = inner.series.len();
                inner.series.push(Series::new(name.to_string(), labels.clone(), 120));
                inner.index.insert((name.to_string(), labels.clone()), idx);
                idx
            }
        };
        inner.series[idx].append(Sample { timestamp_ms, value })
    }

    fn select(&self, selector: &Selector) -> Vec<Series> {
        self.inner
            .read()
            .series
            .iter()
            .filter(|s| selector.matches(&s.name, &s.labels))
            .cloned()
            .collect()
    }

    fn query_instant(&self, selector: &Selector, at_ms: u64) -> Vec<(String, Labels, f64)> {
        self.inner
            .read()
            .series
            .iter()
            .filter(|s| selector.matches(&s.name, &s.labels))
            .filter_map(|s| {
                s.at(at_ms).map(|sample| (s.name.clone(), s.labels.clone(), sample.value))
            })
            .collect()
    }
}

/// `count` series shaped like a monitored cluster: `metric-m{node, job, idx}`
/// over 8 metric names and 64 nodes, each with `samples` points at 5 s
/// resolution.  Returns the key set so benches can append to existing series.
fn populate<F: Fn(&str, &Labels, u64, f64) -> bool>(
    count: usize,
    samples: u64,
    append: F,
) -> Vec<(String, Labels)> {
    let keys: Vec<(String, Labels)> = (0..count)
        .map(|i| {
            (
                format!("teemon_metric_{}_total", i % 8),
                Labels::from_pairs([
                    ("node", format!("node-{}", i % 64)),
                    ("job", "sgx_exporter".to_string()),
                    ("idx", format!("{i}")),
                ]),
            )
        })
        .collect();
    for t in 0..samples {
        for (name, labels) in &keys {
            assert!(append(name, labels, t * 5_000, t as f64));
        }
    }
    keys
}

/// Append throughput to existing series: the scrape-tick hot path.
fn bench_append(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/tsdb");
    group.sample_size(sample_count());

    let count = series_total().min(1_024);
    let db = TimeSeriesDb::new();
    let keys = populate(count, 4, |n, l, t, v| db.append(n, l, t, v));
    let tick = AtomicU64::new(1_000_000);
    let mut next = 0usize;
    group.bench_function("append_existing/indexed", |b| {
        b.iter(|| {
            let (name, labels) = &keys[next % keys.len()];
            next += 1;
            let t = tick.fetch_add(1, Ordering::Relaxed);
            black_box(db.append(name, labels, t, 1.0))
        })
    });

    let baseline = LinearScanDb::default();
    let keys = populate(count, 4, |n, l, t, v| baseline.append(n, l, t, v));
    let tick = AtomicU64::new(1_000_000);
    let mut next = 0usize;
    group.bench_function("append_existing/linear_baseline", |b| {
        b.iter(|| {
            let (name, labels) = &keys[next % keys.len()];
            next += 1;
            let t = tick.fetch_add(1, Ordering::Relaxed);
            black_box(baseline.append(name, labels, t, 1.0))
        })
    });
    group.finish();
}

/// Selector queries at 10 k series: the index answers from postings lists
/// sized by the match, the baseline scans and deep-clones everything.
fn bench_select(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/tsdb");
    group.sample_size(sample_count());
    let count = series_total();
    // Two sealed chunks per series (chunk_size 120): selection on the new
    // engine shares them by `Arc`, the baseline deep-clones every sample.
    let samples: u64 = if smoke() { 8 } else { 240 };

    // One node's share is count/64 series.  `node-8` aligns with
    // `metric_0` (8 ≡ 0 mod 8), so the narrow selector matches exactly that
    // node's share rather than an empty set.
    let narrow = Selector::metric("teemon_metric_0_total").with_label("node", "node-8");
    let node_wide = Selector::all().with_label("node", "node-7");

    let db = TimeSeriesDb::new();
    populate(count, samples, |n, l, t, v| db.append(n, l, t, v));
    group.bench_function("select_at_10k/indexed", |b| {
        b.iter(|| black_box(db.select(black_box(&narrow))))
    });
    group.bench_function("select_node_at_10k/indexed", |b| {
        b.iter(|| black_box(db.select(black_box(&node_wide))))
    });
    group.bench_function("query_instant_at_10k/indexed", |b| {
        b.iter(|| black_box(db.query_instant(black_box(&narrow), 40_000)))
    });

    let baseline = LinearScanDb::default();
    populate(count, samples, |n, l, t, v| baseline.append(n, l, t, v));
    group.bench_function("select_at_10k/linear_baseline", |b| {
        b.iter(|| black_box(baseline.select(black_box(&narrow))))
    });
    group.bench_function("select_node_at_10k/linear_baseline", |b| {
        b.iter(|| black_box(baseline.select(black_box(&node_wide))))
    });
    group.bench_function("query_instant_at_10k/linear_baseline", |b| {
        b.iter(|| black_box(baseline.query_instant(black_box(&narrow), 40_000)))
    });
    group.finish();
}

/// Multi-threaded append scaling: the same total sample volume pushed by one
/// thread vs spread over four threads.  Sharded locks let the four-thread
/// run overlap; the baseline's single lock would serialise it.
fn bench_append_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/tsdb");
    group.sample_size(sample_count());
    const THREADS: u64 = 4;
    let per_thread: u64 = if smoke() { 512 } else { 8_192 };

    let db = TimeSeriesDb::new();
    let keys: Vec<Vec<Labels>> = (0..THREADS)
        .map(|thread| {
            (0..16)
                .map(|i| {
                    Labels::from_pairs([
                        ("node", format!("node-{thread}")),
                        ("idx", format!("{i}")),
                    ])
                })
                .collect()
        })
        .collect();
    let tick = AtomicU64::new(0);
    group.bench_function("append_mt/1_thread", |b| {
        b.iter(|| {
            let base = tick.fetch_add(per_thread * THREADS, Ordering::Relaxed);
            for i in 0..per_thread * THREADS {
                // (i / 16) decorrelates the thread index from i % 16, so the
                // single thread covers all 64 series the 4-thread run writes.
                let labels = &keys[((i / 16) % THREADS) as usize][(i % 16) as usize];
                black_box(db.append("mt_total", labels, base + i, 1.0));
            }
        })
    });

    let db = TimeSeriesDb::new();
    let tick = AtomicU64::new(0);
    group.bench_function("append_mt/4_threads", |b| {
        b.iter(|| {
            let base = tick.fetch_add(per_thread, Ordering::Relaxed);
            std::thread::scope(|scope| {
                for thread_keys in &keys {
                    scope.spawn(|| {
                        for i in 0..per_thread {
                            let labels = &thread_keys[(i % 16) as usize];
                            black_box(db.append("mt_total", labels, base + i, 1.0));
                        }
                    });
                }
            });
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_append, bench_select, bench_append_scaling
}
criterion_main!(benches);
