//! Figure 7: Redis throughput across SCONE code evolution.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use teemon::experiments;
use teemon_bench::{format_figure7, BENCH_SAMPLES};

fn bench(c: &mut Criterion) {
    println!("{}", format_figure7(&experiments::figure7(BENCH_SAMPLES)));

    c.bench_function("figure7/code_evolution", |b| {
        b.iter(|| black_box(experiments::figure7(black_box(300))))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
