//! Figure 5: monitoring overhead on MongoDB, NGINX and Redis under SCONE.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use teemon::experiments;
use teemon_bench::{format_figure5, BENCH_SAMPLES};

fn bench(c: &mut Criterion) {
    println!("{}", format_figure5(&experiments::figure5(BENCH_SAMPLES)));

    c.bench_function("figure5/overhead_all_apps", |b| {
        b.iter(|| black_box(experiments::figure5(black_box(300))))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
