//! Self-telemetry microbenchmarks (`micro/obs`): the cost of the probe
//! primitives the engine's hot paths pay on every operation — relaxed-atomic
//! counter increments, per-shard counter adds, log-linear histogram records,
//! RAII span timers, the below-threshold slow-query check — plus the in-place
//! [`SelfSnapshot`] refresh and a full dogfooded self-scrape round.
//!
//! The instrumentation is always on, so its overhead is proven differentially:
//! `BENCH_obs.json` records `micro/ingest` and `micro/range_query` before and
//! after the probes were wired in (≤ 5 % drift).  This bench pins the
//! per-primitive costs so a regression shows up as an absolute number, not
//! only as noise in the macro benches.
//!
//! Set `TEEMON_BENCH_SMOKE=1` (as CI does) for a fast correctness pass.

use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

use criterion::{criterion_group, criterion_main, Criterion};
use teemon_obs::{probes, slow, SelfSnapshot, Span};
use teemon_tsdb::{Scraper, TimeSeriesDb};

fn smoke() -> bool {
    std::env::var_os("TEEMON_BENCH_SMOKE").is_some()
}

fn sample_count() -> usize {
    if smoke() {
        10
    } else {
        60
    }
}

/// The probe primitives, measured bare: these run inside ingest/query inner
/// loops, so each must stay in the few-nanosecond range.
fn bench_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/obs");
    group.sample_size(sample_count());
    group.bench_function("counter_inc", |b| b.iter(|| probes::SCRAPE_ROUNDS.inc()));
    group.bench_function("shard_counter_add", |b| {
        b.iter(|| probes::SHARD_APPENDS.add(black_box(3), black_box(48)))
    });
    group
        .bench_function("gauge_set", |b| b.iter(|| probes::STORAGE_SERIES.set(black_box(1_024.0))));
    group.bench_function("hist_record", |b| {
        b.iter(|| probes::QUERY_NS.record_ns(black_box(1_500_000)))
    });
    group.bench_function("span_start_drop", |b| {
        b.iter(|| {
            let span = Span::start(&probes::SCRAPE_COLLECT_NS);
            black_box(&span);
        })
    });
    group.bench_function("slow_check_below_threshold", |b| {
        // The common case: the query finished fast, so the ring is never
        // touched and no query text is rendered.
        b.iter(|| black_box(slow::maybe_record("sum(rate(x[5m]))", 10, 100, true)))
    });
    group.finish();
}

/// The consumer side: refreshing a warm [`SelfSnapshot`] in place (what the
/// self-scrape endpoint runs every round) and a full self-scrape round
/// through the ingest fast lane.
fn bench_self_scrape(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/obs");
    group.sample_size(sample_count());

    let mut snapshot = SelfSnapshot::new();
    snapshot.refresh();
    group.bench_function("snapshot_refresh", |b| {
        b.iter(|| {
            snapshot.refresh();
            black_box(snapshot.families().len())
        })
    });

    let scraper = Scraper::new(TimeSeriesDb::new());
    scraper.add_self_target("bench:self");
    let clock = AtomicU64::new(0);
    // Warm up: build the snapshot layout and the scrape cache.
    for _ in 0..3 {
        scraper.scrape_round(clock.fetch_add(5_000, Ordering::Relaxed) + 5_000);
    }
    group.bench_function("self_scrape_round", |b| {
        b.iter(|| {
            let now = clock.fetch_add(5_000, Ordering::Relaxed) + 5_000;
            black_box(scraper.scrape_round(now))
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(60);
    targets = bench_primitives, bench_self_scrape
}
criterion_main!(benches);
