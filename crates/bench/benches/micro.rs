//! Microbenchmarks of TEEMon's own machinery (ablation of the overhead
//! figures): hook dispatch with and without attached programs, exposition
//! encoding/parsing, and the typed vs text scrape pipeline.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use teemon_exporters::{Collector, ContainerExporter, EbpfExporter, NodeExporter, SgxExporter};
use teemon_kernel_sim::process::ProcessKind;
use teemon_kernel_sim::{Kernel, Syscall};
use teemon_metrics::{exposition, Labels, Registry, RegistryCollector};
use teemon_tsdb::{ScrapeTargetConfig, Scraper, TextEndpoint, TimeSeriesDb};

fn bench_hooks(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/syscall_dispatch");
    group.sample_size(30);

    // Monitoring OFF: no programs attached — the instrumentation-free baseline.
    let kernel_off = Kernel::new();
    let pid_off = kernel_off.spawn_process("redis-server", ProcessKind::User, 1);
    group.bench_function("monitoring_off", |b| {
        b.iter(|| black_box(kernel_off.syscall(pid_off, Syscall::Read, false)))
    });

    // eBPF ON: the standard program set observes every syscall.
    let kernel_on = Kernel::new();
    let _exporter = EbpfExporter::attach(&kernel_on, "bench-node");
    let pid_on = kernel_on.spawn_process("redis-server", ProcessKind::User, 1);
    group.bench_function("ebpf_on", |b| {
        b.iter(|| black_box(kernel_on.syscall(pid_on, Syscall::Read, false)))
    });
    group.finish();
}

fn bench_exposition(c: &mut Criterion) {
    let registry = Registry::new();
    let counters = registry.counter_family("teemon_syscalls_total", "syscalls");
    for syscall in ["read", "write", "futex", "clock_gettime", "epoll_wait", "sendto"] {
        counters.with(&Labels::from_pairs([("syscall", syscall)])).inc_by(1234.0);
    }
    let text = exposition::encode_text(&registry.gather());

    let mut group = c.benchmark_group("micro/exposition");
    group.bench_function("encode", |b| {
        b.iter(|| black_box(exposition::encode_text(&registry.gather())))
    });
    group.bench_function("parse", |b| b.iter(|| black_box(exposition::parse_text(&text).unwrap())));
    group.finish();
}

type CollectorTargets = Vec<(ScrapeTargetConfig, Arc<dyn Collector>)>;

/// Builds a node's full exporter set (SGX, eBPF, node, cAdvisor) on a kernel
/// with realistic activity, and returns the four collectors.
fn full_exporter_set() -> (Kernel, CollectorTargets) {
    let kernel = Kernel::new();
    let node = "bench-node";
    let ebpf = EbpfExporter::attach(&kernel, node);
    kernel.sgx_driver().create_enclave(1, 16 << 20, 4).unwrap();
    let pid = kernel.spawn_process("redis-server", ProcessKind::Enclave, 8);
    for syscall in [Syscall::Read, Syscall::Write, Syscall::ClockGettime, Syscall::Futex] {
        for _ in 0..64 {
            kernel.syscall(pid, syscall, true);
        }
    }
    let containers = ContainerExporter::new(node);
    containers.register_container(teemon_exporters::ContainerSpec {
        name: "redis-0".into(),
        image: "redis:5".into(),
        pid: pid.as_u32(),
        memory_limit_bytes: 1 << 30,
    });
    let targets: CollectorTargets = vec![
        (
            ScrapeTargetConfig::new("sgx_exporter", "bench-node:9090"),
            Arc::new(SgxExporter::new(kernel.sgx_driver().clone(), node)),
        ),
        (
            ScrapeTargetConfig::new("ebpf_exporter", "bench-node:9435"),
            Arc::new(RegistryCollector::new("ebpf_exporter", ebpf.registry().clone())),
        ),
        (
            ScrapeTargetConfig::new("node_exporter", "bench-node:9100"),
            Arc::new(NodeExporter::new(&kernel, node)),
        ),
        (ScrapeTargetConfig::new("cadvisor", "bench-node:8080"), Arc::new(containers)),
    ];
    (kernel, targets)
}

/// The headline comparison for the typed pipeline redesign: scraping a node's
/// full exporter set through typed snapshots vs through the OpenMetrics text
/// round-trip (encode on the exporter side, parse on the scraper side) that
/// the paper's multi-process deployment pays on every scrape.
fn bench_scrape_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/scrape_full_node");
    group.sample_size(30);

    let (_kernel, targets) = full_exporter_set();
    let typed = Scraper::new(TimeSeriesDb::new());
    for (config, collector) in &targets {
        typed.add_collector(config.clone(), Arc::clone(collector));
    }
    let mut now = 0u64;
    group.bench_function("typed", |b| {
        b.iter(|| {
            now += 5_000;
            black_box(typed.scrape_once(now))
        })
    });

    let (_kernel, targets) = full_exporter_set();
    let text = Scraper::new(TimeSeriesDb::new());
    for (config, collector) in &targets {
        text.add_target(config.clone(), Arc::new(TextEndpoint::new(Arc::clone(collector))));
    }
    let mut now = 0u64;
    group.bench_function("text_round_trip", |b| {
        b.iter(|| {
            now += 5_000;
            black_box(text.scrape_once(now))
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_hooks, bench_exposition, bench_scrape_paths
}
criterion_main!(benches);
