//! Microbenchmarks of TEEMon's own machinery (ablation of the overhead
//! figures): hook dispatch with and without attached programs, exposition
//! encoding/parsing, the typed vs text scrape pipeline, the TeeQL query
//! engine, and the cross-series aggregation walk.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use teemon_exporters::{Collector, ContainerExporter, EbpfExporter, NodeExporter, SgxExporter};
use teemon_kernel_sim::process::ProcessKind;
use teemon_kernel_sim::{Kernel, Syscall};
use teemon_metrics::{exposition, Labels, Registry, RegistryCollector};
use teemon_query::{parse, QueryEngine};
use teemon_tsdb::{
    query, AggregateOp, ScrapeTargetConfig, Scraper, Selector, TextEndpoint, TimeSeriesDb,
};

fn bench_hooks(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/syscall_dispatch");
    group.sample_size(30);

    // Monitoring OFF: no programs attached — the instrumentation-free baseline.
    let kernel_off = Kernel::new();
    let pid_off = kernel_off.spawn_process("redis-server", ProcessKind::User, 1);
    group.bench_function("monitoring_off", |b| {
        b.iter(|| black_box(kernel_off.syscall(pid_off, Syscall::Read, false)))
    });

    // eBPF ON: the standard program set observes every syscall.
    let kernel_on = Kernel::new();
    let _exporter = EbpfExporter::attach(&kernel_on, "bench-node");
    let pid_on = kernel_on.spawn_process("redis-server", ProcessKind::User, 1);
    group.bench_function("ebpf_on", |b| {
        b.iter(|| black_box(kernel_on.syscall(pid_on, Syscall::Read, false)))
    });
    group.finish();
}

fn bench_exposition(c: &mut Criterion) {
    let registry = Registry::new();
    let counters = registry.counter_family("teemon_syscalls_total", "syscalls");
    for syscall in ["read", "write", "futex", "clock_gettime", "epoll_wait", "sendto"] {
        counters.with(&Labels::from_pairs([("syscall", syscall)])).inc_by(1234.0);
    }
    let text = exposition::encode_text(&registry.gather());

    let mut group = c.benchmark_group("micro/exposition");
    group.bench_function("encode", |b| {
        b.iter(|| black_box(exposition::encode_text(&registry.gather())))
    });
    group.bench_function("parse", |b| b.iter(|| black_box(exposition::parse_text(&text).unwrap())));
    group.finish();
}

type CollectorTargets = Vec<(ScrapeTargetConfig, Arc<dyn Collector>)>;

/// Builds a node's full exporter set (SGX, eBPF, node, cAdvisor) on a kernel
/// with realistic activity, and returns the four collectors.
fn full_exporter_set() -> (Kernel, CollectorTargets) {
    let kernel = Kernel::new();
    let node = "bench-node";
    let ebpf = EbpfExporter::attach(&kernel, node);
    kernel.sgx_driver().create_enclave(1, 16 << 20, 4).unwrap();
    let pid = kernel.spawn_process("redis-server", ProcessKind::Enclave, 8);
    for syscall in [Syscall::Read, Syscall::Write, Syscall::ClockGettime, Syscall::Futex] {
        for _ in 0..64 {
            kernel.syscall(pid, syscall, true);
        }
    }
    let containers = ContainerExporter::new(node);
    containers.register_container(teemon_exporters::ContainerSpec {
        name: "redis-0".into(),
        image: "redis:5".into(),
        pid: pid.as_u32(),
        memory_limit_bytes: 1 << 30,
    });
    let targets: CollectorTargets = vec![
        (
            ScrapeTargetConfig::new("sgx_exporter", "bench-node:9090"),
            Arc::new(SgxExporter::new(kernel.sgx_driver().clone(), node)),
        ),
        (
            ScrapeTargetConfig::new("ebpf_exporter", "bench-node:9435"),
            Arc::new(RegistryCollector::new("ebpf_exporter", ebpf.registry().clone())),
        ),
        (
            ScrapeTargetConfig::new("node_exporter", "bench-node:9100"),
            Arc::new(NodeExporter::new(&kernel, node)),
        ),
        (ScrapeTargetConfig::new("cadvisor", "bench-node:8080"), Arc::new(containers)),
    ];
    (kernel, targets)
}

/// The headline comparison for the typed pipeline redesign: scraping a node's
/// full exporter set through typed snapshots vs through the OpenMetrics text
/// round-trip (encode on the exporter side, parse on the scraper side) that
/// the paper's multi-process deployment pays on every scrape.
fn bench_scrape_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/scrape_full_node");
    group.sample_size(30);

    let (_kernel, targets) = full_exporter_set();
    let typed = Scraper::new(TimeSeriesDb::new());
    for (config, collector) in &targets {
        typed.add_collector(config.clone(), Arc::clone(collector));
    }
    let mut now = 0u64;
    group.bench_function("typed", |b| {
        b.iter(|| {
            now += 5_000;
            black_box(typed.scrape_once(now))
        })
    });

    let (_kernel, targets) = full_exporter_set();
    let text = Scraper::new(TimeSeriesDb::new());
    for (config, collector) in &targets {
        text.add_target(config.clone(), Arc::new(TextEndpoint::new(Arc::clone(collector))));
    }
    let mut now = 0u64;
    group.bench_function("text_round_trip", |b| {
        b.iter(|| {
            now += 5_000;
            black_box(text.scrape_once(now))
        })
    });
    group.finish();
}

/// A database resembling an hour of cluster monitoring: 8 nodes × 4 syscall
/// counter series plus a gauge per node, at 5 s resolution.
fn populated_tsdb() -> TimeSeriesDb {
    let db = TimeSeriesDb::new();
    for t in 0..720u64 {
        for node in 0..8u32 {
            let node_name = format!("node-{node}");
            for (syscall, per_tick) in
                [("read", 500.0), ("write", 480.0), ("futex", 90.0), ("clock_gettime", 2_100.0)]
            {
                db.append(
                    "teemon_syscalls_total",
                    &Labels::from_pairs([("node", node_name.as_str()), ("syscall", syscall)]),
                    t * 5_000,
                    t as f64 * per_tick * (1.0 + node as f64 / 8.0),
                );
            }
            db.append(
                "sgx_nr_free_pages",
                &Labels::from_pairs([("node", node_name.as_str())]),
                t * 5_000,
                24_064.0 - ((t * (node as u64 + 1)) % 20_000) as f64,
            );
        }
    }
    db
}

/// The TeeQL pipeline stages: parse only, one instant evaluation, and a
/// dashboard-sized range evaluation with grouping + rate.
fn bench_query_engine(c: &mut Criterion) {
    const QUERY: &str = "sum by (node) (rate(teemon_syscalls_total[1m]))";
    let mut group = c.benchmark_group("micro/query_engine");
    group.sample_size(30);

    group.bench_function("parse_only", |b| b.iter(|| black_box(parse(QUERY).unwrap())));

    let engine = QueryEngine::new(populated_tsdb());
    let expr = parse(QUERY).unwrap();
    group.bench_function("instant_query", |b| {
        b.iter(|| black_box(engine.instant(&expr, 3_600_000).unwrap()))
    });

    // A graph panel's workload: 60 steps over 30 minutes.
    group.bench_function("range_query_30m_step30s", |b| {
        b.iter(|| black_box(engine.range(&expr, 1_800_000, 3_600_000, 30_000).unwrap()))
    });
    group.finish();
}

/// The replaced implementation of `aggregate_over_time`: for every union
/// timestamp, reverse-scan every series for its latest value — quadratic in
/// points per series.  Kept here as the bench baseline.
fn naive_aggregate_over_time(
    results: &[teemon_tsdb::QueryResult],
    op: AggregateOp,
) -> Vec<(u64, f64)> {
    let mut timestamps: Vec<u64> =
        results.iter().flat_map(|r| r.points.iter().map(|(t, _)| *t)).collect();
    timestamps.sort_unstable();
    timestamps.dedup();
    timestamps
        .into_iter()
        .filter_map(|ts| {
            let values: Vec<f64> = results
                .iter()
                .filter_map(|r| r.points.iter().rev().find(|(t, _)| *t <= ts).map(|(_, v)| *v))
                .collect();
            op.apply(&values).map(|v| (ts, v))
        })
        .collect()
}

/// The cross-series aggregation walk over staggered series whose timestamps
/// never coincide — the worst case for the union walk, and the shape that
/// exposed the former quadratic per-timestamp reverse scan (benchmarked here
/// as `naive` against the per-series forward-cursor rewrite).
fn bench_aggregate_over_time(c: &mut Criterion) {
    let staggered = |series_count: u64, points: u64| {
        let db = TimeSeriesDb::new();
        for series in 0..series_count {
            for t in 0..points {
                db.append(
                    "m",
                    &Labels::from_pairs([("s", format!("{series}"))]),
                    t * 1_000 + series,
                    t as f64,
                );
            }
        }
        db.query_range(&Selector::metric("m"), 0, u64::MAX)
    };
    let mut group = c.benchmark_group("micro/aggregate_over_time");
    group.sample_size(10);
    // Head-to-head on a shape small enough for the quadratic baseline.
    let results = staggered(16, 256);
    group.bench_function("cursors_16x256", |b| {
        b.iter(|| black_box(query::aggregate_over_time(&results, AggregateOp::Sum)))
    });
    group.bench_function("naive_16x256", |b| {
        b.iter(|| black_box(naive_aggregate_over_time(&results, AggregateOp::Sum)))
    });
    // The cursor walk at dashboard scale.
    let results = staggered(64, 512);
    group.bench_function("cursors_64x512", |b| {
        b.iter(|| black_box(query::aggregate_over_time(&results, AggregateOp::Sum)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_hooks, bench_exposition, bench_scrape_paths, bench_query_engine,
        bench_aggregate_over_time
}
criterion_main!(benches);
