//! Microbenchmarks of TEEMon's own machinery (ablation of the overhead
//! figures): hook dispatch with and without attached programs, exposition
//! encoding/parsing, TSDB ingestion and scraping.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use teemon_exporters::{EbpfExporter, Exporter, SgxExporter};
use teemon_kernel_sim::process::ProcessKind;
use teemon_kernel_sim::{Kernel, Syscall};
use teemon_metrics::{exposition, Labels, Registry};
use teemon_tsdb::{MetricsEndpoint, ScrapeTargetConfig, Scraper, TimeSeriesDb};

fn bench_hooks(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/syscall_dispatch");
    group.sample_size(30);

    // Monitoring OFF: no programs attached — the instrumentation-free baseline.
    let kernel_off = Kernel::new();
    let pid_off = kernel_off.spawn_process("redis-server", ProcessKind::User, 1);
    group.bench_function("monitoring_off", |b| {
        b.iter(|| black_box(kernel_off.syscall(pid_off, Syscall::Read, false)))
    });

    // eBPF ON: the standard program set observes every syscall.
    let kernel_on = Kernel::new();
    let _exporter = EbpfExporter::attach(&kernel_on, "bench-node");
    let pid_on = kernel_on.spawn_process("redis-server", ProcessKind::User, 1);
    group.bench_function("ebpf_on", |b| {
        b.iter(|| black_box(kernel_on.syscall(pid_on, Syscall::Read, false)))
    });
    group.finish();
}

fn bench_exposition(c: &mut Criterion) {
    let registry = Registry::new();
    let counters = registry.counter_family("teemon_syscalls_total", "syscalls");
    for syscall in ["read", "write", "futex", "clock_gettime", "epoll_wait", "sendto"] {
        counters.with(&Labels::from_pairs([("syscall", syscall)])).inc_by(1234.0);
    }
    let text = exposition::encode_text(&registry.gather());

    let mut group = c.benchmark_group("micro/exposition");
    group.bench_function("encode", |b| {
        b.iter(|| black_box(exposition::encode_text(&registry.gather())))
    });
    group.bench_function("parse", |b| b.iter(|| black_box(exposition::parse_text(&text).unwrap())));
    group.finish();
}

fn bench_scrape(c: &mut Criterion) {
    let kernel = Kernel::new();
    kernel.sgx_driver().create_enclave(1, 16 << 20, 4).unwrap();
    let sgx = SgxExporter::new(kernel.sgx_driver().clone(), "bench-node");
    let db = TimeSeriesDb::new();
    let scraper = Scraper::new(db);
    struct Endpoint(SgxExporter);
    impl MetricsEndpoint for Endpoint {
        fn scrape(&self) -> Result<String, String> {
            Ok(self.0.render())
        }
    }
    scraper.add_target(
        ScrapeTargetConfig::new("sgx_exporter", "bench-node:9090"),
        Arc::new(Endpoint(sgx)),
    );

    let mut now = 0u64;
    c.bench_function("micro/scrape_sgx_exporter", |b| {
        b.iter(|| {
            now += 5_000;
            black_box(scraper.scrape_once(now))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_hooks, bench_exposition, bench_scrape
}
criterion_main!(benches);
