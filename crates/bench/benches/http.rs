//! HTTP serving-edge benchmarks (`micro/http`): concurrent remote-write
//! ingest and range-query throughput through a real loopback
//! [`teemon_server::Server`], plus the cost of the overload contract —
//! the latency of a shed 503 while the in-flight gate is saturated at 4×
//! capacity (the O(1) answer the edge owes clients it cannot serve).
//!
//! Set `TEEMON_BENCH_SMOKE=1` (as CI does) to shrink request counts for a
//! fast correctness pass.

use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use teemon_server::{http_get, http_post, percent_encode, HttpLimits, Server, ServerConfig};
use teemon_tsdb::TimeSeriesDb;

fn smoke() -> bool {
    std::env::var_os("TEEMON_BENCH_SMOKE").is_some()
}

fn sample_count() -> usize {
    if smoke() {
        2
    } else {
        20
    }
}

/// Loopback clients all share one IP, so the per-client limiter must be
/// effectively off for throughput runs to measure the edge, not the bucket.
fn open_config() -> ServerConfig {
    ServerConfig { rate_per_sec: 1e12, burst: 1e12, ..ServerConfig::default() }
}

/// A remote-write batch: `series` samples across 8 families, text format.
fn batch_doc(series: usize, timestamp_ms: u64) -> String {
    let mut doc = String::with_capacity(series * 64);
    for i in 0..series {
        doc.push_str(&format!(
            "bench_http_metric_{}{{node=\"node-{}\",idx=\"{i}\"}} {} {timestamp_ms}\n",
            i % 8,
            i % 64,
            i as f64,
        ));
    }
    doc
}

/// `threads` clients each push `requests` batches of `series` samples.
fn concurrent_ingest(
    addr: std::net::SocketAddr,
    threads: usize,
    requests: usize,
    series: usize,
    clock: &AtomicU64,
) {
    let workers: Vec<_> = (0..threads)
        .map(|_| {
            let now = clock.fetch_add(5_000, Ordering::Relaxed);
            std::thread::spawn(move || {
                for r in 0..requests {
                    let doc = batch_doc(series, now + r as u64);
                    let resp = http_post(addr, "/api/v1/write", "text/plain", doc.as_bytes())
                        .expect("push batch");
                    assert_eq!(resp.status, 200, "{}", resp.body_text());
                }
            })
        })
        .collect();
    for worker in workers {
        worker.join().expect("ingest worker");
    }
}

/// Concurrent remote-write ingest: 4 clients pushing 100-sample batches.
fn bench_ingest(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/http");
    group.sample_size(sample_count());
    let server =
        Server::start("127.0.0.1:0", open_config(), TimeSeriesDb::new()).expect("bind loopback");
    let addr = server.addr();
    let clock = AtomicU64::new(0);
    let (threads, requests, series) = if smoke() { (2, 2, 16) } else { (4, 8, 100) };
    group.bench_function(format!("ingest_{threads}x{requests}x{series}"), |b| {
        b.iter(|| concurrent_ingest(addr, threads, requests, series, &clock))
    });
    group.finish();
    server.shutdown();
}

/// Concurrent range queries over pre-ingested series.
fn bench_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/http");
    group.sample_size(sample_count());
    let server =
        Server::start("127.0.0.1:0", open_config(), TimeSeriesDb::new()).expect("bind loopback");
    let addr = server.addr();
    // 12 rounds of history for the queries to chew on.
    let series = if smoke() { 16 } else { 200 };
    for t in 0..12u64 {
        let doc = batch_doc(series, t * 5_000);
        http_post(addr, "/api/v1/write", "text/plain", doc.as_bytes()).expect("seed push");
    }
    let query = percent_encode("sum by (node) (rate(bench_http_metric_0[30s]))");
    let path = format!("/api/v1/query_range?query={query}&start=0&end=55&step=5");
    let threads = if smoke() { 2 } else { 4 };
    let requests = if smoke() { 2 } else { 8 };
    group.bench_function(format!("query_range_{threads}x{requests}"), |b| {
        b.iter(|| {
            let workers: Vec<_> = (0..threads)
                .map(|_| {
                    let path = path.clone();
                    std::thread::spawn(move || {
                        for _ in 0..requests {
                            let resp = http_get(addr, &path).expect("range query");
                            assert_eq!(resp.status, 200, "{}", resp.body_text());
                            black_box(resp.body.len());
                        }
                    })
                })
                .collect();
            for worker in workers {
                worker.join().expect("query worker");
            }
        })
    });
    group.finish();
    server.shutdown();
}

/// Shed latency at 4× overload: every in-flight slot is held by a stalled
/// client, three more waves of hogs are already shed, and the measured
/// request must still get its 503 + Retry-After in O(1).
fn bench_shed(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/http");
    group.sample_size(sample_count());
    let capacity = 4;
    let config = ServerConfig {
        max_inflight: capacity,
        // The hogs must out-stall the measurement window.
        limits: HttpLimits { header_timeout_ms: 120_000, ..HttpLimits::default() },
        ..open_config()
    };
    let server = Server::start("127.0.0.1:0", config, TimeSeriesDb::new()).expect("bind loopback");
    let addr = server.addr();
    // 4× overload: capacity hogs hold every slot, 3× capacity more arrive
    // and are shed before the measurement starts.
    let hogs: Vec<TcpStream> = (0..capacity * 4)
        .map(|_| {
            let mut hog = TcpStream::connect(addr).expect("hog connects");
            hog.write_all(b"GET /healthz HTT").expect("partial request");
            hog
        })
        .collect();
    std::thread::sleep(std::time::Duration::from_millis(100));
    // The gate is full: the measured request is refused, cheaply.
    let probe = http_get(addr, "/healthz").expect("shed response parses");
    assert_eq!(probe.status, 503, "gate must be saturated before measuring");
    group.bench_function(format!("shed_503_at_4x_overload_cap{capacity}"), |b| {
        b.iter(|| {
            let resp = http_get(addr, "/healthz").expect("shed response");
            assert_eq!(resp.status, 503);
            black_box(resp.status)
        })
    });
    group.finish();
    drop(hogs);
    server.shutdown();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_ingest, bench_query, bench_shed
}
criterion_main!(benches);
