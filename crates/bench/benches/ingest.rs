//! Ingest fast-lane microbenchmarks (`micro/ingest`): one full scrape round
//! — collect, ingest, meta-metrics — through the cached shard-batched path
//! ([`IngestMode::FastLane`], the default) versus the retained per-sample
//! path ([`IngestMode::PerSample`]: merge target labels + key-hashed
//! `append` per sample, what every round paid before the cache existed), at
//! 1 k and 10 k series per round, plus a churn scenario where 5 % of the
//! series change identity every round and the cache must repair itself.
//!
//! Set `TEEMON_BENCH_SMOKE=1` (as CI does) to shrink the series counts and
//! sample counts for a fast correctness pass.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use parking_lot::Mutex;
use std::hint::black_box;
use teemon_metrics::{FamilySnapshot, Labels, MetricKind, MetricPoint, PointValue};
use teemon_tsdb::{
    IngestMode, MetricsEndpoint, ScrapeError, ScrapeTargetConfig, Scraper, TimeSeriesDb,
};

fn smoke() -> bool {
    std::env::var_os("TEEMON_BENCH_SMOKE").is_some()
}

fn sample_count() -> usize {
    if smoke() {
        2
    } else {
        20
    }
}

fn series_counts() -> &'static [usize] {
    if smoke() {
        &[256]
    } else {
        &[1_000, 10_000]
    }
}

/// `count` gauge series shaped like a monitored node: 8 metric families,
/// series spread over 64 node labels.
fn families(count: usize) -> Vec<FamilySnapshot> {
    let mut families: Vec<FamilySnapshot> = (0..8)
        .map(|m| FamilySnapshot::new(format!("teemon_metric_{m}"), "generated", MetricKind::Gauge))
        .collect();
    for i in 0..count {
        let labels =
            Labels::from_pairs([("node", format!("node-{}", i % 64)), ("idx", format!("{i}"))]);
        families[i % 8].points.push(MetricPoint::new(labels, PointValue::Gauge(i as f64)));
    }
    families
}

/// Steady-state endpoint: refreshes gauge values in place, the series set
/// never changes (the scrape cache hits every round).
struct SteadyEndpoint(Mutex<Vec<FamilySnapshot>>);

impl MetricsEndpoint for SteadyEndpoint {
    fn scrape(&self) -> Result<Vec<FamilySnapshot>, ScrapeError> {
        Ok(self.0.lock().clone())
    }

    fn scrape_visit(&self, visit: &mut dyn FnMut(&[FamilySnapshot])) -> Result<(), ScrapeError> {
        let mut families = self.0.lock();
        for family in families.iter_mut() {
            for point in &mut family.points {
                if let PointValue::Gauge(v) = &mut point.value {
                    *v += 1.0;
                }
            }
        }
        visit(&families);
        Ok(())
    }
}

/// Churn endpoint: every round, a rotating window of `churn` series swaps
/// its `gen` label (cycling through 8 values), so the cached round shape
/// breaks and the fast lane must run its repair pass each round.
struct ChurnEndpoint {
    families: Mutex<Vec<FamilySnapshot>>,
    round: AtomicU64,
    churn: usize,
}

impl MetricsEndpoint for ChurnEndpoint {
    fn scrape(&self) -> Result<Vec<FamilySnapshot>, ScrapeError> {
        Ok(self.families.lock().clone())
    }

    fn scrape_visit(&self, visit: &mut dyn FnMut(&[FamilySnapshot])) -> Result<(), ScrapeError> {
        let round = self.round.fetch_add(1, Ordering::Relaxed);
        let mut families = self.families.lock();
        let points = &mut families[0].points;
        let len = points.len();
        let start = (round as usize).wrapping_mul(self.churn) % len.max(1);
        for i in 0..self.churn.min(len) {
            let point = &mut points[(start + i) % len];
            point.labels.insert("gen", format!("g{}", round % 8));
            if let PointValue::Gauge(v) = &mut point.value {
                *v += 1.0;
            }
        }
        visit(&families);
        Ok(())
    }
}

fn scraper_with(endpoint: Arc<dyn MetricsEndpoint>, mode: IngestMode) -> (Scraper, AtomicU64) {
    let scraper = Scraper::new(TimeSeriesDb::new()).with_ingest_mode(mode);
    scraper.add_target(
        ScrapeTargetConfig::new("bench_exporter", "node-1:9999").with_label("node", "node-1"),
        endpoint,
    );
    // Warm up: build the scrape cache / create every series, then one
    // steady round so both modes start from identical conditions.
    let clock = AtomicU64::new(0);
    for _ in 0..2 {
        scraper.scrape_round(clock.fetch_add(5_000, Ordering::Relaxed) + 5_000);
    }
    (scraper, clock)
}

/// One full steady-state scrape round per iteration.
fn bench_steady(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/ingest");
    group.sample_size(sample_count());
    for &count in series_counts() {
        let tag = if count >= 1_000 { format!("{}k", count / 1_000) } else { format!("{count}") };
        for (mode, mode_tag) in
            [(IngestMode::FastLane, "fast_lane"), (IngestMode::PerSample, "per_sample")]
        {
            let endpoint = Arc::new(SteadyEndpoint(Mutex::new(families(count))));
            let (scraper, clock) = scraper_with(endpoint, mode);
            group.bench_function(format!("steady_{tag}/{mode_tag}"), |b| {
                b.iter(|| {
                    let now = clock.fetch_add(5_000, Ordering::Relaxed) + 5_000;
                    black_box(scraper.scrape_round(now))
                })
            });
        }
    }
    group.finish();
}

/// A round with 5 % series churn: the fast lane pays a cache repair every
/// round and must still beat re-keying all samples.
fn bench_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/ingest");
    group.sample_size(sample_count());
    let count = if smoke() { 256 } else { 1_000 };
    let churn = (count / 20).max(1);
    for (mode, mode_tag) in
        [(IngestMode::FastLane, "fast_lane"), (IngestMode::PerSample, "per_sample")]
    {
        let endpoint = Arc::new(ChurnEndpoint {
            families: Mutex::new(families(count)),
            round: AtomicU64::new(0),
            churn,
        });
        let (scraper, clock) = scraper_with(endpoint, mode);
        group.bench_function(format!("churn_5pct_1k/{mode_tag}"), |b| {
            b.iter(|| {
                let now = clock.fetch_add(5_000, Ordering::Relaxed) + 5_000;
                black_box(scraper.scrape_round(now))
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_steady, bench_churn
}
criterion_main!(benches);
