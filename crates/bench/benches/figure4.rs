//! Figure 4: CPU and memory footprint of TEEMon's components over 24 hours.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use teemon::experiments;
use teemon_bench::format_figure4;

fn bench(c: &mut Criterion) {
    // Regenerate and print the figure once.
    println!("{}", format_figure4(&experiments::figure4(24.0)));

    c.bench_function("figure4/footprints_24h", |b| {
        b.iter(|| black_box(experiments::figure4(black_box(24.0))))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
