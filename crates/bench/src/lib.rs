//! Benchmark harness shared by the Criterion benches and the `figures`
//! binary.
//!
//! Every table and figure of the paper's evaluation has a corresponding bench
//! target (`cargo bench -p teemon-bench --bench figureN`) and can also be
//! printed as a table with `cargo run -p teemon-bench --bin figures -- figN`.
//! The benches print the regenerated rows once and then time a representative
//! slice of the experiment so `cargo bench` both regenerates the data and
//! reports stable timings.

#![warn(missing_docs)]

use teemon::experiments::{self, Fig11Row, Fig5Row, Fig6Row, Fig7Row, FrameworkSweepRow};
use teemon::overhead::ComponentFootprint;

/// Number of sampled requests per configuration used when the benches print
/// their tables (kept moderate so `cargo bench` finishes quickly; the figures
/// binary accepts a `--samples` override for tighter estimates).
pub const BENCH_SAMPLES: u64 = 1_200;

/// Formats Figure 4 as an aligned table.
pub fn format_figure4(rows: &[ComponentFootprint]) -> String {
    let mut out = String::from("Figure 4: CPU and memory footprint of TEEMon components (24 h)\n");
    out.push_str(&format!("{:<16} {:>10} {:>12}\n", "component", "cpu [%]", "memory [MB]"));
    for row in rows {
        out.push_str(&format!(
            "{:<16} {:>10.2} {:>12.1}\n",
            row.component, row.cpu_percent, row.memory_mb
        ));
    }
    let total_mem: f64 = rows.iter().map(|r| r.memory_mb).sum();
    out.push_str(&format!("{:<16} {:>10} {:>12.1}\n", "total", "", total_mem));
    out
}

/// Formats Figure 5 as an aligned table.
pub fn format_figure5(rows: &[Fig5Row]) -> String {
    let mut out =
        String::from("Figure 5: throughput under monitoring, normalised to native SGX (OFF)\n");
    out.push_str(&format!(
        "{:<10} {:<28} {:>14} {:>12}\n",
        "app", "configuration", "IOP/s", "normalized"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:<10} {:<28} {:>14.0} {:>12.3}\n",
            row.app, row.configuration, row.throughput_iops, row.normalized
        ));
    }
    out
}

/// Formats Figure 6 as an aligned table.
pub fn format_figure6(rows: &[Fig6Row]) -> String {
    let mut out = String::from("Figure 6: syscall occurrences per second, Redis under SCONE\n");
    out.push_str(&format!("{:<12} {:<16} {:>16}\n", "commit", "syscall", "calls/s"));
    for row in rows {
        out.push_str(&format!("{:<12} {:<16} {:>16.1}\n", row.commit, row.syscall, row.per_second));
    }
    out
}

/// Formats Figure 7 as an aligned table.
pub fn format_figure7(rows: &[Fig7Row]) -> String {
    let mut out = String::from("Figure 7: Redis throughput across SCONE code evolution\n");
    out.push_str(&format!("{:<14} {:>16}\n", "configuration", "IOP/s"));
    for row in rows {
        out.push_str(&format!("{:<14} {:>16.0}\n", row.configuration, row.throughput_iops));
    }
    out
}

/// Formats the Figures 8/9/10 sweep as an aligned table.
pub fn format_sweep(title: &str, rows: &[FrameworkSweepRow]) -> String {
    let mut out = format!("{title}\n");
    out.push_str(&format!(
        "{:<14} {:>8} {:>12} {:>12} {:>14}\n",
        "framework", "db [MB]", "connections", "KIOP/s", "latency [ms]"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:<14} {:>8} {:>12} {:>12.1} {:>14.2}\n",
            row.framework, row.database_mb, row.connections, row.kiops, row.latency_ms
        ));
    }
    out
}

/// Formats Figure 11 as an aligned table.
pub fn format_figure11(rows: &[Fig11Row]) -> String {
    let mut out = String::from(
        "Figure 11: metric rates per 100 GET requests (a: user PF, b: total PF, c: LLC misses,\n            d: evicted EPC pages, e: ctx switches PID, f: ctx switches host)\n",
    );
    out.push_str(&format!(
        "{:<14} {:>6} {:>6} {:>10} {:>10} {:>12} {:>10} {:>10} {:>10}\n",
        "framework",
        "conns",
        "db MB",
        "user PF",
        "total PF",
        "LLC misses",
        "evicted",
        "cs PID",
        "cs host"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:<14} {:>6} {:>6} {:>10.3} {:>10.1} {:>12.1} {:>10.2} {:>10.2} {:>10.2}\n",
            row.framework,
            row.connections,
            row.database_mb,
            row.rates.user_page_faults,
            row.rates.total_page_faults,
            row.rates.llc_misses,
            row.rates.evicted_epc_pages,
            row.rates.context_switches_pid,
            row.rates.context_switches_host,
        ));
    }
    out
}

/// Regenerates every figure with `samples` sampled requests per configuration
/// and returns the full report text (used by the `figures` binary with no
/// argument and by `EXPERIMENTS.md`).
pub fn full_report(samples: u64) -> String {
    let mut out = String::new();
    out.push_str(&format_figure4(&experiments::figure4(24.0)));
    out.push('\n');
    out.push_str(&format_figure5(&experiments::figure5(samples)));
    out.push('\n');
    out.push_str(&format_figure6(&experiments::figure6(samples)));
    out.push('\n');
    out.push_str(&format_figure7(&experiments::figure7(samples)));
    out.push('\n');
    let sweep = experiments::figure8_9(samples, &experiments::PAPER_CONNECTIONS);
    out.push_str(&format_sweep("Figures 8 & 9: Redis under each SGX framework", &sweep));
    out.push('\n');
    let fig10: Vec<_> = sweep.iter().filter(|r| r.database_mb == 78).cloned().collect();
    out.push_str(&format_sweep("Figure 10: head-to-head at 78 MB", &fig10));
    out.push('\n');
    out.push_str(&format_figure11(&experiments::figure11(samples)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure4_table_renders() {
        let table = format_figure4(&experiments::figure4(24.0));
        assert!(table.contains("prometheus"));
        assert!(table.contains("total"));
    }

    #[test]
    fn sweep_table_renders() {
        let rows = experiments::figure8_9(150, &[8]);
        let table = format_sweep("test", &rows);
        assert!(table.contains("graphene-sgx"));
        assert!(table.lines().count() >= rows.len() + 2);
    }
}
