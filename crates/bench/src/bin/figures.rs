//! Regenerates the paper's tables and figures on stdout.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p teemon-bench --bin figures             # everything
//! cargo run --release -p teemon-bench --bin figures -- fig8     # one figure
//! cargo run --release -p teemon-bench --bin figures -- fig11 --samples 5000
//! cargo run --release -p teemon-bench --bin figures -- fig5 --json
//! ```

use teemon::experiments::{self, PAPER_CONNECTIONS};
use teemon_bench::{
    format_figure11, format_figure4, format_figure5, format_figure6, format_figure7, format_sweep,
    full_report, BENCH_SAMPLES,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut figure: Option<String> = None;
    let mut samples = BENCH_SAMPLES;
    let mut json = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--samples" => {
                samples = iter.next().and_then(|v| v.parse().ok()).unwrap_or(BENCH_SAMPLES);
            }
            "--json" => json = true,
            "--help" | "-h" => {
                eprintln!("usage: figures [fig4|fig5|fig6|fig7|fig8|fig9|fig10|fig11|all] [--samples N] [--json]");
                return;
            }
            other => figure = Some(other.to_string()),
        }
    }

    match figure.as_deref().unwrap_or("all") {
        "fig4" | "figure4" => {
            let rows = experiments::figure4(24.0);
            if json {
                println!("{}", experiments::to_json(&rows));
            } else {
                println!("{}", format_figure4(&rows));
            }
        }
        "fig5" | "figure5" => {
            let rows = experiments::figure5(samples);
            if json {
                println!("{}", experiments::to_json(&rows));
            } else {
                println!("{}", format_figure5(&rows));
            }
        }
        "fig6" | "figure6" => {
            let rows = experiments::figure6(samples);
            if json {
                println!("{}", experiments::to_json(&rows));
            } else {
                println!("{}", format_figure6(&rows));
            }
        }
        "fig7" | "figure7" => {
            let rows = experiments::figure7(samples);
            if json {
                println!("{}", experiments::to_json(&rows));
            } else {
                println!("{}", format_figure7(&rows));
            }
        }
        "fig8" | "fig9" | "figure8" | "figure9" => {
            let rows = experiments::figure8_9(samples, &PAPER_CONNECTIONS);
            if json {
                println!("{}", experiments::to_json(&rows));
            } else {
                println!(
                    "{}",
                    format_sweep("Figures 8 & 9: Redis under each SGX framework", &rows)
                );
            }
        }
        "fig10" | "figure10" => {
            let rows = experiments::figure10(samples, &PAPER_CONNECTIONS);
            if json {
                println!("{}", experiments::to_json(&rows));
            } else {
                println!("{}", format_sweep("Figure 10: head-to-head at 78 MB", &rows));
            }
        }
        "fig11" | "figure11" => {
            let rows = experiments::figure11(samples);
            if json {
                println!("{}", experiments::to_json(&rows));
            } else {
                println!("{}", format_figure11(&rows));
            }
        }
        "all" => {
            println!("{}", full_report(samples));
        }
        other => {
            eprintln!("unknown figure {other:?}; try --help");
            std::process::exit(1);
        }
    }
}
