//! The serving loop: accept → shed → limit → deadline-read → panic-shielded
//! handler → write, plus graceful drain.
//!
//! The layer order is the resilience contract:
//!
//! ```text
//! accept
//!   └─ in-flight gate ──── full → 503 before a single request byte is
//!   │                      parsed (overload costs O(1) per connection)
//!   └─ deadline reader ──── slow-loris → 408 · torn/garbage → 400 ·
//!   │                       oversized → 413 (all typed, never a panic)
//!   └─ per-client limiter ─ empty bucket → 429 + Retry-After, close
//!   └─ panic shield ─────── handler panic → 500, connection closed,
//!   │                       server keeps serving
//!   └─ response writer
//! ```
//!
//! Shutdown stops accepting, lets in-flight connections drain under a
//! deadline, then flushes the WAL so remote-written samples are durable.
//!
//! [`ServerCore`] is the transport-free heart of all of this: the tests
//! drive it directly with [`MockConn`](crate::conn::MockConn)s, and
//! [`Server`] is the thin TCP skin over it.

use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use teemon_obs::{probes, Stopwatch};
use teemon_tsdb::scrape::PushLane;
use teemon_tsdb::{CardinalityBudgets, ScrapeTargetConfig, TimeSeriesDb};

use crate::conn::{Conn, TcpConn};
use crate::handlers::{route, HandlerCtx};
use crate::http::{read_request, HttpLimits, ReadError, Response};
use crate::middleware::{InflightGate, RateDecision, RateLimiter};

/// Tuning knobs of the serving edge.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Maximum concurrently served connections; beyond this the acceptor
    /// sheds with 503.
    pub max_inflight: usize,
    /// Sustained per-client request rate.
    pub rate_per_sec: f64,
    /// Per-client burst allowance.
    pub burst: f64,
    /// Request read limits and deadlines.
    pub limits: HttpLimits,
    /// How long [`Server::shutdown`] waits for in-flight connections.
    pub drain_timeout_ms: u64,
    /// Enables `GET /panic` for the resilience tests.
    pub panic_route: bool,
    /// Per-request series cap on `/api/v1/write` (`None` = unlimited): a
    /// body with more distinct series than this is refused whole with a
    /// typed 429 — the cardinality defense at the request boundary.
    pub write_series_budget: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            max_inflight: 64,
            rate_per_sec: 50.0,
            burst: 100.0,
            limits: HttpLimits::default(),
            drain_timeout_ms: 5_000,
            panic_route: false,
            write_series_budget: None,
        }
    }
}

/// The transport-independent serving core: middleware state plus the
/// per-connection loop.  [`Server`] drives it from TCP; tests drive it from
/// [`MockConn`](crate::conn::MockConn)s.
pub struct ServerCore {
    config: ServerConfig,
    db: TimeSeriesDb,
    limiter: RateLimiter,
    gate: InflightGate,
    shutdown: AtomicBool,
    epoch: Stopwatch,
    budgets: Option<Arc<CardinalityBudgets>>,
}

impl ServerCore {
    /// Builds the middleware state for `config` over `db`.
    pub fn new(config: ServerConfig, db: TimeSeriesDb) -> Self {
        let limiter = RateLimiter::new(config.rate_per_sec, config.burst);
        let gate = InflightGate::new(config.max_inflight);
        Self {
            config,
            db,
            limiter,
            gate,
            shutdown: AtomicBool::new(false),
            epoch: Stopwatch::start(),
            budgets: None,
        }
    }

    /// Draws every connection's push-lane admissions from `budgets`'s shared
    /// per-job pool (the same pool a [`teemon_tsdb::scrape::Scraper`] can
    /// share), so remote writers and scrape targets compete for one
    /// cardinality budget.
    #[must_use]
    pub fn with_budgets(mut self, budgets: Arc<CardinalityBudgets>) -> Self {
        self.budgets = Some(budgets);
        self
    }

    /// The database this edge feeds and queries.
    pub fn db(&self) -> &TimeSeriesDb {
        &self.db
    }

    /// The in-flight gate (the acceptor and the drain loop poll it).
    pub fn gate(&self) -> &InflightGate {
        &self.gate
    }

    /// The per-client rate limiter.
    pub fn limiter(&self) -> &RateLimiter {
        &self.limiter
    }

    /// The server's monotonic epoch (stamps connection clocks).
    pub fn epoch(&self) -> Stopwatch {
        self.epoch
    }

    /// Flips the shutdown flag: the accept loop stops admitting and serving
    /// loops close their connection after the current request.
    pub fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has begun.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Serves one connection to completion: the keep-alive loop with every
    /// middleware layer applied.  Never panics and never returns an error —
    /// all failure modes end in a best-effort response and a closed
    /// connection.
    pub fn serve_connection(&self, conn: &mut dyn Conn) {
        probes::HTTP_CONNECTIONS.inc();
        let mut lane = PushLane::new(
            self.db.clone(),
            &ScrapeTargetConfig::new("remote_write", conn.peer().to_string()),
        );
        if let Some(budgets) = &self.budgets {
            lane = lane.with_budgets(Arc::clone(budgets));
        }
        let mut carry: Vec<u8> = Vec::new();
        loop {
            if self.is_shutting_down() {
                break;
            }

            let request = match read_request(conn, &self.config.limits, &mut carry) {
                Ok(Some(request)) => request,
                Ok(None) => break, // clean keep-alive EOF
                Err(ReadError::Timeout { phase }) => {
                    probes::HTTP_SLOW_CLIENTS.inc();
                    let resp = Response::text(408, format!("timed out reading request {phase}\n"));
                    count_status(resp.status);
                    let _ = resp.write_to(conn, true);
                    break;
                }
                Err(ReadError::Malformed(reason)) => {
                    probes::HTTP_MALFORMED.inc();
                    let resp = Response::text(400, format!("malformed request: {reason}\n"));
                    count_status(resp.status);
                    let _ = resp.write_to(conn, true);
                    break;
                }
                Err(ReadError::Oversized { what, limit }) => {
                    probes::HTTP_OVERSIZED.inc();
                    let resp = Response::text(
                        413,
                        format!("request {what} over the {limit}-byte limit\n"),
                    );
                    count_status(resp.status);
                    let _ = resp.write_to(conn, true);
                    break;
                }
                Err(ReadError::Io(_)) => break, // transport gone; nothing to say
            };

            probes::HTTP_REQUESTS.inc();

            // One token per parsed request.  Charging *after* the read keeps
            // keep-alive EOF probes free; the parse cost an abusive client
            // can inflict first is already bounded by the size limits and
            // deadlines above.
            if let RateDecision::Limited { retry_after_secs } =
                self.limiter.check(conn.peer(), conn.now_ms())
            {
                probes::HTTP_RATE_LIMITED.inc();
                let resp = Response::text(429, "rate limit exceeded\n")
                    .with_header("Retry-After", retry_after_secs.to_string());
                count_status(resp.status);
                let _ = resp.write_to(conn, true);
                break;
            }

            let watch = Stopwatch::start();
            let now_ms = conn.now_ms();
            let shield = catch_unwind(AssertUnwindSafe(|| {
                route(
                    &request,
                    &mut HandlerCtx {
                        db: &self.db,
                        lane: &mut lane,
                        now_ms,
                        panic_route: self.config.panic_route,
                        write_series_budget: self.config.write_series_budget,
                    },
                )
            }));
            let (response, close) = match shield {
                Ok(response) => {
                    let close = request.wants_close || self.is_shutting_down();
                    (response, close)
                }
                Err(_) => {
                    // The handler panicked.  The shield converts it into a
                    // 500 and closes this connection; the server, the
                    // database and every other connection keep running.
                    probes::HTTP_PANICS.inc();
                    (Response::text(500, "internal error: handler panicked\n"), true)
                }
            };
            count_status(response.status);
            probes::HTTP_REQUEST_NS.record_ns(watch.elapsed_ns());
            if self.is_shutting_down() {
                probes::HTTP_DRAINED.inc();
            }
            if response.write_to(conn, close).is_err() || close {
                break;
            }
        }
    }
}

/// Bumps the per-class response counter.
fn count_status(status: u16) {
    match status {
        200..=299 => probes::HTTP_RESPONSES_2XX.inc(),
        400..=499 => probes::HTTP_RESPONSES_4XX.inc(),
        500..=599 => probes::HTTP_RESPONSES_5XX.inc(),
        _ => {}
    }
}

/// The TCP serving edge: a listener, an acceptor thread and one worker
/// thread per admitted connection, all over a shared [`ServerCore`].
pub struct Server {
    addr: SocketAddr,
    core: Arc<ServerCore>,
    acceptor: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`) and starts accepting.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn start(addr: &str, config: ServerConfig, db: TimeSeriesDb) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let core = Arc::new(ServerCore::new(config, db));
        let loop_core = Arc::clone(&core);
        let acceptor = thread::Builder::new()
            .name("teemon-http-accept".to_string())
            .spawn(move || accept_loop(&listener, &loop_core))?;
        Ok(Self { addr: local, core, acceptor: Some(acceptor) })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared serving core.
    pub fn core(&self) -> &Arc<ServerCore> {
        &self.core
    }

    /// The database this edge feeds and queries.
    pub fn db(&self) -> &TimeSeriesDb {
        self.core.db()
    }

    /// Graceful shutdown: stop accepting, drain in-flight connections under
    /// the configured deadline, then flush the WAL so remote-written
    /// samples are durable.  Returns `true` when the drain completed before
    /// the deadline (connections still running after it are abandoned — the
    /// process may exit under them).
    pub fn shutdown(mut self) -> bool {
        self.core.begin_shutdown();
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        let deadline = Stopwatch::start();
        let budget_ns = self.core.config.drain_timeout_ms.saturating_mul(1_000_000);
        while self.core.gate.in_flight() > 0 && deadline.elapsed_ns() < budget_ns {
            thread::sleep(Duration::from_millis(2));
        }
        let drained = self.core.gate.in_flight() == 0;
        self.core.db.wal_flush();
        drained
    }
}

/// The accept loop: shed at the gate, otherwise hand the stream to a worker
/// thread owning its permit.
fn accept_loop(listener: &TcpListener, core: &Arc<ServerCore>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if core.is_shutting_down() {
                    return;
                }
                continue;
            }
        };
        if core.is_shutting_down() {
            return;
        }
        match core.gate.try_acquire() {
            None => shed(stream),
            Some(permit) => {
                let worker_core = Arc::clone(core);
                let epoch = core.epoch();
                let spawned = thread::Builder::new().name("teemon-http-worker".to_string()).spawn(
                    move || {
                        let mut conn = TcpConn::new(stream, epoch);
                        worker_core.serve_connection(&mut conn);
                        drop(permit);
                    },
                );
                // Spawn failure (thread exhaustion) degrades to a shed; the
                // permit releases on drop.
                if spawned.is_err() {
                    probes::HTTP_SHED.inc();
                }
            }
        }
    }
}

/// Refuses a connection with an O(1) 503 — no parsing, no worker thread.
fn shed(mut stream: TcpStream) {
    use std::io::Read;
    probes::HTTP_SHED.inc();
    count_status(503);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(200)));
    // One bounded read to swallow the in-flight request bytes: closing with
    // unread inbound data makes the kernel RST the connection, which would
    // destroy the 503 before the client reads it.  The bytes are discarded
    // unparsed — overload still costs O(1).
    let mut sink = [0u8; 1024];
    let _ = stream.read(&mut sink);
    let _ = stream.write_all(
        b"HTTP/1.1 503 Service Unavailable\r\nRetry-After: 1\r\nContent-Length: 0\r\nConnection: close\r\n\r\n",
    );
    let _ = stream.shutdown(std::net::Shutdown::Write);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conn::MockConn;

    #[test]
    fn core_serves_a_request_from_a_mock_connection() {
        let core = ServerCore::new(ServerConfig::default(), TimeSeriesDb::new());
        let mut conn = MockConn::with_bytes(b"GET /healthz HTTP/1.1\r\n\r\n".to_vec());
        core.serve_connection(&mut conn);
        assert!(conn.written_text().starts_with("HTTP/1.1 200 OK"));
    }

    #[test]
    fn keep_alive_serves_multiple_requests_on_one_connection() {
        let core = ServerCore::new(ServerConfig::default(), TimeSeriesDb::new());
        let mut conn = MockConn::with_bytes(
            b"GET /healthz HTTP/1.1\r\n\r\nGET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n"
                .to_vec(),
        );
        core.serve_connection(&mut conn);
        let text = conn.written_text();
        assert_eq!(text.matches("HTTP/1.1 200 OK").count(), 2, "{text}");
    }

    #[test]
    fn shutdown_flag_closes_before_reading_another_request() {
        let core = ServerCore::new(ServerConfig::default(), TimeSeriesDb::new());
        core.begin_shutdown();
        let mut conn = MockConn::with_bytes(b"GET /healthz HTTP/1.1\r\n\r\n".to_vec());
        core.serve_connection(&mut conn);
        assert!(conn.written().is_empty(), "no request is read once draining");
    }
}
