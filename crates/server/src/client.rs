//! A minimal blocking HTTP/1.1 client for the serving edge's consumers:
//! the self-scrape text source, the end-to-end example, the tests and the
//! benchmark.  One request per connection (`Connection: close`), which
//! keeps the parser trivial — read to EOF, split head from body.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed response.
#[derive(Debug)]
pub struct HttpResponse {
    /// Status code from the status line.
    pub status: u16,
    /// Headers with lower-cased names.
    pub headers: Vec<(String, String)>,
    /// The response body.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// First header value with this (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers.iter().find(|(n, _)| *n == name).map(|(_, v)| v.as_str())
    }

    /// The body as text.
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Issues a `GET` for `path_and_query` (already percent-encoded).
///
/// # Errors
///
/// Propagates transport failures and malformed responses as `io::Error`.
pub fn http_get(addr: SocketAddr, path_and_query: &str) -> io::Result<HttpResponse> {
    request(addr, "GET", path_and_query, None, &[])
}

/// Issues a `POST` with the given body.
///
/// # Errors
///
/// Propagates transport failures and malformed responses as `io::Error`.
pub fn http_post(
    addr: SocketAddr,
    path_and_query: &str,
    content_type: &str,
    body: &[u8],
) -> io::Result<HttpResponse> {
    request(addr, "POST", path_and_query, Some(content_type), body)
}

fn request(
    addr: SocketAddr,
    method: &str,
    path_and_query: &str,
    content_type: Option<&str>,
    body: &[u8],
) -> io::Result<HttpResponse> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    stream.set_write_timeout(Some(Duration::from_secs(10)))?;
    let mut head =
        format!("{method} {path_and_query} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n");
    if let Some(ct) = content_type {
        head.push_str(&format!("Content-Type: {ct}\r\n"));
    }
    head.push_str(&format!("Content-Length: {}\r\n\r\n", body.len()));
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
}

fn parse_response(raw: &[u8]) -> io::Result<HttpResponse> {
    let bad = |why: &str| io::Error::new(io::ErrorKind::InvalidData, why.to_string());
    let header_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| bad("response has no header terminator"))?;
    let head = std::str::from_utf8(raw.get(..header_end).unwrap_or_default())
        .map_err(|_| bad("response head is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or_else(|| bad("empty response head"))?;
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| bad("bad status line"))?;
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(n, v)| (n.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    let body = raw.get(header_end + 4..).unwrap_or_default().to_vec();
    Ok(HttpResponse { status, headers, body })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_response() {
        let raw =
            b"HTTP/1.1 429 Too Many Requests\r\nRetry-After: 2\r\nContent-Length: 3\r\n\r\nno\n";
        let resp = parse_response(raw).unwrap();
        assert_eq!(resp.status, 429);
        assert_eq!(resp.header("retry-after"), Some("2"));
        assert_eq!(resp.header("Retry-After"), Some("2"));
        assert_eq!(resp.body_text(), "no\n");
    }

    #[test]
    fn garbage_is_an_error_not_a_panic() {
        assert!(parse_response(b"not http at all").is_err());
        assert!(parse_response(b"HTTP/1.1 abc\r\n\r\n").is_err());
    }
}
