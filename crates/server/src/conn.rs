//! The connection abstraction the middleware stack is written against.
//!
//! Every layer — deadline reads, request parsing, response writes — talks to
//! a [`Conn`], not a `TcpStream`.  Production uses [`TcpConn`]; the test
//! suite uses [`MockConn`], an in-memory connection with a scripted byte
//! stream and a **virtual clock**, so slow-loris timeouts, torn requests and
//! partial reads are exercised deterministically without sleeping (the
//! `FaultFs` idiom from the durability tier, applied to sockets).

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use teemon_obs::Stopwatch;

/// A bidirectional byte stream with deadline support and a millisecond
/// clock.  The clock is *the connection's* view of time: real for TCP,
/// virtual for mocks, which is what makes timeout tests deterministic.
pub trait Conn {
    /// Reads into `buf`, honouring the configured read timeout.  Returns
    /// `Ok(0)` at end of stream and `ErrorKind::TimedOut`/`WouldBlock` when
    /// the timeout elapses first.
    fn read_bytes(&mut self, buf: &mut [u8]) -> io::Result<usize>;

    /// Writes the whole buffer.
    fn write_all_bytes(&mut self, buf: &[u8]) -> io::Result<()>;

    /// Arms (or clears) the timeout applied to subsequent reads.
    fn set_read_timeout_ms(&mut self, timeout_ms: Option<u64>) -> io::Result<()>;

    /// The peer address as `ip:port` (rate limiting keys on the ip part).
    fn peer(&self) -> &str;

    /// Milliseconds on this connection's clock.  Monotonic; the epoch is
    /// arbitrary but fixed for the connection's lifetime.
    fn now_ms(&self) -> u64;
}

/// A real TCP connection: wraps the stream, caches the peer string and
/// reads time from the server's monotonic epoch.
pub struct TcpConn {
    stream: TcpStream,
    peer: String,
    epoch: Stopwatch,
}

impl TcpConn {
    /// Wraps an accepted stream.  `epoch` is the server's start stopwatch so
    /// every connection reports the same timeline.
    pub fn new(stream: TcpStream, epoch: Stopwatch) -> Self {
        let peer = match stream.peer_addr() {
            Ok(addr) => addr.to_string(),
            Err(_) => "unknown".to_string(),
        };
        Self { stream, peer, epoch }
    }
}

impl Conn for TcpConn {
    fn read_bytes(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.stream.read(buf)
    }

    fn write_all_bytes(&mut self, buf: &[u8]) -> io::Result<()> {
        self.stream.write_all(buf)
    }

    fn set_read_timeout_ms(&mut self, timeout_ms: Option<u64>) -> io::Result<()> {
        // A zero Duration means "no timeout" to the OS; the caller's zero
        // means "deadline already passed", so clamp to one millisecond.
        let timeout = timeout_ms.map(|ms| Duration::from_millis(ms.max(1)));
        self.stream.set_read_timeout(timeout)
    }

    fn peer(&self) -> &str {
        &self.peer
    }

    fn now_ms(&self) -> u64 {
        self.epoch.elapsed_ns() / 1_000_000
    }
}

/// One scripted event on a [`MockConn`]'s inbound stream.
#[derive(Debug, Clone)]
pub enum MockStep {
    /// Bytes that arrive (possibly a partial request — the parser must
    /// reassemble across chunks).
    Chunk(Vec<u8>),
    /// The client goes quiet for this many virtual milliseconds.  If the
    /// armed read timeout is shorter, the read times out.
    StallMs(u64),
    /// The client closes its write half; reads return `Ok(0)` from here on.
    Eof,
}

/// An in-memory [`Conn`] with a scripted inbound stream and virtual clock.
///
/// Reads consume the script: chunks are returned (respecting the caller's
/// buffer size, so partial reads happen naturally), stalls advance the
/// virtual clock and trip armed timeouts, `Eof` ends the stream.  Writes
/// accumulate in [`MockConn::written`] for assertions.
pub struct MockConn {
    steps: std::collections::VecDeque<MockStep>,
    /// Read offset into the front chunk.
    chunk_pos: usize,
    written: Vec<u8>,
    clock_ms: u64,
    read_timeout_ms: Option<u64>,
    peer: String,
}

impl MockConn {
    /// Builds a connection that will replay `steps` to the reader.
    pub fn new(steps: Vec<MockStep>) -> Self {
        Self {
            steps: steps.into(),
            chunk_pos: 0,
            written: Vec::new(),
            clock_ms: 0,
            read_timeout_ms: None,
            peer: "198.51.100.7:4242".to_string(),
        }
    }

    /// A connection that sends `bytes` then EOF — the common happy path.
    pub fn with_bytes(bytes: impl Into<Vec<u8>>) -> Self {
        Self::new(vec![MockStep::Chunk(bytes.into()), MockStep::Eof])
    }

    /// Overrides the reported peer address.
    #[must_use]
    pub fn with_peer(mut self, peer: impl Into<String>) -> Self {
        self.peer = peer.into();
        self
    }

    /// Everything the server wrote to this connection.
    pub fn written(&self) -> &[u8] {
        &self.written
    }

    /// The written bytes as text (responses are ASCII).
    pub fn written_text(&self) -> String {
        String::from_utf8_lossy(&self.written).into_owned()
    }
}

impl Conn for MockConn {
    fn read_bytes(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        loop {
            let Some(step) = self.steps.front() else {
                return Ok(0);
            };
            match step {
                MockStep::Eof => return Ok(0),
                MockStep::Chunk(bytes) => {
                    let Some(rest) = bytes.get(self.chunk_pos..) else {
                        self.steps.pop_front();
                        self.chunk_pos = 0;
                        continue;
                    };
                    if rest.is_empty() {
                        self.steps.pop_front();
                        self.chunk_pos = 0;
                        continue;
                    }
                    let n = rest.len().min(buf.len());
                    let Some(dst) = buf.get_mut(..n) else {
                        return Ok(0);
                    };
                    let Some(src) = rest.get(..n) else {
                        return Ok(0);
                    };
                    dst.copy_from_slice(src);
                    self.chunk_pos += n;
                    return Ok(n);
                }
                MockStep::StallMs(stall) => {
                    let stall = *stall;
                    match self.read_timeout_ms {
                        Some(timeout) if stall >= timeout => {
                            // The armed timeout elapses mid-stall: time
                            // advances by the timeout and the read fails,
                            // exactly like an OS socket would.
                            self.clock_ms += timeout;
                            self.steps.pop_front();
                            return Err(io::Error::new(
                                io::ErrorKind::TimedOut,
                                "mock stall outlived read timeout",
                            ));
                        }
                        _ => {
                            self.clock_ms += stall;
                            self.steps.pop_front();
                        }
                    }
                }
            }
        }
    }

    fn write_all_bytes(&mut self, buf: &[u8]) -> io::Result<()> {
        self.written.extend_from_slice(buf);
        Ok(())
    }

    fn set_read_timeout_ms(&mut self, timeout_ms: Option<u64>) -> io::Result<()> {
        self.read_timeout_ms = timeout_ms;
        Ok(())
    }

    fn peer(&self) -> &str {
        &self.peer
    }

    fn now_ms(&self) -> u64 {
        self.clock_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mock_conn_replays_chunks_respecting_buffer_size() {
        let mut conn = MockConn::new(vec![
            MockStep::Chunk(b"hello ".to_vec()),
            MockStep::Chunk(b"world".to_vec()),
            MockStep::Eof,
        ]);
        let mut buf = [0u8; 4];
        let mut collected = Vec::new();
        loop {
            let n = conn.read_bytes(&mut buf).unwrap();
            if n == 0 {
                break;
            }
            collected.extend_from_slice(&buf[..n]);
        }
        assert_eq!(collected, b"hello world");
    }

    #[test]
    fn stall_shorter_than_timeout_just_advances_the_clock() {
        let mut conn = MockConn::new(vec![
            MockStep::StallMs(50),
            MockStep::Chunk(b"x".to_vec()),
            MockStep::Eof,
        ]);
        conn.set_read_timeout_ms(Some(100)).unwrap();
        let mut buf = [0u8; 8];
        assert_eq!(conn.read_bytes(&mut buf).unwrap(), 1);
        assert_eq!(conn.now_ms(), 50);
    }

    #[test]
    fn stall_longer_than_timeout_times_out_at_the_timeout() {
        let mut conn = MockConn::new(vec![MockStep::StallMs(5_000), MockStep::Eof]);
        conn.set_read_timeout_ms(Some(200)).unwrap();
        let mut buf = [0u8; 8];
        let err = conn.read_bytes(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        assert_eq!(conn.now_ms(), 200, "the clock advances by the timeout, not the stall");
    }

    #[test]
    fn writes_accumulate_for_assertions() {
        let mut conn = MockConn::with_bytes(b"".to_vec());
        conn.write_all_bytes(b"HTTP/1.1 200 OK\r\n").unwrap();
        assert!(conn.written_text().starts_with("HTTP/1.1 200"));
    }
}
