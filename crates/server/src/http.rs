//! Hand-rolled HTTP/1.1 on top of [`Conn`]: deadline-bounded request
//! reading and response writing.
//!
//! The build environment has no async runtime or HTTP stack, so the wire
//! protocol is implemented directly — which is also what makes the
//! resilience contract checkable: every byte read passes through the
//! per-phase deadlines and size limits in [`read_request`], and every
//! failure maps to a typed [`ReadError`] (never a panic), which the serving
//! loop converts into the contractual status code: 400 malformed, 408 slow
//! client, 413 oversized.
//!
//! Deliberate simplifications, rejected rather than mis-parsed: chunked
//! transfer encoding is refused (400).  Bytes past `Content-Length` (a
//! pipelined next request, or the tail of a previous over-read) travel in
//! the caller's `carry` buffer to the next [`read_request`] call.

use std::io;

use crate::conn::Conn;

/// Size and time limits applied while reading one request.
#[derive(Debug, Clone, Copy)]
pub struct HttpLimits {
    /// Maximum bytes of request line + headers.
    pub max_header_bytes: usize,
    /// Maximum bytes of body (`Content-Length` above this is refused).
    pub max_body_bytes: usize,
    /// Budget for receiving the complete header block.
    pub header_timeout_ms: u64,
    /// Budget for receiving the complete body.
    pub body_timeout_ms: u64,
}

impl Default for HttpLimits {
    fn default() -> Self {
        Self {
            max_header_bytes: 8 * 1024,
            max_body_bytes: 1024 * 1024,
            header_timeout_ms: 2_000,
            body_timeout_ms: 5_000,
        }
    }
}

/// Why a request could not be read.  Each variant maps to one status code
/// in the overload-behaviour contract.
#[derive(Debug)]
pub enum ReadError {
    /// The bytes are not a well-formed HTTP/1.x request → 400.
    Malformed(String),
    /// A size limit was exceeded → 413.
    Oversized {
        /// Which limit: `"header"` or `"body"`.
        what: &'static str,
        /// The configured limit in bytes.
        limit: usize,
    },
    /// A read deadline elapsed (slow-loris) → 408.
    Timeout {
        /// Which phase stalled: `"header"` or `"body"`.
        phase: &'static str,
    },
    /// The transport failed; no response can be written.
    Io(io::Error),
}

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Upper-case method as sent (`GET`, `POST`, ...).
    pub method: String,
    /// Percent-decoded path (`/api/v1/query`).
    pub path: String,
    /// Percent-decoded query parameters in order of appearance.
    pub query: Vec<(String, String)>,
    /// Headers with lower-cased names and trimmed values.
    pub headers: Vec<(String, String)>,
    /// The request body (exactly `Content-Length` bytes).
    pub body: Vec<u8>,
    /// True when the client asked for the connection to be closed after
    /// this request (`Connection: close`, or HTTP/1.0).
    pub wants_close: bool,
}

impl Request {
    /// First header value with this (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers.iter().find(|(n, _)| *n == name).map(|(_, v)| v.as_str())
    }

    /// First query parameter with this name.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }
}

/// Reads one request from the connection under the given limits.  `carry`
/// holds bytes read past the previous request's end (pipelining); surplus
/// bytes from this request are left in it for the next call.
///
/// Returns `Ok(None)` on a clean end-of-stream before any request byte (the
/// normal end of a keep-alive connection).
///
/// # Errors
///
/// [`ReadError::Malformed`] for protocol violations (including EOF inside a
/// request), [`ReadError::Oversized`] when a size limit trips,
/// [`ReadError::Timeout`] when a phase deadline elapses, [`ReadError::Io`]
/// when the transport fails.
pub fn read_request(
    conn: &mut dyn Conn,
    limits: &HttpLimits,
    carry: &mut Vec<u8>,
) -> Result<Option<Request>, ReadError> {
    let mut buf: Vec<u8> = std::mem::take(carry);
    let header_deadline = conn.now_ms().saturating_add(limits.header_timeout_ms);

    // Phase 1: accumulate bytes until the blank line ending the header
    // block, under the header deadline and size limit.
    let (header_end, body_start) = loop {
        if let Some(found) = find_header_end(&buf) {
            break found;
        }
        if buf.len() > limits.max_header_bytes {
            return Err(ReadError::Oversized { what: "header", limit: limits.max_header_bytes });
        }
        let n = read_some(conn, header_deadline, "header", &mut buf)?;
        if n == 0 {
            if buf.is_empty() {
                return Ok(None);
            }
            return Err(ReadError::Malformed("connection closed mid-header".to_string()));
        }
    };
    if header_end > limits.max_header_bytes {
        return Err(ReadError::Oversized { what: "header", limit: limits.max_header_bytes });
    }

    let head_bytes = buf.get(..header_end).unwrap_or_default();
    let head = std::str::from_utf8(head_bytes)
        .map_err(|_| ReadError::Malformed("header block is not valid UTF-8".to_string()))?;
    let mut lines = head.split('\n').map(|l| l.trim_end_matches('\r'));
    let request_line =
        lines.next().ok_or_else(|| ReadError::Malformed("empty header block".to_string()))?;

    let mut parts = request_line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m, t, v),
        _ => {
            return Err(ReadError::Malformed(format!(
                "request line is not `METHOD TARGET VERSION`: {request_line:?}"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ReadError::Malformed(format!("unsupported protocol {version:?}")));
    }

    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let path = percent_decode(raw_path);
    let query: Vec<(String, String)> = raw_query
        .split('&')
        .filter(|p| !p.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(pair), String::new()),
        })
        .collect();

    let mut headers: Vec<(String, String)> = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ReadError::Malformed(format!("header line without colon: {line:?}")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let header_value =
        |name: &str| headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str());

    if let Some(te) = header_value("transfer-encoding") {
        if te.to_ascii_lowercase().contains("chunked") {
            return Err(ReadError::Malformed(
                "chunked transfer encoding is not supported".to_string(),
            ));
        }
    }

    let content_length = match header_value("content-length") {
        Some(v) => v
            .trim()
            .parse::<usize>()
            .map_err(|_| ReadError::Malformed(format!("invalid Content-Length {v:?}")))?,
        None => 0,
    };
    if content_length > limits.max_body_bytes {
        return Err(ReadError::Oversized { what: "body", limit: limits.max_body_bytes });
    }

    // Phase 2: the body, under its own deadline.
    let mut body: Vec<u8> = buf.get(body_start..).unwrap_or_default().to_vec();
    let body_deadline = conn.now_ms().saturating_add(limits.body_timeout_ms);
    while body.len() < content_length {
        let n = read_some(conn, body_deadline, "body", &mut body)?;
        if n == 0 {
            return Err(ReadError::Malformed("connection closed mid-body".to_string()));
        }
    }
    // Bytes past Content-Length belong to the next pipelined request: hand
    // them to the next read_request call through `carry`.
    *carry = body.split_off(content_length);

    let version_close = version == "HTTP/1.0";
    let connection_close =
        header_value("connection").is_some_and(|v| v.to_ascii_lowercase().contains("close"));

    Ok(Some(Request {
        method: method.to_string(),
        path,
        query,
        headers,
        body,
        wants_close: version_close || connection_close,
    }))
}

/// One deadline-bounded read appended to `into`.  Maps timeout errors to
/// [`ReadError::Timeout`] and other transport errors to [`ReadError::Io`].
fn read_some(
    conn: &mut dyn Conn,
    deadline_ms: u64,
    phase: &'static str,
    into: &mut Vec<u8>,
) -> Result<usize, ReadError> {
    let remaining = deadline_ms.saturating_sub(conn.now_ms());
    if remaining == 0 {
        return Err(ReadError::Timeout { phase });
    }
    conn.set_read_timeout_ms(Some(remaining)).map_err(ReadError::Io)?;
    let mut tmp = [0u8; 4096];
    loop {
        match conn.read_bytes(&mut tmp) {
            Ok(n) => {
                into.extend_from_slice(tmp.get(..n).unwrap_or_default());
                return Ok(n);
            }
            Err(e)
                if e.kind() == io::ErrorKind::TimedOut || e.kind() == io::ErrorKind::WouldBlock =>
            {
                return Err(ReadError::Timeout { phase });
            }
            // EINTR: retry; the armed timeout still bounds total time.
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(ReadError::Io(e)),
        }
    }
}

/// Finds the end of the header block: `(bytes before the blank line, offset
/// of the first body byte)`.  Accepts both CRLF and bare-LF line endings.
fn find_header_end(buf: &[u8]) -> Option<(usize, usize)> {
    let crlf = buf.windows(4).position(|w| w == b"\r\n\r\n").map(|i| (i, i + 4));
    let lf = buf.windows(2).position(|w| w == b"\n\n").map(|i| (i, i + 2));
    match (crlf, lf) {
        (Some((c, cb)), Some((l, lb))) => {
            if c <= l {
                Some((c, cb))
            } else {
                Some((l, lb))
            }
        }
        (found, None) | (None, found) => found,
    }
}

/// Decodes `%XX` escapes and `+`-as-space.  Invalid escapes pass through
/// literally — a malformed escape in a query string should produce a query
/// parse error downstream, not a connection-level 400.
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while let Some(&b) = bytes.get(i) {
        match b {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => match (
                bytes.get(i + 1).copied().and_then(hexval),
                bytes.get(i + 2).copied().and_then(hexval),
            ) {
                (Some(hi), Some(lo)) => {
                    out.push(hi * 16 + lo);
                    i += 3;
                }
                _ => {
                    out.push(b'%');
                    i += 1;
                }
            },
            other => {
                out.push(other);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn hexval(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

/// Percent-encodes a string for use as a query parameter value.
pub fn percent_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for &b in s.as_bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char);
            }
            _ => {
                out.push('%');
                out.push(
                    char::from_digit(u32::from(b >> 4), 16).unwrap_or('0').to_ascii_uppercase(),
                );
                out.push(
                    char::from_digit(u32::from(b & 0xf), 16).unwrap_or('0').to_ascii_uppercase(),
                );
            }
        }
    }
    out
}

/// One response about to be written.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Extra headers (`Content-Type`, `Content-Length` and `Connection` are
    /// emitted automatically).
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A `text/plain` response.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            headers: vec![("Content-Type".to_string(), "text/plain; charset=utf-8".to_string())],
            body: body.into().into_bytes(),
        }
    }

    /// An `application/json` response.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            headers: vec![("Content-Type".to_string(), "application/json".to_string())],
            body: body.into().into_bytes(),
        }
    }

    /// A text-exposition response (`/metrics`).
    pub fn metrics(body: impl Into<String>) -> Self {
        Self {
            status: 200,
            headers: vec![(
                "Content-Type".to_string(),
                "text/plain; version=0.0.4; charset=utf-8".to_string(),
            )],
            body: body.into().into_bytes(),
        }
    }

    /// Adds a header.
    #[must_use]
    pub fn with_header(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// Serialises status line, headers and body and writes them to the
    /// connection.  `close` controls the `Connection` header.
    ///
    /// # Errors
    ///
    /// Propagates transport errors from the connection.
    pub fn write_to(&self, conn: &mut dyn Conn, close: bool) -> io::Result<()> {
        let mut head = format!("HTTP/1.1 {} {}\r\n", self.status, status_text(self.status));
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str(&format!("Content-Length: {}\r\n", self.body.len()));
        head.push_str(if close { "Connection: close\r\n" } else { "Connection: keep-alive\r\n" });
        head.push_str("\r\n");
        conn.write_all_bytes(head.as_bytes())?;
        conn.write_all_bytes(&self.body)
    }
}

/// Reason phrase for the status codes the serving edge emits.
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        204 => "No Content",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Status",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conn::{MockConn, MockStep};

    fn read(conn: &mut MockConn) -> Result<Option<Request>, ReadError> {
        read_request(conn, &HttpLimits::default(), &mut Vec::new())
    }

    #[test]
    fn parses_a_get_with_query_parameters() {
        let mut conn = MockConn::with_bytes(
            b"GET /api/v1/query?query=up%7Bjob%3D%22a%22%7D&time=5 HTTP/1.1\r\nHost: x\r\n\r\n"
                .to_vec(),
        );
        let req = read(&mut conn).unwrap().unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/api/v1/query");
        assert_eq!(req.query_param("query"), Some(r#"up{job="a"}"#));
        assert_eq!(req.query_param("time"), Some("5"));
        assert!(!req.wants_close);
    }

    #[test]
    fn parses_a_post_with_body_across_chunks() {
        let mut conn = MockConn::new(vec![
            MockStep::Chunk(
                b"POST /api/v1/write HTTP/1.1\r\nContent-Length: 11\r\n\r\nhel".to_vec(),
            ),
            MockStep::Chunk(b"lo".to_vec()),
            MockStep::Chunk(b" world!".to_vec()),
            MockStep::Eof,
        ]);
        let mut carry = Vec::new();
        let req = read_request(&mut conn, &HttpLimits::default(), &mut carry).unwrap().unwrap();
        assert_eq!(req.body, b"hello world");
        assert_eq!(carry, b"!", "surplus bytes travel to the next call");
    }

    #[test]
    fn pipelined_requests_parse_back_to_back() {
        let mut conn =
            MockConn::with_bytes(b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n".to_vec());
        let mut carry = Vec::new();
        let limits = HttpLimits::default();
        let first = read_request(&mut conn, &limits, &mut carry).unwrap().unwrap();
        assert_eq!(first.path, "/a");
        let second = read_request(&mut conn, &limits, &mut carry).unwrap().unwrap();
        assert_eq!(second.path, "/b");
        assert!(read_request(&mut conn, &limits, &mut carry).unwrap().is_none());
    }

    #[test]
    fn clean_eof_before_any_byte_is_none() {
        let mut conn = MockConn::new(vec![MockStep::Eof]);
        assert!(read(&mut conn).unwrap().is_none());
    }

    #[test]
    fn torn_header_is_malformed_not_a_panic() {
        let mut conn = MockConn::new(vec![MockStep::Chunk(b"GET / HT".to_vec()), MockStep::Eof]);
        assert!(matches!(read(&mut conn), Err(ReadError::Malformed(_))));
    }

    #[test]
    fn header_stall_times_out_in_the_header_phase() {
        let mut conn = MockConn::new(vec![
            MockStep::Chunk(b"GET / HTTP/1.1\r\n".to_vec()),
            MockStep::StallMs(10_000),
        ]);
        let err = read(&mut conn).unwrap_err();
        assert!(matches!(err, ReadError::Timeout { phase: "header" }));
    }

    #[test]
    fn body_stall_times_out_in_the_body_phase() {
        let mut conn = MockConn::new(vec![
            MockStep::Chunk(b"POST / HTTP/1.1\r\nContent-Length: 5\r\n\r\nab".to_vec()),
            MockStep::StallMs(60_000),
        ]);
        let err = read(&mut conn).unwrap_err();
        assert!(matches!(err, ReadError::Timeout { phase: "body" }));
    }

    #[test]
    fn oversized_content_length_is_refused_before_reading_the_body() {
        let mut conn =
            MockConn::with_bytes(b"POST / HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n".to_vec());
        assert!(matches!(read(&mut conn), Err(ReadError::Oversized { what: "body", .. })));
    }

    #[test]
    fn header_flood_is_refused_at_the_header_limit() {
        let mut steps = vec![MockStep::Chunk(b"GET / HTTP/1.1\r\n".to_vec())];
        for _ in 0..2_000 {
            steps.push(MockStep::Chunk(b"X-Flood: aaaaaaaaaaaaaaaaaaaaaaaa\r\n".to_vec()));
        }
        let mut conn = MockConn::new(steps);
        assert!(matches!(read(&mut conn), Err(ReadError::Oversized { what: "header", .. })));
    }

    #[test]
    fn chunked_transfer_encoding_is_rejected() {
        let mut conn =
            MockConn::with_bytes(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n".to_vec());
        assert!(matches!(read(&mut conn), Err(ReadError::Malformed(_))));
    }

    #[test]
    fn connection_close_and_http10_want_close() {
        let mut conn =
            MockConn::with_bytes(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n".to_vec());
        assert!(read(&mut conn).unwrap().unwrap().wants_close);
        let mut conn = MockConn::with_bytes(b"GET / HTTP/1.0\r\n\r\n".to_vec());
        assert!(read(&mut conn).unwrap().unwrap().wants_close);
    }

    #[test]
    fn percent_roundtrip() {
        let original = r#"sum by (node) (rate(x_total[30s])) > 0.5"#;
        assert_eq!(percent_decode(&percent_encode(original)), original);
        assert_eq!(percent_decode("a+b%20c"), "a b c");
        assert_eq!(percent_decode("100%"), "100%", "invalid escape passes through");
    }

    #[test]
    fn response_writes_status_line_headers_and_body() {
        let mut conn = MockConn::new(vec![MockStep::Eof]);
        Response::json(200, r#"{"ok":true}"#).write_to(&mut conn, true).unwrap();
        let text = conn.written_text();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Type: application/json\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with(r#"{"ok":true}"#));
    }
}
