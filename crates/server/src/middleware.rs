//! The resilience middleware: per-client rate limiting and bounded
//! in-flight concurrency.
//!
//! Both layers are deliberately boring data structures behind **named**
//! locks (`server.limiter`, `server.inflight`) so the lock-order audit and
//! contention probes see them like any other engine lock.  Decisions are
//! pure functions of `(state, now_ms)` — time is always passed in, which is
//! what lets the unit tests drive them with a virtual clock.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::{LockClass, Mutex};
use teemon_obs::probes;

/// Verdict of the rate limiter for one request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RateDecision {
    /// Under the limit; a token was consumed.
    Allow,
    /// Over the limit → 429 with this `Retry-After` hint in seconds.
    Limited {
        /// Whole seconds until a token will be available (at least 1).
        retry_after_secs: u64,
    },
}

struct Bucket {
    tokens: f64,
    last_refill_ms: u64,
}

/// A per-client token bucket: `rate_per_sec` sustained, `burst` peak.
///
/// Clients are keyed by the ip part of the peer address, so a client
/// reconnecting from ephemeral ports keeps draining the same bucket.  The
/// table is bounded: past [`RateLimiter::MAX_CLIENTS`] buckets, entries idle
/// longer than [`RateLimiter::IDLE_EVICT_MS`] are evicted (full buckets
/// carry no history worth keeping).
pub struct RateLimiter {
    buckets: Mutex<HashMap<String, Bucket>>,
    rate_per_sec: f64,
    burst: f64,
}

impl RateLimiter {
    /// Bucket-table size beyond which idle entries are evicted.
    pub const MAX_CLIENTS: usize = 10_000;
    /// Idle time after which an entry is evictable (its bucket has long
    /// refilled to `burst`, so eviction loses nothing).
    pub const IDLE_EVICT_MS: u64 = 60_000;

    /// A limiter allowing `rate_per_sec` sustained requests per client with
    /// bursts up to `burst`.
    pub fn new(rate_per_sec: f64, burst: f64) -> Self {
        Self {
            buckets: Mutex::named(HashMap::new(), LockClass::new("server.limiter")),
            rate_per_sec: rate_per_sec.max(0.001),
            burst: burst.max(1.0),
        }
    }

    /// Charges one token to `peer` at `now_ms`.
    pub fn check(&self, peer: &str, now_ms: u64) -> RateDecision {
        let key = client_key(peer);
        let mut buckets = self.buckets.lock();
        if buckets.len() >= Self::MAX_CLIENTS && !buckets.contains_key(key) {
            buckets.retain(|_, b| now_ms.saturating_sub(b.last_refill_ms) < Self::IDLE_EVICT_MS);
        }
        let bucket = buckets
            .entry(key.to_string())
            .or_insert(Bucket { tokens: self.burst, last_refill_ms: now_ms });
        let elapsed_s = now_ms.saturating_sub(bucket.last_refill_ms) as f64 / 1e3;
        bucket.tokens = (bucket.tokens + elapsed_s * self.rate_per_sec).min(self.burst);
        bucket.last_refill_ms = now_ms;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            RateDecision::Allow
        } else {
            let deficit = 1.0 - bucket.tokens;
            let secs = (deficit / self.rate_per_sec).ceil().max(1.0);
            RateDecision::Limited { retry_after_secs: secs as u64 }
        }
    }

    /// Number of tracked clients (test/diagnostic hook).
    pub fn client_count(&self) -> usize {
        self.buckets.lock().len()
    }
}

/// The ip part of an `ip:port` peer string (handles `[v6]:port` too).
fn client_key(peer: &str) -> &str {
    match peer.rfind(':') {
        Some(i) => peer.get(..i).unwrap_or(peer),
        None => peer,
    }
}

/// Bounded in-flight concurrency: at most `max` connections are being
/// served at once; the acceptor sheds the rest with an O(1) 503 **before**
/// any request byte is parsed.
pub struct InflightGate {
    inner: Arc<Mutex<usize>>,
    max: usize,
}

impl InflightGate {
    /// A gate admitting at most `max` concurrent connections.
    pub fn new(max: usize) -> Self {
        Self {
            inner: Arc::new(Mutex::named(0, LockClass::new("server.inflight"))),
            max: max.max(1),
        }
    }

    /// Tries to enter the gate; `None` means shed.  The permit releases the
    /// slot (and updates the `teemon_http_inflight` gauge) on drop, so a
    /// panicking worker can never leak a slot.
    pub fn try_acquire(&self) -> Option<InflightPermit> {
        let mut count = self.inner.lock();
        if *count >= self.max {
            return None;
        }
        *count += 1;
        probes::HTTP_INFLIGHT.set(*count as f64);
        Some(InflightPermit { inner: Arc::clone(&self.inner) })
    }

    /// Connections currently admitted.
    pub fn in_flight(&self) -> usize {
        *self.inner.lock()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.max
    }
}

/// An admitted connection's slot; dropping it releases the slot.
pub struct InflightPermit {
    inner: Arc<Mutex<usize>>,
}

impl Drop for InflightPermit {
    fn drop(&mut self) {
        let mut count = self.inner.lock();
        *count = count.saturating_sub(1);
        probes::HTTP_INFLIGHT.set(*count as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_then_limit_then_refill() {
        let limiter = RateLimiter::new(10.0, 3.0);
        let peer = "10.0.0.1:5000";
        for _ in 0..3 {
            assert_eq!(limiter.check(peer, 0), RateDecision::Allow);
        }
        let RateDecision::Limited { retry_after_secs } = limiter.check(peer, 0) else {
            panic!("fourth request in the same instant must be limited");
        };
        assert!(retry_after_secs >= 1);
        // 100 ms refills one token at 10 rps.
        assert_eq!(limiter.check(peer, 100), RateDecision::Allow);
        assert!(matches!(limiter.check(peer, 100), RateDecision::Limited { .. }));
    }

    #[test]
    fn clients_are_keyed_by_ip_not_port() {
        let limiter = RateLimiter::new(1.0, 1.0);
        assert_eq!(limiter.check("10.0.0.1:1111", 0), RateDecision::Allow);
        assert!(
            matches!(limiter.check("10.0.0.1:2222", 0), RateDecision::Limited { .. }),
            "a reconnect from a fresh ephemeral port must not reset the budget"
        );
        assert_eq!(limiter.check("10.0.0.2:1111", 0), RateDecision::Allow);
        assert_eq!(limiter.client_count(), 2);
    }

    #[test]
    fn idle_clients_are_evicted_at_the_cap() {
        let limiter = RateLimiter::new(1000.0, 1000.0);
        for i in 0..RateLimiter::MAX_CLIENTS {
            limiter.check(&format!("10.1.{}.{}:1", i / 256, i % 256), 0);
        }
        assert_eq!(limiter.client_count(), RateLimiter::MAX_CLIENTS);
        // A new client far in the future evicts the idle ten thousand.
        limiter.check("203.0.113.9:1", RateLimiter::IDLE_EVICT_MS + 1);
        assert_eq!(limiter.client_count(), 1);
    }

    #[test]
    fn gate_admits_up_to_capacity_and_releases_on_drop() {
        let gate = InflightGate::new(2);
        let a = gate.try_acquire().expect("slot 1");
        let _b = gate.try_acquire().expect("slot 2");
        assert!(gate.try_acquire().is_none(), "third connection is shed");
        assert_eq!(gate.in_flight(), 2);
        drop(a);
        assert_eq!(gate.in_flight(), 1);
        assert!(gate.try_acquire().is_some());
    }

    #[test]
    fn gate_updates_the_inflight_gauge() {
        let gate = InflightGate::new(4);
        let permit = gate.try_acquire().expect("slot");
        assert!(probes::HTTP_INFLIGHT.get() >= 1.0);
        drop(permit);
    }
}
