//! The HTTP serving edge of the TEEMon reproduction.
//!
//! The paper's monitoring stack is consumed over HTTP: exporters expose
//! `/metrics`, Prometheus answers `/api/v1/query*`, Grafana renders on top
//! (§5).  This crate is that edge for the Rust engine — a dependency-free
//! HTTP/1.1 server over `std::net` exposing
//!
//! * **remote-write ingest** (`POST /api/v1/write`): exposition-text
//!   batches fed into the scraper fast lane through a per-connection
//!   [`teemon_tsdb::PushLane`],
//! * **TeeQL queries** (`GET /api/v1/query`, `GET /api/v1/query_range`):
//!   Prometheus-shaped JSON via [`teemon_query::json`],
//! * **text exposition** (`GET /metrics`): the local database federated
//!   outward, plus `GET /self/metrics` with the edge's own probes.
//!
//! The headline is the **resilience middleware stack** wrapped around every
//! connection (see [`server`] for the layer diagram): panic isolation,
//! per-client rate limiting, slow-loris deadlines, load shedding before
//! parsing, size limits, typed rejection of malformed bytes, and graceful
//! drain with a final WAL flush.  Every layer records into
//! [`teemon_obs::probes`] (`teemon_http_*`), so the edge is observable
//! through itself — scraped as the `teemon_http` self-target and alertable
//! via `teemon_query::self_observe_alerts`.

#![warn(missing_docs)]

pub mod client;
pub mod conn;
pub mod handlers;
pub mod http;
pub mod middleware;
pub mod server;

pub use client::{http_get, http_post, HttpResponse};
pub use conn::{Conn, MockConn, MockStep, TcpConn};
pub use http::{percent_encode, HttpLimits, ReadError, Request, Response};
pub use middleware::{InflightGate, RateDecision, RateLimiter};
pub use server::{Server, ServerConfig, ServerCore};
