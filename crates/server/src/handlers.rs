//! The route table behind the middleware stack.
//!
//! Three families of endpoints, all answering from the local node:
//!
//! | Endpoint              | Method | Role                                        |
//! |-----------------------|--------|---------------------------------------------|
//! | `/healthz`            | GET    | liveness probe                              |
//! | `/metrics`            | GET    | text exposition of the local TSDB           |
//! | `/self/metrics`       | GET    | the serving edge's own `teemon_http_*` probes |
//! | `/api/v1/write`       | POST   | remote-write ingest (exposition text body)  |
//! | `/api/v1/query`       | GET    | TeeQL instant query (JSON)                  |
//! | `/api/v1/query_range` | GET    | TeeQL range query (JSON)                    |
//!
//! Handlers run inside the serving loop's panic shield; they still must not
//! panic on *input* (that would be a 500 where the contract promises 4xx),
//! so every parse failure maps to a typed status here.

use std::collections::BTreeMap;

use teemon_metrics::exposition::{self, ParseLimits};
use teemon_metrics::{Collector, FamilySnapshot, MetricError, MetricKind, MetricPoint, PointValue};
use teemon_obs::{probes, ObsCollector};
use teemon_query::{json, QueryEngine};
use teemon_tsdb::scrape::PushLane;
use teemon_tsdb::{Selector, TimeSeriesDb};

use crate::http::{Request, Response};

/// Everything a handler may touch.  One per connection: the [`PushLane`]
/// carries the per-connection ingest cache.
pub struct HandlerCtx<'a> {
    /// The local database (shared, internally sharded).
    pub db: &'a TimeSeriesDb,
    /// This connection's remote-write fast lane.
    pub lane: &'a mut PushLane,
    /// Milliseconds on the server clock; stamps pushed samples.
    pub now_ms: u64,
    /// Enables `GET /panic` (used by the resilience tests to exercise the
    /// panic shield; off in production configs).
    pub panic_route: bool,
    /// Per-request series cap on `/api/v1/write`: a body carrying more
    /// distinct series than this is refused whole with a typed 429 before
    /// any of it reaches storage.  `None` is unlimited.
    pub write_series_budget: Option<u64>,
}

/// Dispatches one request.  Never returns an error: failures are encoded as
/// status codes per the overload-behaviour contract.
pub fn route(req: &Request, ctx: &mut HandlerCtx<'_>) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => Response::text(200, "ok\n"),
        ("GET", "/metrics") => metrics(ctx),
        ("GET", "/self/metrics") => self_metrics(),
        ("POST", "/api/v1/write") => write(req, ctx),
        ("GET", "/api/v1/query") => query(req, ctx),
        ("GET", "/api/v1/query_range") => query_range(req, ctx),
        ("GET", "/panic") if ctx.panic_route => {
            // teemon-verify: allow(no-panic): the deliberate panic route the resilience suite uses to prove the shield holds; config-gated, off by default
            panic!("deliberate panic requested via /panic")
        }
        (
            _,
            "/healthz"
            | "/metrics"
            | "/self/metrics"
            | "/api/v1/write"
            | "/api/v1/query"
            | "/api/v1/query_range",
        ) => Response::json(
            405,
            json::error_response("bad_data", &format!("method {} not allowed here", req.method)),
        ),
        _ => Response::json(404, json::error_response("bad_data", "unknown endpoint")),
    }
}

/// `GET /metrics` — the newest value of every stored series, grouped into
/// untyped families and rendered as exposition text.  This is the outbound
/// wire edge: a downstream Prometheus can federate the whole node from it.
fn metrics(ctx: &mut HandlerCtx<'_>) -> Response {
    let at_ms = ctx.db.newest_timestamp().unwrap_or(0);
    let results = ctx.db.query_instant(&Selector::all(), at_ms);
    let mut families: BTreeMap<String, FamilySnapshot> = BTreeMap::new();
    for result in results {
        let Some(&(timestamp_ms, value)) = result.points.last() else {
            continue;
        };
        families
            .entry(result.name.clone())
            .or_insert_with(|| {
                FamilySnapshot::new(result.name.clone(), "federated series", MetricKind::Untyped)
            })
            .points
            .push(MetricPoint {
                labels: result.labels,
                value: PointValue::Untyped(value),
                timestamp_ms: Some(timestamp_ms),
            });
    }
    let families: Vec<FamilySnapshot> = families.into_values().collect();
    Response::metrics(exposition::encode_text(&families))
}

/// `GET /self/metrics` — just the `teemon_http_*` probe families.  This is
/// what the `teemon_http` self-target scrapes; the full probe registry is
/// already exported by the monitor's `teemon_self` target, so exporting
/// only the HTTP families here avoids double-ingesting the rest.
fn self_metrics() -> Response {
    match ObsCollector::new().collect() {
        Ok(families) => {
            let http: Vec<FamilySnapshot> =
                families.into_iter().filter(|f| f.name.starts_with("teemon_http")).collect();
            Response::metrics(exposition::encode_text(&http))
        }
        Err(e) => Response::text(500, format!("self-collection failed: {e}\n")),
    }
}

/// `POST /api/v1/write` — remote-write ingest.  The body is an exposition
/// text document; samples land through the connection's [`PushLane`]
/// stamped with the server clock.
fn write(req: &Request, ctx: &mut HandlerCtx<'_>) -> Response {
    let Ok(text) = std::str::from_utf8(&req.body) else {
        return Response::json(400, json::error_response("bad_data", "body is not valid UTF-8"));
    };
    match exposition::parse_families_bounded(text, ParseLimits::network()) {
        Ok(families) => {
            // Cardinality defense, request-shaped: refuse a body whose series
            // count alone exceeds the per-request budget, before any of it
            // touches the lane or storage.  (Per-job budgets on the lane
            // itself clip finer-grained and report through `overflow`.)
            if let Some(budget) = ctx.write_series_budget {
                let series: u64 = families.iter().map(|f| f.points.len() as u64).sum();
                if series > budget {
                    probes::HTTP_CARDINALITY_REJECTED.inc();
                    return Response::json(
                        429,
                        json::error_response(
                            "too_many_series",
                            &format!(
                                "request carries {series} series, over job \"{}\"'s \
                                 per-request budget of {budget}",
                                ctx.lane.job()
                            ),
                        ),
                    );
                }
            }
            let outcome = ctx.lane.push(&families, ctx.now_ms);
            probes::HTTP_INGESTED_SAMPLES.add(outcome.ingested);
            if outcome.overflow > 0 {
                probes::HTTP_CARDINALITY_REJECTED.inc();
            }
            Response::json(
                200,
                format!(
                    r#"{{"status":"success","scraped":{},"ingested":{},"overflow":{}}}"#,
                    outcome.scraped, outcome.ingested, outcome.overflow
                ),
            )
        }
        Err(e @ MetricError::LimitExceeded { .. }) => {
            Response::json(413, json::error_response("bad_data", &e.to_string()))
        }
        Err(e) => Response::json(400, json::error_response("bad_data", &e.to_string())),
    }
}

/// `GET /api/v1/query?query=...&time=<seconds>` — TeeQL instant query.
fn query(req: &Request, ctx: &mut HandlerCtx<'_>) -> Response {
    let Some(expr) = req.query_param("query") else {
        return Response::json(400, json::error_response("bad_data", "missing `query` parameter"));
    };
    let at_ms = match req.query_param("time") {
        Some(t) => match parse_seconds(t) {
            Some(ms) => ms,
            None => {
                return Response::json(
                    400,
                    json::error_response("bad_data", &format!("invalid `time` value {t:?}")),
                )
            }
        },
        None => ctx.db.newest_timestamp().unwrap_or(0),
    };
    let engine = QueryEngine::new(ctx.db.clone());
    match engine.instant_query(expr, at_ms) {
        Ok(value) => Response::json(200, json::instant_response(&value, at_ms)),
        Err(e) => Response::json(400, json::error_response("bad_data", &e.to_string())),
    }
}

/// `GET /api/v1/query_range?query=...&start=..&end=..&step=..` (seconds).
fn query_range(req: &Request, ctx: &mut HandlerCtx<'_>) -> Response {
    let Some(expr) = req.query_param("query") else {
        return Response::json(400, json::error_response("bad_data", "missing `query` parameter"));
    };
    let (Some(start), Some(end), Some(step)) = (
        req.query_param("start").and_then(parse_seconds),
        req.query_param("end").and_then(parse_seconds),
        req.query_param("step").and_then(parse_seconds),
    ) else {
        return Response::json(
            400,
            json::error_response(
                "bad_data",
                "range queries need numeric `start`, `end`, `step` in seconds",
            ),
        );
    };
    if step == 0 || end < start {
        return Response::json(
            400,
            json::error_response("bad_data", "need step > 0 and end >= start"),
        );
    }
    let engine = QueryEngine::new(ctx.db.clone());
    match engine.range_query(expr, start, end, step) {
        Ok(series) => Response::json(200, json::range_response(&series)),
        Err(e) => Response::json(400, json::error_response("bad_data", &e.to_string())),
    }
}

/// Parses a decimal-seconds parameter into milliseconds.
fn parse_seconds(s: &str) -> Option<u64> {
    let v = s.trim().parse::<f64>().ok()?;
    if !v.is_finite() || v < 0.0 {
        return None;
    }
    Some((v * 1e3).round() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use teemon_metrics::Labels;
    use teemon_tsdb::ScrapeTargetConfig;

    fn ctx_parts() -> (TimeSeriesDb, PushLane) {
        let db = TimeSeriesDb::new();
        let lane = PushLane::new(db.clone(), &ScrapeTargetConfig::new("remote_write", "test:1"));
        (db, lane)
    }

    fn get(path_and_query: &str) -> Request {
        let (path, q) = path_and_query.split_once('?').unwrap_or((path_and_query, ""));
        Request {
            method: "GET".to_string(),
            path: path.to_string(),
            query: q
                .split('&')
                .filter(|p| !p.is_empty())
                .map(|p| {
                    let (k, v) = p.split_once('=').unwrap_or((p, ""));
                    (k.to_string(), v.to_string())
                })
                .collect(),
            headers: Vec::new(),
            body: Vec::new(),
            wants_close: false,
        }
    }

    #[test]
    fn healthz_and_unknown_routes() {
        let (db, mut lane) = ctx_parts();
        let mut ctx = HandlerCtx {
            db: &db,
            lane: &mut lane,
            now_ms: 0,
            panic_route: false,
            write_series_budget: None,
        };
        assert_eq!(route(&get("/healthz"), &mut ctx).status, 200);
        assert_eq!(route(&get("/nope"), &mut ctx).status, 404);
        let mut post = get("/metrics");
        post.method = "POST".to_string();
        assert_eq!(route(&post, &mut ctx).status, 405);
        assert_eq!(
            route(&get("/panic"), &mut ctx).status,
            404,
            "panic route must not exist unless enabled"
        );
    }

    #[test]
    fn write_then_query_roundtrip() {
        let (db, mut lane) = ctx_parts();
        let mut ctx = HandlerCtx {
            db: &db,
            lane: &mut lane,
            now_ms: 5_000,
            panic_route: false,
            write_series_budget: None,
        };
        let mut req = get("/api/v1/write");
        req.method = "POST".to_string();
        req.body =
            b"# TYPE sgx_epc_used_bytes gauge\nsgx_epc_used_bytes{node=\"n1\"} 42\n".to_vec();
        let resp = route(&req, &mut ctx);
        assert_eq!(resp.status, 200);
        let body = String::from_utf8(resp.body).unwrap();
        assert!(body.contains(r#""ingested":1"#), "{body}");

        let resp = route(&get("/api/v1/query?query=sgx_epc_used_bytes&time=6"), &mut ctx);
        assert_eq!(resp.status, 200);
        let body = String::from_utf8(resp.body).unwrap();
        assert!(body.contains(r#""status":"success""#), "{body}");
        assert!(body.contains(r#""42""#), "{body}");
    }

    #[test]
    fn malformed_write_is_400_and_oversized_write_is_413() {
        let (db, mut lane) = ctx_parts();
        let mut ctx = HandlerCtx {
            db: &db,
            lane: &mut lane,
            now_ms: 0,
            panic_route: false,
            write_series_budget: None,
        };
        let mut req = get("/api/v1/write");
        req.method = "POST".to_string();
        req.body = b"this is { not an exposition document".to_vec();
        assert_eq!(route(&req, &mut ctx).status, 400);

        let mut line = String::from("metric_with_a_very_long_line ");
        line.push_str(&"9".repeat(20_000));
        req.body = line.into_bytes();
        assert_eq!(route(&req, &mut ctx).status, 413);
    }

    #[test]
    fn bad_query_is_400_not_500() {
        let (db, mut lane) = ctx_parts();
        let mut ctx = HandlerCtx {
            db: &db,
            lane: &mut lane,
            now_ms: 0,
            panic_route: false,
            write_series_budget: None,
        };
        let resp = route(&get("/api/v1/query?query=sum%28"), &mut ctx);
        assert_eq!(resp.status, 400);
        let resp = route(&get("/api/v1/query_range?query=up&start=5&end=1&step=1"), &mut ctx);
        assert_eq!(resp.status, 400);
        let resp = route(&get("/api/v1/query_range?query=up"), &mut ctx);
        assert_eq!(resp.status, 400);
    }

    #[test]
    fn over_budget_write_is_429_with_a_typed_body_and_nothing_stored() {
        let (db, mut lane) = ctx_parts();
        let mut ctx = HandlerCtx {
            db: &db,
            lane: &mut lane,
            now_ms: 1_000,
            panic_route: false,
            write_series_budget: Some(2),
        };
        let mut req = get("/api/v1/write");
        req.method = "POST".to_string();
        req.body = b"m{i=\"a\"} 1\nm{i=\"b\"} 2\nm{i=\"c\"} 3\n".to_vec();
        let before = teemon_obs::probes::HTTP_CARDINALITY_REJECTED.get();
        let resp = route(&req, &mut ctx);
        assert_eq!(resp.status, 429);
        let body = String::from_utf8(resp.body).unwrap();
        assert!(body.contains("too_many_series"), "{body}");
        assert!(body.contains("remote_write"), "error names the job: {body}");
        assert!(body.contains("budget of 2"), "error names the budget: {body}");
        assert_eq!(teemon_obs::probes::HTTP_CARDINALITY_REJECTED.get(), before + 1);
        assert_eq!(db.series_count(), 0, "a refused request leaves no trace in storage");

        // A request inside the budget still lands.
        req.body = b"m{i=\"a\"} 1\nm{i=\"b\"} 2\n".to_vec();
        assert_eq!(route(&req, &mut ctx).status, 200);
        assert_eq!(db.series_count(), 2);
    }

    #[test]
    fn metrics_exposition_federates_stored_series() {
        let (db, mut lane) = ctx_parts();
        db.append("demo_total", &Labels::from_pairs([("node", "n1")]), 1_000, 7.0);
        let mut ctx = HandlerCtx {
            db: &db,
            lane: &mut lane,
            now_ms: 0,
            panic_route: false,
            write_series_budget: None,
        };
        let resp = route(&get("/metrics"), &mut ctx);
        assert_eq!(resp.status, 200);
        let text = String::from_utf8(resp.body).unwrap();
        assert!(text.contains("demo_total"), "{text}");
        assert!(text.contains("node=\"n1\""), "{text}");
    }

    #[test]
    fn self_metrics_exports_only_http_families() {
        let resp = self_metrics();
        assert_eq!(resp.status, 200);
        let text = String::from_utf8(resp.body).unwrap();
        assert!(text.contains("teemon_http_requests_total"), "{text}");
        assert!(!text.contains("teemon_scrape"), "only the http layer is exported here");
    }
}
