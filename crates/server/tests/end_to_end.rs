//! End-to-end over real sockets: ingest → query → exposition, load
//! shedding at the accept gate under overload, and graceful drain.

use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

use teemon_obs::probes;
use teemon_server::{http_get, http_post, percent_encode, HttpLimits, Server, ServerConfig};
use teemon_tsdb::TimeSeriesDb;

fn quick_limits() -> HttpLimits {
    HttpLimits { header_timeout_ms: 400, body_timeout_ms: 400, ..HttpLimits::default() }
}

#[test]
fn write_query_and_metrics_roundtrip_over_tcp() {
    let server = Server::start("127.0.0.1:0", ServerConfig::default(), TimeSeriesDb::new())
        .expect("bind loopback");
    let addr = server.addr();

    // Push three batches of remote-write samples.
    for (t, v) in [(0u64, 100.0), (1, 140.0), (2, 180.0)] {
        let doc = format!(
            "# TYPE sgx_pages_evicted_total counter\nsgx_pages_evicted_total{{node=\"n1\"}} {v} {}\n",
            t * 5_000
        );
        let resp =
            http_post(addr, "/api/v1/write", "text/plain", doc.as_bytes()).expect("post batch");
        assert_eq!(resp.status, 200, "{}", resp.body_text());
        assert!(resp.body_text().contains(r#""ingested":1"#), "{}", resp.body_text());
    }

    // Instant query sees the data.
    let q = percent_encode("sgx_pages_evicted_total");
    let resp = http_get(addr, &format!("/api/v1/query?query={q}&time=10")).expect("query");
    assert_eq!(resp.status, 200);
    let body = resp.body_text();
    assert!(body.contains(r#""status":"success""#), "{body}");
    assert!(body.contains(r#""180""#), "{body}");

    // Range query over HTTP returns a matrix with all three points.
    let q = percent_encode("sgx_pages_evicted_total");
    let resp = http_get(addr, &format!("/api/v1/query_range?query={q}&start=0&end=10&step=5"))
        .expect("range query");
    assert_eq!(resp.status, 200);
    let body = resp.body_text();
    assert!(body.contains(r#""resultType":"matrix""#), "{body}");

    // The exposition edge federates the stored series back out.
    let resp = http_get(addr, "/metrics").expect("metrics");
    assert_eq!(resp.status, 200);
    assert!(resp.body_text().contains("sgx_pages_evicted_total"), "{}", resp.body_text());

    assert!(server.shutdown(), "drain must complete");
}

#[test]
fn overload_is_shed_with_503_before_parsing() {
    let config =
        ServerConfig { max_inflight: 1, limits: quick_limits(), ..ServerConfig::default() };
    let server = Server::start("127.0.0.1:0", config, TimeSeriesDb::new()).expect("bind loopback");
    let addr = server.addr();
    let before = probes::HTTP_SHED.get();

    // Occupy the single slot with a half-sent request...
    let mut hog = TcpStream::connect(addr).expect("hog connects");
    hog.write_all(b"GET /healthz HTT").expect("partial write");
    std::thread::sleep(Duration::from_millis(50)); // let the acceptor admit it

    // ...then the next clients are shed with an O(1) 503 + Retry-After.
    let resp = http_get(addr, "/healthz").expect("shed response still parses");
    assert_eq!(resp.status, 503);
    assert_eq!(resp.header("retry-after"), Some("1"));
    assert!(probes::HTTP_SHED.get() > before);

    // Once the hog is gone (it times out at 400 ms), capacity returns.
    drop(hog);
    let mut ok = false;
    for _ in 0..50 {
        std::thread::sleep(Duration::from_millis(20));
        if http_get(addr, "/healthz").map(|r| r.status).unwrap_or(0) == 200 {
            ok = true;
            break;
        }
    }
    assert!(ok, "server must recover capacity after the slow client is gone");
    server.shutdown();
}

#[test]
fn graceful_shutdown_drains_and_stops_accepting() {
    let config = ServerConfig { limits: quick_limits(), ..ServerConfig::default() };
    let server = Server::start("127.0.0.1:0", config, TimeSeriesDb::new()).expect("bind loopback");
    let addr = server.addr();

    // Ingest something so the final WAL flush has work to do.
    let resp =
        http_post(addr, "/api/v1/write", "text/plain", b"drain_demo_total 1\n").expect("post");
    assert_eq!(resp.status, 200);

    assert!(server.shutdown(), "drain completes under the deadline");

    // The listener is gone: connects are refused (or reset immediately).
    let after = TcpStream::connect_timeout(&addr, Duration::from_millis(200));
    if let Ok(mut stream) = after {
        // A lingering backlog connection must at least never be served.
        let _ = stream.write_all(b"GET /healthz HTTP/1.1\r\n\r\n");
        let mut buf = Vec::new();
        let _ = stream.set_read_timeout(Some(Duration::from_millis(300)));
        use std::io::Read;
        let _ = stream.read_to_end(&mut buf);
        assert!(buf.is_empty(), "no responses after shutdown: {:?}", String::from_utf8_lossy(&buf));
    }
}

#[test]
fn panic_shield_holds_over_tcp() {
    let config = ServerConfig { panic_route: true, ..ServerConfig::default() };
    let server = Server::start("127.0.0.1:0", config, TimeSeriesDb::new()).expect("bind loopback");
    let addr = server.addr();

    let resp = http_get(addr, "/panic").expect("the 500 still arrives");
    assert_eq!(resp.status, 500);

    // The worker died shielded; the server still answers.
    let resp = http_get(addr, "/healthz").expect("still serving");
    assert_eq!(resp.status, 200);
    assert!(server.shutdown());
}
