//! The adversarial suite: every hostile client the overload-behaviour
//! contract names, asserted against exact status codes — and after each
//! attack, proof the server is still serving.
//!
//! Most attacks run against [`ServerCore`] with [`MockConn`]s (scripted
//! bytes + virtual clock, so stalls cost no wall time); the cases that need
//! real sockets (shed at the accept gate, drain) live in `end_to_end.rs`.

use teemon_obs::probes;
use teemon_server::{MockConn, MockStep, ServerConfig, ServerCore};
use teemon_tsdb::TimeSeriesDb;

fn core() -> ServerCore {
    ServerCore::new(ServerConfig::default(), TimeSeriesDb::new())
}

fn serve(core: &ServerCore, conn: MockConn) -> String {
    let mut conn = conn;
    core.serve_connection(&mut conn);
    conn.written_text()
}

fn status_of(response: &str) -> Option<u16> {
    response.strip_prefix("HTTP/1.1 ")?.split_whitespace().next()?.parse().ok()
}

/// The server must answer a healthy request after surviving an attack.
fn assert_still_serving(core: &ServerCore) {
    let text = serve(core, MockConn::with_bytes(b"GET /healthz HTTP/1.1\r\n\r\n".to_vec()));
    assert_eq!(status_of(&text), Some(200), "server must keep serving: {text}");
}

#[test]
fn torn_request_gets_400_and_the_server_survives() {
    let core = core();
    let before = probes::HTTP_MALFORMED.get();
    for torn in [
        &b"GET"[..],
        &b"GET / HTTP/1.1\r\nHost"[..],
        &b"POST /api/v1/write HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"[..],
    ] {
        let text = serve(&core, MockConn::with_bytes(torn.to_vec()));
        assert_eq!(status_of(&text), Some(400), "torn {torn:?} → {text}");
    }
    assert!(probes::HTTP_MALFORMED.get() >= before + 3);
    assert_still_serving(&core);
}

#[test]
fn garbage_bytes_get_400_not_a_panic() {
    let core = core();
    let text = serve(&core, MockConn::with_bytes(b"\x00\xff\xfe barbarians \x01\r\n\r\n".to_vec()));
    assert_eq!(status_of(&text), Some(400), "{text}");
    let text = serve(&core, MockConn::with_bytes(b"FOO / SMTP/9.9\r\n\r\n".to_vec()));
    assert_eq!(status_of(&text), Some(400), "{text}");
    assert_still_serving(&core);
}

#[test]
fn oversized_body_gets_413_before_the_body_is_read() {
    let core = core();
    let before = probes::HTTP_OVERSIZED.get();
    // Content-Length over the limit: rejected from the header alone.
    let text = serve(
        &core,
        MockConn::with_bytes(
            b"POST /api/v1/write HTTP/1.1\r\nContent-Length: 10000000\r\n\r\n".to_vec(),
        ),
    );
    assert_eq!(status_of(&text), Some(413), "{text}");
    assert!(probes::HTTP_OVERSIZED.get() > before);
    assert_still_serving(&core);
}

#[test]
fn header_flood_gets_413_at_the_header_limit() {
    let core = core();
    let mut steps = vec![MockStep::Chunk(b"GET / HTTP/1.1\r\n".to_vec())];
    for _ in 0..10_000 {
        steps.push(MockStep::Chunk(b"X-Flood: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n".to_vec()));
    }
    let text = serve(&core, MockConn::new(steps));
    assert_eq!(status_of(&text), Some(413), "{text}");
    assert_still_serving(&core);
}

#[test]
fn slow_loris_header_gets_408_on_the_virtual_clock() {
    let core = core();
    let before = probes::HTTP_SLOW_CLIENTS.get();
    // Drip one header byte, then go quiet far past the header deadline.
    let text = serve(
        &core,
        MockConn::new(vec![MockStep::Chunk(b"G".to_vec()), MockStep::StallMs(600_000)]),
    );
    assert_eq!(status_of(&text), Some(408), "{text}");
    assert!(probes::HTTP_SLOW_CLIENTS.get() > before);
    assert_still_serving(&core);
}

#[test]
fn mid_body_stall_gets_408() {
    let core = core();
    let text = serve(
        &core,
        MockConn::new(vec![
            MockStep::Chunk(
                b"POST /api/v1/write HTTP/1.1\r\nContent-Length: 100\r\n\r\nhalf".to_vec(),
            ),
            MockStep::StallMs(600_000),
        ]),
    );
    assert_eq!(status_of(&text), Some(408), "{text}");
    assert!(text.contains("body"), "the 408 names the stalled phase: {text}");
    assert_still_serving(&core);
}

#[test]
fn panicking_handler_gets_500_and_the_connection_closes() {
    let config = ServerConfig { panic_route: true, ..ServerConfig::default() };
    let core = ServerCore::new(config, TimeSeriesDb::new());
    let before = probes::HTTP_PANICS.get();
    // Pipeline a second request after /panic: the shield must close the
    // connection after the 500, never reaching the second request.
    let text = serve(
        &core,
        MockConn::with_bytes(b"GET /panic HTTP/1.1\r\n\r\nGET /healthz HTTP/1.1\r\n\r\n".to_vec()),
    );
    assert_eq!(status_of(&text), Some(500), "{text}");
    assert!(text.contains("Connection: close"), "{text}");
    assert_eq!(text.matches("HTTP/1.1").count(), 1, "connection closed after the 500: {text}");
    assert!(probes::HTTP_PANICS.get() > before);
    assert_still_serving(&core);
}

#[test]
fn rate_limited_client_gets_429_with_retry_after() {
    let config = ServerConfig { rate_per_sec: 0.5, burst: 2.0, ..ServerConfig::default() };
    let core = ServerCore::new(config, TimeSeriesDb::new());
    let before = probes::HTTP_RATE_LIMITED.get();
    // Two requests fit the burst; the third (same client ip, fresh port —
    // the limiter keys on ip) is refused.
    for _ in 0..2 {
        let conn = MockConn::with_bytes(b"GET /healthz HTTP/1.1\r\n\r\n".to_vec())
            .with_peer("192.0.2.1:1000");
        assert_eq!(status_of(&serve(&core, conn)), Some(200));
    }
    let conn =
        MockConn::with_bytes(b"GET /healthz HTTP/1.1\r\n\r\n".to_vec()).with_peer("192.0.2.1:2000");
    let text = serve(&core, conn);
    assert_eq!(status_of(&text), Some(429), "{text}");
    assert!(text.to_ascii_lowercase().contains("retry-after:"), "{text}");
    assert!(probes::HTTP_RATE_LIMITED.get() > before);
    // A different client is not collateral damage.
    let conn =
        MockConn::with_bytes(b"GET /healthz HTTP/1.1\r\n\r\n".to_vec()).with_peer("192.0.2.9:1000");
    assert_eq!(status_of(&serve(&core, conn)), Some(200));
}

/// A deterministic xorshift byte-mangler in the FaultFs spirit: valid
/// requests with seeded corruption — truncation, bit flips, byte
/// insertion — must always produce a clean HTTP response (or a silent
/// close), never a panic or a hang.
#[test]
fn byte_mangler_fuzz_never_panics_the_server() {
    let core = core();
    let template =
        b"POST /api/v1/write HTTP/1.1\r\nContent-Length: 24\r\n\r\ndemo_metric{a=\"b\"} 42\n x"
            .to_vec();
    let mut state: u64 = 0x9e37_79b9_7f4a_7c15;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for round in 0..500 {
        let mut bytes = template.clone();
        match round % 4 {
            0 => {
                // Truncate somewhere.
                let cut = (next() as usize) % bytes.len().max(1);
                bytes.truncate(cut);
            }
            1 => {
                // Flip a few bits.
                for _ in 0..1 + (next() % 4) {
                    let i = (next() as usize) % bytes.len();
                    let bit = 1u8 << (next() % 8);
                    if let Some(b) = bytes.get_mut(i) {
                        *b ^= bit;
                    }
                }
            }
            2 => {
                // Insert random bytes.
                let i = (next() as usize) % (bytes.len() + 1);
                bytes.splice(i..i, [(next() & 0xff) as u8, (next() & 0xff) as u8]);
            }
            _ => {
                // Swap two regions' bytes.
                let i = (next() as usize) % bytes.len();
                let j = (next() as usize) % bytes.len();
                bytes.swap(i, j);
            }
        }
        // Distinct peers: the fuzz measures parser robustness, not the
        // (also exercised above) rate limiter.
        let peer = format!("10.9.{}.{}:1", round / 250, round % 250);
        let text = serve(&core, MockConn::with_bytes(bytes.clone()).with_peer(peer));
        if !text.is_empty() {
            assert!(
                text.starts_with("HTTP/1.1 "),
                "round {round}: mangled {bytes:?} produced non-HTTP output {text:?}"
            );
        }
    }
    assert_still_serving(&core);
}

#[test]
fn every_layer_feeds_the_http_probe_families() {
    // The self-observability contract: the middleware counters above are
    // exported through /self/metrics for the teemon_http self-target.
    let core = core();
    serve(&core, MockConn::with_bytes(b"GET /healthz HTTP/1.1\r\n\r\n".to_vec()));
    let text = serve(&core, MockConn::with_bytes(b"GET /self/metrics HTTP/1.1\r\n\r\n".to_vec()));
    for family in [
        "teemon_http_connections_total",
        "teemon_http_requests_total",
        "teemon_http_responses_total",
        "teemon_http_shed_total",
        "teemon_http_panics_total",
        "teemon_http_rate_limited_total",
        "teemon_http_slow_clients_total",
        "teemon_http_malformed_total",
        "teemon_http_oversized_total",
        "teemon_http_inflight",
        "teemon_http_request_seconds",
        "teemon_http_ingested_samples_total",
        "teemon_http_drained_total",
    ] {
        assert!(text.contains(family), "missing {family} in /self/metrics");
    }
}
