//! The TEEMon façade: a monitored host and a monitored cluster.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use teemon_analysis::Analyzer;
use teemon_dashboard::{standard, DashboardSet};
use teemon_exporters::{
    ContainerExporter, ContainerSpec, EbpfExporter, Exporter, NodeExporter, SgxExporter,
};
use teemon_kernel_sim::Kernel;
use teemon_orchestrator::{Cluster, HelmChart, ServiceDiscovery};
use teemon_tsdb::{MetricsEndpoint, ScrapeTargetConfig, Scraper, TimeSeriesDb};

/// Which parts of TEEMon are active — the three configurations of §6.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MonitoringMode {
    /// "Monitoring OFF": nothing attached, the baseline.
    Off,
    /// "Monitoring OFF + eBPF ON": only the in-kernel programs run.
    EbpfOnly,
    /// "Monitoring ON": exporters, aggregation, analysis and dashboards.
    Full,
}

struct ExporterEndpoint<E: Exporter>(E);

impl<E: Exporter> MetricsEndpoint for ExporterEndpoint<E>
where
    E: Send + Sync,
{
    fn scrape(&self) -> Result<String, String> {
        Ok(self.0.render())
    }
}

/// One monitored host: a simulated kernel plus the TEEMon components deployed
/// on it according to the [`MonitoringMode`].
pub struct HostMonitor {
    node: String,
    mode: MonitoringMode,
    kernel: Kernel,
    db: TimeSeriesDb,
    scraper: Scraper,
    analyzer: Analyzer,
    dashboards: DashboardSet,
    container_exporter: Option<ContainerExporter>,
    ebpf_exporter: Option<EbpfExporter>,
}

impl HostMonitor {
    /// Creates a monitored host with a fresh kernel.
    pub fn new(node: &str, mode: MonitoringMode) -> Self {
        Self::with_kernel(Kernel::new(), node, mode)
    }

    /// Creates a monitored host around an existing kernel (so workloads and
    /// monitoring share the same simulated machine).
    pub fn with_kernel(kernel: Kernel, node: &str, mode: MonitoringMode) -> Self {
        let db = TimeSeriesDb::new();
        let scraper = Scraper::new(db.clone());
        let analyzer = Analyzer::new(db.clone());
        let dashboards = standard();
        let mut host = Self {
            node: node.to_string(),
            mode,
            kernel,
            db,
            scraper,
            analyzer,
            dashboards,
            container_exporter: None,
            ebpf_exporter: None,
        };
        host.deploy();
        host
    }

    fn deploy(&mut self) {
        match self.mode {
            MonitoringMode::Off => {}
            MonitoringMode::EbpfOnly => {
                self.ebpf_exporter = Some(EbpfExporter::attach(&self.kernel, &self.node));
            }
            MonitoringMode::Full => {
                let ebpf = EbpfExporter::attach(&self.kernel, &self.node);
                let sgx = SgxExporter::new(self.kernel.sgx_driver().clone(), &self.node);
                let node_exp = NodeExporter::new(&self.kernel, &self.node);
                let containers = ContainerExporter::new(&self.node);

                self.scraper.add_target(
                    ScrapeTargetConfig::new("sgx_exporter", format!("{}:9090", self.node))
                        .with_label("node", self.node.clone()),
                    Arc::new(ExporterEndpoint(sgx)),
                );
                self.scraper.add_target(
                    ScrapeTargetConfig::new("node_exporter", format!("{}:9100", self.node))
                        .with_label("node", self.node.clone()),
                    Arc::new(ExporterEndpoint(node_exp)),
                );
                self.scraper.add_target(
                    ScrapeTargetConfig::new("cadvisor", format!("{}:8080", self.node))
                        .with_label("node", self.node.clone()),
                    Arc::new(ExporterEndpoint(containers.clone())),
                );
                // The eBPF exporter is both scraped and kept accessible for
                // detaching.
                let ebpf_registry_clone = EbpfRegistryEndpoint(ebpf.registry().clone());
                self.scraper.add_target(
                    ScrapeTargetConfig::new("ebpf_exporter", format!("{}:9435", self.node))
                        .with_label("node", self.node.clone()),
                    Arc::new(ebpf_registry_clone),
                );
                self.container_exporter = Some(containers);
                self.ebpf_exporter = Some(ebpf);
            }
        }
    }

    /// The monitoring mode in effect.
    pub fn mode(&self) -> MonitoringMode {
        self.mode
    }

    /// The node name.
    pub fn node(&self) -> &str {
        &self.node
    }

    /// The simulated kernel workloads should run against.
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// The aggregation database (PMAG).
    pub fn db(&self) -> &TimeSeriesDb {
        &self.db
    }

    /// The analysis component (PMAN).
    pub fn analyzer(&self) -> &Analyzer {
        &self.analyzer
    }

    /// The dashboards (PMV).
    pub fn dashboards(&self) -> &DashboardSet {
        &self.dashboards
    }

    /// The container exporter, when full monitoring is active, so the host
    /// model can register containers (cAdvisor's data source).
    pub fn container_exporter(&self) -> Option<&ContainerExporter> {
        self.container_exporter.as_ref()
    }

    /// Registers a container with the container exporter (no-op unless full
    /// monitoring is active).
    pub fn register_container(&self, spec: ContainerSpec) {
        if let Some(exporter) = &self.container_exporter {
            exporter.register_container(spec);
        }
    }

    /// Performs one scrape of every target at the kernel's current virtual
    /// time.  Returns the number of healthy targets.
    pub fn scrape_tick(&self) -> usize {
        let now = self.kernel.clock().now_millis();
        self.scraper.scrape_once(now).iter().filter(|o| o.up).count()
    }

    /// Runs `ticks` scrapes spaced by the scraper's interval, advancing the
    /// simulated clock accordingly.
    pub fn run_scrape_loop(&self, ticks: u64) {
        for _ in 0..ticks {
            self.kernel
                .clock()
                .advance(teemon_sim_core::SimDuration::from_millis(self.scraper.interval_ms()));
            self.scrape_tick();
        }
    }

    /// Renders one of the standard dashboards over the whole retained range.
    pub fn render_dashboard(&self, title: &str, width: usize) -> Option<String> {
        self.dashboards.get(title).map(|d| d.render(&self.db, 0, u64::MAX, width))
    }
}

/// Adapter exposing a metric registry as a scrape endpoint.
struct EbpfRegistryEndpoint(teemon_metrics::Registry);

impl MetricsEndpoint for EbpfRegistryEndpoint {
    fn scrape(&self) -> Result<String, String> {
        Ok(teemon_metrics::exposition::encode_text(&self.0.gather()))
    }
}

/// A monitored Kubernetes-like cluster: one [`HostMonitor`] per SGX node,
/// deployed through the TEEMon Helm chart and discovered via the cluster's
/// service discovery (§5.4).
pub struct ClusterMonitor {
    cluster: Cluster,
    discovery: ServiceDiscovery,
    hosts: Vec<HostMonitor>,
    db: TimeSeriesDb,
}

impl ClusterMonitor {
    /// Installs TEEMon on every SGX node of `cluster` using the default chart.
    pub fn install(cluster: Cluster) -> Self {
        let mut discovery = ServiceDiscovery::new();
        HelmChart::teemon().install(&mut discovery);
        let db = TimeSeriesDb::new();
        let mut hosts = Vec::new();
        for node in cluster.ready_nodes() {
            if node.sgx_capable {
                hosts.push(HostMonitor::new(&node.name, MonitoringMode::Full));
            }
        }
        Self { cluster, discovery, hosts, db }
    }

    /// The cluster being monitored.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Per-node host monitors.
    pub fn hosts(&self) -> &[HostMonitor] {
        &self.hosts
    }

    /// The scrape endpoints service discovery currently resolves.
    pub fn endpoints(&self) -> Vec<teemon_orchestrator::ScrapeEndpoint> {
        self.discovery.endpoints(&self.cluster)
    }

    /// Reconciles monitors after cluster topology changes: adds monitors for
    /// new SGX nodes, drops monitors for departed ones.  Returns
    /// `(added, removed)`.
    pub fn reconcile(&mut self) -> (usize, usize) {
        let ready_sgx: Vec<String> = self
            .cluster
            .ready_nodes()
            .iter()
            .filter(|n| n.sgx_capable)
            .map(|n| n.name.clone())
            .collect();
        let before = self.hosts.len();
        self.hosts.retain(|h| ready_sgx.contains(&h.node().to_string()));
        let removed = before - self.hosts.len();
        let mut added = 0;
        for name in &ready_sgx {
            if !self.hosts.iter().any(|h| h.node() == name) {
                self.hosts.push(HostMonitor::new(name, MonitoringMode::Full));
                added += 1;
            }
        }
        (added, removed)
    }

    /// Scrapes every host once.  Returns the number of healthy targets.
    pub fn scrape_all(&self) -> usize {
        self.hosts.iter().map(|h| h.scrape_tick()).sum()
    }

    /// Total enclaves currently active across the cluster.
    pub fn total_active_enclaves(&self) -> u64 {
        self.hosts.iter().map(|h| h.kernel().sgx_driver().stats().enclaves_active).sum()
    }

    /// A cluster-level database for cross-node aggregation (currently fed by
    /// callers; per-host data lives in each host's own db).
    pub fn db(&self) -> &TimeSeriesDb {
        &self.db
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teemon_frameworks::{Deployment, FrameworkKind, FrameworkParams};
    use teemon_kernel_sim::Syscall;
    use teemon_orchestrator::Node;
    use teemon_tsdb::Selector;

    #[test]
    fn off_mode_attaches_nothing() {
        let host = HostMonitor::new("n1", MonitoringMode::Off);
        assert_eq!(host.kernel().hooks().total_attached(), 0);
        assert_eq!(host.scrape_tick(), 0);
        assert_eq!(host.mode(), MonitoringMode::Off);
    }

    #[test]
    fn ebpf_only_attaches_programs_but_no_scraping() {
        let host = HostMonitor::new("n1", MonitoringMode::EbpfOnly);
        assert!(host.kernel().hooks().total_attached() > 0);
        assert_eq!(host.scrape_tick(), 0, "no scrape targets in eBPF-only mode");
    }

    #[test]
    fn full_monitoring_scrapes_all_four_exporters() {
        let host = HostMonitor::new("worker-1", MonitoringMode::Full);
        assert!(host.kernel().hooks().total_attached() > 0);

        // Generate some activity, then scrape.
        let pid = host.kernel().spawn_process(
            "redis-server",
            teemon_kernel_sim::process::ProcessKind::Enclave,
            8,
        );
        host.kernel().syscall(pid, Syscall::Read, true);
        host.register_container(ContainerSpec {
            name: "redis-0".into(),
            image: "redis:5".into(),
            pid: pid.as_u32(),
            memory_limit_bytes: 1 << 30,
        });
        host.kernel().clock().advance(teemon_sim_core::SimDuration::from_secs(5));
        assert_eq!(host.scrape_tick(), 4);

        // All exporter families land in the database.
        for metric in ["teemon_syscalls_total", "sgx_nr_free_pages", "node_cpu_cores", "container_spec_memory_limit_bytes"] {
            assert!(
                !host.db().query_instant(&Selector::metric(metric), u64::MAX).is_empty(),
                "metric {metric} missing after scrape"
            );
        }
        // Dashboards render from the scraped data.
        let rendered = host.render_dashboard("SGX", 50).unwrap();
        assert!(rendered.contains("EPC free pages"));
        assert!(host.render_dashboard("missing", 50).is_none());
    }

    #[test]
    fn workload_on_monitored_host_is_observable_end_to_end() {
        let host = HostMonitor::new("worker-1", MonitoringMode::Full);
        let mut deployment = Deployment::deploy(
            host.kernel(),
            FrameworkParams::for_kind(FrameworkKind::Scone),
            "redis-server",
            32 << 20,
            8,
            11,
        )
        .unwrap();
        let request = teemon_frameworks::RequestProfile::keyvalue_get(64, 8_000);
        for _ in 0..300 {
            deployment.execute(&request, 320);
        }
        host.run_scrape_loop(3);
        let results =
            host.db().query_range(&Selector::metric("teemon_syscalls_total"), 0, u64::MAX);
        assert!(!results.is_empty());
        // The analyzer can run over the scraped data without findings blowing up.
        let findings = host.analyzer().diagnose_all(300.0, 0, u64::MAX);
        let _ = findings;
    }

    #[test]
    fn cluster_monitor_follows_topology() {
        let cluster = Cluster::with_nodes(2, 1);
        let mut monitor = ClusterMonitor::install(cluster.clone());
        assert_eq!(monitor.hosts().len(), 2, "one monitor per SGX node");
        assert!(monitor.endpoints().len() >= 4);
        assert_eq!(monitor.total_active_enclaves(), 0);

        cluster.add_node(Node::sgx("sgx-new"));
        cluster.remove_node("sgx-0");
        let (added, removed) = monitor.reconcile();
        assert_eq!((added, removed), (1, 1));
        assert_eq!(monitor.hosts().len(), 2);
        let healthy = monitor.scrape_all();
        assert_eq!(healthy, 2 * 4);
    }
}
