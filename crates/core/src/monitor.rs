//! The TEEMon façade: a monitored host, a monitored cluster, and the
//! [`MonitorBuilder`] that assembles them.
//!
//! Monitoring is composed, not hard-wired: the builder picks which exporters
//! to deploy (the [`MonitoringMode`] presets reproduce the three
//! configurations of §6.3), lets callers plug additional [`Collector`]s in,
//! set per-target scrape intervals, and — for measurements of the wire-format
//! cost — route every scrape through the text edge instead of the default
//! typed path.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use teemon_analysis::Analyzer;
use teemon_dashboard::{standard, DashboardSet};
use teemon_exporters::{
    Collector, ContainerExporter, ContainerSpec, EbpfExporter, NodeExporter, SgxExporter,
};
use teemon_kernel_sim::Kernel;
use teemon_orchestrator::{Cluster, HelmChart, ServiceDiscovery};
use teemon_query::{RuleEngine, RuleGroup};
use teemon_tsdb::{ScrapeTargetConfig, Scraper, TextEndpoint, TimeSeriesDb, TsdbConfig};

/// Which parts of TEEMon are active — the three configurations of §6.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MonitoringMode {
    /// "Monitoring OFF": nothing attached, the baseline.
    Off,
    /// "Monitoring OFF + eBPF ON": only the in-kernel programs run.
    EbpfOnly,
    /// "Monitoring ON": exporters, aggregation, analysis and dashboards.
    Full,
}

/// How scraped data travels from exporters to the aggregation database.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ScrapeTransport {
    /// Typed snapshots, no serialisation (the default in-process path).
    #[default]
    Typed,
    /// Full OpenMetrics encode/parse round-trip per scrape — what the paper's
    /// multi-process deployment pays.  Kept for comparison benchmarks.
    Text,
}

/// Composable constructor for [`HostMonitor`]s.
///
/// ```
/// use teemon::{MonitorBuilder, MonitoringMode};
///
/// let host = MonitorBuilder::new("worker-1")
///     .mode(MonitoringMode::Full)
///     .scrape_interval_ms(5_000)
///     .exporter_interval_ms("cadvisor", 15_000)
///     .build();
/// assert_eq!(host.mode(), MonitoringMode::Full);
/// // Full-mode recount: sgx_exporter, node_exporter, cadvisor and
/// // ebpf_exporter — four exporters — plus the `teemon_self` self-scrape
/// // target makes 5 targets per host.
/// assert_eq!(host.scraper().target_count(), 5);
/// ```
pub struct MonitorBuilder {
    node: String,
    mode: MonitoringMode,
    kernel: Option<Kernel>,
    db: Option<TimeSeriesDb>,
    scrape_interval_ms: u64,
    exporter_intervals: Vec<(String, u64)>,
    extra_collectors: Vec<(ScrapeTargetConfig, Arc<dyn Collector>)>,
    transport: ScrapeTransport,
    rule_groups: Vec<RuleGroup>,
    self_observe_alerts: bool,
    durability_dir: Option<std::path::PathBuf>,
    server_addr: Option<String>,
}

impl MonitorBuilder {
    /// Starts a builder for `node` with monitoring off (the baseline preset).
    pub fn new(node: impl Into<String>) -> Self {
        Self {
            node: node.into(),
            mode: MonitoringMode::Off,
            kernel: None,
            db: None,
            scrape_interval_ms: Scraper::DEFAULT_INTERVAL_MS,
            exporter_intervals: Vec::new(),
            extra_collectors: Vec::new(),
            transport: ScrapeTransport::default(),
            rule_groups: Vec::new(),
            self_observe_alerts: false,
            durability_dir: None,
            server_addr: None,
        }
    }

    /// Applies a [`MonitoringMode`] preset (which exporters `build` deploys).
    #[must_use]
    pub fn mode(mut self, mode: MonitoringMode) -> Self {
        self.mode = mode;
        self
    }

    /// Uses an existing kernel so workloads and monitoring share the same
    /// simulated machine (replaces the former `HostMonitor::with_kernel`).
    #[must_use]
    pub fn kernel(mut self, kernel: Kernel) -> Self {
        self.kernel = Some(kernel);
        self
    }

    /// Feeds an existing database instead of a fresh one (e.g. a shared
    /// cluster-level store).
    #[must_use]
    pub fn db(mut self, db: TimeSeriesDb) -> Self {
        self.db = Some(db);
        self
    }

    /// Makes the host's aggregation database durable: `build` opens it with
    /// [`TimeSeriesDb::open`] on `dir`, replaying any write-ahead logs a
    /// previous run left behind (crash recovery) before the first scrape,
    /// and every scrape round from then on ends with one WAL commit per
    /// dirty shard.  A database plugged in via [`MonitorBuilder::db`] takes
    /// precedence — a shared store manages its own durability.
    ///
    /// # Panics
    ///
    /// `build` panics when `dir` cannot be created or its logs cannot be
    /// opened: a monitor asked to be durable must not come up silently
    /// volatile.
    #[must_use]
    pub fn with_durability(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.durability_dir = Some(dir.into());
        self
    }

    /// Sets the global scrape interval in milliseconds.
    #[must_use]
    pub fn scrape_interval_ms(mut self, interval_ms: u64) -> Self {
        self.scrape_interval_ms = interval_ms.max(1);
        self
    }

    /// Overrides the scrape interval of one built-in exporter, keyed by job
    /// name (`sgx_exporter`, `ebpf_exporter`, `node_exporter`, `cadvisor`).
    #[must_use]
    pub fn exporter_interval_ms(mut self, job: impl Into<String>, interval_ms: u64) -> Self {
        self.exporter_intervals.push((job.into(), interval_ms.max(1)));
        self
    }

    /// Plugs an additional collector into the scrape set — monitoring for
    /// sources the standard exporters do not cover (application metrics,
    /// sidecars, …).
    #[must_use]
    pub fn collector(mut self, config: ScrapeTargetConfig, collector: Arc<dyn Collector>) -> Self {
        self.extra_collectors.push((config, collector));
        self
    }

    /// Selects how samples travel from exporters to storage.
    #[must_use]
    pub fn transport(mut self, transport: ScrapeTransport) -> Self {
        self.transport = transport;
        self
    }

    /// Adds a TeeQL rule group: recording rules write derived series back
    /// into the host's database and alert rules raise
    /// [`teemon_query::Alert`]s, both evaluated on the group's cadence
    /// inside the monitoring loop ([`HostMonitor::scrape_tick`] /
    /// [`HostMonitor::run_scrape_loop`]).
    #[must_use]
    pub fn with_rules(mut self, group: RuleGroup) -> Self {
        self.rule_groups.push(group);
        self
    }

    /// Adds the built-in self-watching alert groups: `teemon_self`
    /// ([`teemon_query::self_observe_alerts`]) for query fallback rate,
    /// storage shard imbalance, slow-query rate and WAL corruption salvage,
    /// and `teemon_cardinality` ([`teemon_query::cardinality_alerts`]) for
    /// budget rejections at the ingest edges and interned-symbol memory
    /// growth.  Both evaluate on the scrape interval's cadence over the
    /// series the self-scrape target ingests.
    #[must_use]
    pub fn with_self_observe_alerts(mut self) -> Self {
        self.self_observe_alerts = true;
        self
    }

    /// Serves this host over HTTP: `build` binds `addr` (e.g.
    /// `"127.0.0.1:0"` for an ephemeral port) and starts a
    /// [`teemon_server::Server`] over the host's database — remote-write
    /// ingest, TeeQL queries and `/metrics` exposition behind the full
    /// resilience middleware stack.  The serving edge watches itself: a
    /// `teemon_http` text-source target scraping the server's
    /// `/self/metrics` joins the scrape set, so the edge's shed/panic/slow
    /// client counters land in the same database as every other job.
    ///
    /// # Panics
    ///
    /// `build` panics when the address cannot be bound — a monitor asked to
    /// serve must not come up silently unreachable.
    #[must_use]
    pub fn with_server(mut self, addr: impl Into<String>) -> Self {
        self.server_addr = Some(addr.into());
        self
    }

    fn target_config(&self, job: &str, port: u16) -> ScrapeTargetConfig {
        let mut config = ScrapeTargetConfig::new(job, format!("{}:{port}", self.node))
            .with_label("node", self.node.clone());
        if let Some((_, interval)) = self.exporter_intervals.iter().find(|(j, _)| j == job) {
            config = config.with_interval_ms(*interval);
        }
        config
    }

    /// Builds the host monitor, deploying exporters according to the mode.
    pub fn build(self) -> HostMonitor {
        let kernel = self.kernel.clone().unwrap_or_default();
        let db = self.db.clone().unwrap_or_else(|| match &self.durability_dir {
            // teemon-verify: allow(no-unwrap): documented panic — a monitor
            // asked to be durable must not come up silently volatile.
            Some(dir) => TimeSeriesDb::open(dir, TsdbConfig::default())
                .expect("open the durable aggregation database"),
            None => TimeSeriesDb::new(),
        });
        let scraper = Scraper::new(db.clone()).with_interval_ms(self.scrape_interval_ms);
        let analyzer = Analyzer::new(db.clone());
        let dashboards = standard();
        let rules = RuleEngine::new(db.clone());
        for group in &self.rule_groups {
            rules.add_group(group.clone());
        }
        if self.self_observe_alerts {
            rules.add_group(teemon_query::self_observe_alerts(self.scrape_interval_ms));
            rules.add_group(teemon_query::cardinality_alerts(self.scrape_interval_ms));
        }
        let mut host = HostMonitor {
            node: self.node.clone(),
            mode: self.mode,
            kernel,
            db,
            scraper,
            analyzer,
            dashboards,
            rules,
            container_exporter: None,
            ebpf_exporter: None,
            server: None,
        };
        if let Some(addr) = &self.server_addr {
            // teemon-verify: allow(no-unwrap): documented panic — a monitor
            // asked to serve must not come up silently unreachable.
            let server = teemon_server::Server::start(
                addr,
                teemon_server::ServerConfig::default(),
                host.db.clone(),
            )
            .expect("bind the HTTP serving edge");
            // The serving edge watches itself: scrape its /self/metrics as
            // the `teemon_http` job through the real HTTP client, so the
            // middleware counters flow into the same database.
            let endpoint = server.addr();
            host.scraper.add_text_source(
                ScrapeTargetConfig::new("teemon_http", endpoint.to_string())
                    .with_label("node", self.node.clone()),
                Arc::new(move || {
                    let resp = teemon_server::http_get(endpoint, "/self/metrics")
                        .map_err(|e| format!("self-scrape transport: {e}"))?;
                    if resp.status != 200 {
                        return Err(format!("self-scrape status {}", resp.status));
                    }
                    Ok(resp.body_text())
                }),
            );
            host.server = Some(server);
        }
        self.deploy(&mut host);
        host
    }

    /// Registers `collector` with `host`'s scraper honouring the transport.
    fn add_target(
        &self,
        host: &HostMonitor,
        config: ScrapeTargetConfig,
        collector: Arc<dyn Collector>,
    ) {
        match self.transport {
            ScrapeTransport::Typed => host.scraper.add_collector(config, collector),
            ScrapeTransport::Text => {
                host.scraper.add_target(config, Arc::new(TextEndpoint::new(collector)))
            }
        }
    }

    fn deploy(self, host: &mut HostMonitor) {
        match self.mode {
            MonitoringMode::Off => {}
            MonitoringMode::EbpfOnly => {
                host.ebpf_exporter = Some(EbpfExporter::attach(&host.kernel, &self.node));
            }
            MonitoringMode::Full => {
                let ebpf = EbpfExporter::attach(&host.kernel, &self.node);
                let sgx = SgxExporter::new(host.kernel.sgx_driver().clone(), &self.node);
                let node_exp = NodeExporter::new(&host.kernel, &self.node);
                let containers = ContainerExporter::new(&self.node);

                self.add_target(host, self.target_config("sgx_exporter", 9090), Arc::new(sgx));
                self.add_target(
                    host,
                    self.target_config("node_exporter", 9100),
                    Arc::new(node_exp),
                );
                self.add_target(
                    host,
                    self.target_config("cadvisor", 8080),
                    Arc::new(containers.clone()),
                );
                // The eBPF exporter is both scraped (through a registry
                // collector sharing its state) and kept accessible for
                // detaching.
                self.add_target(
                    host,
                    self.target_config("ebpf_exporter", 9435),
                    Arc::new(teemon_metrics::RegistryCollector::new(
                        "ebpf_exporter",
                        ebpf.registry().clone(),
                    )),
                );
                host.container_exporter = Some(containers);
                host.ebpf_exporter = Some(ebpf);
                // The engine watches itself: the self-scrape target snapshots
                // the `teemon_obs` probes (scrape timings, shard heat, query
                // modes, lock contention) into the same database every round.
                host.scraper.add_self_target(format!("{}:self", self.node));
            }
        }
        for (config, collector) in &self.extra_collectors {
            self.add_target(host, config.clone(), Arc::clone(collector));
        }
    }
}

/// One monitored host: a simulated kernel plus the TEEMon components deployed
/// on it according to the [`MonitoringMode`].  Construct with
/// [`MonitorBuilder`] (or [`HostMonitor::new`] for the plain presets).
pub struct HostMonitor {
    node: String,
    mode: MonitoringMode,
    kernel: Kernel,
    db: TimeSeriesDb,
    scraper: Scraper,
    analyzer: Analyzer,
    dashboards: DashboardSet,
    rules: RuleEngine,
    container_exporter: Option<ContainerExporter>,
    ebpf_exporter: Option<EbpfExporter>,
    server: Option<teemon_server::Server>,
}

impl HostMonitor {
    /// Creates a monitored host with a fresh kernel — shorthand for
    /// [`MonitorBuilder::new`]`(node).mode(mode).build()`.
    pub fn new(node: &str, mode: MonitoringMode) -> Self {
        MonitorBuilder::new(node).mode(mode).build()
    }

    /// Starts a [`MonitorBuilder`] for `node`.
    pub fn builder(node: impl Into<String>) -> MonitorBuilder {
        MonitorBuilder::new(node)
    }

    /// The monitoring mode in effect.
    pub fn mode(&self) -> MonitoringMode {
        self.mode
    }

    /// The node name.
    pub fn node(&self) -> &str {
        &self.node
    }

    /// The simulated kernel workloads should run against.
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// The aggregation database (PMAG).
    pub fn db(&self) -> &TimeSeriesDb {
        &self.db
    }

    /// The scrape manager feeding the database.
    pub fn scraper(&self) -> &Scraper {
        &self.scraper
    }

    /// The analysis component (PMAN).
    pub fn analyzer(&self) -> &Analyzer {
        &self.analyzer
    }

    /// The dashboards (PMV).
    pub fn dashboards(&self) -> &DashboardSet {
        &self.dashboards
    }

    /// The TeeQL rule engine (recording + alert rules).  Groups added via
    /// [`MonitorBuilder::with_rules`] evaluate inside the monitoring loop;
    /// inspect firing alerts with
    /// [`rules().firing_alerts()`](RuleEngine::firing_alerts).
    pub fn rules(&self) -> &RuleEngine {
        &self.rules
    }

    /// The HTTP serving edge, when [`MonitorBuilder::with_server`] was used.
    pub fn server(&self) -> Option<&teemon_server::Server> {
        self.server.as_ref()
    }

    /// Gracefully shuts the serving edge down: stop accepting, drain
    /// in-flight connections under the configured deadline, flush the WAL.
    /// Returns `true` when the drain completed (also when no server ran).
    pub fn shutdown_server(&mut self) -> bool {
        match self.server.take() {
            Some(server) => server.shutdown(),
            None => true,
        }
    }

    /// The container exporter, when full monitoring is active, so the host
    /// model can register containers (cAdvisor's data source).
    pub fn container_exporter(&self) -> Option<&ContainerExporter> {
        self.container_exporter.as_ref()
    }

    /// Registers a container with the container exporter (no-op unless full
    /// monitoring is active).
    pub fn register_container(&self, spec: ContainerSpec) {
        if let Some(exporter) = &self.container_exporter {
            exporter.register_container(spec);
        }
    }

    /// Performs one forced scrape of every target at the kernel's current
    /// virtual time (per-target intervals do not gate a manual tick).
    /// Returns the number of healthy targets.
    ///
    /// Runs through the scraper's ingest fast lane and the allocation-free
    /// [`teemon_tsdb::RoundSummary`] path — a steady-state tick touches each
    /// storage shard lock once and allocates nothing.
    pub fn scrape_tick(&self) -> usize {
        let now = self.kernel.clock().now_millis();
        let healthy = self.scraper.scrape_round(now).healthy;
        self.rules.evaluate_due(now);
        healthy
    }

    /// Runs `ticks` scrape rounds spaced by the scraper's global interval,
    /// advancing the simulated clock accordingly.  Each round scrapes only
    /// the targets that are due (via the batched
    /// [`teemon_tsdb::Scraper::scrape_round_due`] path), so per-target
    /// intervals thin out slow targets here.
    pub fn run_scrape_loop(&self, ticks: u64) {
        for _ in 0..ticks {
            self.kernel
                .clock()
                .advance(teemon_sim_core::SimDuration::from_millis(self.scraper.interval_ms()));
            let now = self.kernel.clock().now_millis();
            self.scraper.scrape_round_due(now);
            self.rules.evaluate_due(now);
        }
    }

    /// Renders one of the standard dashboards over the whole retained range.
    pub fn render_dashboard(&self, title: &str, width: usize) -> Option<String> {
        self.dashboards.get(title).map(|d| d.render(&self.db, 0, u64::MAX, width))
    }
}

/// A monitored Kubernetes-like cluster: one [`HostMonitor`] per SGX node,
/// deployed through the TEEMon Helm chart and discovered via the cluster's
/// service discovery (§5.4).
pub struct ClusterMonitor {
    cluster: Cluster,
    discovery: ServiceDiscovery,
    hosts: Vec<HostMonitor>,
    db: TimeSeriesDb,
    mode: MonitoringMode,
}

impl ClusterMonitor {
    /// Installs TEEMon on every SGX node of `cluster` using the default chart
    /// and full monitoring.
    pub fn install(cluster: Cluster) -> Self {
        Self::install_with_mode(cluster, MonitoringMode::Full)
    }

    /// Installs TEEMon with an explicit monitoring mode preset on every SGX
    /// node; each host is constructed through [`MonitorBuilder`].
    pub fn install_with_mode(cluster: Cluster, mode: MonitoringMode) -> Self {
        let mut discovery = ServiceDiscovery::new();
        HelmChart::teemon().install(&mut discovery);
        let db = TimeSeriesDb::new();
        let mut hosts = Vec::new();
        for node in cluster.ready_nodes() {
            if node.sgx_capable {
                hosts.push(MonitorBuilder::new(&node.name).mode(mode).build());
            }
        }
        Self { cluster, discovery, hosts, db, mode }
    }

    /// The cluster being monitored.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Per-node host monitors.
    pub fn hosts(&self) -> &[HostMonitor] {
        &self.hosts
    }

    /// The scrape endpoints service discovery currently resolves.
    pub fn endpoints(&self) -> Vec<teemon_orchestrator::ScrapeEndpoint> {
        self.discovery.endpoints(&self.cluster)
    }

    /// Reconciles monitors after cluster topology changes: adds monitors for
    /// new SGX nodes, drops monitors for departed ones.  Returns
    /// `(added, removed)`.
    pub fn reconcile(&mut self) -> (usize, usize) {
        let ready_sgx: Vec<String> = self
            .cluster
            .ready_nodes()
            .iter()
            .filter(|n| n.sgx_capable)
            .map(|n| n.name.clone())
            .collect();
        let before = self.hosts.len();
        self.hosts.retain(|h| ready_sgx.contains(&h.node().to_string()));
        let removed = before - self.hosts.len();
        let mut added = 0;
        for name in &ready_sgx {
            if !self.hosts.iter().any(|h| h.node() == name) {
                self.hosts.push(MonitorBuilder::new(name).mode(self.mode).build());
                added += 1;
            }
        }
        (added, removed)
    }

    /// Scrapes every host once.  Returns the number of healthy targets.
    pub fn scrape_all(&self) -> usize {
        self.hosts.iter().map(|h| h.scrape_tick()).sum()
    }

    /// Total enclaves currently active across the cluster.
    pub fn total_active_enclaves(&self) -> u64 {
        self.hosts.iter().map(|h| h.kernel().sgx_driver().stats().enclaves_active).sum()
    }

    /// A cluster-level database for cross-node aggregation (currently fed by
    /// callers; per-host data lives in each host's own db).
    pub fn db(&self) -> &TimeSeriesDb {
        &self.db
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teemon_frameworks::{Deployment, FrameworkKind, FrameworkParams};
    use teemon_kernel_sim::Syscall;
    use teemon_metrics::RegistryCollector;
    use teemon_orchestrator::Node;
    use teemon_tsdb::Selector;

    #[test]
    fn off_mode_attaches_nothing() {
        let host = HostMonitor::new("n1", MonitoringMode::Off);
        assert_eq!(host.kernel().hooks().total_attached(), 0);
        assert_eq!(host.scrape_tick(), 0);
        assert_eq!(host.mode(), MonitoringMode::Off);
    }

    #[test]
    fn ebpf_only_attaches_programs_but_no_scraping() {
        let host = HostMonitor::new("n1", MonitoringMode::EbpfOnly);
        assert!(host.kernel().hooks().total_attached() > 0);
        assert_eq!(host.scrape_tick(), 0, "no scrape targets in eBPF-only mode");
    }

    #[test]
    fn full_monitoring_scrapes_all_exporters_and_the_self_target() {
        let host = HostMonitor::new("worker-1", MonitoringMode::Full);
        assert!(host.kernel().hooks().total_attached() > 0);

        // Generate some activity, then scrape.
        let pid = host.kernel().spawn_process(
            "redis-server",
            teemon_kernel_sim::process::ProcessKind::Enclave,
            8,
        );
        host.kernel().syscall(pid, Syscall::Read, true);
        host.register_container(ContainerSpec {
            name: "redis-0".into(),
            image: "redis:5".into(),
            pid: pid.as_u32(),
            memory_limit_bytes: 1 << 30,
        });
        host.kernel().clock().advance(teemon_sim_core::SimDuration::from_secs(5));
        assert_eq!(host.scrape_tick(), 5, "4 exporters + the teemon_self target");

        // All exporter families land in the database, the engine's own
        // telemetry among them.
        for metric in [
            "teemon_syscalls_total",
            "sgx_nr_free_pages",
            "node_cpu_cores",
            "container_spec_memory_limit_bytes",
            "teemon_scrape_rounds_total",
        ] {
            assert!(
                !host.db().query_instant(&Selector::metric(metric), u64::MAX).is_empty(),
                "metric {metric} missing after scrape"
            );
        }
        // Dashboards render from the scraped data.
        let rendered = host.render_dashboard("SGX", 50).unwrap();
        assert!(rendered.contains("EPC free pages"));
        assert!(host.render_dashboard("missing", 50).is_none());
    }

    #[test]
    fn workload_on_monitored_host_is_observable_end_to_end() {
        let host = HostMonitor::new("worker-1", MonitoringMode::Full);
        let mut deployment = Deployment::deploy(
            host.kernel(),
            FrameworkParams::for_kind(FrameworkKind::Scone),
            "redis-server",
            32 << 20,
            8,
            11,
        )
        .unwrap();
        let request = teemon_frameworks::RequestProfile::keyvalue_get(64, 8_000);
        for _ in 0..300 {
            deployment.execute(&request, 320);
        }
        host.run_scrape_loop(3);
        let results =
            host.db().query_range(&Selector::metric("teemon_syscalls_total"), 0, u64::MAX);
        assert!(!results.is_empty());
        // The analyzer can run over the scraped data without findings blowing up.
        let findings = host.analyzer().diagnose_all(300.0, 0, u64::MAX);
        let _ = findings;
    }

    #[test]
    fn builder_reuses_kernel_and_db_and_plugs_collectors() {
        let kernel = Kernel::new();
        let db = TimeSeriesDb::new();
        let app_registry = teemon_metrics::Registry::new();
        app_registry
            .counter_family("app_requests_total", "requests")
            .default_instance()
            .inc_by(9.0);

        let host = MonitorBuilder::new("worker-9")
            .mode(MonitoringMode::Full)
            .kernel(kernel.clone())
            .db(db.clone())
            .collector(
                ScrapeTargetConfig::new("redis_exporter", "worker-9:9121"),
                Arc::new(RegistryCollector::new("redis_exporter", app_registry)),
            )
            .build();
        assert_eq!(
            host.scraper().target_count(),
            6,
            "4 standard exporters + teemon_self + 1 plugged in"
        );
        kernel.clock().advance(teemon_sim_core::SimDuration::from_secs(5));
        assert_eq!(host.scrape_tick(), 6);
        // The plugged-in collector's samples land in the shared db.
        let results = db.query_instant(&Selector::metric("app_requests_total"), u64::MAX);
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].labels.get("job"), Some("redis_exporter"));
    }

    #[test]
    fn builder_per_exporter_intervals_thin_out_scrapes() {
        let host = MonitorBuilder::new("worker-2")
            .mode(MonitoringMode::Full)
            .scrape_interval_ms(5_000)
            .exporter_interval_ms("cadvisor", 20_000)
            .build();
        // Four rounds at t = 5, 10, 15, 20 s: cadvisor (20 s interval) is
        // only due on the first round; the other three scrape every round.
        host.run_scrape_loop(4);
        let up = host.db().query_range(&Selector::metric("up"), 0, u64::MAX);
        let points_of = |job: &str| {
            up.iter()
                .find(|r| r.labels.get("job") == Some(job))
                .map(|r| r.points.len())
                .unwrap_or(0)
        };
        assert_eq!(points_of("node_exporter"), 4);
        assert_eq!(points_of("sgx_exporter"), 4);
        assert_eq!(points_of("cadvisor"), 1);
    }

    #[test]
    fn builder_rules_evaluate_inside_the_monitoring_loop() {
        use teemon_analysis::Severity;
        use teemon_query::{parse, AlertRule, RecordingRule, RuleGroup};

        let host = MonitorBuilder::new("worker-3")
            .mode(MonitoringMode::Full)
            .scrape_interval_ms(5_000)
            .with_rules(
                RuleGroup::new("teeql", 5_000)
                    .with_rule(RecordingRule::new(
                        "node:syscalls:rate30s",
                        parse("sum by (node) (rate(teemon_syscalls_total[30s]))").unwrap(),
                    ))
                    .with_rule(
                        AlertRule::new(
                            "always_low_pages",
                            // Free pages are always below this absurd bound;
                            // the rule must hold 10 s before firing.
                            parse("avg_over_time(sgx_nr_free_pages[30s]) < 1000000").unwrap(),
                            Severity::Warning,
                        )
                        .with_for_ms(10_000)
                        .with_hint("synthetic"),
                    ),
            )
            .build();
        assert_eq!(host.rules().group_count(), 1);
        assert_eq!(host.rules().rule_count(), 2);

        let pid = host.kernel().spawn_process(
            "redis-server",
            teemon_kernel_sim::process::ProcessKind::Enclave,
            4,
        );
        for _ in 0..8 {
            for _ in 0..50 {
                host.kernel().syscall(pid, Syscall::Read, true);
            }
            host.kernel().clock().advance(teemon_sim_core::SimDuration::from_secs(5));
            host.scrape_tick();
        }
        // The recording rule derived a queryable series.
        let derived =
            host.db().query_range(&Selector::metric("node:syscalls:rate30s"), 0, u64::MAX);
        assert_eq!(derived.len(), 1);
        assert_eq!(derived[0].labels.get("node"), Some("worker-3"));
        assert!(derived[0].points.len() >= 5, "one point per evaluation after warm-up");
        assert!(derived[0].points.last().unwrap().1 > 0.0, "observed a positive syscall rate");
        // The alert held for its `for` duration and fired, with the ALERTS
        // series exported for dashboards.
        let firing = host.rules().firing_alerts();
        assert_eq!(firing.len(), 1);
        assert_eq!(firing[0].rule, "always_low_pages");
        assert!(
            !host.db().query_instant(&Selector::metric("ALERTS"), u64::MAX).is_empty(),
            "firing alerts are exported as the ALERTS metric"
        );
        // run_scrape_loop drives rules too.
        host.run_scrape_loop(2);
        assert!(!host.rules().firing_alerts().is_empty());
    }

    #[test]
    fn builder_self_observe_alerts_evaluate_over_self_scraped_data() {
        let host = MonitorBuilder::new("worker-5")
            .mode(MonitoringMode::Full)
            .scrape_interval_ms(5_000)
            .with_self_observe_alerts()
            .build();
        assert_eq!(host.rules().group_count(), 2, "teemon_self + teemon_cardinality");
        assert_eq!(
            host.rules().rule_count(),
            12,
            "fallback, imbalance, slow-query, WAL-salvage, WAL-unclean, \
             HTTP-shed, HTTP-panic and HTTP-slow-client alerts, plus the four \
             cardinality-defense alerts"
        );
        // The group evaluates inside the monitoring loop over the series the
        // self target ingests — it must run cleanly against live self data
        // (whether an alert fires depends on process-global probe history).
        host.run_scrape_loop(4);
        assert!(!host
            .db()
            .query_instant(&Selector::metric("teemon_tsdb_shard_series"), u64::MAX)
            .is_empty());
    }

    #[test]
    fn builder_with_server_serves_and_self_scrapes_the_edge() {
        let mut host = MonitorBuilder::new("worker-8")
            .mode(MonitoringMode::Full)
            .with_server("127.0.0.1:0")
            .build();
        let addr = host.server().expect("server running").addr();

        // Remote-write lands in the host's database...
        let resp =
            teemon_server::http_post(addr, "/api/v1/write", "text/plain", b"pushed_demo_total 5\n")
                .expect("push");
        assert_eq!(resp.status, 200, "{}", resp.body_text());

        // ...and a scrape round ingests both the exporters and the serving
        // edge's own probes through the `teemon_http` text-source target.
        host.kernel().clock().advance(teemon_sim_core::SimDuration::from_secs(5));
        assert_eq!(host.scrape_tick(), 6, "4 exporters + teemon_self + teemon_http");
        // (The `teemon_self` registry target exports the http families too;
        // select the serving edge's own job explicitly.)
        let results = host.db().query_instant(
            &Selector::metric("teemon_http_requests_total").with_label("job", "teemon_http"),
            u64::MAX,
        );
        assert_eq!(results.len(), 1);
        assert!(!host
            .db()
            .query_instant(&Selector::metric("pushed_demo_total"), u64::MAX)
            .is_empty());

        // Queries answer over HTTP from the same database the scraper fills.
        let resp = teemon_server::http_get(
            addr,
            &format!("/api/v1/query?query={}", teemon_server::percent_encode("up")),
        )
        .expect("query");
        assert_eq!(resp.status, 200);
        assert!(resp.body_text().contains(r#""status":"success""#));

        assert!(host.shutdown_server(), "graceful drain");
        assert!(host.server().is_none());
        // The edge is gone; the monitor itself keeps scraping (the
        // teemon_http target reports down rather than erroring the round).
        host.kernel().clock().advance(teemon_sim_core::SimDuration::from_secs(5));
        assert_eq!(host.scrape_tick(), 5, "http target is down, everything else scrapes");
    }

    #[test]
    fn builder_durability_survives_a_monitor_restart() {
        let dir = std::env::temp_dir().join(format!("teemon-monitor-wal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let host = MonitorBuilder::new("worker-7")
                .mode(MonitoringMode::Full)
                .with_durability(&dir)
                .build();
            assert!(host.db().durable());
            host.kernel().clock().advance(teemon_sim_core::SimDuration::from_secs(5));
            // scrape_tick drives the WAL flush at the end of the round.
            assert_eq!(host.scrape_tick(), 5);
            assert!(host.db().stats().samples > 0);
        }
        // A fresh monitor on the same directory replays the logs: the
        // previous run's series are queryable before any new scrape.
        let reopened = MonitorBuilder::new("worker-7")
            .mode(MonitoringMode::Full)
            .with_durability(&dir)
            .build();
        assert!(reopened.db().durable());
        assert!(reopened.db().stats().samples > 0, "recovery must restore the scraped rounds");
        assert!(!reopened
            .db()
            .query_instant(&Selector::metric("sgx_nr_free_pages"), u64::MAX)
            .is_empty());
        assert_eq!(reopened.db().stats().wal_failed_shards, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn builder_text_transport_round_trips_the_wire_format() {
        let typed = MonitorBuilder::new("wire-a").mode(MonitoringMode::Full).build();
        let text = MonitorBuilder::new("wire-a")
            .mode(MonitoringMode::Full)
            .transport(ScrapeTransport::Text)
            .build();
        for host in [&typed, &text] {
            host.kernel().clock().advance(teemon_sim_core::SimDuration::from_secs(5));
            assert_eq!(host.scrape_tick(), 5);
        }
        // Both transports ingest the same series set.
        let series_of = |h: &HostMonitor| {
            let mut names: Vec<String> = h
                .db()
                .query_instant(&Selector::metric("sgx_nr_free_pages"), u64::MAX)
                .iter()
                .map(|r| r.labels.to_string())
                .collect();
            names.sort();
            names
        };
        assert_eq!(series_of(&typed), series_of(&text));
        assert_eq!(typed.db().series_count(), text.db().series_count());
    }

    #[test]
    fn cluster_monitor_follows_topology() {
        let cluster = Cluster::with_nodes(2, 1);
        let mut monitor = ClusterMonitor::install(cluster.clone());
        assert_eq!(monitor.hosts().len(), 2, "one monitor per SGX node");
        assert!(monitor.endpoints().len() >= 4);
        assert_eq!(monitor.total_active_enclaves(), 0);

        cluster.add_node(Node::sgx("sgx-new"));
        cluster.remove_node("sgx-0");
        let (added, removed) = monitor.reconcile();
        assert_eq!((added, removed), (1, 1));
        assert_eq!(monitor.hosts().len(), 2);
        let healthy = monitor.scrape_all();
        assert_eq!(healthy, 2 * 5);
    }
}
