//! TEEMon — a continuous performance monitoring framework for TEEs.
//!
//! This crate is the user-facing façade of the reproduction: it wires the
//! exporters (PME), the aggregation database and scraper (PMAG), the analysis
//! component (PMAN) and the dashboards (PMV) on top of the simulated host
//! (kernel + SGX driver), and provides the experiment drivers that regenerate
//! every table and figure of the paper's evaluation.
//!
//! # Quick start
//!
//! ```
//! use teemon::{MonitorBuilder, MonitoringMode};
//! use teemon_apps::{Application, RedisApp};
//! use teemon_frameworks::{Deployment, FrameworkParams};
//!
//! // A simulated SGX host with full TEEMon monitoring attached.  The builder
//! // composes the deployment: mode preset, scrape intervals, extra
//! // collectors; `HostMonitor::new(node, mode)` remains as shorthand.
//! let host = MonitorBuilder::new("worker-1").mode(MonitoringMode::Full).build();
//!
//! // Run a Redis-like workload under SCONE on that host.
//! let app = RedisApp::paper_config(32);
//! let mut deployment = Deployment::deploy(
//!     host.kernel(),
//!     FrameworkParams::for_kind(teemon_frameworks::FrameworkKind::Scone),
//!     app.name(),
//!     app.memory_bytes(),
//!     app.threads(),
//!     7,
//! )
//! .unwrap();
//! let request = app.request(8, 320);
//! for _ in 0..200 {
//!     deployment.execute(&request, 320);
//! }
//!
//! // Scrape, then inspect what TEEMon observed.
//! host.scrape_tick();
//! let syscalls = host
//!     .db()
//!     .query_instant(&teemon_tsdb::Selector::metric("teemon_syscalls_total"), u64::MAX);
//! assert!(!syscalls.is_empty());
//! ```

#![warn(missing_docs)]

pub mod experiments;
pub mod monitor;
pub mod overhead;

pub use monitor::{ClusterMonitor, HostMonitor, MonitorBuilder, MonitoringMode, ScrapeTransport};
pub use overhead::{ComponentFootprint, OverheadModel};
pub use teemon_query::{Alert, AlertRule, AlertState, RecordingRule, Rule, RuleEngine, RuleGroup};
