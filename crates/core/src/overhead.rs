//! The resource footprint of TEEMon's own components (Figure 4) and the
//! throughput impact of running them alongside the monitored application
//! (Figure 5).

use serde::{Deserialize, Serialize};

use crate::monitor::MonitoringMode;

/// CPU and memory footprint of one TEEMon component.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComponentFootprint {
    /// Component name (as labelled in Figure 4).
    pub component: String,
    /// Average CPU utilisation in percent of one core over the measurement
    /// period.
    pub cpu_percent: f64,
    /// Average resident memory in megabytes.
    pub memory_mb: f64,
}

/// The model behind Figures 4 and 5.
///
/// The per-component costs are expressed mechanistically: each exporter pays a
/// fixed cost per scrape plus a cost per exported sample; the aggregator pays
/// a cost per ingested sample and holds recent samples in memory; the
/// visualisation and analysis components poll the aggregator at a lower rate.
/// Evaluating the model over a 24-hour scrape schedule yields the Figure 4
/// numbers; the CPU the components consume competes with the monitored
/// application for cores, which (together with the in-kernel eBPF cost that
/// the kernel model charges directly) produces the Figure 5 overhead.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverheadModel {
    /// Scrape interval in seconds.
    pub scrape_interval_s: f64,
    /// CPU seconds one exporter spends serving one scrape.
    pub exporter_cpu_per_scrape_s: f64,
    /// CPU seconds cAdvisor spends per container per scrape (it walks cgroups,
    /// which is why it is the most expensive component in Figure 4a).
    pub cadvisor_cpu_per_scrape_s: f64,
    /// CPU seconds the aggregator spends ingesting one sample.
    pub aggregator_cpu_per_sample_s: f64,
    /// Bytes of aggregator memory per retained sample.
    pub aggregator_bytes_per_sample: f64,
    /// Base resident memory of each component in MB.
    pub base_memory_mb: f64,
    /// Aggregator base memory in MB (Prometheus keeps its head chunks in
    /// memory — the paper measured ~4× the other components).
    pub aggregator_base_memory_mb: f64,
    /// Number of CPU cores on the host.
    pub cpu_cores: f64,
}

impl Default for OverheadModel {
    fn default() -> Self {
        Self {
            scrape_interval_s: 5.0,
            exporter_cpu_per_scrape_s: 0.02,
            cadvisor_cpu_per_scrape_s: 0.08,
            aggregator_cpu_per_sample_s: 0.000_01,
            aggregator_bytes_per_sample: 120.0,
            base_memory_mb: 100.0,
            aggregator_base_memory_mb: 260.0,
            cpu_cores: 8.0,
        }
    }
}

impl OverheadModel {
    /// Evaluates the Figure 4 experiment: the CPU and memory footprint of each
    /// component over `hours` of monitoring with `samples_per_scrape` samples
    /// collected from `containers` containers on one host.
    pub fn component_footprints(
        &self,
        hours: f64,
        samples_per_scrape: f64,
        containers: f64,
    ) -> Vec<ComponentFootprint> {
        let scrapes_per_second = 1.0 / self.scrape_interval_s;
        let exporter_cpu = self.exporter_cpu_per_scrape_s * scrapes_per_second * 100.0;
        let cadvisor_cpu = (self.cadvisor_cpu_per_scrape_s + 0.002 * containers.max(1.0))
            * scrapes_per_second
            * 100.0;
        let ingested_per_second = samples_per_scrape * scrapes_per_second;
        let aggregator_cpu = self.aggregator_cpu_per_sample_s * ingested_per_second * 100.0
            + 0.2 /* compaction, rule evaluation */;
        // Memory: the aggregator keeps the most recent head chunks (about half
        // an hour of samples) in memory regardless of how long the experiment
        // ran; older chunks are compacted.
        let retained_seconds = (hours * 3600.0).min(0.5 * 3600.0);
        let aggregator_memory_mb = self.aggregator_base_memory_mb
            + ingested_per_second * retained_seconds * self.aggregator_bytes_per_sample / 1e6;
        vec![
            ComponentFootprint {
                component: "sgx-exporter".into(),
                cpu_percent: exporter_cpu * 0.5,
                memory_mb: self.base_memory_mb * 0.6,
            },
            ComponentFootprint {
                component: "ebpf-exporter".into(),
                cpu_percent: exporter_cpu * 1.5,
                memory_mb: self.base_memory_mb * 0.9,
            },
            ComponentFootprint {
                component: "node-exporter".into(),
                cpu_percent: exporter_cpu,
                memory_mb: self.base_memory_mb * 0.5,
            },
            ComponentFootprint {
                component: "cadvisor".into(),
                cpu_percent: cadvisor_cpu,
                memory_mb: self.base_memory_mb,
            },
            ComponentFootprint {
                component: "prometheus".into(),
                cpu_percent: aggregator_cpu,
                memory_mb: aggregator_memory_mb,
            },
            ComponentFootprint {
                component: "grafana".into(),
                cpu_percent: 0.5,
                memory_mb: self.base_memory_mb,
            },
            ComponentFootprint {
                component: "pman".into(),
                cpu_percent: 0.4,
                memory_mb: self.base_memory_mb * 0.7,
            },
        ]
    }

    /// Total memory footprint of TEEMon in MB for the Figure 4 configuration.
    pub fn total_memory_mb(&self, hours: f64, samples_per_scrape: f64, containers: f64) -> f64 {
        self.component_footprints(hours, samples_per_scrape, containers)
            .iter()
            .map(|c| c.memory_mb)
            .sum()
    }

    /// The throughput factor (≤ 1.0) the *user-space* TEEMon components impose
    /// on a monitored application by competing for CPU.  The in-kernel eBPF
    /// cost is not included here — the kernel model charges it directly per
    /// traced event — so Figure 5's observation that "the eBPF programs …
    /// contribute for half of the performance drop" emerges from combining
    /// both halves.
    pub fn userspace_throughput_factor(&self, mode: MonitoringMode, containers: f64) -> f64 {
        match mode {
            MonitoringMode::Off | MonitoringMode::EbpfOnly => 1.0,
            MonitoringMode::Full => {
                let footprints = self.component_footprints(1.0, 2_000.0, containers);
                let total_cpu_percent: f64 = footprints.iter().map(|c| c.cpu_percent).sum();
                // The monitored application loses that share of the machine's
                // cores, plus cache/memory-bandwidth interference roughly equal
                // to the CPU share.
                let share = total_cpu_percent / (100.0 * self.cpu_cores);
                (1.0 - 2.0 * share).clamp(0.5, 1.0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prometheus_is_the_memory_hog() {
        let model = OverheadModel::default();
        let footprints = model.component_footprints(24.0, 2_000.0, 10.0);
        let prometheus = footprints.iter().find(|c| c.component == "prometheus").unwrap();
        let others_max = footprints
            .iter()
            .filter(|c| c.component != "prometheus")
            .map(|c| c.memory_mb)
            .fold(0.0, f64::max);
        // The paper: "While all other components use 100 MB on average,
        // Prometheus allocates 4× as much."
        assert!(
            prometheus.memory_mb > 3.0 * others_max,
            "{} vs {}",
            prometheus.memory_mb,
            others_max
        );
        let total = model.total_memory_mb(24.0, 2_000.0, 10.0);
        assert!(
            (500.0..1_000.0).contains(&total),
            "total memory {total} MB outside paper band (~700 MB)"
        );
    }

    #[test]
    fn cadvisor_is_the_cpu_hog_and_stays_modest() {
        let footprints = OverheadModel::default().component_footprints(24.0, 2_000.0, 10.0);
        let cadvisor = footprints.iter().find(|c| c.component == "cadvisor").unwrap();
        for c in &footprints {
            assert!(c.cpu_percent <= cadvisor.cpu_percent + 1e-9, "{} > cadvisor", c.component);
            assert!(
                c.cpu_percent < 5.0,
                "{} uses {}% CPU, paper says ≲3%",
                c.component,
                c.cpu_percent
            );
        }
        assert!(cadvisor.cpu_percent > 0.3);
    }

    #[test]
    fn userspace_factor_only_applies_to_full_monitoring() {
        let model = OverheadModel::default();
        assert_eq!(model.userspace_throughput_factor(MonitoringMode::Off, 10.0), 1.0);
        assert_eq!(model.userspace_throughput_factor(MonitoringMode::EbpfOnly, 10.0), 1.0);
        let full = model.userspace_throughput_factor(MonitoringMode::Full, 10.0);
        assert!(full < 1.0);
        assert!(full > 0.9, "user-space share should be a few percent, got {full}");
    }
}
