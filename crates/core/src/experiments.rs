//! Experiment drivers regenerating every figure of the paper's evaluation.
//!
//! Each function returns structured rows (serialisable with serde) and is
//! called both by the Criterion benches in `teemon-bench` and by the
//! `fig*` binaries that print the tables recorded in `EXPERIMENTS.md`.
//!
//! | function | paper artefact |
//! |---|---|
//! | [`figure4`] | Fig. 4a/4b — CPU & memory footprint of TEEMon's components |
//! | [`figure5`] | Fig. 5 — monitoring overhead on MongoDB / NGINX / Redis |
//! | [`figure6`] | Fig. 6 — syscall mix of two SCONE releases running Redis |
//! | [`figure7`] | Fig. 7 — Redis throughput across SCONE code evolution |
//! | [`figure8_9`] | Fig. 8/9/10 — throughput & latency of Redis under each framework |
//! | [`figure11`] | Fig. 11a–f — per-100-request metric rates per framework |

use serde::{Deserialize, Serialize};

use teemon_apps::{
    run_benchmark, Application, MemtierConfig, MetricRates, MongoApp, NetworkModel, NginxApp,
    RedisApp,
};
use teemon_frameworks::{Deployment, FrameworkKind, FrameworkParams, SconeVersion};
use teemon_kernel_sim::{Kernel, Syscall};

use crate::monitor::{MonitorBuilder, MonitoringMode};
use crate::overhead::{ComponentFootprint, OverheadModel};

/// Default number of sampled requests per configuration used by the benches.
pub const DEFAULT_SAMPLES: u64 = 3_000;

fn fresh_kernel() -> Kernel {
    Kernel::new()
}

// ---------------------------------------------------------------------------
// Figure 4
// ---------------------------------------------------------------------------

/// Runs the Figure 4 experiment: 24 hours of monitoring on one host with the
/// paper's scrape configuration, reporting per-component CPU and memory.
pub fn figure4(hours: f64) -> Vec<ComponentFootprint> {
    OverheadModel::default().component_footprints(hours, 2_000.0, 10.0)
}

// ---------------------------------------------------------------------------
// Figure 5
// ---------------------------------------------------------------------------

/// One bar of Figure 5.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig5Row {
    /// Application name.
    pub app: String,
    /// Monitoring configuration label (as in the paper's legend).
    pub configuration: String,
    /// Throughput in operations per second.
    pub throughput_iops: f64,
    /// Throughput normalised to the unmonitored ("Monitoring OFF") run.
    pub normalized: f64,
}

fn mode_label(mode: MonitoringMode) -> &'static str {
    match mode {
        MonitoringMode::Off => "Monitoring OFF",
        MonitoringMode::EbpfOnly => "Monitoring OFF + eBPF ON",
        MonitoringMode::Full => "Monitoring ON",
    }
}

/// Runs the Figure 5 experiment: each application under SCONE, in the three
/// monitoring configurations, normalised against the unmonitored run.
pub fn figure5(samples: u64) -> Vec<Fig5Row> {
    let apps: Vec<(String, Box<dyn Application>)> = vec![
        ("mongodb".into(), Box::new(MongoApp::default_collection())),
        ("nginx".into(), Box::new(NginxApp::small_site())),
        ("redis".into(), Box::new(RedisApp::paper_config(32))),
    ];
    let overhead = OverheadModel::default();
    // Single-host (loopback) benchmark so the server, not the NIC, is the
    // bottleneck: on the 1 Gb/s default link NGINX's ~8 KB responses cap
    // throughput at the wire rate in every configuration, hiding the CPU-side
    // monitoring overhead this experiment exists to measure.
    let network = NetworkModel::loopback();
    let params = FrameworkParams::scone(SconeVersion::Commit09fea91);
    let mut rows = Vec::new();
    for (name, app) in &apps {
        let mut baseline = None;
        for mode in [MonitoringMode::Off, MonitoringMode::EbpfOnly, MonitoringMode::Full] {
            let host = MonitorBuilder::new("bench-node").mode(mode).build();
            let config = MemtierConfig::paper_default(320).with_samples(samples);
            let result =
                run_benchmark(host.kernel(), params.clone(), app.as_ref(), &network, &config)
                    .expect("benchmark");
            // Full monitoring additionally competes for CPU in user space.
            let factor = overhead.userspace_throughput_factor(mode, 10.0);
            let throughput = result.throughput_iops * factor;
            let baseline_value = *baseline.get_or_insert(throughput);
            rows.push(Fig5Row {
                app: name.clone(),
                configuration: mode_label(mode).to_string(),
                throughput_iops: throughput,
                normalized: throughput / baseline_value,
            });
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// Figures 6 and 7
// ---------------------------------------------------------------------------

/// One bar of Figure 6: occurrences per second of one syscall under one SCONE
/// release.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig6Row {
    /// SCONE commit hash.
    pub commit: String,
    /// Syscall name.
    pub syscall: String,
    /// Kernel-visible occurrences per second of wall-clock (server) time.
    pub per_second: f64,
}

/// One bar of Figure 7: Redis throughput under one SCONE release (plus the
/// native reference).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig7Row {
    /// Configuration label (commit hash or `native`).
    pub configuration: String,
    /// Throughput in IOP/s on a single host (loopback) benchmark.
    pub throughput_iops: f64,
}

/// Runs the Figure 6 experiment: the syscall mix of Redis under the two SCONE
/// releases.
pub fn figure6(samples: u64) -> Vec<Fig6Row> {
    let app = RedisApp::paper_config(32);
    let mut rows = Vec::new();
    for version in [SconeVersion::Commit572bd1a5, SconeVersion::Commit09fea91] {
        let kernel = fresh_kernel();
        let mut deployment = Deployment::deploy(
            &kernel,
            FrameworkParams::scone(version),
            app.name(),
            app.memory_bytes(),
            app.threads(),
            17,
        )
        .expect("deploy");
        let request = app.request(8, 320);
        deployment.execute_many(&request, 320, samples);
        let elapsed_s = (deployment.totals().busy_ns as f64 / 1e9).max(1e-9);
        let table = kernel.syscall_table(deployment.pid());
        for syscall in [
            Syscall::ClockGettime,
            Syscall::Futex,
            Syscall::Recvfrom,
            Syscall::Sendto,
            Syscall::EpollWait,
        ] {
            rows.push(Fig6Row {
                commit: version.commit_hash().to_string(),
                syscall: syscall.name().to_string(),
                per_second: table.count(syscall) as f64 / elapsed_s,
            });
        }
    }
    rows
}

/// Runs the Figure 7 experiment: Redis throughput on a single host for the two
/// SCONE releases and native execution.
pub fn figure7(samples: u64) -> Vec<Fig7Row> {
    let app = RedisApp::paper_config(32);
    let network = NetworkModel::loopback();
    let config = MemtierConfig::paper_default(64).with_samples(samples);
    let mut rows = Vec::new();
    for (label, params) in [
        ("572bd1a5".to_string(), FrameworkParams::scone(SconeVersion::Commit572bd1a5)),
        ("09fea91".to_string(), FrameworkParams::scone(SconeVersion::Commit09fea91)),
        ("native".to_string(), FrameworkParams::native()),
    ] {
        let result =
            run_benchmark(&fresh_kernel(), params, &app, &network, &config).expect("benchmark");
        rows.push(Fig7Row { configuration: label, throughput_iops: result.throughput_iops });
    }
    rows
}

// ---------------------------------------------------------------------------
// Figures 8, 9 and 10
// ---------------------------------------------------------------------------

/// One point of Figures 8/9/10: a framework × database size × connection count
/// configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrameworkSweepRow {
    /// Framework name.
    pub framework: String,
    /// Database size label in MB (78 / 105 / 127).
    pub database_mb: u64,
    /// Total client connections.
    pub connections: u32,
    /// Throughput in thousands of operations per second (Figure 8).
    pub kiops: f64,
    /// Mean latency in milliseconds (Figure 9).
    pub latency_ms: f64,
}

/// The connection counts swept in the paper's figures.
pub const PAPER_CONNECTIONS: [u32; 6] = [8, 80, 160, 320, 560, 800];

/// Runs the Figures 8/9 sweep: every framework × database size × connection
/// count.  Figure 10 is the 78 MB slice of the same data.
pub fn figure8_9(samples: u64, connections: &[u32]) -> Vec<FrameworkSweepRow> {
    let mut rows = Vec::new();
    let network = NetworkModel::default();
    for kind in FrameworkKind::ALL {
        for (db_label, app) in RedisApp::paper_database_sizes() {
            for &conns in connections {
                let config = MemtierConfig::paper_default(conns).with_samples(samples);
                let result = run_benchmark(
                    &fresh_kernel(),
                    FrameworkParams::for_kind(kind),
                    &app,
                    &network,
                    &config,
                )
                .expect("benchmark");
                rows.push(FrameworkSweepRow {
                    framework: kind.name().to_string(),
                    database_mb: db_label,
                    connections: conns,
                    kiops: result.kiops(),
                    latency_ms: result.latency_ms,
                });
            }
        }
    }
    rows
}

/// The Figure 10 slice: only the 78 MB database.
pub fn figure10(samples: u64, connections: &[u32]) -> Vec<FrameworkSweepRow> {
    figure8_9(samples, connections).into_iter().filter(|r| r.database_mb == 78).collect()
}

// ---------------------------------------------------------------------------
// Figure 11
// ---------------------------------------------------------------------------

/// One group of bars of Figure 11: the per-100-request metric rates for one
/// framework at one (connections, database size) configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig11Row {
    /// Framework name.
    pub framework: String,
    /// Total client connections (8 / 320 / 580 in the paper).
    pub connections: u32,
    /// Database size label in MB (78 = "S", 105 = "L" in the paper).
    pub database_mb: u64,
    /// The per-100-request rates (Figures 11a–f).
    pub rates: MetricRates,
}

/// The (connections, database) configurations of Figure 11.
pub const FIG11_CONFIGS: [(u32, u64); 6] =
    [(8, 78), (8, 105), (320, 78), (320, 105), (580, 78), (580, 105)];

/// Runs the Figure 11 experiment.
pub fn figure11(samples: u64) -> Vec<Fig11Row> {
    let network = NetworkModel::default();
    let mut rows = Vec::new();
    for kind in FrameworkKind::ALL {
        for (conns, db_mb) in FIG11_CONFIGS {
            let app = match db_mb {
                78 => RedisApp::paper_config(32),
                105 => RedisApp::paper_config(64),
                _ => RedisApp::paper_config(96),
            };
            let config = MemtierConfig::paper_default(conns).with_samples(samples);
            let result = run_benchmark(
                &fresh_kernel(),
                FrameworkParams::for_kind(kind),
                &app,
                &network,
                &config,
            )
            .expect("benchmark");
            rows.push(Fig11Row {
                framework: kind.name().to_string(),
                connections: conns,
                database_mb: db_mb,
                rates: result.rates,
            });
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// Rendering helpers shared by the fig* binaries
// ---------------------------------------------------------------------------

/// Renders rows of any serialisable experiment output as pretty JSON.
pub fn to_json<T: Serialize>(rows: &T) -> String {
    serde_json::to_string_pretty(rows).unwrap_or_else(|_| "[]".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    const QUICK: u64 = 400;

    #[test]
    fn figure4_reproduces_component_shape() {
        let rows = figure4(24.0);
        assert_eq!(rows.len(), 7);
        let total_memory: f64 = rows.iter().map(|r| r.memory_mb).sum();
        assert!((500.0..1_000.0).contains(&total_memory));
        assert!(rows.iter().all(|r| r.cpu_percent < 5.0));
    }

    #[test]
    fn figure5_overhead_is_within_paper_band() {
        let rows = figure5(QUICK);
        assert_eq!(rows.len(), 9);
        for row in rows.iter().filter(|r| r.configuration == "Monitoring ON") {
            assert!(
                row.normalized > 0.75 && row.normalized <= 1.0,
                "{}: monitored throughput {} of baseline, expected 0.83–0.95",
                row.app,
                row.normalized
            );
        }
        // eBPF-only sits between OFF and full monitoring.
        for app in ["mongodb", "nginx", "redis"] {
            let off = rows
                .iter()
                .find(|r| r.app == app && r.configuration == "Monitoring OFF")
                .unwrap()
                .normalized;
            let ebpf = rows
                .iter()
                .find(|r| r.app == app && r.configuration == "Monitoring OFF + eBPF ON")
                .unwrap()
                .normalized;
            let full = rows
                .iter()
                .find(|r| r.app == app && r.configuration == "Monitoring ON")
                .unwrap()
                .normalized;
            assert!(off >= ebpf && ebpf >= full, "{app}: {off} >= {ebpf} >= {full} violated");
        }
    }

    #[test]
    fn figure6_clock_gettime_dominates_only_in_old_commit() {
        let rows = figure6(QUICK);
        let clock_old = rows
            .iter()
            .find(|r| r.commit == "572bd1a5" && r.syscall == "clock_gettime")
            .unwrap()
            .per_second;
        let read_old = rows
            .iter()
            .find(|r| r.commit == "572bd1a5" && r.syscall == "recvfrom")
            .unwrap()
            .per_second;
        let clock_new = rows
            .iter()
            .find(|r| r.commit == "09fea91" && r.syscall == "clock_gettime")
            .unwrap()
            .per_second;
        assert!(clock_old > 10.0 * read_old.max(1.0), "old commit: clock_gettime must dominate");
        assert!(clock_new < clock_old / 100.0, "new commit handles clock_gettime in-enclave");
    }

    #[test]
    fn figure7_new_commit_roughly_doubles_throughput() {
        let rows = figure7(QUICK);
        let old = rows.iter().find(|r| r.configuration == "572bd1a5").unwrap().throughput_iops;
        let new = rows.iter().find(|r| r.configuration == "09fea91").unwrap().throughput_iops;
        let native = rows.iter().find(|r| r.configuration == "native").unwrap().throughput_iops;
        let speedup = new / old;
        assert!(
            (1.4..3.5).contains(&speedup),
            "expected roughly 2x speedup from the clock_gettime fix, got {speedup}"
        );
        assert!(native > new, "native Redis must still beat SCONE");
    }

    #[test]
    fn figure8_preserves_the_framework_ordering() {
        let rows = figure8_9(QUICK, &[320]);
        let at = |fw: &str, db: u64| {
            rows.iter()
                .find(|r| r.framework == fw && r.database_mb == db && r.connections == 320)
                .unwrap()
        };
        let native = at("native", 78);
        let scone = at("scone", 78);
        let lkl = at("sgx-lkl", 78);
        let graphene = at("graphene-sgx", 78);
        assert!(native.kiops > scone.kiops);
        assert!(scone.kiops > lkl.kiops);
        assert!(lkl.kiops > graphene.kiops);
        // Latency ordering is the inverse (Figure 9).
        assert!(native.latency_ms < scone.latency_ms);
        assert!(scone.latency_ms < lkl.latency_ms);
        assert!(lkl.latency_ms < graphene.latency_ms);
        // Paging hurts SCONE when the database exceeds the EPC (Figure 8b).
        assert!(at("scone", 105).kiops < at("scone", 78).kiops);
        // Figure 10 is the 78 MB slice.
        let fig10 = figure10(QUICK, &[320]);
        assert!(fig10.iter().all(|r| r.database_mb == 78));
        assert_eq!(fig10.len(), 4);
    }

    #[test]
    fn figure11_metric_signatures_match_paper_qualitatively() {
        let rows = figure11(QUICK);
        let at = |fw: &str, conns: u32, db: u64| {
            rows.iter()
                .find(|r| r.framework == fw && r.connections == conns && r.database_mb == db)
                .unwrap()
        };
        // (a) native Redis causes essentially no user-space page faults.
        assert!(at("native", 320, 105).rates.user_page_faults < 1.0);
        // (d) SCONE evicts far more EPC pages than the others at 105 MB.
        let scone_evict = at("scone", 580, 105).rates.evicted_epc_pages;
        assert!(scone_evict > 0.0);
        assert!(scone_evict >= at("graphene-sgx", 580, 105).rates.evicted_epc_pages / 10.0);
        // Small databases fitting the EPC do not evict under SCONE.
        assert_eq!(at("scone", 320, 78).rates.evicted_epc_pages, 0.0);
        // (c) every SGX framework has more LLC misses than native.
        for fw in ["scone", "sgx-lkl", "graphene-sgx"] {
            assert!(
                at(fw, 320, 78).rates.llc_misses > at("native", 320, 78).rates.llc_misses,
                "{fw} should miss more than native"
            );
        }
        // (f) Graphene-SGX causes by far the most host context switches.
        let graphene_cs = at("graphene-sgx", 580, 105).rates.context_switches_host;
        for fw in ["native", "scone", "sgx-lkl"] {
            assert!(
                graphene_cs > 2.0 * at(fw, 580, 105).rates.context_switches_host,
                "graphene ({graphene_cs}) vs {fw}"
            );
        }
    }

    #[test]
    fn experiment_rows_serialise_to_json() {
        let json = to_json(&figure4(1.0));
        assert!(json.contains("prometheus"));
        let json = to_json(&figure7(200));
        assert!(json.contains("09fea91"));
    }
}
