//! CLI entry point: `teemon-verify [--config <verify.toml>] [repo-root]`.
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage/config error.

use std::path::PathBuf;
use std::process::ExitCode;

use teemon_verify::{config, engine};

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut config_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--config" => match args.next() {
                Some(path) => config_path = Some(PathBuf::from(path)),
                None => return usage("--config needs a path"),
            },
            "--help" | "-h" => {
                println!("usage: teemon-verify [--config <verify.toml>] [repo-root]");
                return ExitCode::SUCCESS;
            }
            _ if root.is_none() => root = Some(PathBuf::from(arg)),
            other => return usage(&format!("unexpected argument `{other}`")),
        }
    }
    let root = root.unwrap_or_else(|| PathBuf::from("."));
    let config_path = config_path.unwrap_or_else(|| root.join("verify.toml"));

    let text = match std::fs::read_to_string(&config_path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("teemon-verify: cannot read {}: {e}", config_path.display());
            return ExitCode::from(2);
        }
    };
    let config = match config::parse(&text) {
        Ok(config) => config,
        Err(e) => {
            eprintln!("teemon-verify: {e}");
            return ExitCode::from(2);
        }
    };
    match engine::check_workspace(&root, &config) {
        Ok((violations, checked)) if violations.is_empty() => {
            println!("teemon-verify: OK — {checked} files, 0 violations");
            ExitCode::SUCCESS
        }
        Ok((violations, checked)) => {
            for v in &violations {
                println!("{}:{}: [{}] {}", v.file, v.line, v.rule, v.message);
            }
            println!("teemon-verify: {} violation(s) in {checked} files", violations.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("teemon-verify: {e}");
            ExitCode::from(2)
        }
    }
}

fn usage(problem: &str) -> ExitCode {
    eprintln!("teemon-verify: {problem}");
    eprintln!("usage: teemon-verify [--config <verify.toml>] [repo-root]");
    ExitCode::from(2)
}
