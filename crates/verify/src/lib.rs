//! teemon-verify: the project-invariant linter.
//!
//! The hot paths of the TSDB make promises the type system cannot state —
//! no panicking extraction under a shard lock, no `std::sync` primitives
//! bypassing the audited `parking_lot` shim, no wall-clock reads inside
//! query evaluation, no nested raw shard-lock acquisition outside the
//! ordered helpers.  This crate enforces them with a dependency-free
//! token-level walker (the container has no crates.io, so no `syn`):
//!
//! - [`lexer`]: a total lexer producing identifiers, punctuation, literals,
//!   and lifetimes with line numbers, plus the `#[cfg(test)]` mask.
//! - [`config`]: the `verify.toml` reader (rules, per-path scoping).
//! - [`engine`]: the rules, the `teemon-verify: allow(rule): why` escape
//!   comments (justification required), and the workspace walker.
//!
//! Run as `cargo run -p teemon-verify --release` from the repo root; the
//! binary exits non-zero when any violation survives.

pub mod config;
pub mod engine;
pub mod lexer;
