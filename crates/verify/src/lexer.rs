//! A minimal, total lexer for Rust source.
//!
//! The verifier needs just enough token structure to recognise patterns like
//! `.unwrap()`, `ident[`, or `std :: sync :: Mutex` without being fooled by
//! comments, strings, raw strings, char literals, or lifetimes — the places
//! where a grep-based lint goes wrong.  It does **not** parse Rust: it
//! produces a flat token stream with line numbers, and it never fails —
//! malformed input degrades to punctuation tokens rather than an error, so
//! the walker can lint a tree that does not even compile.

/// What a token is, to the precision the rules need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`unwrap`, `fn`, `std`, ...).
    Ident,
    /// A single punctuation character (`.`, `[`, `:`, ...).
    Punct(char),
    /// Any literal: string, raw string, byte string, char, or number.
    /// The content is irrelevant to every rule, so it is not retained.
    Literal,
    /// A lifetime (`'a`, `'static`) — distinguished from char literals so
    /// a quote never swallows real tokens.
    Lifetime,
}

/// One lexed token with the 1-based source line it starts on.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokenKind,
    /// The identifier text; empty for every other kind.
    pub text: String,
    pub line: u32,
}

impl Token {
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }

    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `source` into a flat token stream.  Comments and whitespace are
/// dropped; line numbers are preserved on every token.
pub fn lex(source: &str) -> Vec<Token> {
    Lexer { bytes: source.as_bytes(), pos: 0, line: 1, tokens: Vec::new() }.run()
}

struct Lexer<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    tokens: Vec<Token>,
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Token> {
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ if b.is_ascii_whitespace() => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => self.skip_line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.skip_block_comment(),
                b'r' | b'b' if self.try_string_prefix() => {}
                b'"' => self.string_literal(),
                b'\'' => self.quote(),
                _ if is_ident_start(b) => self.ident(),
                _ if b.is_ascii_digit() => self.number(),
                _ => {
                    self.push(TokenKind::Punct(b as char), "");
                    self.pos += 1;
                }
            }
        }
        self.tokens
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokenKind, text: &str) {
        self.tokens.push(Token { kind, text: text.to_string(), line: self.line });
    }

    fn skip_line_comment(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b'\n' {
                break;
            }
            self.pos += 1;
        }
    }

    fn skip_block_comment(&mut self) {
        self.pos += 2;
        let mut depth = 1u32;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b'\n' {
                self.line += 1;
                self.pos += 1;
            } else if b == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.pos += 2;
            } else if b == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.pos += 2;
                if depth == 0 {
                    return;
                }
            } else {
                self.pos += 1;
            }
        }
    }

    /// Handles `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, and `b'…'` prefixes.
    /// Returns false (consuming nothing) when the `r`/`b` starts a plain
    /// identifier, which the caller then lexes normally.
    fn try_string_prefix(&mut self) -> bool {
        let start = self.pos;
        let mut look = self.pos;
        if self.bytes.get(look) == Some(&b'b') {
            look += 1;
        }
        let raw = self.bytes.get(look) == Some(&b'r');
        if raw {
            look += 1;
        }
        let mut hashes = 0usize;
        while self.bytes.get(look) == Some(&b'#') {
            hashes += 1;
            look += 1;
        }
        match self.bytes.get(look) {
            Some(&b'"') if raw || hashes == 0 => {
                self.pos = look + 1;
                if raw {
                    self.raw_string_body(hashes);
                } else {
                    self.string_body();
                }
                self.tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: String::new(),
                    line: self.line,
                });
                true
            }
            Some(&b'\'') if !raw && hashes == 0 && start != look => {
                // b'…': a byte literal.
                self.pos = look;
                self.quote();
                true
            }
            _ => false,
        }
    }

    fn string_literal(&mut self) {
        self.pos += 1;
        self.string_body();
        self.push(TokenKind::Literal, "");
    }

    /// Consumes a (non-raw) string body up to and including the closing `"`.
    fn string_body(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'"' => {
                    self.pos += 1;
                    return;
                }
                b'\\' => self.pos += 2,
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
    }

    /// Consumes a raw string body up to and including `"` + `hashes` `#`s.
    fn raw_string_body(&mut self, hashes: usize) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b'\n' {
                self.line += 1;
                self.pos += 1;
                continue;
            }
            if b == b'"' {
                let mut seen = 0usize;
                while seen < hashes && self.bytes.get(self.pos + 1 + seen) == Some(&b'#') {
                    seen += 1;
                }
                if seen == hashes {
                    self.pos += 1 + hashes;
                    return;
                }
            }
            self.pos += 1;
        }
    }

    /// Disambiguates `'a` (lifetime) from `'a'` / `'\n'` (char literal) at a
    /// leading quote.
    fn quote(&mut self) {
        let line = self.line;
        match self.peek(1) {
            Some(b'\\') => {
                // Escaped char literal: scan to the closing quote.
                self.pos += 2;
                while let Some(&b) = self.bytes.get(self.pos) {
                    self.pos += 1;
                    if b == b'\'' {
                        break;
                    }
                }
                self.push(TokenKind::Literal, "");
            }
            Some(b) if is_ident_continue(b) => {
                let mut end = self.pos + 1;
                while self.bytes.get(end).copied().is_some_and(is_ident_continue) {
                    end += 1;
                }
                if self.bytes.get(end) == Some(&b'\'') {
                    self.pos = end + 1;
                    self.push(TokenKind::Literal, "");
                } else {
                    self.pos = end;
                    self.tokens.push(Token {
                        kind: TokenKind::Lifetime,
                        text: String::new(),
                        line,
                    });
                }
            }
            Some(_) if self.peek(2) == Some(b'\'') => {
                // A single non-identifier char: '(' and friends.
                self.pos += 3;
                self.push(TokenKind::Literal, "");
            }
            _ => {
                self.push(TokenKind::Punct('\''), "");
                self.pos += 1;
            }
        }
    }

    fn ident(&mut self) {
        let start = self.pos;
        while self.bytes.get(self.pos).copied().is_some_and(is_ident_continue) {
            self.pos += 1;
        }
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        self.push(TokenKind::Ident, &text);
    }

    fn number(&mut self) {
        // Digits plus suffix/alphanumeric continuation; `.` is left to
        // punctuation so `0..n` and `1.max(2)` keep their structure.
        while self.bytes.get(self.pos).copied().is_some_and(is_ident_continue) {
            self.pos += 1;
        }
        self.push(TokenKind::Literal, "");
    }
}

/// Marks every token that lives under a `#[cfg(test)]` item (attribute
/// included) so rules that only police production code can skip them.  The
/// item is the attribute's target: any further attributes, then either a
/// `;`-terminated item or a braced one, tracked by brace depth.
pub fn cfg_test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if is_cfg_test_attr(tokens, i) {
            let start = i;
            let mut j = skip_attr(tokens, i);
            // Further attributes stacked on the same item.
            while j < tokens.len()
                && tokens.get(j).is_some_and(|t| t.is_punct('#'))
                && tokens.get(j + 1).is_some_and(|t| t.is_punct('['))
            {
                j = skip_attr(tokens, j);
            }
            // The item body: ends at `;` before any brace, or at the close
            // of the first brace group.
            let mut depth = 0u32;
            while j < tokens.len() {
                let t = &tokens[j];
                if t.is_punct(';') && depth == 0 {
                    j += 1;
                    break;
                } else if t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct('}') {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
            for flag in mask.iter_mut().take(j).skip(start) {
                *flag = true;
            }
            i = j;
        } else {
            i += 1;
        }
    }
    mask
}

/// True when `tokens[i..]` starts `#[cfg(test)]` exactly.
fn is_cfg_test_attr(tokens: &[Token], i: usize) -> bool {
    let Some(window) = tokens.get(i..i + 7) else {
        return false;
    };
    window[0].is_punct('#')
        && window[1].is_punct('[')
        && window[2].is_ident("cfg")
        && window[3].is_punct('(')
        && window[4].is_ident("test")
        && window[5].is_punct(')')
        && window[6].is_punct(']')
}

/// Given `tokens[i]` == `#` and `tokens[i+1]` == `[`, returns the index just
/// past the attribute's closing `]`.
fn skip_attr(tokens: &[Token], i: usize) -> usize {
    let mut depth = 0u32;
    let mut j = i + 1;
    while j < tokens.len() {
        if tokens[j].is_punct('[') {
            depth += 1;
        } else if tokens[j].is_punct(']') {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(tokens: &[Token]) -> Vec<&str> {
        tokens.iter().filter(|t| t.kind == TokenKind::Ident).map(|t| t.text.as_str()).collect()
    }

    #[test]
    fn comments_and_strings_are_dropped() {
        let src = r##"
            // a.unwrap() in a comment
            /* nested /* block */ b.unwrap() */
            let s = "c.unwrap()";
            let r = r#"d.unwrap()"#;
            let b = b"e.unwrap()";
            keep();
        "##;
        assert_eq!(idents(&lex(src)), ["let", "s", "let", "r", "let", "b", "keep"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let tokens = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes = tokens.iter().filter(|t| t.kind == TokenKind::Lifetime).count();
        let literals = tokens.iter().filter(|t| t.kind == TokenKind::Literal).count();
        assert_eq!((lifetimes, literals), (2, 1));
        // The escaped forms too.
        let tokens = lex(r"let c = '\n'; let q = '\''; let p = '(';");
        assert_eq!(tokens.iter().filter(|t| t.kind == TokenKind::Literal).count(), 3);
    }

    #[test]
    fn line_numbers_track_multiline_constructs() {
        let src = "let a = \"two\nlines\";\nafter();";
        let tokens = lex(src);
        let after = tokens.iter().find(|t| t.is_ident("after")).map(|t| t.line);
        assert_eq!(after, Some(3));
    }

    #[test]
    fn cfg_test_mask_covers_the_whole_module() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); }\n}\nfn also_live() {}";
        let tokens = lex(src);
        let mask = cfg_test_mask(&tokens);
        let visible = tokens
            .iter()
            .zip(&mask)
            .filter(|(_, &m)| !m)
            .filter(|(t, _)| t.kind == TokenKind::Ident)
            .map(|(t, _)| t.text.as_str())
            .collect::<Vec<_>>();
        assert_eq!(visible, ["fn", "live", "fn", "also_live"]);
    }

    #[test]
    fn cfg_test_mask_handles_semicolon_items_and_stacked_attrs() {
        let src = "#[cfg(test)]\nuse helper::unwrap_all;\n#[cfg(test)]\n#[allow(dead_code)]\nfn t() { a.unwrap() }\nfn live() {}";
        let tokens = lex(src);
        let mask = cfg_test_mask(&tokens);
        let visible = tokens
            .iter()
            .zip(&mask)
            .filter(|(_, &m)| !m)
            .filter(|(t, _)| t.kind == TokenKind::Ident)
            .map(|(t, _)| t.text.as_str())
            .collect::<Vec<_>>();
        assert_eq!(visible, ["fn", "live"]);
    }
}
