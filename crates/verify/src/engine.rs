//! Rule engine: applies the configured rules to lexed files, honours
//! `teemon-verify: allow(...)` escape comments, and walks the workspace.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use crate::config::{Config, RuleConfig, ALLOW_DIRECTIVE_RULE, KNOWN_RULES};
use crate::lexer::{self, Token, TokenKind};

/// One finding.  `file` is repo-relative with `/` separators.
#[derive(Debug, Clone)]
pub struct Violation {
    pub file: String,
    pub line: u32,
    pub rule: String,
    pub message: String,
}

/// The escape-comment marker.  Assembled from pieces so this source file
/// never contains the marker verbatim — the scanner is substring-based and
/// would otherwise read its own implementation as a directive.
const DIRECTIVE: &str = concat!("// teemon-verify", ": allow(");

/// Parsed allow directives for one file: suppressed rules per target line,
/// plus violations against the directives themselves.
struct Allows {
    /// line -> rule names suppressed on that line.
    suppressed: BTreeMap<u32, Vec<String>>,
    directive_violations: Vec<(u32, String)>,
}

/// Scans raw source lines for escape comments.  A directive on its own line
/// applies to the next line; a trailing directive applies to its own line.
/// Every directive must name known rules and carry a non-empty
/// `: justification` — failures are violations in their own right
/// ([`ALLOW_DIRECTIVE_RULE`]), and are never suppressible.
fn scan_allows(source: &str) -> Allows {
    let mut allows = Allows { suppressed: BTreeMap::new(), directive_violations: Vec::new() };
    for (idx, raw_line) in source.lines().enumerate() {
        let line_no = idx as u32 + 1;
        let Some(pos) = raw_line.find(DIRECTIVE) else { continue };
        let standalone = raw_line[..pos].trim().is_empty();
        let rest = &raw_line[pos + DIRECTIVE.len()..];
        let Some(close) = rest.find(')') else {
            allows
                .directive_violations
                .push((line_no, "malformed allow directive: missing `)`".to_string()));
            continue;
        };
        let rules: Vec<&str> =
            rest[..close].split(',').map(str::trim).filter(|r| !r.is_empty()).collect();
        if rules.is_empty() {
            allows
                .directive_violations
                .push((line_no, "allow directive names no rules".to_string()));
            continue;
        }
        for rule in &rules {
            if !KNOWN_RULES.contains(rule) {
                allows
                    .directive_violations
                    .push((line_no, format!("allow directive names unknown rule `{rule}`")));
            }
        }
        let justification = rest[close + 1..].strip_prefix(':').map(str::trim).unwrap_or_default();
        if justification.is_empty() {
            allows.directive_violations.push((
                line_no,
                "allow directive carries no justification (`allow(rule): why`)".to_string(),
            ));
        }
        let target = if standalone { line_no + 1 } else { line_no };
        allows.suppressed.entry(target).or_default().extend(rules.iter().map(|r| r.to_string()));
    }
    allows
}

/// Lints one file under the given rules.  `rel_path` is only used to label
/// violations.
pub fn check_file(rel_path: &str, source: &str, rules: &[&RuleConfig]) -> Vec<Violation> {
    let allows = scan_allows(source);
    let mut violations: Vec<Violation> = allows
        .directive_violations
        .iter()
        .map(|(line, message)| Violation {
            file: rel_path.to_string(),
            line: *line,
            rule: ALLOW_DIRECTIVE_RULE.to_string(),
            message: message.clone(),
        })
        .collect();
    if !rules.is_empty() {
        let tokens = lexer::lex(source);
        let mask = lexer::cfg_test_mask(&tokens);
        let production: Vec<&Token> =
            tokens.iter().zip(&mask).filter(|(_, &m)| !m).map(|(t, _)| t).collect();
        let everything: Vec<&Token> = tokens.iter().collect();
        for rule in rules {
            let view = if rule.include_tests { &everything } else { &production };
            let mut findings: Vec<(u32, String)> = Vec::new();
            match rule.name.as_str() {
                "no-unwrap" => rule_no_unwrap(view, &mut findings),
                "no-panic" => rule_no_panic(view, &mut findings),
                "no-index" => rule_no_index(view, &mut findings),
                "no-std-sync" => rule_no_std_sync(view, &mut findings),
                "no-wallclock" => rule_no_wallclock(view, &mut findings),
                "shard-lock-nesting" => rule_shard_lock_nesting(view, rule, &mut findings),
                _ => {} // config::parse already rejected unknown names
            }
            for (line, message) in findings {
                let suppressed = allows
                    .suppressed
                    .get(&line)
                    .is_some_and(|rules| rules.iter().any(|r| r == &rule.name));
                if !suppressed {
                    violations.push(Violation {
                        file: rel_path.to_string(),
                        line,
                        rule: rule.name.clone(),
                        message,
                    });
                }
            }
        }
    }
    violations.sort_by_key(|v| v.line);
    violations
}

/// `.unwrap()` / `.expect(` and their `_err` twins: panicking extraction.
fn rule_no_unwrap(tokens: &[&Token], out: &mut Vec<(u32, String)>) {
    const PANICKING: &[&str] = &["unwrap", "expect", "unwrap_err", "expect_err"];
    for w in tokens.windows(3) {
        if w[0].is_punct('.')
            && w[1].kind == TokenKind::Ident
            && PANICKING.contains(&w[1].text.as_str())
            && w[2].is_punct('(')
        {
            out.push((
                w[1].line,
                format!(
                    "`.{}(...)` on a hot path — handle the None/Err arm or add a justified allow",
                    w[1].text
                ),
            ));
        }
    }
}

/// `panic!` / `unreachable!` / `todo!` / `unimplemented!` invocations.
fn rule_no_panic(tokens: &[&Token], out: &mut Vec<(u32, String)>) {
    const MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
    for w in tokens.windows(2) {
        if w[0].kind == TokenKind::Ident
            && MACROS.contains(&w[0].text.as_str())
            && w[1].is_punct('!')
        {
            out.push((w[0].line, format!("`{}!` on a hot path", w[0].text)));
        }
    }
}

/// Rust keywords that legitimately precede `[` without it being an index
/// expression (`&mut [u8]`, `let [a, b] = ...`, `return [0; 4]`, ...).
const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move",
    "mut", "pub", "ref", "return", "self", "static", "struct", "super", "trait", "true", "type",
    "unsafe", "use", "where", "while", "yield",
];

/// `expr[...]`: panicking index/slice.  Heuristic: a `[` directly after a
/// non-keyword identifier, a `)`, or a `]` is an index expression; anything
/// else (`#[attr]`, `vec![...]`, `&[u8]`, array literals) is not.
fn rule_no_index(tokens: &[&Token], out: &mut Vec<(u32, String)>) {
    for w in tokens.windows(2) {
        if !w[1].is_punct('[') {
            continue;
        }
        let indexes = match w[0].kind {
            TokenKind::Ident => !KEYWORDS.contains(&w[0].text.as_str()),
            TokenKind::Punct(c) => c == ')' || c == ']',
            _ => false,
        };
        if indexes {
            out.push((
                w[1].line,
                "indexing without `.get(...)` on a hot path — out-of-range panics".to_string(),
            ));
        }
    }
}

/// `std::sync::Mutex` / `std::sync::RwLock`, in paths and in use-groups
/// (`use std::sync::{Arc, Mutex}`).  The project standard is the audited
/// `parking_lot` shim; `Arc`, `mpsc`, and `atomic` stay fine.
fn rule_no_std_sync(tokens: &[&Token], out: &mut Vec<(u32, String)>) {
    const BANNED: &[&str] = &["Mutex", "RwLock", "Condvar"];
    let mut i = 0;
    while i + 5 < tokens.len() {
        let path = tokens[i].is_ident("std")
            && tokens[i + 1].is_punct(':')
            && tokens[i + 2].is_punct(':')
            && tokens[i + 3].is_ident("sync")
            && tokens[i + 4].is_punct(':')
            && tokens[i + 5].is_punct(':');
        if !path {
            i += 1;
            continue;
        }
        let after = i + 6;
        match tokens.get(after) {
            Some(t) if t.kind == TokenKind::Ident && BANNED.contains(&t.text.as_str()) => {
                out.push((
                    t.line,
                    format!("`std::sync::{}` — use the audited `parking_lot` shim", t.text),
                ));
            }
            Some(t) if t.is_punct('{') => {
                // Use-group: flag banned idents anywhere inside the braces.
                let mut depth = 0u32;
                for t in &tokens[after..] {
                    if t.is_punct('{') {
                        depth += 1;
                    } else if t.is_punct('}') {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            break;
                        }
                    } else if t.kind == TokenKind::Ident && BANNED.contains(&t.text.as_str()) {
                        out.push((
                            t.line,
                            format!(
                                "`std::sync::{{..., {}}}` — use the audited `parking_lot` shim",
                                t.text
                            ),
                        ));
                    }
                }
            }
            _ => {}
        }
        i = after;
    }
}

/// `SystemTime::now` / `Instant::now`: query evaluation must take time as a
/// parameter so results are reproducible and testable.
fn rule_no_wallclock(tokens: &[&Token], out: &mut Vec<(u32, String)>) {
    for w in tokens.windows(4) {
        if w[0].kind == TokenKind::Ident
            && (w[0].text == "SystemTime" || w[0].text == "Instant")
            && w[1].is_punct(':')
            && w[2].is_punct(':')
            && w[3].is_ident("now")
        {
            out.push((
                w[3].line,
                format!(
                    "`{}::now` in query evaluation — thread the timestamp in as a parameter",
                    w[0].text
                ),
            ));
        }
    }
}

/// More than one raw shard-lock acquisition (`shard(...).write()`,
/// `shards[i].read()`, `shard.write()`) in one function body risks the
/// deadlocks the ordered batch path exists to prevent.  Functions on the
/// `allow_fns` list (the ordered helpers themselves) are exempt.
///
/// Lexical heuristic: guards taken one-per-iteration inside iterator
/// closures count once, which is exactly right — they cannot overlap.
fn rule_shard_lock_nesting(tokens: &[&Token], rule: &RuleConfig, out: &mut Vec<(u32, String)>) {
    struct Frame {
        name: String,
        body_depth: u32,
        acquisitions: u32,
    }
    let mut stack: Vec<Frame> = Vec::new();
    let mut pending_fn: Option<String> = None;
    let mut depth = 0u32;
    let mut i = 0;
    while i < tokens.len() {
        let t = tokens[i];
        if t.is_ident("fn") {
            if let Some(name) = tokens.get(i + 1).filter(|n| n.kind == TokenKind::Ident) {
                pending_fn = Some(name.text.clone());
            }
        } else if t.is_punct(';') {
            pending_fn = None; // trait method declaration without a body
        } else if t.is_punct('{') {
            depth += 1;
            if let Some(name) = pending_fn.take() {
                stack.push(Frame { name, body_depth: depth, acquisitions: 0 });
            }
        } else if t.is_punct('}') {
            if stack.last().is_some_and(|f| f.body_depth == depth) {
                stack.pop();
            }
            depth = depth.saturating_sub(1);
        } else if t.kind == TokenKind::Ident && rule.receivers.iter().any(|r| r == &t.text) {
            if let Some(line) = acquisition_after(tokens, i + 1) {
                if let Some(frame) = stack.last_mut() {
                    frame.acquisitions += 1;
                    if frame.acquisitions == 2 && !rule.allow_fns.contains(&frame.name) {
                        out.push((line, format!(
                            "fn `{}` takes a second raw shard lock — go through the ordered batch path or list it in allow_fns",
                            frame.name
                        )));
                    }
                }
            }
        }
        i += 1;
    }
}

/// After a shard receiver at `tokens[start - 1]`: optionally one `(...)` or
/// `[...]` group, then `.read(` or `.write(`.  Returns the acquisition line.
fn acquisition_after(tokens: &[&Token], start: usize) -> Option<u32> {
    let mut j = start;
    if let Some(TokenKind::Punct(open @ ('(' | '['))) = tokens.get(j).map(|t| t.kind) {
        let close = if open == '(' { ')' } else { ']' };
        let mut depth = 0u32;
        while let Some(t) = tokens.get(j) {
            if t.is_punct(open) {
                depth += 1;
            } else if t.is_punct(close) {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j += 1;
        }
        j += 1;
    }
    if tokens.get(j)?.is_punct('.')
        && matches!(tokens.get(j + 1), Some(t) if t.is_ident("read") || t.is_ident("write"))
        && tokens.get(j + 2)?.is_punct('(')
    {
        tokens.get(j + 1).map(|t| t.line)
    } else {
        None
    }
}

/// Walks the configured roots under `repo_root`, lints every `.rs` file with
/// the rules whose `paths` cover it, and returns (violations, files seen).
pub fn check_workspace(
    repo_root: &Path,
    config: &Config,
) -> Result<(Vec<Violation>, usize), String> {
    let mut files: Vec<PathBuf> = Vec::new();
    for root in &config.roots {
        let dir = repo_root.join(root);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut files)?;
        }
    }
    files.sort();
    files.dedup();
    let mut violations = Vec::new();
    let mut checked = 0usize;
    for file in &files {
        let rel = relative_path(repo_root, file);
        if config.exclude.iter().any(|prefix| path_covered(&rel, prefix)) {
            continue;
        }
        let applicable: Vec<&RuleConfig> = config
            .rules
            .iter()
            .filter(|rule| rule.paths.iter().any(|prefix| path_covered(&rel, prefix)))
            .collect();
        let source =
            std::fs::read_to_string(file).map_err(|e| format!("{}: {e}", file.display()))?;
        checked += 1;
        violations.extend(check_file(&rel, &source, &applicable));
    }
    violations.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok((violations, checked))
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            // Build output and VCS internals are never lint targets.
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Repo-relative path with `/` separators (config prefixes are written that
/// way on every platform).
fn relative_path(repo_root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(repo_root).unwrap_or(file);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// Component-aligned prefix match: `"crates/tsdb"` covers
/// `crates/tsdb/src/lib.rs` but not `crates/tsdb2/...`; `""` covers all.
fn path_covered(rel: &str, prefix: &str) -> bool {
    prefix.is_empty()
        || rel == prefix
        || rel.strip_prefix(prefix).is_some_and(|rest| rest.starts_with('/'))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rule(name: &str) -> RuleConfig {
        RuleConfig {
            name: name.to_string(),
            paths: vec![String::new()],
            include_tests: false,
            receivers: vec!["shard".into(), "shards".into()],
            allow_fns: vec!["resolve".into()],
        }
    }

    fn run(name: &str, source: &str) -> Vec<Violation> {
        let r = rule(name);
        check_file("test.rs", source, &[&r])
    }

    #[test]
    fn unwrap_in_strings_comments_and_tests_is_ignored() {
        let src = "fn f(x: Option<u32>) -> u32 {\n  // x.unwrap()\n  let _s = \"y.unwrap()\";\n  x.unwrap_or(0)\n}\n#[cfg(test)]\nmod tests { fn t(x: Option<u32>) { x.unwrap(); } }";
        assert!(run("no-unwrap", src).is_empty());
        let hot = "fn f(x: Option<u32>) -> u32 { x.unwrap() }";
        assert_eq!(run("no-unwrap", hot).len(), 1);
    }

    #[test]
    fn index_heuristic_separates_expressions_from_types_and_attrs() {
        let clean = "#[derive(Debug)]\nfn f(buf: &mut [u8], v: Vec<u32>) -> [u8; 2] {\n  let [a, b] = [1u8, 2];\n  let _ = vec![a, b];\n  [a, b]\n}";
        assert!(run("no-index", clean).is_empty());
        let hot = "fn f(v: &[u32], i: usize) -> u32 { v[i] + v[..2][0] }";
        assert_eq!(run("no-index", hot).len(), 3);
    }

    #[test]
    fn std_sync_is_caught_in_paths_and_use_groups() {
        let clean = "use std::sync::Arc;\nuse std::sync::atomic::{AtomicU64, Ordering};\nuse std::sync::mpsc;";
        assert!(run("no-std-sync", clean).is_empty());
        let bad = "use std::sync::{Arc, Mutex};\ntype G = std::sync::RwLock<u32>;";
        assert_eq!(run("no-std-sync", bad).len(), 2);
    }

    #[test]
    fn allow_directive_suppresses_with_justification_only() {
        let marker = super::DIRECTIVE;
        let justified = format!(
            "fn f(x: Option<u32>) -> u32 {{\n  {marker}no-unwrap): checked above\n  x.unwrap()\n}}"
        );
        assert!(run("no-unwrap", &justified).is_empty());
        let trailing = format!(
            "fn f(x: Option<u32>) -> u32 {{\n  x.unwrap() {marker}no-unwrap): checked above\n}}"
        );
        assert!(run("no-unwrap", &trailing).is_empty());
        let bare =
            format!("fn f(x: Option<u32>) -> u32 {{\n  {marker}no-unwrap)\n  x.unwrap()\n}}");
        let violations = run("no-unwrap", &bare);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert_eq!(violations[0].rule, ALLOW_DIRECTIVE_RULE);
    }

    #[test]
    fn shard_nesting_counts_per_fn_and_honours_the_allowlist() {
        let clean = "impl Db {\n fn a(&self) { let _g = self.shard(0).read(); }\n fn b(&self) { let _g = self.shards[1].write(); }\n fn resolve(&self) { let _r = self.shard(0).read(); let _w = self.shard(0).write(); }\n}";
        assert!(run("shard-lock-nesting", clean).is_empty());
        let bad = "impl Db {\n fn rebalance(&self) { let a = self.shards[0].read(); let b = self.shards[1].read(); }\n}";
        let violations = run("shard-lock-nesting", bad);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].message.contains("rebalance"));
    }

    #[test]
    fn wallclock_reads_are_flagged() {
        let bad = "fn f() { let t = std::time::Instant::now(); let s = SystemTime::now(); }";
        assert_eq!(run("no-wallclock", bad).len(), 2);
        let clean = "fn f(now_ms: u64) -> u64 { Clock::now(now_ms) }";
        assert!(run("no-wallclock", clean).is_empty());
    }
}
