//! `verify.toml` reader.
//!
//! The container has no crates.io, so this is a hand-rolled reader for the
//! small TOML subset the config actually uses: `[section]` headers, string
//! and string-array values (arrays may span lines), and booleans.  Unknown
//! rule names and malformed lines are hard errors — a typo in the config
//! must fail the gate, not silently disable a rule.

use std::collections::BTreeMap;
use std::fmt;

/// The rules the engine implements; a config naming anything else errors.
pub const KNOWN_RULES: &[&str] =
    &["no-unwrap", "no-panic", "no-index", "no-std-sync", "no-wallclock", "shard-lock-nesting"];

/// Rule name for the meta-check on escape hatches themselves (an allow
/// directive with no justification, or naming an unknown rule).  Always on;
/// not configurable and not suppressible.
pub const ALLOW_DIRECTIVE_RULE: &str = "allow-directive";

#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Directories (repo-relative) to walk for `.rs` files.
    pub roots: Vec<String>,
    /// Path prefixes (repo-relative, component-aligned) to skip entirely.
    pub exclude: Vec<String>,
    pub rules: Vec<RuleConfig>,
}

#[derive(Debug, Clone)]
pub struct RuleConfig {
    pub name: String,
    /// Path prefixes this rule applies to; `""` means every walked file.
    pub paths: Vec<String>,
    /// When false (the default), tokens under `#[cfg(test)]` are skipped.
    pub include_tests: bool,
    /// `shard-lock-nesting` only: receiver identifiers that denote a shard
    /// lock (`shard`, `shards`).
    pub receivers: Vec<String>,
    /// `shard-lock-nesting` only: functions allowed to hold more than one
    /// raw shard-lock acquisition (the ordered helpers).
    pub allow_fns: Vec<String>,
}

#[derive(Debug)]
pub struct ConfigError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "verify.toml:{}: {}", self.line, self.message)
    }
}

fn err(line: usize, message: impl Into<String>) -> ConfigError {
    ConfigError { line, message: message.into() }
}

#[derive(Debug, Clone, PartialEq)]
enum Value {
    Str(String),
    List(Vec<String>),
    Bool(bool),
}

/// Parses the config text.  `sections` keys are full header names
/// (`workspace`, `rules.no-unwrap`).
pub fn parse(text: &str) -> Result<Config, ConfigError> {
    let mut sections: BTreeMap<String, Vec<(String, Value, usize)>> = BTreeMap::new();
    let mut current = String::new();
    let mut lines = text.lines().enumerate();
    while let Some((idx, raw)) = lines.next() {
        let line_no = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix('[') {
            let header = header
                .strip_suffix(']')
                .ok_or_else(|| err(line_no, "unterminated section header"))?
                .trim();
            if header.is_empty() {
                return Err(err(line_no, "empty section header"));
            }
            current = header.to_string();
            sections.entry(current.clone()).or_default();
            continue;
        }
        let (key, rest) = line
            .split_once('=')
            .ok_or_else(|| err(line_no, format!("expected `key = value`, got `{line}`")))?;
        let key = key.trim().to_string();
        let mut value_text = rest.trim().to_string();
        // Arrays may span lines: keep consuming until the bracket closes.
        while value_text.starts_with('[') && !balanced(&value_text) {
            let Some((_, next)) = lines.next() else {
                return Err(err(line_no, format!("unterminated array for `{key}`")));
            };
            value_text.push(' ');
            value_text.push_str(strip_comment(next).trim());
        }
        let value = parse_value(&value_text, line_no)?;
        if current.is_empty() {
            return Err(err(line_no, format!("`{key}` appears before any [section]")));
        }
        sections.entry(current.clone()).or_default().push((key, value, line_no));
    }
    build(sections)
}

/// Strips a `#` comment that is not inside a double-quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

fn balanced(text: &str) -> bool {
    let mut depth = 0i32;
    let mut in_string = false;
    for c in text.chars() {
        match c {
            '"' => in_string = !in_string,
            '[' if !in_string => depth += 1,
            ']' if !in_string => depth -= 1,
            _ => {}
        }
    }
    depth <= 0
}

fn parse_value(text: &str, line_no: usize) -> Result<Value, ConfigError> {
    if text == "true" {
        return Ok(Value::Bool(true));
    }
    if text == "false" {
        return Ok(Value::Bool(false));
    }
    if let Some(s) = unquote(text) {
        return Ok(Value::Str(s));
    }
    if let Some(inner) = text.strip_prefix('[').and_then(|t| t.strip_suffix(']')) {
        let mut items = Vec::new();
        for piece in inner.split(',') {
            let piece = piece.trim();
            if piece.is_empty() {
                continue; // trailing comma
            }
            let item = unquote(piece)
                .ok_or_else(|| err(line_no, format!("array item `{piece}` is not a string")))?;
            items.push(item);
        }
        return Ok(Value::List(items));
    }
    Err(err(line_no, format!("unsupported value `{text}`")))
}

fn unquote(text: &str) -> Option<String> {
    let inner = text.strip_prefix('"')?.strip_suffix('"')?;
    // The config never needs escapes; reject rather than mis-parse.
    if inner.contains('"') || inner.contains('\\') {
        return None;
    }
    Some(inner.to_string())
}

fn build(sections: BTreeMap<String, Vec<(String, Value, usize)>>) -> Result<Config, ConfigError> {
    let mut config = Config::default();
    let mut saw_workspace = false;
    for (header, entries) in sections {
        if header == "workspace" {
            saw_workspace = true;
            for (key, value, line_no) in entries {
                match (key.as_str(), value) {
                    ("roots", Value::List(list)) => config.roots = list,
                    ("exclude", Value::List(list)) => config.exclude = list,
                    (other, _) => {
                        return Err(err(line_no, format!("unknown workspace key `{other}`")))
                    }
                }
            }
        } else if let Some(rule_name) = header.strip_prefix("rules.") {
            if !KNOWN_RULES.contains(&rule_name) {
                return Err(err(0, format!("unknown rule `{rule_name}` in [rules.*]")));
            }
            let mut rule = RuleConfig {
                name: rule_name.to_string(),
                paths: Vec::new(),
                include_tests: false,
                receivers: Vec::new(),
                allow_fns: Vec::new(),
            };
            for (key, value, line_no) in entries {
                match (key.as_str(), value) {
                    ("paths", Value::List(list)) => rule.paths = list,
                    ("include_tests", Value::Bool(b)) => rule.include_tests = b,
                    ("receivers", Value::List(list)) => rule.receivers = list,
                    ("allow_fns", Value::List(list)) => rule.allow_fns = list,
                    (other, _) => {
                        return Err(err(
                            line_no,
                            format!("unknown key `{other}` for rule `{rule_name}`"),
                        ))
                    }
                }
            }
            if rule.paths.is_empty() {
                return Err(err(0, format!("rule `{rule_name}` declares no paths")));
            }
            config.rules.push(rule);
        } else {
            return Err(err(0, format!("unknown section `[{header}]`")));
        }
    }
    if !saw_workspace || config.roots.is_empty() {
        return Err(err(0, "config must declare [workspace] roots"));
    }
    Ok(config)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
        # gate configuration
        [workspace]
        roots = ["crates", "src"]
        exclude = ["vendor"]

        [rules.no-unwrap]
        paths = [
            "crates/tsdb/src/storage.rs",
            "crates/query/src/stream.rs", # hot path
        ]

        [rules.no-std-sync]
        paths = [""]
        include_tests = true

        [rules.shard-lock-nesting]
        paths = ["crates/tsdb/src/storage.rs"]
        receivers = ["shard", "shards"]
        allow_fns = ["resolve"]
    "#;

    #[test]
    fn parses_sections_arrays_and_flags() {
        let config = parse(SAMPLE).expect("sample config must parse");
        assert_eq!(config.roots, ["crates", "src"]);
        assert_eq!(config.exclude, ["vendor"]);
        assert_eq!(config.rules.len(), 3);
        let std_sync =
            config.rules.iter().find(|r| r.name == "no-std-sync").expect("no-std-sync present");
        assert!(std_sync.include_tests);
        assert_eq!(std_sync.paths, [""]);
        let nesting =
            config.rules.iter().find(|r| r.name == "shard-lock-nesting").expect("nesting present");
        assert_eq!(nesting.allow_fns, ["resolve"]);
    }

    #[test]
    fn unknown_rules_and_keys_are_errors() {
        let bad_rule = "[workspace]\nroots = [\"crates\"]\n[rules.no-such]\npaths = [\"x\"]";
        assert!(parse(bad_rule).is_err());
        let bad_key = "[workspace]\nroots = [\"crates\"]\n[rules.no-unwrap]\npathz = [\"x\"]";
        assert!(parse(bad_key).is_err());
        let no_roots = "[rules.no-unwrap]\npaths = [\"x\"]";
        assert!(parse(no_roots).is_err());
    }
}
