//! End-to-end coverage for the lint gate:
//!
//! - every `tests/fixtures/<rule>/bad.rs` trips exactly its rule, and every
//!   `clean.rs` twin stays silent;
//! - the real workspace at the repo root is clean under the checked-in
//!   `verify.toml` (the same invocation CI gates on);
//! - the installed binary exits non-zero on the fixture corpus and zero on
//!   the workspace.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::Command;

use teemon_verify::{config, engine};

fn fixtures_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().expect("repo root resolves")
}

fn run_on(root: &Path) -> BTreeMap<String, Vec<String>> {
    let text = std::fs::read_to_string(root.join("verify.toml")).expect("config readable");
    let config = config::parse(&text).expect("config parses");
    let (violations, checked) = engine::check_workspace(root, &config).expect("walk succeeds");
    assert!(checked > 0, "the walker found no files under {}", root.display());
    let mut by_file: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for v in violations {
        by_file.entry(v.file).or_default().push(v.rule);
    }
    by_file
}

#[test]
fn every_bad_fixture_trips_exactly_its_rule() {
    let by_file = run_on(&fixtures_root());
    for rule in config::KNOWN_RULES {
        let bad = format!("{rule}/bad.rs");
        let rules = by_file
            .get(&bad)
            .unwrap_or_else(|| panic!("{bad} produced no violations; engine saw: {by_file:?}"));
        assert!(rules.iter().all(|r| r == rule), "{bad} tripped foreign rules: {rules:?}");
        let clean = format!("{rule}/clean.rs");
        assert!(
            !by_file.contains_key(&clean),
            "{clean} must be violation-free, got: {:?}",
            by_file.get(&clean)
        );
    }
    // The escape-hatch contract: unjustified or misspelled directives are
    // violations themselves; the justified twin is silent.
    let meta =
        by_file.get("allow-directive/bad.rs").expect("directive fixture produces violations");
    assert_eq!(meta.len(), 2, "one unjustified + one unknown-rule: {meta:?}");
    assert!(meta.iter().all(|r| r == config::ALLOW_DIRECTIVE_RULE), "{meta:?}");
    assert!(!by_file.contains_key("allow-directive/clean.rs"));
}

#[test]
fn real_workspace_is_clean() {
    let by_file = run_on(&repo_root());
    assert!(by_file.is_empty(), "the workspace must pass its own gate; violations: {by_file:#?}");
}

#[test]
fn binary_gates_on_exit_code() {
    let exe = env!("CARGO_BIN_EXE_teemon-verify");
    let on_fixtures =
        Command::new(exe).arg(fixtures_root()).output().expect("binary runs on fixtures");
    assert_eq!(
        on_fixtures.status.code(),
        Some(1),
        "fixture corpus must fail the gate: {}",
        String::from_utf8_lossy(&on_fixtures.stdout)
    );
    let stdout = String::from_utf8_lossy(&on_fixtures.stdout);
    for rule in config::KNOWN_RULES {
        assert!(stdout.contains(&format!("[{rule}]")), "report must mention {rule}:\n{stdout}");
    }

    let on_workspace =
        Command::new(exe).arg(repo_root()).output().expect("binary runs on the workspace");
    assert!(
        on_workspace.status.success(),
        "the workspace must pass: {}",
        String::from_utf8_lossy(&on_workspace.stdout)
    );
    assert!(String::from_utf8_lossy(&on_workspace.stdout).contains("OK"));

    let missing_config = Command::new(exe)
        .args(["--config", "/nonexistent/verify.toml"])
        .output()
        .expect("binary runs with a bad config path");
    assert_eq!(missing_config.status.code(), Some(2));
}
