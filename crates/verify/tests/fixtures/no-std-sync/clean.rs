//! The clean twin: the std::sync items that remain welcome — `Arc`,
//! atomics, channels — and the parking_lot shim itself.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

pub struct Registry {
    values: Arc<Mutex<Vec<u64>>>,
    index: RwLock<Vec<usize>>,
    epoch: AtomicU64,
}

pub fn bump(registry: &Registry) -> u64 {
    let (_tx, _rx) = mpsc::channel::<u64>();
    registry.epoch.fetch_add(1, Ordering::Relaxed)
}
