//! Trips `no-std-sync`: std locks bypass the audited parking_lot shim.

use std::sync::{Arc, Mutex};

pub struct Registry {
    values: Arc<Mutex<Vec<u64>>>,
    index: std::sync::RwLock<Vec<usize>>,
}
