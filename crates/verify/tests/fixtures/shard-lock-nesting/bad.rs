//! Trips `shard-lock-nesting`: a second raw shard-lock acquisition in one
//! function, the shape the ordered batch path exists to prevent.

pub struct Db {
    shards: [parking_lot::RwLock<Vec<u64>>; 8],
}

impl Db {
    fn shard(&self, index: usize) -> &parking_lot::RwLock<Vec<u64>> {
        &self.shards[index & 7]
    }

    pub fn rebalance(&self, from: usize, to: usize) -> usize {
        let mut donor = self.shard(from).write();
        let mut receiver = self.shard(to).write();
        receiver.extend(donor.drain(..));
        receiver.len()
    }
}
