//! The clean twin: one raw acquisition per function is fine, iterator
//! guards that cannot overlap are fine, and the allowlisted `resolve`
//! (single-shard read-then-upgrade) is exempt.

pub struct Db {
    shards: [parking_lot::RwLock<Vec<u64>>; 8],
}

impl Db {
    fn shard(&self, index: usize) -> &parking_lot::RwLock<Vec<u64>> {
        &self.shards[index & 7]
    }

    pub fn push(&self, index: usize, value: u64) {
        self.shard(index).write().push(value);
    }

    pub fn len_of(&self, index: usize) -> usize {
        let inner = self.shards[index & 7].read();
        inner.len()
    }

    pub fn total(&self) -> usize {
        // One guard per iteration; they never overlap.
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    pub fn resolve(&self, index: usize, value: u64) -> usize {
        if let Some(pos) = self.shard(index).read().iter().position(|&v| v == value) {
            return pos;
        }
        let mut inner = self.shard(index).write();
        inner.push(value);
        inner.len() - 1
    }
}
