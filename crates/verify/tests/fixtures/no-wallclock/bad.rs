//! Trips `no-wallclock`: wall-clock reads inside evaluation.

use std::time::{Instant, SystemTime};

pub fn evaluate(samples: &[(u64, f64)]) -> (f64, u128) {
    let started = Instant::now();
    let _stamp = SystemTime::now();
    let _qualified = std::time::Instant::now();
    let sum: f64 = samples.iter().map(|&(_, v)| v).sum();
    (sum, started.elapsed().as_nanos())
}
