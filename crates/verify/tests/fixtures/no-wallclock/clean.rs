//! The clean twin: evaluation takes the timestamp as a parameter; idents
//! that merely resemble the banned paths must NOT trip `no-wallclock`.

pub struct Clock;

impl Clock {
    pub fn now(now_ms: u64) -> u64 {
        now_ms
    }
}

pub fn evaluate(samples: &[(u64, f64)], now_ms: u64) -> f64 {
    // Instant::now() is exactly what this signature exists to avoid.
    let cutoff = Clock::now(now_ms).saturating_sub(5_000);
    samples.iter().filter(|&&(t, _)| t >= cutoff).map(|&(_, v)| v).sum()
}
