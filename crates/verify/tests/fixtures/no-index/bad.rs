//! Trips `no-index`: panicking index and slice expressions.

pub fn pick(values: &[u64], i: usize) -> u64 {
    values[i]
}

pub fn head(values: &[u64]) -> &[u64] {
    &values[..2]
}

pub fn corner(matrix: &[Vec<u64>]) -> u64 {
    matrix[0][0]
}
