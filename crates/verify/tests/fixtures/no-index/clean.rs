//! The clean twin: brackets that are NOT index expressions — attributes,
//! array types and literals, slice patterns, macros — plus `.get(...)`.

#[derive(Debug, Default)]
pub struct Frame {
    pub bytes: [u8; 4],
}

pub fn pick(values: &[u64], i: usize) -> u64 {
    values.get(i).copied().unwrap_or_default()
}

pub fn build(buf: &mut [u8]) -> [u8; 2] {
    let [a, b] = [buf.len() as u8, 2u8];
    let _ = vec![a, b];
    [a, b]
}

#[cfg(test)]
mod tests {
    #[test]
    fn indexing_is_fine_in_tests() {
        let values = [1u64, 2];
        assert_eq!(values[0], 1);
    }
}
