//! Trips `no-unwrap`: panicking extraction in production code.

pub fn first_and_last(values: &[u64]) -> u64 {
    let first = values.first().unwrap();
    let last = values.last().expect("non-empty");
    first + last
}

pub fn must_fail(result: Result<(), String>) -> String {
    result.unwrap_err()
}
