//! The clean twin: near-misses that must NOT trip `no-unwrap` — fallback
//! combinators, mentions in comments and strings, and test-only unwraps.

pub fn first_or_zero(values: &[u64]) -> u64 {
    // values.first().unwrap() would panic on empty input; don't.
    let doc = "call .unwrap() at your peril";
    let _ = doc;
    values.first().copied().unwrap_or(0)
}

pub fn last_or_default(values: &[u64]) -> u64 {
    values.last().copied().unwrap_or_else(|| 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwrap_is_fine_in_tests() {
        let values = [1u64, 2];
        assert_eq!(*values.first().unwrap(), 1);
    }
}
