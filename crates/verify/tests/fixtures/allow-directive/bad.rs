//! Trips `allow-directive`: escape hatches that don't follow the contract.
//! The suppression itself still works (no `no-unwrap` violation surfaces) —
//! the directive violations keep the gate red instead.

pub fn first(values: &[u64]) -> u64 {
    // teemon-verify: allow(no-unwrap)
    *values.first().unwrap()
}

pub fn last(values: &[u64]) -> u64 {
    // teemon-verify: allow(no-unwrapped): the rule name has a typo
    values.last().copied().unwrap_or(0)
}
