//! The clean twin: justified escapes in both accepted shapes — a standalone
//! comment covering the next line, and a trailing comment on the line
//! itself.  Neither the suppressed rule nor the directive check fires.

pub fn first(values: &[u64]) -> u64 {
    // teemon-verify: allow(no-unwrap): invariant — callers pass non-empty slices
    *values.first().unwrap()
}

pub fn last(values: &[u64]) -> u64 {
    *values.last().unwrap() // teemon-verify: allow(no-unwrap): invariant — callers pass non-empty slices
}
