//! The clean twin: `panic` as a word in comments/strings, idents that merely
//! contain it, and test-only panics must NOT trip `no-panic`.

/// Never panic! — this returns None instead.
pub fn dispatch(kind: u8) -> Option<u32> {
    let panic_note = "would panic!(...) in the old code";
    let _ = panic_note;
    match kind {
        0 => Some(10),
        _ => None,
    }
}

pub fn panic_handler_name() -> &'static str {
    "panic_handler"
}

#[cfg(test)]
mod tests {
    #[test]
    #[should_panic]
    fn panics_are_fine_in_tests() {
        panic!("expected");
    }
}
