//! Trips `no-panic`: explicit aborts in production code.

pub fn dispatch(kind: u8) -> u32 {
    match kind {
        0 => 10,
        1 => todo!("gauge support"),
        2 => unimplemented!(),
        3 => unreachable!("kinds stop at 2"),
        _ => panic!("unknown kind {kind}"),
    }
}
