//! Per-request behaviour profiles.
//!
//! A [`RequestProfile`] describes what one application-level request does in
//! terms the kernel and SGX models understand: which system calls it issues,
//! how much memory it touches, its cache behaviour and its raw CPU work.  The
//! application models in `teemon-apps` build these profiles; the framework
//! [`crate::Deployment`] executes them.

use serde::{Deserialize, Serialize};
use teemon_kernel_sim::Syscall;

/// The work one request performs, independent of any framework.
///
/// Syscall counts are expressed as *expected counts per request* and may be
/// fractional: a client pipelining 8 requests per network round trip causes
/// only 1/8th of a `recvfrom` per request.  The executor samples fractional
/// counts so that the long-run rate matches the expectation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestProfile {
    /// Human-readable operation name (`GET`, `SET`, `HTTP GET /index.html`).
    pub operation: String,
    /// Expected kernel-visible system calls per request, with multiplicities.
    /// `clock_gettime`-style time queries are listed separately because their
    /// handling differs between SCONE releases.
    pub syscalls: Vec<(Syscall, f64)>,
    /// Number of `clock_gettime`-style time queries the application performs
    /// per request (Redis timestamps every command).
    pub time_queries: u32,
    /// Pages of the application's working set touched by this request.
    pub pages_touched: u32,
    /// Total working-set size in pages (the Redis database, the web server's
    /// file cache, …) from which touched pages are drawn.
    pub working_set_pages: u64,
    /// Memory accesses that reach the last-level cache per request.
    pub cache_references: u64,
    /// Baseline LLC miss rate (misses / references) for native execution.
    pub cache_miss_rate: f64,
    /// Raw application CPU time per request in nanoseconds (parsing, hashing,
    /// serialisation).
    pub cpu_ns: u64,
    /// Request payload bytes received from the network.
    pub request_bytes: u64,
    /// Response payload bytes sent to the network.
    pub response_bytes: u64,
    /// Probability that the request blocks waiting for more client data
    /// (causing a voluntary context switch); high when few connections keep
    /// the server busy, low under saturation.
    pub block_probability: f64,
    /// Expected file-system page-cache operations per request (0 for a pure
    /// in-memory store, higher for servers reading files from disk).
    pub page_cache_ops: f64,
}

impl RequestProfile {
    /// A minimal key-value GET-style request with sensible defaults; the
    /// application models override the fields they care about.
    pub fn keyvalue_get(value_bytes: u64, working_set_pages: u64) -> Self {
        Self {
            operation: "GET".into(),
            syscalls: vec![
                (Syscall::Recvfrom, 1.0),
                (Syscall::Sendto, 1.0),
                (Syscall::EpollWait, 1.0),
            ],
            time_queries: 2,
            pages_touched: 3,
            working_set_pages,
            cache_references: 220,
            cache_miss_rate: 0.02,
            cpu_ns: 450,
            request_bytes: 40,
            response_bytes: value_bytes + 60,
            block_probability: 0.0,
            page_cache_ops: 0.0,
        }
    }

    /// Expected number of kernel-visible syscalls per request (excluding time
    /// queries).
    pub fn syscall_count(&self) -> f64 {
        self.syscalls.iter().map(|(_, n)| *n).sum()
    }

    /// Total bytes moved over the network by this request.
    pub fn network_bytes(&self) -> u64 {
        self.request_bytes + self.response_bytes
    }

    /// Returns a copy with the blocking probability replaced.
    #[must_use]
    pub fn with_block_probability(mut self, p: f64) -> Self {
        self.block_probability = p.clamp(0.0, 1.0);
        self
    }

    /// Returns a copy scaled for a pipeline of `depth` requests handled per
    /// network round trip: the per-request share of network syscalls
    /// (`epoll_wait`, `recvfrom`, `sendto`, `accept`) drops to `1/depth`.
    #[must_use]
    pub fn amortised_over_pipeline(mut self, depth: u32) -> Self {
        if depth <= 1 {
            return self;
        }
        let depth = depth as f64;
        for (syscall, count) in &mut self.syscalls {
            if matches!(
                syscall,
                Syscall::EpollWait | Syscall::Recvfrom | Syscall::Sendto | Syscall::Accept
            ) {
                *count /= depth;
            }
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyvalue_get_defaults_are_plausible() {
        let req = RequestProfile::keyvalue_get(64, 25_000);
        assert_eq!(req.operation, "GET");
        assert!((req.syscall_count() - 3.0).abs() < 1e-9);
        assert_eq!(req.network_bytes(), 40 + 64 + 60);
        assert!(req.cache_miss_rate < 0.5);
        assert_eq!(req.working_set_pages, 25_000);
    }

    #[test]
    fn block_probability_is_clamped() {
        let req = RequestProfile::keyvalue_get(32, 100).with_block_probability(7.0);
        assert_eq!(req.block_probability, 1.0);
        let req = req.with_block_probability(-1.0);
        assert_eq!(req.block_probability, 0.0);
    }

    #[test]
    fn pipeline_amortisation_reduces_network_syscalls() {
        let req = RequestProfile::keyvalue_get(64, 100);
        let single = req.clone().amortised_over_pipeline(1);
        assert!((single.syscall_count() - req.syscall_count()).abs() < 1e-9);

        let deep = req.clone().amortised_over_pipeline(8);
        assert!((deep.syscall_count() - 3.0 / 8.0).abs() < 1e-9);

        // Non-network syscalls are untouched.
        let mut custom = req;
        custom.syscalls.push((Syscall::Futex, 4.0));
        let deep = custom.amortised_over_pipeline(8);
        let futex = deep.syscalls.iter().find(|(s, _)| *s == Syscall::Futex).unwrap().1;
        assert_eq!(futex, 4.0);
    }
}
