//! Per-framework execution parameters.

use serde::{Deserialize, Serialize};

/// The execution frameworks compared in §6.5 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FrameworkKind {
    /// Vanilla execution without SGX — the baseline of Figures 8–11.
    Native,
    /// SCONE: shielded execution with an asynchronous system call interface.
    Scone,
    /// SGX-LKL: a library OS (Linux Kernel Library) inside the enclave.
    SgxLkl,
    /// Graphene-SGX: the Graphene library OS ported to SGX.
    GrapheneSgx,
}

impl FrameworkKind {
    /// All frameworks, in the order the paper's figures present them.
    pub const ALL: [FrameworkKind; 4] = [
        FrameworkKind::Native,
        FrameworkKind::Scone,
        FrameworkKind::SgxLkl,
        FrameworkKind::GrapheneSgx,
    ];

    /// Human readable name used in metric labels and reports.
    pub fn name(&self) -> &'static str {
        match self {
            FrameworkKind::Native => "native",
            FrameworkKind::Scone => "scone",
            FrameworkKind::SgxLkl => "sgx-lkl",
            FrameworkKind::GrapheneSgx => "graphene-sgx",
        }
    }

    /// `true` when the framework runs the application inside an enclave.
    pub fn uses_enclave(&self) -> bool {
        !matches!(self, FrameworkKind::Native)
    }
}

impl std::fmt::Display for FrameworkKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The two SCONE releases compared in Figures 6 and 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SconeVersion {
    /// Commit `572bd1a5`: `clock_gettime` is forwarded to the kernel, so the
    /// syscall (and the enclave exit it causes) dominates the workload —
    /// the paper measured >370 000 `clock_gettime` calls per second.
    Commit572bd1a5,
    /// Commit `09fea91`: `clock_gettime` is handled inside the enclave;
    /// kernel-visible calls drop to ~100/s and Redis throughput roughly
    /// doubles (268 K → 622 K IOP/s in the paper's single-host benchmark).
    Commit09fea91,
}

impl SconeVersion {
    /// The short git hash used in the paper.
    pub fn commit_hash(&self) -> &'static str {
        match self {
            SconeVersion::Commit572bd1a5 => "572bd1a5",
            SconeVersion::Commit09fea91 => "09fea91",
        }
    }

    /// `true` when this release handles `clock_gettime` inside the enclave.
    pub fn clock_gettime_in_enclave(&self) -> bool {
        matches!(self, SconeVersion::Commit09fea91)
    }
}

/// How system calls leave (or do not leave) the enclave.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SyscallPath {
    /// Direct syscalls without any enclave involvement (native).
    Direct,
    /// Asynchronous syscall queue: enclave threads push requests to untrusted
    /// threads; no synchronous exit, but futex-based signalling (SCONE).
    Asynchronous,
    /// Every syscall performs a synchronous enclave exit and re-entry
    /// (Graphene-SGX, and SGX-LKL for calls its libOS cannot satisfy).
    SynchronousExit,
}

/// The tunable parameters of one framework's execution model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrameworkParams {
    /// Which framework these parameters describe.
    pub kind: FrameworkKind,
    /// How syscalls reach the kernel.
    pub syscall_path: SyscallPath,
    /// Fraction of application syscalls the in-enclave libOS absorbs without
    /// ever reaching the host kernel (0.0 for SCONE/native; high for library
    /// OSes that implement e.g. file systems internally).
    pub syscall_absorption: f64,
    /// Extra in-enclave CPU time per absorbed or forwarded syscall, modelling
    /// the libOS code path (shim, internal VFS/network stack), in nanoseconds.
    pub libos_syscall_ns: u64,
    /// Cost of signalling an asynchronous syscall (futex wake + response
    /// polling) in nanoseconds; only used with [`SyscallPath::Asynchronous`].
    pub async_signal_ns: u64,
    /// Whether `clock_gettime`/`gettimeofday` are served inside the enclave.
    pub time_in_enclave: bool,
    /// Fixed extra CPU work per request (argument marshalling, shielding,
    /// encryption of I/O buffers), in nanoseconds.
    pub per_request_overhead_ns: u64,
    /// Multiplier on the application's memory footprint (library OS image,
    /// guard pages, allocator slack) — Graphene's libOS is the largest.
    pub memory_overhead_factor: f64,
    /// Scalability penalty: relative service-time increase per additional
    /// 100 client connections beyond the first 8 (models internal lock and
    /// scheduler contention; large for Graphene-SGX).
    pub contention_per_100_conns: f64,
    /// Average host-visible context switches generated per request on top of
    /// those caused by blocking syscalls (untrusted helper threads, libOS
    /// internal scheduling).
    pub context_switches_per_request: f64,
    /// Probability that a memory access that misses the LLC was to enclave
    /// memory (drives the MEE overhead and the elevated miss rates TEEMon
    /// observes for all SGX frameworks).
    pub epc_access_fraction: f64,
    /// Multiplier on the application's baseline LLC miss rate (enclave
    /// layouts and copying increase misses).
    pub llc_miss_factor: f64,
    /// Effective number of worker threads the framework can keep busy.
    pub effective_threads: u32,
}

impl FrameworkParams {
    /// Parameters for native (non-SGX) execution.
    pub fn native() -> Self {
        Self {
            kind: FrameworkKind::Native,
            syscall_path: SyscallPath::Direct,
            syscall_absorption: 0.0,
            libos_syscall_ns: 0,
            async_signal_ns: 0,
            time_in_enclave: true,
            per_request_overhead_ns: 0,
            memory_overhead_factor: 1.0,
            contention_per_100_conns: 0.0,
            context_switches_per_request: 0.001,
            epc_access_fraction: 0.0,
            llc_miss_factor: 1.0,
            effective_threads: 8,
        }
    }

    /// Parameters for SCONE at a given release.
    pub fn scone(version: SconeVersion) -> Self {
        Self {
            kind: FrameworkKind::Scone,
            syscall_path: SyscallPath::Asynchronous,
            syscall_absorption: 0.0,
            libos_syscall_ns: 600,
            async_signal_ns: 1_000,
            time_in_enclave: version.clock_gettime_in_enclave(),
            per_request_overhead_ns: 800,
            memory_overhead_factor: 1.08,
            contention_per_100_conns: 0.01,
            context_switches_per_request: 0.3,
            epc_access_fraction: 0.9,
            llc_miss_factor: 2.2,
            effective_threads: 8,
        }
    }

    /// Parameters for SGX-LKL.
    pub fn sgx_lkl() -> Self {
        Self {
            kind: FrameworkKind::SgxLkl,
            syscall_path: SyscallPath::SynchronousExit,
            // The LKL kernel absorbs most POSIX calls internally...
            syscall_absorption: 0.7,
            // ...but pays a full Linux-kernel code path for them in-enclave.
            libos_syscall_ns: 3_500,
            async_signal_ns: 0,
            time_in_enclave: true,
            per_request_overhead_ns: 2_500,
            memory_overhead_factor: 1.2,
            contention_per_100_conns: 0.05,
            context_switches_per_request: 0.8,
            epc_access_fraction: 0.9,
            llc_miss_factor: 2.8,
            effective_threads: 4,
        }
    }

    /// Parameters for Graphene-SGX.
    pub fn graphene_sgx() -> Self {
        Self {
            kind: FrameworkKind::GrapheneSgx,
            syscall_path: SyscallPath::SynchronousExit,
            syscall_absorption: 0.3,
            libos_syscall_ns: 5_000,
            async_signal_ns: 0,
            time_in_enclave: true,
            per_request_overhead_ns: 30_000,
            memory_overhead_factor: 1.35,
            // Graphene-SGX degrades with additional connections — the paper
            // measured its best throughput at a single client (8 connections).
            contention_per_100_conns: 0.35,
            context_switches_per_request: 9.0,
            epc_access_fraction: 0.95,
            llc_miss_factor: 5.0,
            effective_threads: 1,
        }
    }

    /// Parameters for a framework kind using its default configuration
    /// (SCONE uses the newer `09fea91` release).
    pub fn for_kind(kind: FrameworkKind) -> Self {
        match kind {
            FrameworkKind::Native => Self::native(),
            FrameworkKind::Scone => Self::scone(SconeVersion::Commit09fea91),
            FrameworkKind::SgxLkl => Self::sgx_lkl(),
            FrameworkKind::GrapheneSgx => Self::graphene_sgx(),
        }
    }

    /// Service-time multiplier caused by contention at `connections` client
    /// connections (1.0 at 8 connections or fewer).
    pub fn contention_factor(&self, connections: u32) -> f64 {
        let extra = (connections.saturating_sub(8)) as f64 / 100.0;
        1.0 + self.contention_per_100_conns * extra
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_have_unique_names() {
        let mut names: Vec<_> = FrameworkKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 4);
        assert_eq!(FrameworkKind::Scone.to_string(), "scone");
    }

    #[test]
    fn only_native_avoids_the_enclave() {
        assert!(!FrameworkKind::Native.uses_enclave());
        assert!(FrameworkKind::Scone.uses_enclave());
        assert!(FrameworkKind::SgxLkl.uses_enclave());
        assert!(FrameworkKind::GrapheneSgx.uses_enclave());
    }

    #[test]
    fn scone_versions_differ_in_time_handling() {
        assert!(!SconeVersion::Commit572bd1a5.clock_gettime_in_enclave());
        assert!(SconeVersion::Commit09fea91.clock_gettime_in_enclave());
        assert_ne!(
            SconeVersion::Commit572bd1a5.commit_hash(),
            SconeVersion::Commit09fea91.commit_hash()
        );
        let old = FrameworkParams::scone(SconeVersion::Commit572bd1a5);
        let new = FrameworkParams::scone(SconeVersion::Commit09fea91);
        assert!(!old.time_in_enclave);
        assert!(new.time_in_enclave);
    }

    #[test]
    fn per_request_overhead_ordering_matches_paper() {
        let native = FrameworkParams::native();
        let scone = FrameworkParams::for_kind(FrameworkKind::Scone);
        let lkl = FrameworkParams::sgx_lkl();
        let graphene = FrameworkParams::graphene_sgx();
        assert!(native.per_request_overhead_ns < scone.per_request_overhead_ns);
        assert!(scone.per_request_overhead_ns < lkl.per_request_overhead_ns);
        assert!(lkl.per_request_overhead_ns < graphene.per_request_overhead_ns);
        assert!(
            graphene.context_switches_per_request > 5.0 * lkl.context_switches_per_request / 2.0
        );
    }

    #[test]
    fn contention_factor_grows_with_connections() {
        let graphene = FrameworkParams::graphene_sgx();
        assert_eq!(graphene.contention_factor(8), 1.0);
        assert!(graphene.contention_factor(320) > graphene.contention_factor(80));
        let native = FrameworkParams::native();
        assert_eq!(native.contention_factor(800), 1.0);
    }

    #[test]
    fn for_kind_round_trips_kind() {
        for kind in FrameworkKind::ALL {
            assert_eq!(FrameworkParams::for_kind(kind).kind, kind);
        }
    }
}
