//! A running application instance under one SGX framework.
//!
//! [`Deployment::deploy`] creates the process (and, for SGX frameworks, the
//! enclave holding the application's memory), and [`Deployment::execute`]
//! runs one request through the framework's cost model: issuing syscalls via
//! the simulated kernel, touching enclave memory through the EPC, recording
//! cache activity and context switches.  Every effect is therefore observable
//! by the TEEMon exporters attached to the same kernel, which is precisely the
//! property §6.5 relies on ("TEEMon can be transparently used across a variety
//! of SGX frameworks without changing their source code").

use serde::{Deserialize, Serialize};

use teemon_kernel_sim::process::ProcessKind;
use teemon_kernel_sim::{FaultKind, Kernel, PageCacheOp, Pid, SwitchKind, Syscall};
use teemon_sgx_sim::{EnclaveId, SgxError, TransitionKind, TransitionTracker};
use teemon_sim_core::{DetRng, SimDuration};

use crate::profile::{FrameworkKind, FrameworkParams, SyscallPath};
use crate::request::RequestProfile;

/// Errors produced while deploying or executing under a framework.
#[derive(Debug, Clone, PartialEq)]
pub enum DeploymentError {
    /// Enclave creation failed in the SGX driver.
    Sgx(SgxError),
    /// The application's memory footprint is zero.
    EmptyApplication,
}

impl std::fmt::Display for DeploymentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeploymentError::Sgx(e) => write!(f, "SGX error: {e}"),
            DeploymentError::EmptyApplication => write!(f, "application memory must be non-zero"),
        }
    }
}

impl std::error::Error for DeploymentError {}

impl From<SgxError> for DeploymentError {
    fn from(e: SgxError) -> Self {
        DeploymentError::Sgx(e)
    }
}

/// Aggregate execution statistics of a deployment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ExecutionTotals {
    /// Requests executed.
    pub requests: u64,
    /// Total service time spent on the server side (nanoseconds).
    pub busy_ns: u64,
    /// Enclave page faults observed while executing requests.
    pub enclave_page_faults: u64,
    /// EPC pages evicted while executing requests.
    pub epc_pages_evicted: u64,
    /// Enclave transitions (enter + exit + async exits).
    pub enclave_transitions: u64,
    /// Kernel-visible system calls issued.
    pub syscalls: u64,
}

impl ExecutionTotals {
    /// Mean service time per request.
    pub fn mean_service_time(&self) -> SimDuration {
        self.busy_ns
            .checked_div(self.requests)
            .map(SimDuration::from_nanos)
            .unwrap_or(SimDuration::ZERO)
    }
}

/// A running application instance under one framework.
pub struct Deployment {
    kernel: Kernel,
    params: FrameworkParams,
    app_name: String,
    pid: Pid,
    enclave: Option<EnclaveId>,
    enclave_pages: u64,
    transitions: TransitionTracker,
    totals: ExecutionTotals,
    rng: DetRng,
    startup_latency: SimDuration,
}

impl Deployment {
    /// Deploys `app_name` with `memory_bytes` of application memory and
    /// `threads` worker threads under the framework described by `params`.
    ///
    /// For SGX frameworks this creates an enclave sized
    /// `memory_bytes * params.memory_overhead_factor` (the library OS and
    /// shielding layers consume protected memory too).
    ///
    /// # Errors
    ///
    /// Returns [`DeploymentError::EmptyApplication`] when `memory_bytes` is 0
    /// and propagates SGX driver failures.
    pub fn deploy(
        kernel: &Kernel,
        params: FrameworkParams,
        app_name: &str,
        memory_bytes: u64,
        threads: u32,
        seed: u64,
    ) -> Result<Self, DeploymentError> {
        if memory_bytes == 0 {
            return Err(DeploymentError::EmptyApplication);
        }
        let kind =
            if params.kind.uses_enclave() { ProcessKind::Enclave } else { ProcessKind::User };
        let pid = kernel.spawn_process(app_name, kind, threads);
        let mut startup_latency = SimDuration::ZERO;
        let (enclave, enclave_pages) = if params.kind.uses_enclave() {
            let enclave_bytes =
                (memory_bytes as f64 * params.memory_overhead_factor).round() as u64;
            let (id, latency) =
                kernel.sgx_driver().create_enclave(pid.as_u32(), enclave_bytes, threads)?;
            startup_latency = latency;
            (Some(id), teemon_sgx_sim::SgxDriver::pages_for(enclave_bytes))
        } else {
            (None, 0)
        };
        let costs = kernel.sgx_driver().costs().clone();
        Ok(Self {
            kernel: kernel.clone(),
            params,
            app_name: app_name.to_string(),
            pid,
            enclave,
            enclave_pages,
            transitions: TransitionTracker::new(costs),
            totals: ExecutionTotals::default(),
            rng: DetRng::seed_from_u64(seed),
            startup_latency,
        })
    }

    /// The framework parameters in effect.
    pub fn params(&self) -> &FrameworkParams {
        &self.params
    }

    /// The framework kind.
    pub fn kind(&self) -> FrameworkKind {
        self.params.kind
    }

    /// The deployed application's name.
    pub fn app_name(&self) -> &str {
        &self.app_name
    }

    /// PID of the application process.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// The enclave backing the deployment, if any.
    pub fn enclave(&self) -> Option<EnclaveId> {
        self.enclave
    }

    /// Latency of creating the enclave and loading the application.
    pub fn startup_latency(&self) -> SimDuration {
        self.startup_latency
    }

    /// Totals accumulated so far.
    pub fn totals(&self) -> ExecutionTotals {
        self.totals
    }

    /// The kernel this deployment runs on.
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    fn sample_count(&mut self, expected: f64) -> u64 {
        let base = expected.floor() as u64;
        let frac = expected - base as f64;
        base + u64::from(self.rng.chance(frac))
    }

    /// Charges the cost of getting one syscall to the kernel and back under
    /// the framework's syscall path, including the kernel-side service time.
    fn forwarded_syscall(&mut self, syscall: Syscall) -> SimDuration {
        let from_enclave = self.enclave.is_some();
        let mut latency = self.kernel.syscall(self.pid, syscall, from_enclave);
        self.totals.syscalls += 1;
        match self.params.syscall_path {
            SyscallPath::Direct => {}
            SyscallPath::Asynchronous => {
                // SCONE: the enclave thread enqueues the request and an
                // untrusted thread executes it; the enclave pays the signalling
                // cost and (about half the time under load) a futex wait that
                // itself reaches the kernel.
                latency += SimDuration::from_nanos(self.params.async_signal_ns);
                latency += SimDuration::from_nanos(self.params.libos_syscall_ns);
                if self.rng.chance(0.5) {
                    latency += self.kernel.syscall(self.pid, Syscall::Futex, from_enclave);
                    self.totals.syscalls += 1;
                }
            }
            SyscallPath::SynchronousExit => {
                latency += self.transitions.record(TransitionKind::Exit);
                latency += self.transitions.record(TransitionKind::Enter);
                latency += SimDuration::from_nanos(self.params.libos_syscall_ns);
                self.totals.enclave_transitions += 2;
            }
        }
        latency
    }

    /// Executes one request with `connections` concurrent client connections
    /// (used for the contention model) and returns its server-side service
    /// time.
    pub fn execute(&mut self, req: &RequestProfile, connections: u32) -> SimDuration {
        let mut latency = SimDuration::from_nanos(req.cpu_ns + self.params.per_request_overhead_ns);

        // --- Memory accesses -------------------------------------------------
        let evicted_before = self.kernel.sgx_driver().stats().epc_pages_evicted;
        for _ in 0..req.pages_touched {
            let page = self.rng.zipf(req.working_set_pages.max(1), 0.8);
            match self.enclave {
                Some(enclave) => {
                    let page = page.min(self.enclave_pages.saturating_sub(1));
                    if let Ok((outcome, access_latency)) =
                        self.kernel.enclave_page_access(self.pid, enclave, page)
                    {
                        latency += access_latency;
                        if outcome.faulted {
                            self.totals.enclave_page_faults += 1;
                        }
                    }
                }
                None => {
                    // Native processes fault only on first touch; the paper
                    // measured essentially zero user-space page faults for
                    // native Redis, so model a tiny residual rate.
                    if self.rng.chance(0.000_05) {
                        latency += self.kernel.page_fault(self.pid, FaultKind::User, false);
                    }
                }
            }
        }
        let evicted_after = self.kernel.sgx_driver().stats().epc_pages_evicted;
        self.totals.epc_pages_evicted += evicted_after - evicted_before;

        // --- Cache behaviour --------------------------------------------------
        let miss_rate = (req.cache_miss_rate * self.params.llc_miss_factor).clamp(0.0, 1.0);
        let misses = (req.cache_references as f64 * miss_rate).round() as u64;
        let in_epc = self.enclave.is_some() && self.rng.chance(self.params.epc_access_fraction);
        latency += self.kernel.cache_access(self.pid, req.cache_references, misses, in_epc);

        // --- System calls -----------------------------------------------------
        for (syscall, expected) in &req.syscalls {
            let count = self.sample_count(*expected);
            for _ in 0..count {
                let absorbed = self.params.syscall_absorption > 0.0
                    && !matches!(
                        syscall,
                        Syscall::Recvfrom | Syscall::Sendto | Syscall::Accept | Syscall::EpollWait
                    )
                    && self.rng.chance(self.params.syscall_absorption);
                if absorbed {
                    latency += SimDuration::from_nanos(self.params.libos_syscall_ns);
                } else {
                    latency += self.forwarded_syscall(*syscall);
                }
            }
        }

        // --- Time queries (clock_gettime) --------------------------------------
        for _ in 0..req.time_queries {
            if self.params.time_in_enclave {
                latency += SimDuration::from_nanos(40);
            } else {
                latency += self.forwarded_syscall(Syscall::ClockGettime);
            }
        }

        // --- File-system page-cache operations ---------------------------------
        let cache_ops = self.sample_count(req.page_cache_ops);
        for i in 0..cache_ops {
            let op = match i % 4 {
                0 => PageCacheOp::AddToPageCacheLru,
                1 => PageCacheOp::MarkPageAccessed,
                2 => PageCacheOp::AccountPageDirtied,
                _ => PageCacheOp::MarkBufferDirty,
            };
            latency += self.kernel.page_cache_op(self.pid, op);
        }

        // --- Scheduling --------------------------------------------------------
        if self.rng.chance(req.block_probability) {
            latency += self.kernel.context_switch(self.pid, SwitchKind::Voluntary);
        }
        let extra_switches = self.sample_count(self.params.context_switches_per_request);
        for _ in 0..extra_switches {
            latency += self.kernel.context_switch(self.pid, SwitchKind::Involuntary);
        }

        // --- Contention --------------------------------------------------------
        let latency = latency.mul_f64(self.params.contention_factor(connections));

        self.totals.requests += 1;
        self.totals.busy_ns += latency.as_nanos();
        self.kernel.clock().advance(latency);
        latency
    }

    /// Executes `n` identical requests and returns the mean service time.
    pub fn execute_many(&mut self, req: &RequestProfile, connections: u32, n: u64) -> SimDuration {
        let mut total = SimDuration::ZERO;
        for _ in 0..n {
            total += self.execute(req, connections);
        }
        if n == 0 {
            SimDuration::ZERO
        } else {
            total.div(n)
        }
    }

    /// Transition counts accumulated through synchronous exits.
    pub fn transition_counts(&self) -> teemon_sgx_sim::transition::TransitionCounts {
        self.transitions.counts()
    }

    /// Tears down the deployment: destroys the enclave (if any) and marks the
    /// process as exited.
    pub fn shutdown(self) {
        if let Some(enclave) = self.enclave {
            let _ = self.kernel.sgx_driver().destroy_enclave(enclave);
        }
        self.kernel.processes().exit(self.pid);
    }
}

impl std::fmt::Debug for Deployment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Deployment")
            .field("app", &self.app_name)
            .field("framework", &self.params.kind)
            .field("pid", &self.pid)
            .field("enclave", &self.enclave)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::SconeVersion;
    use teemon_kernel_sim::KernelConfig;
    use teemon_sgx_sim::{CostModel, EpcConfig};
    use teemon_sim_core::SimClock;

    fn kernel() -> Kernel {
        Kernel::with_config(
            SimClock::new(),
            KernelConfig::default(),
            EpcConfig::default(),
            CostModel::default(),
        )
    }

    fn small_epc_kernel(mib: u64) -> Kernel {
        Kernel::with_config(
            SimClock::new(),
            KernelConfig::default(),
            EpcConfig::with_usable_mib(mib),
            CostModel::default(),
        )
    }

    fn get_request(db_mib: u64) -> RequestProfile {
        RequestProfile::keyvalue_get(64, db_mib * 1024 * 1024 / 4096).amortised_over_pipeline(8)
    }

    #[test]
    fn deploy_native_has_no_enclave() {
        let kernel = kernel();
        let d =
            Deployment::deploy(&kernel, FrameworkParams::native(), "redis-server", 78 << 20, 8, 1)
                .unwrap();
        assert!(d.enclave().is_none());
        assert_eq!(d.kind(), FrameworkKind::Native);
        assert_eq!(d.startup_latency(), SimDuration::ZERO);
        assert_eq!(kernel.sgx_driver().stats().enclaves_active, 0);
        d.shutdown();
    }

    #[test]
    fn deploy_sgx_framework_creates_enclave() {
        let kernel = kernel();
        let d = Deployment::deploy(
            &kernel,
            FrameworkParams::scone(SconeVersion::Commit09fea91),
            "redis-server",
            78 << 20,
            8,
            1,
        )
        .unwrap();
        assert!(d.enclave().is_some());
        assert!(d.startup_latency() > SimDuration::ZERO);
        assert_eq!(kernel.sgx_driver().stats().enclaves_active, 1);
        d.shutdown();
        assert_eq!(kernel.sgx_driver().stats().enclaves_active, 0);
        assert!(kernel.processes().find_by_name("redis-server").is_none());
    }

    #[test]
    fn zero_memory_rejected() {
        let kernel = kernel();
        assert!(matches!(
            Deployment::deploy(&kernel, FrameworkParams::native(), "x", 0, 1, 1),
            Err(DeploymentError::EmptyApplication)
        ));
    }

    #[test]
    fn framework_service_time_ordering_matches_paper() {
        // Native < SCONE < SGX-LKL < Graphene-SGX in per-request service time
        // (the inverse of the paper's throughput ordering).
        let req = get_request(78);
        let mut times = Vec::new();
        for kind in FrameworkKind::ALL {
            let kernel = kernel();
            let mut d = Deployment::deploy(
                &kernel,
                FrameworkParams::for_kind(kind),
                "redis-server",
                78 << 20,
                8,
                7,
            )
            .unwrap();
            let mean = d.execute_many(&req, 320, 2_000);
            times.push((kind, mean));
        }
        assert!(times[0].1 < times[1].1, "native {:?} !< scone {:?}", times[0].1, times[1].1);
        assert!(times[1].1 < times[2].1, "scone !< sgx-lkl");
        assert!(times[2].1 < times[3].1, "sgx-lkl !< graphene");
    }

    #[test]
    fn scone_old_commit_issues_many_clock_gettime_syscalls() {
        let req = get_request(78);
        let kernel_old = kernel();
        let mut old = Deployment::deploy(
            &kernel_old,
            FrameworkParams::scone(SconeVersion::Commit572bd1a5),
            "redis-server",
            78 << 20,
            8,
            3,
        )
        .unwrap();
        old.execute_many(&req, 320, 1_000);
        let old_clock = kernel_old.syscall_table(old.pid()).count(Syscall::ClockGettime);

        let kernel_new = kernel();
        let mut new = Deployment::deploy(
            &kernel_new,
            FrameworkParams::scone(SconeVersion::Commit09fea91),
            "redis-server",
            78 << 20,
            8,
            3,
        )
        .unwrap();
        new.execute_many(&req, 320, 1_000);
        let new_clock = kernel_new.syscall_table(new.pid()).count(Syscall::ClockGettime);

        assert!(old_clock > 1_500, "old commit should flood clock_gettime, got {old_clock}");
        assert_eq!(new_clock, 0, "new commit handles clock_gettime in-enclave");
        // And the old commit is measurably slower per request.
        assert!(old.totals().mean_service_time() > new.totals().mean_service_time());
        // clock_gettime dominates read/write for the old commit (Figure 6a).
        let table = kernel_old.syscall_table(old.pid());
        assert!(table.count(Syscall::ClockGettime) > 5 * table.count(Syscall::Recvfrom));
    }

    #[test]
    fn database_exceeding_epc_causes_paging_for_scone() {
        // 105 MB database does not fit the ~94 MiB EPC → evictions and faults.
        let kernel = small_epc_kernel(94);
        let mut d = Deployment::deploy(
            &kernel,
            FrameworkParams::scone(SconeVersion::Commit09fea91),
            "redis-server",
            105 * 1000 * 1000,
            8,
            11,
        )
        .unwrap();
        let req = get_request(100);
        d.execute_many(&req, 320, 3_000);
        assert!(d.totals().enclave_page_faults > 0, "expected EPC paging");
        assert!(kernel.sgx_driver().stats().epc_pages_evicted > 0);

        // The same database under native execution has no enclave faults.
        let kernel_native = kernel_with_default();
        let mut native = Deployment::deploy(
            &kernel_native,
            FrameworkParams::native(),
            "redis-server",
            105 * 1000 * 1000,
            8,
            11,
        )
        .unwrap();
        native.execute_many(&req, 320, 3_000);
        assert_eq!(native.totals().enclave_page_faults, 0);
    }

    fn kernel_with_default() -> Kernel {
        kernel()
    }

    #[test]
    fn graphene_generates_most_context_switches() {
        let req = get_request(78);
        let mut switches = Vec::new();
        for kind in FrameworkKind::ALL {
            let kernel = kernel();
            let mut d = Deployment::deploy(
                &kernel,
                FrameworkParams::for_kind(kind),
                "redis-server",
                78 << 20,
                8,
                5,
            )
            .unwrap();
            d.execute_many(&req, 320, 1_000);
            switches.push((kind, kernel.counters().context_switches));
        }
        let native = switches[0].1;
        let graphene = switches[3].1;
        assert!(
            graphene > 5 * native.max(1),
            "graphene ({graphene}) should dwarf native ({native})"
        );
        // Graphene also beats SCONE and SGX-LKL on context switches.
        assert!(graphene > switches[1].1);
        assert!(graphene > switches[2].1);
    }

    #[test]
    fn synchronous_exit_frameworks_record_transitions() {
        let kernel = kernel();
        let mut d = Deployment::deploy(
            &kernel,
            FrameworkParams::graphene_sgx(),
            "redis-server",
            16 << 20,
            1,
            9,
        )
        .unwrap();
        d.execute_many(&get_request(16), 8, 200);
        assert!(d.transition_counts().total() > 0);
        assert!(d.totals().enclave_transitions > 0);

        let kernel2 = kernel_with_default();
        let mut scone = Deployment::deploy(
            &kernel2,
            FrameworkParams::scone(SconeVersion::Commit09fea91),
            "redis-server",
            16 << 20,
            8,
            9,
        )
        .unwrap();
        scone.execute_many(&get_request(16), 8, 200);
        assert_eq!(scone.transition_counts().total(), 0, "async syscalls avoid sync exits");
    }

    #[test]
    fn contention_slows_graphene_with_many_connections() {
        let req = get_request(16);
        let kernel_a = kernel();
        let mut few = Deployment::deploy(
            &kernel_a,
            FrameworkParams::graphene_sgx(),
            "redis-server",
            16 << 20,
            1,
            13,
        )
        .unwrap();
        let t_few = few.execute_many(&req, 8, 500);

        let kernel_b = kernel_with_default();
        let mut many = Deployment::deploy(
            &kernel_b,
            FrameworkParams::graphene_sgx(),
            "redis-server",
            16 << 20,
            1,
            13,
        )
        .unwrap();
        let t_many = many.execute_many(&req, 580, 500);
        assert!(
            t_many > t_few.mul_f64(2.0),
            "580 connections ({t_many}) should be much slower than 8 ({t_few})"
        );
    }

    #[test]
    fn totals_track_requests_and_time() {
        let kernel = kernel();
        let mut d =
            Deployment::deploy(&kernel, FrameworkParams::native(), "redis-server", 1 << 20, 1, 2)
                .unwrap();
        assert_eq!(d.totals().mean_service_time(), SimDuration::ZERO);
        d.execute_many(&get_request(1), 8, 50);
        let totals = d.totals();
        assert_eq!(totals.requests, 50);
        assert!(totals.busy_ns > 0);
        assert!(totals.mean_service_time() > SimDuration::ZERO);
        // The simulation clock advanced by the busy time.
        assert!(kernel.clock().now().as_nanos() >= totals.busy_ns);
    }
}
