//! SGX framework execution models: native, SCONE, SGX-LKL and Graphene-SGX.
//!
//! §6.5 of the paper benchmarks Redis running inside enclaves under three
//! shielded-execution frameworks and compares them against native execution,
//! then uses TEEMon's metrics to explain *why* each framework behaves the way
//! it does (synchronous vs. asynchronous system calls, enclave memory
//! management, host interaction).  This crate models those frameworks as cost
//! models layered on top of the simulated kernel and SGX driver:
//!
//! * [`FrameworkKind`] / [`FrameworkParams`] — the per-framework knobs
//!   (how system calls leave the enclave, libOS overhead, scalability
//!   penalties, memory footprint multipliers),
//! * [`SconeVersion`] — the two SCONE commits of Figure 6/7, which differ in
//!   whether `clock_gettime` is handled inside the enclave,
//! * [`Deployment`] — a running application instance under a framework: it
//!   owns the enclave, issues syscalls through the kernel (firing the hooks
//!   TEEMon observes) and touches enclave memory through the EPC model,
//! * [`RequestProfile`] — the per-request behaviour of an application
//!   (syscalls, memory touched, cache behaviour, CPU work).
//!
//! The models are calibrated so that the *relative* results of the paper hold
//! (who wins, by roughly what factor, where the cliffs are), not the absolute
//! hardware numbers.

#![warn(missing_docs)]

pub mod deployment;
pub mod profile;
pub mod request;

pub use deployment::{Deployment, DeploymentError, ExecutionTotals};
pub use profile::{FrameworkKind, FrameworkParams, SconeVersion};
pub use request::RequestProfile;
