//! DaemonSets, pods and service discovery.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::cluster::{Cluster, Node, Taint};

/// Lifecycle phase of a pod.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PodPhase {
    /// Scheduled and running.
    Running,
    /// Could not be scheduled (no matching node).
    Pending,
}

/// A pod: one instance of an exporter (or other workload) on one node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pod {
    /// Pod name (`<daemonset>-<node>`).
    pub name: String,
    /// Owning DaemonSet.
    pub owner: String,
    /// Node the pod runs on (empty when pending).
    pub node: String,
    /// Phase.
    pub phase: PodPhase,
    /// Port the pod's metrics endpoint listens on.
    pub metrics_port: u16,
}

/// A DaemonSet: one pod per matching node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DaemonSet {
    /// DaemonSet name (e.g. `teemon-sgx-exporter`).
    pub name: String,
    /// Node selector labels; empty = every node.
    pub node_selector: BTreeMap<String, String>,
    /// Taints this DaemonSet tolerates.
    pub tolerations: Vec<Taint>,
    /// Port its pods expose metrics on.
    pub metrics_port: u16,
}

impl DaemonSet {
    /// Creates a DaemonSet that runs on every node.
    pub fn everywhere(name: impl Into<String>, metrics_port: u16) -> Self {
        Self {
            name: name.into(),
            node_selector: BTreeMap::new(),
            tolerations: Vec::new(),
            metrics_port,
        }
    }

    /// Creates a DaemonSet restricted to SGX-capable nodes (selector on the
    /// SGX label plus a toleration for the SGX taint).
    pub fn sgx_only(name: impl Into<String>, metrics_port: u16) -> Self {
        let mut selector = BTreeMap::new();
        selector.insert(Node::SGX_LABEL.to_string(), "true".to_string());
        Self {
            name: name.into(),
            node_selector: selector,
            tolerations: vec![Taint::new("sgx.intel.com/epc", "present")],
            metrics_port,
        }
    }

    /// `true` when the DaemonSet can be placed on `node`.
    pub fn schedulable_on(&self, node: &Node) -> bool {
        if !node.ready {
            return false;
        }
        if !node.matches_selector(&self.node_selector) {
            return false;
        }
        node.taints.iter().all(|t| self.tolerations.contains(t))
    }

    /// Places the DaemonSet across the cluster: exactly one running pod per
    /// schedulable node.
    pub fn place(&self, cluster: &Cluster) -> Vec<Pod> {
        cluster
            .ready_nodes()
            .iter()
            .filter(|node| self.schedulable_on(node))
            .map(|node| Pod {
                name: format!("{}-{}", self.name, node.name),
                owner: self.name.clone(),
                node: node.name.clone(),
                phase: PodPhase::Running,
                metrics_port: self.metrics_port,
            })
            .collect()
    }
}

/// One discoverable scrape endpoint (what Kubernetes service discovery hands
/// to the aggregation component).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScrapeEndpoint {
    /// Job name, derived from the owning DaemonSet.
    pub job: String,
    /// `<node>:<port>` instance string.
    pub instance: String,
    /// Node the endpoint lives on.
    pub node: String,
}

/// Service discovery: derives scrape endpoints from DaemonSets and the current
/// cluster state.
#[derive(Debug, Clone, Default)]
pub struct ServiceDiscovery {
    daemonsets: Vec<DaemonSet>,
}

impl ServiceDiscovery {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a DaemonSet whose pods should be scraped.
    pub fn register(&mut self, daemonset: DaemonSet) {
        self.daemonsets.push(daemonset);
    }

    /// Registered DaemonSets.
    pub fn daemonsets(&self) -> &[DaemonSet] {
        &self.daemonsets
    }

    /// Resolves the current endpoints against the cluster.  Called again after
    /// every topology change ("these two features allow TEEMon to adapt to
    /// arbitrary changes in the cluster topology", §5.4).
    pub fn endpoints(&self, cluster: &Cluster) -> Vec<ScrapeEndpoint> {
        let mut endpoints = Vec::new();
        for ds in &self.daemonsets {
            for pod in ds.place(cluster) {
                endpoints.push(ScrapeEndpoint {
                    job: ds.name.clone(),
                    instance: format!("{}:{}", pod.node, ds.metrics_port),
                    node: pod.node,
                });
            }
        }
        endpoints
    }
}

/// The standard TEEMon DaemonSets the Helm chart deploys (§5.4): the SGX
/// exporter and eBPF exporter restricted to SGX nodes, node exporter and
/// cAdvisor everywhere.
pub fn teemon_daemonsets() -> Vec<DaemonSet> {
    vec![
        DaemonSet::sgx_only("teemon-sgx-exporter", 9090),
        DaemonSet::sgx_only("teemon-ebpf-exporter", 9435),
        DaemonSet::everywhere("teemon-node-exporter", 9100),
        DaemonSet::everywhere("teemon-cadvisor", 8080),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn daemonset_places_one_pod_per_matching_node() {
        let cluster = Cluster::with_nodes(3, 2);
        let everywhere = DaemonSet::everywhere("teemon-node-exporter", 9100);
        // "Everywhere" still respects taints: only the 2 untainted nodes take
        // the pod unless a toleration is added.
        assert_eq!(everywhere.place(&cluster).len(), 2);

        let sgx_only = DaemonSet::sgx_only("teemon-sgx-exporter", 9090);
        let pods = sgx_only.place(&cluster);
        assert_eq!(pods.len(), 3, "SGX exporter must land only on SGX nodes");
        assert!(pods.iter().all(|p| p.node.starts_with("sgx-")));
        assert!(pods.iter().all(|p| p.phase == PodPhase::Running));
    }

    #[test]
    fn tainted_nodes_require_toleration() {
        let cluster = Cluster::new();
        cluster.add_node(Node::sgx("sgx-0"));
        // A DaemonSet without the toleration cannot land on the tainted node,
        // even though the selector is empty.
        let no_toleration = DaemonSet::everywhere("plain", 9100);
        assert!(no_toleration.place(&cluster).is_empty());
        let tolerating = DaemonSet {
            tolerations: vec![Taint::new("sgx.intel.com/epc", "present")],
            ..DaemonSet::everywhere("tolerant", 9100)
        };
        assert_eq!(tolerating.place(&cluster).len(), 1);
    }

    #[test]
    fn not_ready_nodes_are_skipped() {
        let cluster = Cluster::with_nodes(2, 0);
        cluster.set_ready("sgx-1", false);
        let ds = DaemonSet::sgx_only("teemon-sgx-exporter", 9090);
        assert_eq!(ds.place(&cluster).len(), 1);
    }

    #[test]
    fn service_discovery_adapts_to_topology_changes() {
        let cluster = Cluster::with_nodes(2, 1);
        let mut discovery = ServiceDiscovery::new();
        for ds in teemon_daemonsets() {
            discovery.register(ds);
        }
        assert_eq!(discovery.daemonsets().len(), 4);
        let before = discovery.endpoints(&cluster);
        // 2 SGX nodes × (sgx + ebpf) + 3 nodes × (node-exporter)... but the
        // everywhere DaemonSets lack the SGX taint toleration, so they only
        // land on untainted nodes: 2×2 + 1×2 = 6.
        assert_eq!(before.len(), 2 * 2 + 2);
        assert!(before
            .iter()
            .any(|e| e.job == "teemon-sgx-exporter" && e.instance == "sgx-0:9090"));

        // A new SGX node joins: the SGX exporters follow automatically.
        cluster.add_node(Node::sgx("sgx-new"));
        let after = discovery.endpoints(&cluster);
        assert_eq!(after.len(), before.len() + 2);
        assert!(after.iter().any(|e| e.node == "sgx-new"));

        // The node leaves again: its endpoints disappear.
        cluster.remove_node("sgx-new");
        assert_eq!(discovery.endpoints(&cluster).len(), before.len());
    }
}
