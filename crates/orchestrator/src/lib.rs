//! Kubernetes-like cluster model for TEEMon deployments.
//!
//! §5.4 describes how TEEMon is deployed at scale: every metrics exporter runs
//! as a DaemonSet (exactly one pod per node, including nodes added later),
//! node taints/labels restrict TEE-specific exporters to SGX-capable nodes,
//! and Kubernetes service discovery feeds the aggregation component so it
//! "adapts to arbitrary changes in the cluster topology".  TEEMon monitored
//! more than 6 000 enclaves in production this way.
//!
//! This crate models that control plane:
//!
//! * [`Node`], [`Cluster`] — nodes with labels, taints and SGX capability,
//!   joining and leaving dynamically,
//! * [`DaemonSet`], [`Pod`] — per-node workload placement with taint
//!   toleration and node selectors,
//! * [`HelmChart`] — the TEEMon chart: which exporters to deploy and where,
//! * [`ServiceDiscovery`] — the catalog of scrape endpoints derived from the
//!   running pods, consumed by the scrape manager.

#![warn(missing_docs)]

pub mod chart;
pub mod cluster;
pub mod workload;

pub use chart::{ChartValues, HelmChart};
pub use cluster::{Cluster, Node, NodeEvent, Taint};
pub use workload::{DaemonSet, Pod, PodPhase, ScrapeEndpoint, ServiceDiscovery};
