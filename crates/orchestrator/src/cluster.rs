//! Nodes and the cluster membership model.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};

/// A node taint: pods must tolerate it to be scheduled on the node.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Taint {
    /// Taint key (e.g. `sgx.intel.com/epc`).
    pub key: String,
    /// Taint value.
    pub value: String,
}

impl Taint {
    /// Creates a taint.
    pub fn new(key: impl Into<String>, value: impl Into<String>) -> Self {
        Self { key: key.into(), value: value.into() }
    }
}

/// A cluster node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Node name (unique within the cluster).
    pub name: String,
    /// Node labels (e.g. `intel.feature.node.kubernetes.io/sgx = "true"`).
    pub labels: BTreeMap<String, String>,
    /// Node taints.
    pub taints: Vec<Taint>,
    /// Whether the node has SGX hardware (convenience over the label).
    pub sgx_capable: bool,
    /// Whether the node is currently Ready.
    pub ready: bool,
}

impl Node {
    /// The label used to advertise SGX capability.
    pub const SGX_LABEL: &'static str = "intel.feature.node.kubernetes.io/sgx";

    /// Creates a ready node without SGX.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            labels: BTreeMap::new(),
            taints: Vec::new(),
            sgx_capable: false,
            ready: true,
        }
    }

    /// Creates a ready SGX-capable node (labelled and tainted the way SGX
    /// device plugins do).
    pub fn sgx(name: impl Into<String>) -> Self {
        let mut node = Self::new(name);
        node.sgx_capable = true;
        node.labels.insert(Self::SGX_LABEL.to_string(), "true".to_string());
        node.taints.push(Taint::new("sgx.intel.com/epc", "present"));
        node
    }

    /// Adds a label.
    #[must_use]
    pub fn with_label(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.labels.insert(key.into(), value.into());
        self
    }

    /// `true` when the node carries every label in `selector` with equal
    /// values.
    pub fn matches_selector(&self, selector: &BTreeMap<String, String>) -> bool {
        selector.iter().all(|(k, v)| self.labels.get(k) == Some(v))
    }
}

/// Cluster membership change events, consumed by service discovery.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum NodeEvent {
    /// A node joined (or re-joined) the cluster.
    Joined(String),
    /// A node left the cluster or became NotReady.
    Left(String),
}

#[derive(Default)]
struct ClusterInner {
    nodes: BTreeMap<String, Node>,
    events: Vec<NodeEvent>,
}

/// The cluster: a dynamic set of nodes.  Clones share state.
#[derive(Clone, Default)]
pub struct Cluster {
    inner: Arc<RwLock<ClusterInner>>,
}

impl Cluster {
    /// Creates an empty cluster.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a cluster with `sgx_nodes` SGX nodes and `plain_nodes` ordinary
    /// nodes, named `sgx-N` / `node-N`.
    pub fn with_nodes(sgx_nodes: usize, plain_nodes: usize) -> Self {
        let cluster = Self::new();
        for i in 0..sgx_nodes {
            cluster.add_node(Node::sgx(format!("sgx-{i}")));
        }
        for i in 0..plain_nodes {
            cluster.add_node(Node::new(format!("node-{i}")));
        }
        cluster
    }

    /// Adds (or replaces) a node.
    pub fn add_node(&self, node: Node) {
        let mut inner = self.inner.write();
        inner.events.push(NodeEvent::Joined(node.name.clone()));
        inner.nodes.insert(node.name.clone(), node);
    }

    /// Removes a node.  Returns `true` when it existed.
    pub fn remove_node(&self, name: &str) -> bool {
        let mut inner = self.inner.write();
        let existed = inner.nodes.remove(name).is_some();
        if existed {
            inner.events.push(NodeEvent::Left(name.to_string()));
        }
        existed
    }

    /// Marks a node ready / not ready.  Returns `false` for unknown nodes.
    pub fn set_ready(&self, name: &str, ready: bool) -> bool {
        let mut inner = self.inner.write();
        match inner.nodes.get_mut(name) {
            Some(node) => {
                if node.ready != ready {
                    node.ready = ready;
                    inner.events.push(if ready {
                        NodeEvent::Joined(name.to_string())
                    } else {
                        NodeEvent::Left(name.to_string())
                    });
                }
                true
            }
            None => false,
        }
    }

    /// All nodes (ready or not).
    pub fn nodes(&self) -> Vec<Node> {
        self.inner.read().nodes.values().cloned().collect()
    }

    /// Ready nodes only.
    pub fn ready_nodes(&self) -> Vec<Node> {
        self.inner.read().nodes.values().filter(|n| n.ready).cloned().collect()
    }

    /// Looks up a node by name.
    pub fn node(&self, name: &str) -> Option<Node> {
        self.inner.read().nodes.get(name).cloned()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.inner.read().nodes.len()
    }

    /// `true` when the cluster has no nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drains the membership event log (consumed by service discovery).
    pub fn drain_events(&self) -> Vec<NodeEvent> {
        std::mem::take(&mut self.inner.write().events)
    }
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster").field("nodes", &self.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgx_nodes_carry_label_and_taint() {
        let node = Node::sgx("sgx-0");
        assert!(node.sgx_capable);
        assert_eq!(node.labels.get(Node::SGX_LABEL).map(String::as_str), Some("true"));
        assert_eq!(node.taints.len(), 1);
        let mut selector = BTreeMap::new();
        selector.insert(Node::SGX_LABEL.to_string(), "true".to_string());
        assert!(node.matches_selector(&selector));
        assert!(!Node::new("plain").matches_selector(&selector));
        assert!(Node::new("plain").matches_selector(&BTreeMap::new()));
    }

    #[test]
    fn cluster_membership_and_events() {
        let cluster = Cluster::with_nodes(2, 1);
        assert_eq!(cluster.len(), 3);
        assert_eq!(cluster.ready_nodes().len(), 3);
        assert!(cluster.node("sgx-0").is_some());
        // Initial joins are all recorded.
        assert_eq!(cluster.drain_events().len(), 3);
        assert!(cluster.drain_events().is_empty(), "events drain once");

        cluster.add_node(Node::sgx("sgx-late"));
        assert!(cluster.remove_node("node-0"));
        assert!(!cluster.remove_node("node-0"));
        let events = cluster.drain_events();
        assert_eq!(
            events,
            vec![NodeEvent::Joined("sgx-late".into()), NodeEvent::Left("node-0".into())]
        );
    }

    #[test]
    fn readiness_toggles_generate_events() {
        let cluster = Cluster::with_nodes(1, 0);
        cluster.drain_events();
        assert!(cluster.set_ready("sgx-0", false));
        assert!(cluster.set_ready("sgx-0", false), "idempotent");
        assert_eq!(cluster.ready_nodes().len(), 0);
        assert!(cluster.set_ready("sgx-0", true));
        assert!(!cluster.set_ready("ghost", true));
        let events = cluster.drain_events();
        assert_eq!(events.len(), 2);
    }
}
