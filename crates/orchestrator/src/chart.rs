//! The TEEMon Helm chart model.
//!
//! §5.4: "We created a chart to install TEEMon in large-scale infrastructures
//! managed by Kubernetes."  [`HelmChart`] captures the chart's values
//! (which exporters to enable, scrape interval, retention) and renders the
//! resulting DaemonSets.

use serde::{Deserialize, Serialize};

use crate::workload::{DaemonSet, ServiceDiscovery};

/// The chart's `values.yaml` equivalent.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChartValues {
    /// Deploy the SGX (TME) exporter on SGX nodes.
    pub sgx_exporter: bool,
    /// Deploy the eBPF exporter on SGX nodes.
    pub ebpf_exporter: bool,
    /// Deploy the node exporter everywhere.
    pub node_exporter: bool,
    /// Deploy cAdvisor everywhere.
    pub cadvisor: bool,
    /// Scrape interval in seconds (the paper's default is 5 s).
    pub scrape_interval_seconds: u64,
    /// Retention of the aggregation component in hours.
    pub retention_hours: u64,
}

impl Default for ChartValues {
    fn default() -> Self {
        Self {
            sgx_exporter: true,
            ebpf_exporter: true,
            node_exporter: true,
            cadvisor: true,
            scrape_interval_seconds: 5,
            retention_hours: 24,
        }
    }
}

/// The TEEMon Helm chart.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HelmChart {
    /// Chart name.
    pub name: String,
    /// Chart version.
    pub version: String,
    /// Values controlling the rendered resources.
    pub values: ChartValues,
}

impl HelmChart {
    /// The TEEMon chart with default values.
    pub fn teemon() -> Self {
        Self { name: "teemon".into(), version: "0.1.0".into(), values: ChartValues::default() }
    }

    /// Overrides the chart values.
    #[must_use]
    pub fn with_values(mut self, values: ChartValues) -> Self {
        self.values = values;
        self
    }

    /// Renders the DaemonSets the chart would install.
    pub fn render_daemonsets(&self) -> Vec<DaemonSet> {
        let mut out = Vec::new();
        if self.values.sgx_exporter {
            out.push(DaemonSet::sgx_only("teemon-sgx-exporter", 9090));
        }
        if self.values.ebpf_exporter {
            out.push(DaemonSet::sgx_only("teemon-ebpf-exporter", 9435));
        }
        if self.values.node_exporter {
            out.push(DaemonSet::everywhere("teemon-node-exporter", 9100));
        }
        if self.values.cadvisor {
            out.push(DaemonSet::everywhere("teemon-cadvisor", 8080));
        }
        out
    }

    /// Installs the chart into a service-discovery catalog (the equivalent of
    /// `helm install teemon`).
    pub fn install(&self, discovery: &mut ServiceDiscovery) {
        for ds in self.render_daemonsets() {
            discovery.register(ds);
        }
    }

    /// Serialises the chart (name, version, values) to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|_| "{}".to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Cluster;

    #[test]
    fn default_chart_installs_four_daemonsets() {
        let chart = HelmChart::teemon();
        assert_eq!(chart.render_daemonsets().len(), 4);
        assert_eq!(chart.values.scrape_interval_seconds, 5);
        let mut discovery = ServiceDiscovery::new();
        chart.install(&mut discovery);
        assert_eq!(discovery.daemonsets().len(), 4);
        let cluster = Cluster::with_nodes(2, 0);
        assert!(!discovery.endpoints(&cluster).is_empty());
    }

    #[test]
    fn values_toggle_components() {
        let chart = HelmChart::teemon().with_values(ChartValues {
            cadvisor: false,
            ebpf_exporter: false,
            ..ChartValues::default()
        });
        let names: Vec<String> = chart.render_daemonsets().iter().map(|d| d.name.clone()).collect();
        assert_eq!(names, vec!["teemon-sgx-exporter", "teemon-node-exporter"]);
        // The paper notes cAdvisor could be deactivated "to further reduce
        // interferences induced by the tool itself" (§6.2).
        assert!(!names.contains(&"teemon-cadvisor".to_string()));
    }

    #[test]
    fn chart_serialises_to_json() {
        let json = HelmChart::teemon().to_json();
        assert!(json.contains("\"teemon\""));
        assert!(json.contains("scrape_interval_seconds"));
    }
}
