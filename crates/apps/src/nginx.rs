//! An NGINX-like static web server workload.
//!
//! §6.3 measures the TEEMon monitoring overhead while serving requests with
//! NGINX 1.14.0 under SCONE; the paper reports the largest relative overhead
//! (throughput at ~87 % of the unmonitored baseline) for this workload because
//! it is the most syscall- and page-cache-intensive of the three applications.

use serde::{Deserialize, Serialize};
use teemon_frameworks::RequestProfile;
use teemon_kernel_sim::Syscall;

use crate::spec::Application;

/// The NGINX-like static web server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NginxApp {
    /// Number of distinct static files served.
    pub files: u64,
    /// Mean size of a served file in bytes.
    pub mean_file_bytes: u64,
    /// Number of worker processes.
    pub workers: u32,
    /// Baseline memory (code, buffers, connection state).
    pub base_memory_bytes: u64,
}

impl Default for NginxApp {
    fn default() -> Self {
        Self {
            files: 2_000,
            mean_file_bytes: 8 * 1024,
            workers: 4,
            base_memory_bytes: 16 * 1024 * 1024,
        }
    }
}

impl NginxApp {
    /// A small static site served from memory/page cache.
    pub fn small_site() -> Self {
        Self::default()
    }
}

impl Application for NginxApp {
    fn name(&self) -> &str {
        "nginx"
    }

    fn memory_bytes(&self) -> u64 {
        // The file set is served through the page cache; only a fraction is
        // resident in the worker's own memory at a time.
        self.base_memory_bytes + self.files * self.mean_file_bytes / 4
    }

    fn threads(&self) -> u32 {
        self.workers
    }

    fn request(&self, pipeline: u32, connections: u32) -> RequestProfile {
        let working_set_pages = self.working_set_pages();
        let mut req = RequestProfile {
            operation: "HTTP GET".into(),
            syscalls: vec![
                (Syscall::EpollWait, 1.0),
                (Syscall::Accept, 0.1),
                (Syscall::Recvfrom, 1.0),
                (Syscall::Open, 0.3),
                (Syscall::Fstat, 0.3),
                (Syscall::Writev, 1.0),
                (Syscall::Close, 0.3),
            ],
            time_queries: 1,
            pages_touched: (self.mean_file_bytes / 4096).max(1) as u32 + 1,
            working_set_pages,
            cache_references: 900,
            cache_miss_rate: 0.03,
            cpu_ns: 2_500,
            request_bytes: 180,
            response_bytes: self.mean_file_bytes + 240,
            block_probability: 0.0,
            page_cache_ops: 1.2,
        }
        .amortised_over_pipeline(pipeline);
        req.block_probability = if connections <= 16 { 0.1 } else { 0.01 };
        req
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nginx_profile_is_syscall_heavy() {
        let app = NginxApp::small_site();
        let redis = crate::redis::RedisApp::paper_config(64);
        let nginx_req = app.request(1, 320);
        let redis_req = redis.request(1, 320);
        assert!(nginx_req.syscall_count() > redis_req.syscall_count());
        assert!(nginx_req.page_cache_ops > redis_req.page_cache_ops);
        assert!(nginx_req.response_bytes > redis_req.response_bytes);
    }

    #[test]
    fn nginx_uses_worker_processes() {
        assert_eq!(NginxApp::small_site().threads(), 4);
        assert_eq!(NginxApp::small_site().name(), "nginx");
    }

    #[test]
    fn memory_fits_comfortably_in_epc() {
        // The NGINX working set is small; monitoring overhead, not paging,
        // dominates its behaviour in the paper.
        assert!(NginxApp::small_site().memory_bytes() < 94 * 1024 * 1024);
    }
}
