//! The [`Application`] abstraction shared by all workload models.

use teemon_frameworks::RequestProfile;

/// A monitored workload application.
///
/// An application defines its memory footprint (which determines whether it
/// fits the EPC) and how one request behaves.  The same application can then
/// be deployed under any framework — exactly the transparency property TEEMon
/// claims (§1, design feature 2 and 3).
pub trait Application {
    /// Process/command name (`redis-server`, `nginx`, `mongod`).
    fn name(&self) -> &str;

    /// Resident memory of the application in bytes (database size, web-server
    /// buffers, …).  For SGX frameworks this determines the enclave size.
    fn memory_bytes(&self) -> u64;

    /// Number of worker threads the application runs.
    fn threads(&self) -> u32;

    /// The behaviour of one request, given the benchmark's pipeline depth and
    /// the number of concurrent client connections (used to derive e.g. the
    /// probability that the server blocks waiting for work).
    fn request(&self, pipeline: u32, connections: u32) -> RequestProfile;

    /// The working-set size in 4 KiB pages.
    fn working_set_pages(&self) -> u64 {
        self.memory_bytes().div_ceil(4096)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Dummy;
    impl Application for Dummy {
        fn name(&self) -> &str {
            "dummy"
        }
        fn memory_bytes(&self) -> u64 {
            10 * 4096 + 1
        }
        fn threads(&self) -> u32 {
            2
        }
        fn request(&self, _pipeline: u32, _connections: u32) -> RequestProfile {
            RequestProfile::keyvalue_get(8, self.working_set_pages())
        }
    }

    #[test]
    fn working_set_rounds_up() {
        assert_eq!(Dummy.working_set_pages(), 11);
    }
}
