//! A Redis-like in-memory key-value store workload.
//!
//! §6.5 configures Redis 5.0.5 with persistent snapshots disabled (no `fork()`
//! inside enclaves), at most 1 GB of memory, pre-populated with 720 000 keys,
//! and drives it with `memtier_benchmark` issuing GET requests over pipelines
//! of 8 with value sizes of 32/64/96 bytes, yielding database sizes of
//! 78/105/127 MB.

use serde::{Deserialize, Serialize};
use teemon_frameworks::RequestProfile;
use teemon_kernel_sim::Syscall;

use crate::spec::Application;

/// The Redis-like key-value store.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RedisApp {
    /// Number of keys pre-populated into the store.
    pub keys: u64,
    /// Size of each value in bytes.
    pub value_bytes: u64,
    /// Per-key overhead (key string, dict entry, robj header, SDS header).
    pub per_key_overhead_bytes: u64,
    /// Baseline memory of the process (code, jemalloc arenas, client buffers).
    pub base_memory_bytes: u64,
    /// Whether periodic RDB snapshots are enabled (disabled in the paper).
    pub snapshots_enabled: bool,
}

impl RedisApp {
    /// The paper's configuration: 720 000 keys of the given value size.
    pub fn paper_config(value_bytes: u64) -> Self {
        Self {
            keys: 720_000,
            value_bytes,
            per_key_overhead_bytes: 76,
            base_memory_bytes: 4 * 1024 * 1024,
            snapshots_enabled: false,
        }
    }

    /// A Redis sized to hold roughly `db_mb` megabytes of data (derives the
    /// value size from the paper's 720 000-key population).
    pub fn with_database_mb(db_mb: u64) -> Self {
        let total = db_mb * 1000 * 1000;
        let per_key = total / 720_000;
        let value = per_key.saturating_sub(76).max(8);
        Self::paper_config(value)
    }

    /// The three database sizes evaluated in the paper, as
    /// `(label, configured value size)` pairs.
    pub fn paper_database_sizes() -> [(u64, RedisApp); 3] {
        [
            (78, RedisApp::paper_config(32)),
            (105, RedisApp::paper_config(64)),
            (127, RedisApp::paper_config(96)),
        ]
    }

    /// Approximate database size in megabytes (decimal, as the paper quotes).
    pub fn database_mb(&self) -> u64 {
        self.memory_bytes() / 1_000_000
    }
}

impl Application for RedisApp {
    fn name(&self) -> &str {
        "redis-server"
    }

    fn memory_bytes(&self) -> u64 {
        self.base_memory_bytes + self.keys * (self.value_bytes + self.per_key_overhead_bytes)
    }

    fn threads(&self) -> u32 {
        // Redis processes commands on a single main thread; background threads
        // handle lazy frees and I/O but the command path is serial.
        1
    }

    fn request(&self, pipeline: u32, connections: u32) -> RequestProfile {
        let working_set_pages = self.working_set_pages();
        let mut req = RequestProfile {
            operation: "GET".into(),
            syscalls: vec![
                (Syscall::EpollWait, 1.0),
                (Syscall::Recvfrom, 1.0),
                (Syscall::Sendto, 1.0),
            ],
            // Redis calls clock_gettime/gettimeofday for command timing, LRU
            // clock updates and latency tracking on every command.
            time_queries: 2,
            // A GET touches the dict bucket, the key robj and the value.
            pages_touched: 3,
            working_set_pages,
            cache_references: 150,
            cache_miss_rate: 0.012,
            cpu_ns: 300,
            request_bytes: 34 + 16,
            response_bytes: self.value_bytes + 11,
            block_probability: 0.0,
            page_cache_ops: if self.snapshots_enabled { 0.05 } else { 0.0 },
        }
        .amortised_over_pipeline(pipeline);

        // With few connections the event loop drains quickly and the process
        // blocks in epoll_wait, causing voluntary context switches (the paper
        // observes this for native Redis at 8 connections, Figure 11e).
        req.block_probability = match connections {
            0..=8 => 0.18,
            9..=64 => 0.03,
            _ => 0.002,
        };
        req
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_database_sizes_are_close_to_quoted() {
        // 32/64/96-byte values with 720 000 keys ≈ 78/105/127 MB databases.
        let [(s, small), (m, medium), (l, large)] = RedisApp::paper_database_sizes();
        assert_eq!((s, m, l), (78, 105, 127));
        assert!((small.database_mb() as i64 - 78).abs() <= 5, "{}", small.database_mb());
        assert!((medium.database_mb() as i64 - 105).abs() <= 6, "{}", medium.database_mb());
        assert!((large.database_mb() as i64 - 127).abs() <= 7, "{}", large.database_mb());
    }

    #[test]
    fn with_database_mb_inverts_sizing() {
        let app = RedisApp::with_database_mb(105);
        assert!((app.database_mb() as i64 - 105).abs() <= 6);
    }

    #[test]
    fn request_profile_reflects_pipeline_and_connections() {
        let app = RedisApp::paper_config(64);
        let req8 = app.request(8, 320);
        // Network syscalls amortised over the pipeline of 8.
        assert!((req8.syscall_count() - 3.0 / 8.0).abs() < 1e-9);
        assert_eq!(req8.time_queries, 2);
        assert_eq!(req8.response_bytes, 75);
        assert!(req8.block_probability < 0.01);

        let req_idle = app.request(8, 8);
        assert!(req_idle.block_probability > 0.1, "few connections → blocking waits");
    }

    #[test]
    fn redis_is_single_threaded() {
        assert_eq!(RedisApp::paper_config(32).threads(), 1);
        assert_eq!(RedisApp::paper_config(32).name(), "redis-server");
    }

    #[test]
    fn snapshots_add_page_cache_traffic() {
        let mut app = RedisApp::paper_config(32);
        assert_eq!(app.request(8, 320).page_cache_ops, 0.0);
        app.snapshots_enabled = true;
        assert!(app.request(8, 320).page_cache_ops > 0.0);
    }
}
