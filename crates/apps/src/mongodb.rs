//! A MongoDB-like document store workload.
//!
//! §6.3 measures TEEMon's monitoring overhead for MongoDB 3.6.3; the paper
//! reports the smallest relative overhead (throughput ≈95 % of the
//! unmonitored baseline) because each request performs substantially more
//! application-level work (BSON parsing, document traversal) than Redis or
//! NGINX, so the fixed monitoring cost is a smaller fraction.

use serde::{Deserialize, Serialize};
use teemon_frameworks::RequestProfile;
use teemon_kernel_sim::Syscall;

use crate::spec::Application;

/// The MongoDB-like document store.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MongoApp {
    /// Number of documents in the working collection.
    pub documents: u64,
    /// Mean BSON document size in bytes.
    pub mean_document_bytes: u64,
    /// WiredTiger-style internal cache size in bytes.
    pub cache_bytes: u64,
    /// Number of worker threads.
    pub worker_threads: u32,
}

impl Default for MongoApp {
    fn default() -> Self {
        Self {
            documents: 100_000,
            mean_document_bytes: 1_024,
            cache_bytes: 256 * 1024 * 1024,
            worker_threads: 8,
        }
    }
}

impl MongoApp {
    /// A document store whose hot set fits in its cache.
    pub fn default_collection() -> Self {
        Self::default()
    }
}

impl Application for MongoApp {
    fn name(&self) -> &str {
        "mongod"
    }

    fn memory_bytes(&self) -> u64 {
        (self.documents * self.mean_document_bytes).min(self.cache_bytes) + 64 * 1024 * 1024
    }

    fn threads(&self) -> u32 {
        self.worker_threads
    }

    fn request(&self, pipeline: u32, connections: u32) -> RequestProfile {
        let working_set_pages = self.working_set_pages();
        let mut req = RequestProfile {
            operation: "find".into(),
            syscalls: vec![
                (Syscall::Recvfrom, 1.0),
                (Syscall::Sendto, 1.0),
                (Syscall::Poll, 1.0),
                (Syscall::Futex, 1.5),
                (Syscall::Fsync, 0.01),
            ],
            time_queries: 4,
            pages_touched: 8,
            working_set_pages,
            cache_references: 3_000,
            cache_miss_rate: 0.04,
            cpu_ns: 18_000,
            request_bytes: 320,
            response_bytes: self.mean_document_bytes + 200,
            block_probability: 0.0,
            page_cache_ops: 0.4,
        }
        .amortised_over_pipeline(pipeline);
        req.block_probability = if connections <= 16 { 0.15 } else { 0.02 };
        req
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::redis::RedisApp;

    #[test]
    fn mongodb_does_more_work_per_request_than_redis() {
        let mongo = MongoApp::default_collection().request(1, 320);
        let redis = RedisApp::paper_config(64).request(1, 320);
        assert!(mongo.cpu_ns > 10 * redis.cpu_ns);
        assert!(mongo.cache_references > redis.cache_references);
        assert!(mongo.pages_touched > redis.pages_touched);
    }

    #[test]
    fn mongodb_is_multithreaded_and_named() {
        let app = MongoApp::default_collection();
        assert_eq!(app.name(), "mongod");
        assert!(app.threads() > 1);
        assert!(app.memory_bytes() > 64 * 1024 * 1024);
    }

    #[test]
    fn occasional_fsync_reaches_the_journal() {
        let req = MongoApp::default_collection().request(1, 320);
        let fsync = req.syscalls.iter().find(|(s, _)| *s == Syscall::Fsync).unwrap().1;
        assert!(fsync > 0.0 && fsync < 0.1);
    }
}
