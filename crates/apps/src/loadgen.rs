//! The memtier-like closed-loop load generator and benchmark engine.
//!
//! §6.5: "We make use of the memtier_benchmark suite to measure the
//! performance of Redis and configure it to use 8 concurrent threads …
//! a pipeline of 8 requests and 8 connections per client-thread."
//!
//! [`run_benchmark`] deploys an [`Application`] under a
//! framework, executes a sample of requests through the simulated kernel (so
//! that every TEEMon-observable event actually happens) and extrapolates
//! steady-state throughput and latency with a closed-loop queueing model:
//!
//! * the server completes `parallelism / S` requests per second, where `S` is
//!   the measured mean service time,
//! * each of the `C` connections keeps `pipeline` requests outstanding, so the
//!   client side can sustain at most `C·pipeline / (pipeline·S + RTT)`,
//! * the 1 Gbit/s network caps the rate at
//!   [`NetworkModel::max_requests_per_second`],
//! * the achieved rate is the minimum of the three; latency follows from
//!   Little's law (`outstanding / throughput`).

use serde::{Deserialize, Serialize};

use teemon_frameworks::{Deployment, DeploymentError, FrameworkKind, FrameworkParams};
use teemon_kernel_sim::Kernel;

use crate::network::NetworkModel;
use crate::spec::Application;

/// Configuration of the memtier-like load generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemtierConfig {
    /// Number of client threads (the paper uses 8).
    pub client_threads: u32,
    /// Connections per client thread (the paper uses 8, so total connections
    /// are always a multiple of 8).
    pub connections_per_thread: u32,
    /// Pipeline depth per connection (the paper uses 8).
    pub pipeline: u32,
    /// Number of requests to actually simulate for measuring service time and
    /// metric rates (larger = tighter estimates, slower benches).
    pub sample_requests: u64,
    /// RNG seed for the deployment's stochastic choices.
    pub seed: u64,
}

impl MemtierConfig {
    /// The paper's configuration at a given *total* connection count
    /// (`connections` is rounded down to a multiple of 8, minimum 8).
    pub fn paper_default(connections: u32) -> Self {
        let per_thread = (connections / 8).max(1);
        Self {
            client_threads: 8,
            connections_per_thread: per_thread,
            pipeline: 8,
            sample_requests: 4_000,
            seed: 42,
        }
    }

    /// Total number of client connections.
    pub fn total_connections(&self) -> u32 {
        self.client_threads * self.connections_per_thread
    }

    /// Total requests kept outstanding by the closed-loop clients.
    pub fn outstanding_requests(&self) -> u64 {
        self.total_connections() as u64 * self.pipeline as u64
    }

    /// Returns a copy with a different sample size (used by quick tests).
    #[must_use]
    pub fn with_samples(mut self, samples: u64) -> Self {
        self.sample_requests = samples;
        self
    }
}

/// Event rates normalised to 100 requests — the unit used throughout
/// Figure 11 of the paper.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricRates {
    /// User-space page faults per 100 requests (Figure 11a).
    pub user_page_faults: f64,
    /// Total (host-wide) page faults per 100 requests (Figure 11b).
    pub total_page_faults: f64,
    /// Last-level-cache misses per 100 requests (Figure 11c).
    pub llc_misses: f64,
    /// Evicted EPC pages per 100 requests (Figure 11d).
    pub evicted_epc_pages: f64,
    /// Context switches of the application PID per 100 requests (Figure 11e).
    pub context_switches_pid: f64,
    /// Host-wide context switches per 100 requests (Figure 11f).
    pub context_switches_host: f64,
    /// Kernel-visible system calls per 100 requests.
    pub syscalls: f64,
}

/// The outcome of one benchmark configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkResult {
    /// Framework the application ran under.
    pub framework: FrameworkKind,
    /// Application name.
    pub app: String,
    /// Total client connections.
    pub connections: u32,
    /// Pipeline depth.
    pub pipeline: u32,
    /// Application memory (database size) in megabytes (decimal).
    pub database_mb: u64,
    /// Achieved throughput in operations per second.
    pub throughput_iops: f64,
    /// Mean request latency in milliseconds.
    pub latency_ms: f64,
    /// Mean server-side service time in microseconds.
    pub service_time_us: f64,
    /// Requests actually simulated to obtain the estimates.
    pub sampled_requests: u64,
    /// Per-100-request metric rates observed while sampling.
    pub rates: MetricRates,
}

impl BenchmarkResult {
    /// Throughput in thousands of operations per second (the unit of Fig. 8).
    pub fn kiops(&self) -> f64 {
        self.throughput_iops / 1_000.0
    }
}

/// Runs one benchmark configuration: deploys `app` under `params` on `kernel`,
/// samples requests and extrapolates steady-state performance.
///
/// # Errors
///
/// Propagates deployment failures (zero-sized application, SGX errors).
pub fn run_benchmark(
    kernel: &Kernel,
    params: FrameworkParams,
    app: &dyn Application,
    network: &NetworkModel,
    config: &MemtierConfig,
) -> Result<BenchmarkResult, DeploymentError> {
    let connections = config.total_connections();
    let request = app.request(config.pipeline, connections);

    let mut deployment = Deployment::deploy(
        kernel,
        params.clone(),
        app.name(),
        app.memory_bytes(),
        app.threads(),
        config.seed,
    )?;
    let pid = deployment.pid();

    // Warm up (populate phase): touch the working set once so that steady
    // state, not cold faults, dominates the measured rates.
    let warmup = (config.sample_requests / 10).clamp(50, 2_000);
    deployment.execute_many(&request, connections, warmup);

    // Measurement phase.
    let counters_before = kernel.counters();
    let pid_before = kernel.pid_counters(pid);
    let evicted_before = kernel.sgx_driver().stats().epc_pages_evicted;
    let faults_user_before = counters_before.page_faults_user;

    let mean_service = deployment.execute_many(&request, connections, config.sample_requests);

    let counters_after = kernel.counters();
    let pid_after = kernel.pid_counters(pid);
    let evicted_after = kernel.sgx_driver().stats().epc_pages_evicted;

    let per_100 = |delta: u64| delta as f64 * 100.0 / config.sample_requests as f64;
    let rates = MetricRates {
        user_page_faults: per_100(counters_after.page_faults_user - faults_user_before),
        total_page_faults: per_100(
            counters_after.page_faults_total() - counters_before.page_faults_total(),
        ),
        llc_misses: per_100(counters_after.llc_misses - counters_before.llc_misses),
        evicted_epc_pages: per_100(evicted_after - evicted_before),
        context_switches_pid: per_100(pid_after.context_switches - pid_before.context_switches),
        context_switches_host: per_100(
            counters_after.context_switches - counters_before.context_switches,
        ),
        syscalls: per_100(counters_after.syscalls - counters_before.syscalls),
    };

    // --- Closed-loop steady-state model ------------------------------------
    let service_s = mean_service.as_secs_f64().max(1e-9);
    let parallelism = app.threads().min(params.effective_threads).max(1) as f64;
    let server_rate = parallelism / service_s;

    let rtt = network.batch_transfer_time(&request, config.pipeline).as_secs_f64();
    let per_connection_cycle = config.pipeline as f64 * service_s / parallelism + rtt;
    let client_rate = connections as f64 * config.pipeline as f64 / per_connection_cycle;

    let network_rate = network.max_requests_per_second(&request, config.pipeline);

    let throughput = server_rate.min(client_rate).min(network_rate);
    let outstanding = config.outstanding_requests() as f64;
    let latency_s = outstanding / throughput.max(1.0);

    let result = BenchmarkResult {
        framework: params.kind,
        app: app.name().to_string(),
        connections,
        pipeline: config.pipeline,
        database_mb: app.memory_bytes() / 1_000_000,
        throughput_iops: throughput,
        latency_ms: latency_s * 1_000.0,
        service_time_us: mean_service.as_secs_f64() * 1e6,
        sampled_requests: config.sample_requests,
        rates,
    };
    deployment.shutdown();
    Ok(result)
}

/// Convenience: runs the same app/framework across several connection counts,
/// reusing one kernel per run (matching the paper's per-configuration runs).
pub fn run_connection_sweep(
    make_kernel: impl Fn() -> Kernel,
    params: &FrameworkParams,
    app: &dyn Application,
    network: &NetworkModel,
    connections: &[u32],
    sample_requests: u64,
) -> Result<Vec<BenchmarkResult>, DeploymentError> {
    let mut results = Vec::with_capacity(connections.len());
    for &conns in connections {
        let kernel = make_kernel();
        let config = MemtierConfig::paper_default(conns).with_samples(sample_requests);
        results.push(run_benchmark(&kernel, params.clone(), app, network, &config)?);
    }
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::redis::RedisApp;
    use teemon_frameworks::SconeVersion;
    use teemon_kernel_sim::KernelConfig;
    use teemon_sgx_sim::{CostModel, EpcConfig};
    use teemon_sim_core::SimClock;

    fn kernel() -> Kernel {
        Kernel::with_config(
            SimClock::new(),
            KernelConfig::default(),
            EpcConfig::default(),
            CostModel::default(),
        )
    }

    fn quick(conns: u32) -> MemtierConfig {
        MemtierConfig::paper_default(conns).with_samples(1_500)
    }

    #[test]
    fn memtier_config_matches_paper_defaults() {
        let config = MemtierConfig::paper_default(320);
        assert_eq!(config.client_threads, 8);
        assert_eq!(config.connections_per_thread, 40);
        assert_eq!(config.total_connections(), 320);
        assert_eq!(config.pipeline, 8);
        assert_eq!(config.outstanding_requests(), 2_560);
        assert_eq!(MemtierConfig::paper_default(3).total_connections(), 8);
    }

    #[test]
    fn native_redis_hits_the_network_or_cpu_limit_at_320_connections() {
        let app = RedisApp::paper_config(32);
        let result = run_benchmark(
            &kernel(),
            FrameworkParams::native(),
            &app,
            &NetworkModel::default(),
            &quick(320),
        )
        .unwrap();
        // Paper: 1.01–1.2 M IOP/s.  Accept a generous band around it.
        assert!(
            result.throughput_iops > 700_000.0 && result.throughput_iops < 1_500_000.0,
            "native throughput {} outside plausible band",
            result.throughput_iops
        );
        // Paper: ~2 ms latency at 320 connections.
        assert!(
            result.latency_ms > 1.0 && result.latency_ms < 4.5,
            "native latency {} ms implausible",
            result.latency_ms
        );
        assert_eq!(result.framework, FrameworkKind::Native);
        assert_eq!(result.connections, 320);
    }

    #[test]
    fn scone_reaches_roughly_a_quarter_of_native() {
        let app = RedisApp::paper_config(32);
        let native = run_benchmark(
            &kernel(),
            FrameworkParams::native(),
            &app,
            &NetworkModel::default(),
            &quick(320),
        )
        .unwrap();
        let scone = run_benchmark(
            &kernel(),
            FrameworkParams::scone(SconeVersion::Commit09fea91),
            &app,
            &NetworkModel::default(),
            &quick(560),
        )
        .unwrap();
        let ratio = scone.throughput_iops / native.throughput_iops;
        assert!(
            ratio > 0.12 && ratio < 0.45,
            "SCONE/native ratio {ratio} far from the paper's ~23 %"
        );
        assert!(scone.latency_ms > native.latency_ms);
    }

    #[test]
    fn graphene_is_slowest_and_best_at_few_connections() {
        let app = RedisApp::paper_config(32);
        let at8 = run_benchmark(
            &kernel(),
            FrameworkParams::graphene_sgx(),
            &app,
            &NetworkModel::default(),
            &quick(8).with_samples(800),
        )
        .unwrap();
        let at320 = run_benchmark(
            &kernel(),
            FrameworkParams::graphene_sgx(),
            &app,
            &NetworkModel::default(),
            &quick(320).with_samples(800),
        )
        .unwrap();
        assert!(
            at8.throughput_iops > at320.throughput_iops,
            "Graphene should peak at 8 connections ({} vs {})",
            at8.throughput_iops,
            at320.throughput_iops
        );
        // Paper: ~20 KIOP/s peak (~1.6 % of native).
        assert!(at8.throughput_iops < 60_000.0);
        assert!(at8.throughput_iops > 4_000.0);
    }

    #[test]
    fn larger_database_reduces_scone_throughput() {
        let small = RedisApp::paper_config(32); // ~78 MB, fits EPC
        let large = RedisApp::paper_config(64); // ~105 MB, exceeds EPC
        let params = FrameworkParams::scone(SconeVersion::Commit09fea91);
        let net = NetworkModel::default();
        let r_small = run_benchmark(&kernel(), params.clone(), &small, &net, &quick(320)).unwrap();
        let r_large = run_benchmark(&kernel(), params, &large, &net, &quick(320)).unwrap();
        assert!(
            r_large.throughput_iops < r_small.throughput_iops,
            "paging should reduce throughput ({} !< {})",
            r_large.throughput_iops,
            r_small.throughput_iops
        );
        assert!(r_large.rates.evicted_epc_pages > r_small.rates.evicted_epc_pages);
        assert!(r_large.rates.user_page_faults > 0.0);
        assert_eq!(r_small.rates.evicted_epc_pages, 0.0);
    }

    #[test]
    fn metric_rates_are_per_100_requests() {
        let app = RedisApp::paper_config(32);
        let result = run_benchmark(
            &kernel(),
            FrameworkParams::scone(SconeVersion::Commit09fea91),
            &app,
            &NetworkModel::default(),
            &quick(320),
        )
        .unwrap();
        assert!(result.rates.syscalls > 0.0);
        assert!(result.rates.llc_misses > 0.0);
        assert!(result.rates.context_switches_host >= result.rates.context_switches_pid);
        assert!(result.kiops() > 0.0);
    }

    #[test]
    fn connection_sweep_produces_one_result_per_point() {
        let app = RedisApp::paper_config(32);
        let results = run_connection_sweep(
            kernel,
            &FrameworkParams::native(),
            &app,
            &NetworkModel::default(),
            &[8, 80, 320],
            600,
        )
        .unwrap();
        assert_eq!(results.len(), 3);
        assert!(results[0].throughput_iops < results[2].throughput_iops);
        assert!(results.windows(2).all(|w| w[0].connections < w[1].connections));
    }
}
