//! Workload applications and the benchmark engine.
//!
//! The paper evaluates TEEMon by monitoring three real applications (Redis,
//! NGINX, MongoDB) driven by standard load generators (`memtier_benchmark`,
//! `redis-benchmark`) under several SGX frameworks.  This crate provides the
//! simulated equivalents:
//!
//! * [`Application`] implementations — [`RedisApp`], [`NginxApp`],
//!   [`MongoApp`] — each describing its memory footprint and per-request
//!   behaviour (system calls, pages touched, cache behaviour, payload sizes),
//! * [`NetworkModel`] — the 1 Gbit/s switched network of the testbed (§6.1)
//!   which caps native Redis throughput above 320 connections,
//! * [`MemtierConfig`] and [`run_benchmark`] — a memtier-like closed-loop load
//!   generator: N client threads × M connections × pipeline depth, measuring
//!   throughput, latency and the per-100-request metric rates of Figure 11.
//!
//! The engine executes a sample of requests through a
//! [`teemon_frameworks::Deployment`] (so every kernel/SGX hook fires and the
//! TEEMon exporters observe the workload) and extrapolates steady-state
//! throughput with a closed-loop queueing model.

#![warn(missing_docs)]

pub mod loadgen;
pub mod mongodb;
pub mod network;
pub mod nginx;
pub mod redis;
pub mod spec;

pub use loadgen::{run_benchmark, BenchmarkResult, MemtierConfig, MetricRates};
pub use mongodb::MongoApp;
pub use network::NetworkModel;
pub use nginx::NginxApp;
pub use redis::RedisApp;
pub use spec::Application;
