//! The testbed network model.
//!
//! §6.1: "two machines connected via a switched 1 GBit Ethernet network (one
//! hop)".  §6.5: "above 320 client connections, the host's network is squeezed
//! at its capacity of 1 GBps" — the network is what caps native Redis at
//! 1.0–1.2 M IOP/s.  The model is full duplex: requests flow one way,
//! responses the other, so the binding direction is whichever carries more
//! bytes per request.

use serde::{Deserialize, Serialize};
use teemon_frameworks::RequestProfile;
use teemon_sim_core::SimDuration;

/// A symmetric, full-duplex network link between load generator and server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkModel {
    /// Link bandwidth in bits per second (per direction).
    pub bandwidth_bps: u64,
    /// Base round-trip time between client and server.
    pub base_rtt: SimDuration,
    /// Fixed per-packet framing overhead in bytes (Ethernet + IP + TCP).
    pub per_packet_overhead_bytes: u64,
}

impl Default for NetworkModel {
    fn default() -> Self {
        Self {
            bandwidth_bps: 1_000_000_000,
            base_rtt: SimDuration::from_micros(120),
            per_packet_overhead_bytes: 66,
        }
    }
}

impl NetworkModel {
    /// A network model for a loopback (single-host) benchmark, as used in the
    /// continuous-profiling experiment of §6.4.
    pub fn loopback() -> Self {
        Self {
            bandwidth_bps: 40_000_000_000,
            base_rtt: SimDuration::from_micros(15),
            per_packet_overhead_bytes: 66,
        }
    }

    /// Bytes per second per direction.
    pub fn bytes_per_second(&self) -> f64 {
        self.bandwidth_bps as f64 / 8.0
    }

    /// The maximum request rate the link sustains for the given request
    /// profile when `pipeline` requests share each packet's framing overhead.
    pub fn max_requests_per_second(&self, req: &RequestProfile, pipeline: u32) -> f64 {
        let overhead = self.per_packet_overhead_bytes as f64 / pipeline.max(1) as f64;
        let inbound = req.request_bytes as f64 + overhead;
        let outbound = req.response_bytes as f64 + overhead;
        let binding = inbound.max(outbound).max(1.0);
        self.bytes_per_second() / binding
    }

    /// Network transfer time for one batch of `pipeline` requests.
    pub fn batch_transfer_time(&self, req: &RequestProfile, pipeline: u32) -> SimDuration {
        let bytes =
            (req.network_bytes() * pipeline as u64 + 2 * self.per_packet_overhead_bytes) as f64;
        SimDuration::from_secs_f64(bytes / self.bytes_per_second()) + self.base_rtt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get_req(value: u64) -> RequestProfile {
        RequestProfile::keyvalue_get(value, 20_000)
    }

    #[test]
    fn one_gbit_caps_small_gets_near_paper_numbers() {
        let net = NetworkModel::default();
        let cap32 = net.max_requests_per_second(&get_req(32), 8);
        let cap96 = net.max_requests_per_second(&get_req(96), 8);
        // The paper reports 1.01–1.2 M IOP/s for native Redis at the network
        // limit; the model should land in that ballpark and preserve the
        // "larger values → lower cap" ordering.
        assert!(cap32 > 900_000.0, "32 B cap too low: {cap32}");
        assert!(cap96 < cap32);
        assert!(cap96 > 600_000.0, "96 B cap unexpectedly low: {cap96}");
    }

    #[test]
    fn pipeline_amortises_framing() {
        let net = NetworkModel::default();
        let unpipelined = net.max_requests_per_second(&get_req(32), 1);
        let pipelined = net.max_requests_per_second(&get_req(32), 8);
        assert!(pipelined > unpipelined);
    }

    #[test]
    fn loopback_is_much_faster() {
        let lo = NetworkModel::loopback();
        let net = NetworkModel::default();
        assert!(
            lo.max_requests_per_second(&get_req(32), 8)
                > 10.0 * net.max_requests_per_second(&get_req(32), 8)
        );
        assert!(lo.base_rtt < net.base_rtt);
    }

    #[test]
    fn batch_transfer_time_scales_with_bytes() {
        let net = NetworkModel::default();
        let small = net.batch_transfer_time(&get_req(32), 8);
        let large = net.batch_transfer_time(&get_req(4096), 8);
        assert!(large > small);
        assert!(small >= net.base_rtt);
    }
}
