//! Code-level proof of the zero-allocation append hot path: a counting
//! global allocator wraps the system allocator, and appending to an existing
//! series (borrowed-key hash lookup + head push within reserved capacity)
//! must perform zero heap allocations.

// Audit bookkeeping (held-lock stacks, the order graph) allocates by
// design, so the zero-allocation proofs only hold without `lock_audit`;
// `tests/lock_audit.rs` covers the allocation rule in that mode.
#![cfg(not(lock_audit))]

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use teemon_metrics::Labels;
use teemon_tsdb::{Selector, TimeSeriesDb};

struct CountingAllocator;

thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

// SAFETY: delegates every operation to `System`; only bookkeeping is added.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.with(Cell::get)
}

#[test]
fn append_to_existing_series_is_allocation_free() {
    let db = TimeSeriesDb::new(); // chunk_size 120: the head never seals below
    let labels = Labels::from_pairs([("node", "n1"), ("job", "sgx_exporter")]);
    // Create the series (interns symbols, reserves head capacity) and warm up.
    for t in 0..8u64 {
        assert!(db.append("teemon_syscalls_total", &labels, t * 1_000, t as f64));
    }
    let before = allocations();
    for t in 8..80u64 {
        assert!(db.append("teemon_syscalls_total", &labels, t * 1_000, t as f64));
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "append to an existing series must not allocate (key lookup is borrowed-key hashing, \
         the head chunk has reserved capacity)"
    );
    assert_eq!(db.stats().samples, 80);
}

#[test]
fn rejected_appends_are_allocation_free_too() {
    let db = TimeSeriesDb::new();
    let labels = Labels::from_pairs([("node", "n1")]);
    db.append("m", &labels, 10_000, 1.0);
    let before = allocations();
    assert!(!db.append("m", &labels, 1_000, 2.0));
    assert_eq!(allocations() - before, 0, "out-of-order rejection must not allocate");
    assert_eq!(db.stats().rejected_samples, 1);
}

#[test]
fn chunk_seal_allocates_only_at_the_boundary() {
    let db = TimeSeriesDb::new(); // chunk_size 120
    let labels = Labels::new();
    for t in 0..119u64 {
        db.append("m", &labels, t, 0.0);
    }
    // Sample 120 seals the chunk: the only allocations in a chunk's lifetime.
    let before = allocations();
    db.append("m", &labels, 200, 0.0);
    assert!(allocations() > before, "sealing must move the head into a fresh Arc chunk");
    // And the path is allocation-free again afterwards.
    let before = allocations();
    db.append("m", &labels, 201, 0.0);
    assert_eq!(allocations() - before, 0);
    assert_eq!(db.select(&Selector::metric("m"))[0].chunk_count(), 2);
}
