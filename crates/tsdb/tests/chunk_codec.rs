//! Property tests for the Gorilla chunk codec: `decode(encode(samples)) ==
//! samples` bit-for-bit over adversarial inputs (NaN, ±inf, zero and huge
//! timestamp deltas, duplicates), and rejection of inputs the storage engine
//! can never produce (timestamps running backwards).

use proptest::proptest;
use teemon_tsdb::chunk_codec::{decode, encode, GorillaState};
use teemon_tsdb::Sample;

/// Sample specs: a delta selector and a value selector, expanded into
/// timestamp deltas / values that stress every encoder bucket.
fn build_samples(specs: &[(u8, u8, u16)]) -> Vec<Sample> {
    let mut ts = 0u64;
    specs
        .iter()
        .map(|&(delta_kind, value_kind, raw)| {
            let delta = match delta_kind % 8 {
                0 => 0,                            // duplicate timestamp
                1 => 1,                            // minimal step
                2 => 5_000,                        // steady scrape cadence
                3 => 5_000 + u64::from(raw % 100), // jittered cadence
                4 => u64::from(raw),               // small arbitrary
                5 => u64::from(raw) * 1_000,       // Δ² beyond the 12-bit bucket
                6 => u64::from(raw) << 32,         // huge: raw-delta escape
                _ => 86_400_000,                   // one day
            };
            ts = ts.saturating_add(delta);
            let value = match value_kind % 10 {
                0 => 0.0,
                1 => -0.0,
                2 => f64::NAN,
                3 => f64::INFINITY,
                4 => f64::NEG_INFINITY,
                5 => f64::from(raw),          // small integers
                6 => -f64::from(raw),         // negative
                7 => f64::from(raw) * 1e-300, // subnormal territory
                8 => f64::from(raw) * 1e300,  // huge magnitude
                _ => f64::from(raw) + f64::from(raw % 7) * 0.1,
            };
            Sample { timestamp_ms: ts, value }
        })
        .collect()
}

/// Bit-exact equality (plain `==` treats NaN as unequal).
fn samples_identical(a: &[Sample], b: &[Sample]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.timestamp_ms == y.timestamp_ms && x.value.to_bits() == y.value.to_bits()
        })
}

proptest! {
    /// Round trip: every time-ordered input decodes back bit-for-bit, both
    /// through the materialising `decode` and the streaming `GorillaState`.
    #[test]
    fn encode_decode_round_trips(
        specs in proptest::collection::vec((0u8..8, 0u8..10, 0u16..u16::MAX), 1..200),
    ) {
        let samples = build_samples(&specs);
        let bytes = encode(&samples).expect("time-ordered input must encode");
        assert!(samples_identical(&decode(&bytes, samples.len()), &samples));
        let mut state = GorillaState::new();
        let streamed: Vec<Sample> = (0..samples.len()).map(|_| state.next(&bytes)).collect();
        assert!(samples_identical(&streamed, &samples));
        assert_eq!(state.emitted() as usize, samples.len());
    }

    /// Any input with a backwards timestamp anywhere is rejected whole.
    #[test]
    fn unordered_input_is_rejected(
        specs in proptest::collection::vec((0u8..8, 0u8..10, 0u16..u16::MAX), 2..50),
        flip in 1usize..49,
    ) {
        let mut samples = build_samples(&specs);
        let flip = flip % samples.len();
        if flip == 0 {
            return; // the mutation below needs a predecessor
        }
        // Force a strict decrease at `flip` unless its predecessor is 0.
        let prev = samples[flip - 1].timestamp_ms;
        if prev == 0 {
            return;
        }
        // The decrease at `flip` alone must reject the whole input, no matter
        // what follows it.
        samples[flip].timestamp_ms = prev - 1;
        assert_eq!(encode(&samples), None, "decrease at index {flip} must reject");
    }
}

#[test]
fn compression_ratio_on_steady_counters() {
    // The workload the acceptance bar names: a monotone counter scraped on a
    // fixed cadence must land at or below 4 bytes/sample.
    let samples: Vec<Sample> =
        (0..120u64).map(|t| Sample { timestamp_ms: t * 15_000, value: (t * 250) as f64 }).collect();
    let bytes = encode(&samples).unwrap();
    let per_sample = bytes.len() as f64 / samples.len() as f64;
    assert!(per_sample <= 4.0, "steady counter encodes at {per_sample} bytes/sample");
}
