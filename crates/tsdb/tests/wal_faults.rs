//! The durability tier's fault-injection suite, on the deterministic
//! in-memory [`FaultFs`]: torn-tail crashes at **every** byte offset under
//! both crash models, crashes at **every** journalled-operation boundary
//! (byte budgets cannot land between non-append operations — see
//! `op_boundary_crashes_cover_rotation_windows`), bit flips at every byte
//! of every file, and injected fsync/short-write errors.  The contract
//! under test:
//!
//! * every acked round (a [`TimeSeriesDb::wal_flush`] that returned with a
//!   commit) is recovered exactly — ids, creation order, samples, stats,
//! * corrupt tails are salvaged by truncating to the last valid record and
//!   an unreadable shard comes up empty and flagged, never panicking and
//!   never poisoning the other shards,
//! * write/fsync errors fail the affected log sticky, are reported through
//!   [`StorageStats::wal_failed_shards`] and the return value of
//!   `wal_flush`, and leave the database serving reads and writes.

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;

use teemon_metrics::{Labels, Registry, RegistryCollector};
use teemon_obs::probes;
use teemon_tsdb::{
    CrashModel, DurabilityOptions, FaultFs, FsyncMode, ScrapeTargetConfig, Scraper, Selector,
    TimeSeriesDb, TsdbConfig,
};

fn config() -> TsdbConfig {
    // Low chunk size so the workload seals Gorilla chunks mid-stream and
    // snapshots carry both sealed blocks and raw heads.
    TsdbConfig { chunk_size: 4, retention_ms: 600_000, raw_chunks: false }
}

fn dir() -> &'static Path {
    Path::new("/wal")
}

fn open(fs: &FaultFs, segment_bytes: u64) -> TimeSeriesDb {
    // Crash exactness ("recover precisely the acked rounds") is the
    // every-commit contract; the suites below assert it at every offset.
    let options = DurabilityOptions {
        segment_bytes,
        fsync: FsyncMode::EveryCommit,
        fs: Arc::new(fs.clone()),
    };
    TimeSeriesDb::open_with(dir(), config(), options).expect("FaultFs open cannot fail")
}

/// One scrape round's worth of appends, flushed durable.
fn run_round(db: &TimeSeriesDb, round: u64, series: usize) -> bool {
    let now = round * 1_000;
    for s in 0..series {
        let labels = Labels::from_pairs([("node", format!("n{s}").as_str())]);
        db.append("teemon_wal_metric", &labels, now, (round * 100 + s as u64) as f64);
    }
    db.wal_flush()
}

/// One series as compared across databases: id, name, rendered labels, data.
type SeriesDump = (u64, String, String, Vec<(u64, f64)>);

/// Everything observable about a database, in creation order.
fn fingerprint(db: &TimeSeriesDb) -> (String, Vec<SeriesDump>) {
    let series = db
        .select(&Selector::all())
        .iter()
        .map(|s| {
            (
                s.series_id().as_u64(),
                s.name().to_string(),
                s.to_labels().to_string(),
                s.points_in(0, u64::MAX),
            )
        })
        .collect();
    (format!("{:?}", db.stats()), series)
}

/// Points keyed by (name, labels) — the oracle for the corruption tests,
/// where a salvaged shard must hold a *prefix* of the acked data.
fn series_points(db: &TimeSeriesDb) -> BTreeMap<(String, String), Vec<(u64, f64)>> {
    db.select(&Selector::all())
        .iter()
        .map(|s| ((s.name().to_string(), s.to_labels().to_string()), s.points_in(0, u64::MAX)))
        .collect()
}

/// Crashing after `k` appended bytes — for **every** `k`, under both crash
/// models — must recover exactly the last round whose commit fit in `k`
/// bytes.  Run once with rotation disabled and once with a segment budget
/// small enough that shard logs rotate onto snapshots mid-workload, so
/// recovery from snapshot + log tail is covered by the same sweep.
#[test]
fn torn_tail_recovers_every_acked_round_at_every_offset() {
    for &(segment_bytes, rounds) in &[(u64::MAX, 4u64), (128, 7u64)] {
        let fs = FaultFs::new();
        let db = open(&fs, segment_bytes);
        // (bytes on disk when this state was acked, its fingerprint).
        let mut acked = vec![(0u64, fingerprint(&db))];
        for round in 1..=rounds {
            assert!(run_round(&db, round, 3), "fault-free flush must stay clean");
            acked.push((fs.total_write_bytes(), fingerprint(&db)));
        }
        let total = fs.total_write_bytes();
        for k in 0..=total {
            for model in [CrashModel::Torn, CrashModel::SyncedOnly] {
                let image = fs.crashed(k, model);
                let recovered = open(&image, segment_bytes);
                let expected = acked
                    .iter()
                    .rev()
                    .find(|(bytes, _)| *bytes <= k)
                    .expect("acked[0] covers budget 0");
                assert_eq!(
                    fingerprint(&recovered),
                    expected.1,
                    "crash at byte {k}/{total} ({model:?}, segment_bytes={segment_bytes}) \
                     must recover the last acked round"
                );
            }
        }
    }
}

/// Flipping any single bit of any durable file must never panic, never
/// fabricate data (every recovered series holds a prefix of its acked
/// points, or the series is gone with its shard flagged), and the loss must
/// be visible through the salvage probe or the failed-shard stat.
#[test]
fn bit_flips_salvage_or_isolate_without_panicking() {
    let fs = FaultFs::new();
    let db = open(&fs, u64::MAX);
    for round in 1..=3 {
        assert!(run_round(&db, round, 4));
    }
    let acked = series_points(&db);
    let full = fingerprint(&db);
    let mut damaged_cases = 0u64;
    for path in fs.file_paths() {
        let len = fs.file_len(&path).expect("listed file exists");
        for offset in 0..len {
            // `crashed` with an unlimited budget is a deep copy of the image.
            let image = fs.crashed(u64::MAX, CrashModel::Torn);
            image.corrupt(&path, offset as usize, 0x40);
            let recovered = open(&image, u64::MAX);
            let recovered_points = series_points(&recovered);
            for (key, points) in &recovered_points {
                let oracle = acked.get(key).unwrap_or_else(|| {
                    panic!("fabricated series {key:?} after corrupting {path:?}@{offset}")
                });
                assert!(
                    points.len() <= oracle.len() && oracle.starts_with(points),
                    "corrupting {path:?}@{offset}: recovered points must be a prefix of acked"
                );
            }
            if fingerprint(&recovered) != full {
                damaged_cases += 1;
                // The loss is reported: either the CRC caught it (salvage
                // counters tick during recovery) or the shard was isolated.
                assert!(
                    probes::WAL_SALVAGE.get() > 0 || recovered.stats().wal_failed_shards > 0,
                    "corrupting {path:?}@{offset} lost data silently"
                );
            }
        }
    }
    assert!(damaged_cases > 0, "the sweep must actually damage some records");
}

/// Injected fsync failures: the flush reports unclean, the failed shards are
/// sticky and surfaced in stats, the database keeps serving, and a reopen of
/// the surviving image recovers every round acked *before* the fault.
#[test]
fn fsync_errors_flag_sticky_and_preserve_acked_rounds() {
    let fs = FaultFs::new();
    let db = open(&fs, u64::MAX);
    assert!(run_round(&db, 1, 4));
    let acked = fingerprint(&db);
    fs.fail_fsyncs_from(0); // every fsync from here on fails
    assert!(!run_round(&db, 2, 4), "flush must report the injected fsync failure");
    assert!(db.stats().wal_failed_shards > 0, "failed shards must surface in stats");
    assert!(!run_round(&db, 3, 4), "failure is sticky");
    // The in-memory database keeps working.
    assert_eq!(db.select(&Selector::all()).len(), 4);
    // Only synced data survives the crash; recovery lands on round 1.
    let recovered = open(&fs.crashed(u64::MAX, CrashModel::SyncedOnly), u64::MAX);
    assert_eq!(
        fingerprint(&recovered).1,
        acked.1,
        "reopen must recover exactly the rounds acked before the fault"
    );
}

/// The scrape driver surfaces a lost-durability round: when `wal_flush`
/// reports unclean under [`FsyncMode::EveryCommit`], the round still
/// completes from memory but `teemon_wal_unclean_rounds_total` ticks — the
/// signal the `teemon_wal_unclean` self-alert fires on.
#[test]
fn scrape_driver_counts_unclean_rounds() {
    let fs = FaultFs::new();
    let db = open(&fs, u64::MAX);
    let scraper = Scraper::new(db.clone());
    let registry = Registry::new();
    registry.gauge_family("teemon_fault_gauge", "per-target gauge").default_instance().set(1.0);
    scraper.add_collector(
        ScrapeTargetConfig::new("fault_job", "node-1:9090"),
        Arc::new(RegistryCollector::new("fault_job", registry)),
    );
    // A clean round first: symbols and series go durable while fsync works.
    scraper.scrape_once(1_000);
    let before = probes::WAL_UNCLEAN_ROUNDS.get();
    fs.fail_fsyncs_from(0);
    scraper.scrape_once(2_000);
    assert!(
        probes::WAL_UNCLEAN_ROUNDS.get() > before,
        "a round whose WAL flush failed must tick teemon_wal_unclean_rounds_total"
    );
}

/// Injected short writes behave the same: unclean flush, sticky failed
/// shards, acked rounds preserved, and the torn half-write is salvaged on
/// reopen instead of poisoning recovery.
#[test]
fn short_writes_flag_sticky_and_salvage_on_reopen() {
    let fs = FaultFs::new();
    let db = open(&fs, u64::MAX);
    assert!(run_round(&db, 1, 4));
    let acked = fingerprint(&db);
    fs.fail_writes_from(0); // every append from here on is a failing half-write
    assert!(!run_round(&db, 2, 4), "flush must report the injected short write");
    assert!(db.stats().wal_failed_shards > 0);
    let salvages_before = probes::WAL_SALVAGE.get();
    let recovered = open(&fs.crashed(u64::MAX, CrashModel::Torn), u64::MAX);
    assert_eq!(fingerprint(&recovered).1, acked.1);
    assert!(
        probes::WAL_SALVAGE.get() > salvages_before,
        "the torn half-write must be counted as salvaged"
    );
}

/// The default [`FsyncMode::OnRotation`] trades power-loss safety for
/// throughput: a *process* crash (page cache intact, `CrashModel::Torn`
/// with the full image) must still recover every acked round, while a
/// *power* crash (`CrashModel::SyncedOnly`) may lose un-fsynced tails —
/// independently per shard, since shards rotate (and therefore sync) at
/// different times — but every recovered series must hold a prefix of its
/// acked points, nothing may be fabricated, and rotation's own fsyncs must
/// have preserved the rotated rounds.
#[test]
fn on_rotation_mode_survives_process_crash_and_degrades_cleanly_on_power_loss() {
    let fs = FaultFs::new();
    let options = DurabilityOptions {
        segment_bytes: 256, // small enough that some rounds rotate (and fsync)
        fsync: FsyncMode::OnRotation,
        fs: Arc::new(fs.clone()),
    };
    let db = TimeSeriesDb::open_with(dir(), config(), options.clone())
        .expect("FaultFs open cannot fail");
    for round in 1..=6 {
        assert!(run_round(&db, round, 3));
    }
    let acked = series_points(&db);
    let full = fingerprint(&db);
    let reopen = |image: FaultFs| {
        TimeSeriesDb::open_with(
            dir(),
            config(),
            DurabilityOptions { fs: Arc::new(image), ..options.clone() },
        )
        .expect("FaultFs open cannot fail")
    };
    // Process crash: everything written (synced or not) is still on disk.
    let process_crash = reopen(fs.crashed(u64::MAX, CrashModel::Torn));
    assert_eq!(fingerprint(&process_crash), full, "process crash must lose nothing");
    // Power crash: only fsynced bytes survive, shard by shard.
    let power_crash = reopen(fs.crashed(u64::MAX, CrashModel::SyncedOnly));
    let mut recovered_samples = 0usize;
    for (key, points) in &series_points(&power_crash) {
        let oracle =
            acked.get(key).unwrap_or_else(|| panic!("power crash fabricated series {key:?}"));
        assert!(
            points.len() <= oracle.len() && oracle.starts_with(points),
            "power crash: recovered points for {key:?} must be a prefix of acked"
        );
        recovered_samples += points.len();
    }
    assert!(recovered_samples > 0, "rotation fsyncs preserved the rotated rounds");
}

/// Crash-safety of rotation itself: sweep every crash offset across a
/// workload sized to trigger shard-snapshot rotation and verify the
/// invariant the snapshot/truncate ordering is designed for — recovery
/// always lands on an acked state, whether the crash hit before the atomic
/// snapshot replace, between it and the log truncation, or after.
#[test]
fn rotation_crash_points_land_on_acked_states() {
    let fs = FaultFs::new();
    let db = open(&fs, 96); // tiny segments: nearly every round rotates
    let mut acked = vec![fingerprint(&db)];
    for round in 1..=6 {
        assert!(run_round(&db, round, 2));
        acked.push(fingerprint(&db));
    }
    let total = fs.total_write_bytes();
    for k in 0..=total {
        let image = fs.crashed(k, CrashModel::Torn);
        let recovered = open(&image, 96);
        let got = fingerprint(&recovered);
        assert!(
            acked.contains(&got),
            "crash at byte {k}/{total} across rotation recovered a state never acked"
        );
    }
}

/// Crash sweep over **operation boundaries**: the byte-budget sweeps above
/// tear inside appends, but atomic replaces and truncations ride along with
/// the preceding append, so the windows *between* non-append operations —
/// notably between the meta snapshot install and the `meta.wal` truncation
/// of a meta rotation — are unreachable by them.  This sweep places a crash
/// at every journalled-op boundary of a workload sized to rotate both the
/// shard logs and the meta log, and then proves each recovered database is
/// not just an acked state but *stays durable*: it ingests one more round
/// (with a series, and therefore symbols, never seen before) and survives a
/// second reopen byte-exactly.  The second reopen is the regression test
/// for recovery double-counting symbols when an interrupted meta rotation
/// leaves `meta.wal` deltas overlapping the installed snapshot — the
/// inflated accounting only loses data one restart later.
/// Crash sweep over the **symbol-GC-at-rotation** window: a churn workload
/// (every round interns fresh label strings and drops the previous round's,
/// so symbols release, cool for two commits, get swept when the meta log
/// rotates, and freed slots are rebound to new strings under a bumped
/// generation).  A crash at any journalled-op boundary — including inside
/// the rotation that snapshots the symbol table, sweeps the cooling queue
/// and truncates `meta.wal` — must recover a state that was acked, with
/// every surviving series resolving to exactly its original name and label
/// strings (the fingerprint compares them byte-for-byte).  The recovered
/// database must then rebind freed slots to *new* strings durably: one more
/// churn round plus a second reopen proves a swept/rebound slot never
/// resurrects its old string.
///
/// Each round contributes *two* acked fingerprints: one before the flush
/// (the round's mutations with the sweep not yet run) and one after (the
/// sweep's reclaim visible).  GC progress rides disk operations of its own
/// — the rotation's snapshot install lands after the round's commit — so a
/// crash between the two legitimately recovers the committed round with the
/// swept-in-memory bindings parked back in the cooling queue; the series
/// data must still match an acked round byte-for-byte either way.
#[test]
fn symbol_gc_rotation_crash_windows_preserve_exact_resolution() {
    let fs = FaultFs::new();
    let db = open(&fs, 64); // tiny segments: the meta log rotates (and GC runs) often
    let mut acked = vec![fingerprint(&db)];
    for round in 1..=6u64 {
        let labels = Labels::from_pairs([("round", format!("r{round}").as_str())]);
        db.append("churn_metric", &labels, round * 1_000, round as f64);
        let stable = Labels::from_pairs([("node", "n0")]);
        db.append("teemon_wal_metric", &stable, round * 1_000, round as f64);
        if round > 1 {
            let gone = format!("r{}", round - 1);
            assert_eq!(
                db.drop_series(&Selector::metric("churn_metric").with_label("round", &gone)),
                1,
                "the previous round's churn series must exist to be dropped"
            );
        }
        acked.push(fingerprint(&db)); // round committed, sweep not yet durable
        assert!(db.wal_flush(), "fault-free churn flush must stay clean");
        acked.push(fingerprint(&db)); // sweep ran at the flush's rotation
    }
    let total = fs.op_count();
    for k in 0..=total {
        let image = fs.crashed_at_op(k, CrashModel::Torn);
        let recovered = open(&image, 64);
        assert!(
            acked.contains(&fingerprint(&recovered)),
            "crash at op {k}/{total} across the GC window recovered a state never acked \
             (or a symbol resolved to the wrong string)"
        );
        // Freed slots must rebind cleanly after recovery: intern brand-new
        // strings (likely reusing swept slot indices) and flush...
        let fresh = Labels::from_pairs([("round", "post-crash")]);
        recovered.append("churn_metric", &fresh, 100_000, 1.0);
        assert!(recovered.wal_flush(), "post-crash churn flush at op {k} must be clean");
        let after = fingerprint(&recovered);
        // ...and the rebind must survive the next restart byte-exactly.
        let reopened = open(&image.crashed(u64::MAX, CrashModel::Torn), 64);
        assert_eq!(
            fingerprint(&reopened),
            after,
            "op {k}/{total}: a slot swept and rebound around the crash resolved wrong \
             after the second reopen"
        );
    }
}

#[test]
fn op_boundary_crashes_cover_rotation_windows() {
    let fs = FaultFs::new();
    let db = open(&fs, 64); // tiny segments: shard logs and meta log rotate
    let mut acked = vec![fingerprint(&db)];
    for round in 1..=6 {
        assert!(run_round(&db, round, 2));
        acked.push(fingerprint(&db));
    }
    let total = fs.op_count();
    for k in 0..=total {
        let image = fs.crashed_at_op(k, CrashModel::Torn);
        let recovered = open(&image, 64);
        assert!(
            acked.contains(&fingerprint(&recovered)),
            "crash at op {k}/{total} recovered a state never acked"
        );
        // The recovered database must keep its durability promise: a round
        // with a brand-new series (new symbols) flushed clean...
        assert!(run_round(&recovered, 100, 3), "post-crash flush at op {k} must be clean");
        let after = fingerprint(&recovered);
        // ...must survive the *next* restart too.
        let reopened = open(&image.crashed(u64::MAX, CrashModel::Torn), 64);
        assert_eq!(
            fingerprint(&reopened),
            after,
            "op {k}/{total}: second reopen lost data acked after the first recovery"
        );
    }
}
