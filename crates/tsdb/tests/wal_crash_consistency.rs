//! The durability tier's correctness oracle, mirroring
//! `ingest_equivalence.rs`: generated scrape workloads — series churn,
//! label-insertion reorderings, out-of-order timestamps, retention and
//! explicit series drops kicking in mid-stream — run against a **durable**
//! database on the deterministic [`FaultFs`].  After every acked round the
//! observable state is snapshotted; then the log is killed at random byte
//! offsets (plus the exact ack boundaries) and reopened.  The recovered
//! database must equal the acked prefix exactly: same series with the same
//! ids in the same creation order, same samples, same aggregate stats.

use std::path::Path;
use std::sync::Arc;

use parking_lot::Mutex;
use proptest::{proptest, TestRng};
use teemon_metrics::{FamilySnapshot, Labels, MetricKind, MetricPoint, PointValue};
use teemon_tsdb::{
    CrashModel, DurabilityOptions, FaultFs, FsyncMode, MetricsEndpoint, ScrapeError,
    ScrapeTargetConfig, Scraper, Selector, TimeSeriesDb, TsdbConfig,
};

/// An endpoint whose snapshot set the test rewrites every round.
#[derive(Default)]
struct ScriptedEndpoint(Mutex<Vec<FamilySnapshot>>);

impl ScriptedEndpoint {
    fn set(&self, families: Vec<FamilySnapshot>) {
        *self.0.lock() = families;
    }
}

impl MetricsEndpoint for ScriptedEndpoint {
    fn scrape(&self) -> Result<Vec<FamilySnapshot>, ScrapeError> {
        Ok(self.0.lock().clone())
    }
}

/// One logical series of the generated workload.
#[derive(Clone)]
struct GenSeries {
    metric: usize,
    labels: Vec<(String, String)>,
}

const METRICS: [&str; 4] =
    ["sgx_epc_pages", "teemon_syscalls_total", "proc_cpu_seconds", "container_mem_bytes"];
const LABEL_KEYS: [&str; 3] = ["node", "syscall", "pod"];
const LABEL_VALUES: [&str; 4] = ["n1", "n2", "read", "web-0"];

fn gen_series(rng: &mut TestRng) -> GenSeries {
    let metric = rng.below(METRICS.len() as u64) as usize;
    let label_count = rng.below(3) as usize;
    let mut labels = Vec::new();
    for key in LABEL_KEYS.iter().take(label_count) {
        let value = LABEL_VALUES[rng.below(LABEL_VALUES.len() as u64) as usize];
        labels.push((key.to_string(), value.to_string()));
    }
    GenSeries { metric, labels }
}

/// Builds the round's snapshot: one family per metric, label pairs inserted
/// in a per-round shuffled order, occasional explicit (sometimes
/// out-of-order) timestamps so replay must reproduce rejections too.
fn build_families(
    pool: &[GenSeries],
    active: &[bool],
    rng: &mut TestRng,
    now: u64,
) -> Vec<FamilySnapshot> {
    let mut families: Vec<FamilySnapshot> = Vec::new();
    for (metric_idx, metric) in METRICS.iter().enumerate() {
        let mut family = FamilySnapshot::new(*metric, "generated", MetricKind::Gauge);
        for (series, &on) in pool.iter().zip(active) {
            if !on || series.metric != metric_idx {
                continue;
            }
            let mut pairs = series.labels.clone();
            if pairs.len() > 1 && rng.below(2) == 0 {
                pairs.reverse();
            }
            let labels = Labels::from_pairs(pairs);
            let value = (now as f64 / 1000.0) + series.metric as f64;
            let mut point = MetricPoint::new(labels, PointValue::Gauge(value));
            match rng.below(10) {
                0 => point = point.at(now.saturating_sub(rng.below(20_000))),
                1 => point = point.at(now + rng.below(2_000)),
                _ => {}
            }
            family.points.push(point);
        }
        if !family.points.is_empty() {
            families.push(family);
        }
    }
    families
}

/// One series as compared across databases: id, name, rendered labels, data.
type SeriesDump = (u64, String, String, Vec<(u64, f64)>);

/// Everything observable about a database, in creation order.
fn fingerprint(db: &TimeSeriesDb) -> (String, Vec<SeriesDump>) {
    let series = db
        .select(&Selector::all())
        .iter()
        .map(|s| {
            (
                s.series_id().as_u64(),
                s.name().to_string(),
                s.to_labels().to_string(),
                s.points_in(0, u64::MAX),
            )
        })
        .collect();
    (format!("{:?}", db.stats()), series)
}

proptest! {
    #[test]
    fn recovery_equals_the_acked_prefix(
        initial_series in 4usize..16,
        rounds in 5u64..12,
        case in 0u64..1_000_000,
    ) {
        let mut rng = TestRng::deterministic(&format!("wal-crash-consistency-{case}"));
        let config = TsdbConfig {
            chunk_size: 4,          // low, so rounds seal chunks mid-stream
            retention_ms: 20_000,   // four rounds: retention bites and evicts
            raw_chunks: false,
        };
        // Tiny segments on some cases, so rotation interleaves the workload.
        let segment_bytes = if case % 2 == 0 { 512 } else { u64::MAX };
        let fs = FaultFs::new();
        let options = DurabilityOptions {
            segment_bytes,
            fsync: FsyncMode::EveryCommit,
            fs: Arc::new(fs.clone()),
        };
        let db = TimeSeriesDb::open_with(Path::new("/wal"), config.clone(), options)
            .expect("FaultFs open cannot fail");
        assert!(db.durable());
        let endpoint = Arc::new(ScriptedEndpoint::default());
        let scraper = Scraper::new(db.clone()).with_modelled_durations();
        scraper.add_target(
            ScrapeTargetConfig::new("gen_exporter", "node-1:9999").with_label("node", "node-1"),
            endpoint.clone(),
        );

        // (bytes on disk at the ack, fingerprint of the acked state).
        let mut acked = vec![(0u64, fingerprint(&db))];
        let mut pool: Vec<GenSeries> = (0..initial_series).map(|_| gen_series(&mut rng)).collect();
        for round in 1..=rounds {
            let now = round * 5_000;
            // Maintenance first: its WAL records ride along with this
            // round's appends and are covered by the same commit.
            if rng.below(4) == 0 {
                db.apply_retention();
            }
            if rng.below(5) == 0 {
                let metric = METRICS[rng.below(METRICS.len() as u64) as usize];
                db.drop_series(&Selector::metric(metric));
            }
            // Churn: occasionally a new series joins the pool, and every
            // series skips some rounds (vanish + reappear).
            if rng.below(3) == 0 {
                pool.push(gen_series(&mut rng));
            }
            let active: Vec<bool> = pool.iter().map(|_| rng.below(10) < 8).collect();
            endpoint.set(build_families(&pool, &active, &mut rng, now));

            // The scrape round ends with the WAL flush — the ack point.
            scraper.scrape_once(now);
            acked.push((fs.total_write_bytes(), fingerprint(&db)));
        }
        assert!(db.stats().samples > 0, "workload must exercise the db");
        assert_eq!(db.stats().wal_failed_shards, 0, "fault-free run must stay clean");

        // Kill the log at random offsets plus every exact ack boundary.
        let total = fs.total_write_bytes();
        let mut offsets: Vec<u64> = acked.iter().map(|(bytes, _)| *bytes).collect();
        for _ in 0..24 {
            offsets.push(rng.below(total + 1));
        }
        for k in offsets {
            for model in [CrashModel::Torn, CrashModel::SyncedOnly] {
                let image = fs.crashed(k, model);
                let recovered = TimeSeriesDb::open_with(
                    Path::new("/wal"),
                    config.clone(),
                    DurabilityOptions {
                        segment_bytes,
                        fsync: FsyncMode::EveryCommit,
                        fs: Arc::new(image),
                    },
                )
                .expect("FaultFs open cannot fail");
                let expected = acked
                    .iter()
                    .rev()
                    .find(|(bytes, _)| *bytes <= k)
                    .expect("acked[0] covers budget 0");
                assert_eq!(
                    fingerprint(&recovered),
                    expected.1,
                    "crash at byte {k}/{total} ({model:?}, case {case}) diverged from the acked prefix"
                );
            }
        }
    }
}
