//! The cardinality defense tier's endurance proof: a sustained churn soak
//! in which **every round invents label strings never seen before** and
//! pushes them through *both* ingest edges — the scrape fast lane and a
//! remote-write [`PushLane`] — with retention running, admission budgets
//! attached, and the WAL on (deterministic [`FaultFs`]).  Half-way through,
//! the process "crashes" (the disk image is cut at the last journalled
//! operation and reopened) and the soak continues on the recovered
//! database.
//!
//! The claims under test:
//!
//! * **Bounded memory.** Despite unbounded-unique label traffic, resident +
//!   symbol + index bytes plateau: retention evicts drained series, series
//!   eviction releases symbols, cooling matures, and the meta-log rotation
//!   sweep frees the slots for reuse.  Without the symbol GC the table
//!   would grow by every churn string ever interned.
//! * **Exact resolution across restart.** The recovered database is
//!   byte-identical to the pre-crash state — every surviving series
//!   resolves to exactly its original name and label strings.
//! * **Warm edges stay clean.** No budget clips, no WAL failures, no
//!   rejected rounds anywhere in the soak.
//!
//! Sized for CI by default; set `TEEMON_SOAK_ROUNDS` to lengthen the soak
//! (the bounds are cadence-relative, so they hold at any length).

use std::path::Path;
use std::sync::Arc;

use parking_lot::Mutex;
use teemon_metrics::{FamilySnapshot, Labels, MetricKind, MetricPoint, PointValue};
use teemon_tsdb::{
    CardinalityBudgets, CrashModel, DurabilityOptions, FaultFs, FsyncMode, MetricsEndpoint,
    PushLane, ScrapeError, ScrapeTargetConfig, Scraper, Selector, TimeSeriesDb, TsdbConfig,
};

/// Scrape interval the soak advances by each round.
const STEP_MS: u64 = 5_000;
/// Retention window: churn series age out after this many rounds.
const WINDOW_ROUNDS: u64 = 8;
/// Unique-labelled series minted per round on the scrape edge.
const SCRAPE_CHURN: usize = 4;
/// Unique-labelled series minted per round on the push edge.
const PUSH_CHURN: usize = 3;

fn config() -> TsdbConfig {
    TsdbConfig { chunk_size: 4, retention_ms: WINDOW_ROUNDS * STEP_MS, raw_chunks: false }
}

fn open(fs: &FaultFs) -> TimeSeriesDb {
    let options = DurabilityOptions {
        // Small segments: shard and meta logs rotate (and the symbol sweep
        // runs) many times over the soak.
        segment_bytes: 1024,
        fsync: FsyncMode::EveryCommit,
        fs: Arc::new(fs.clone()),
    };
    TimeSeriesDb::open_with(Path::new("/wal"), config(), options).expect("FaultFs open cannot fail")
}

/// An endpoint whose snapshot set the soak rewrites every round.
#[derive(Default)]
struct ScriptedEndpoint(Mutex<Vec<FamilySnapshot>>);

impl MetricsEndpoint for ScriptedEndpoint {
    fn scrape(&self) -> Result<Vec<FamilySnapshot>, ScrapeError> {
        Ok(self.0.lock().clone())
    }
}

/// The scrape edge's families for one round: a fixed stable set plus
/// all-new churny series tagged with the round number.
fn scrape_families(round: u64) -> Vec<FamilySnapshot> {
    let mut stable = FamilySnapshot::new("sgx_nr_free_pages", "free pages", MetricKind::Gauge);
    for node in 0..6 {
        let labels = Labels::from_pairs([("node", format!("n{node}").as_str())]);
        stable.points.push(MetricPoint::new(labels, PointValue::Gauge(round as f64)));
    }
    let mut churn = FamilySnapshot::new("teemon_enclave_calls", "per enclave", MetricKind::Gauge);
    for i in 0..SCRAPE_CHURN {
        let labels = Labels::from_pairs([("enclave", format!("s{round}-{i}").as_str())]);
        churn.points.push(MetricPoint::new(labels, PointValue::Gauge(round as f64)));
    }
    vec![stable, churn]
}

/// The push edge's families for one round, minted churny the same way.
fn push_families(round: u64) -> Vec<FamilySnapshot> {
    let mut stable = FamilySnapshot::new("container_mem_bytes", "per pod", MetricKind::Gauge);
    for pod in 0..4 {
        let labels = Labels::from_pairs([("pod", format!("web-{pod}").as_str())]);
        stable.points.push(MetricPoint::new(labels, PointValue::Gauge(round as f64)));
    }
    let mut churn = FamilySnapshot::new("proc_short_lived", "per process", MetricKind::Gauge);
    for i in 0..PUSH_CHURN {
        let labels = Labels::from_pairs([("pid", format!("p{round}-{i}").as_str())]);
        churn.points.push(MetricPoint::new(labels, PointValue::Gauge(round as f64)));
    }
    vec![stable, churn]
}

/// One series as compared across the crash: id, name, labels, data.
type SeriesDump = (u64, String, String, Vec<(u64, f64)>);

/// Everything observable, in creation order — the restart-exactness oracle.
fn fingerprint(db: &TimeSeriesDb) -> (String, Vec<SeriesDump>) {
    let series = db
        .select(&Selector::all())
        .iter()
        .map(|s| {
            (
                s.series_id().as_u64(),
                s.name().to_string(),
                s.to_labels().to_string(),
                s.points_in(0, u64::MAX),
            )
        })
        .collect();
    (format!("{:?}", db.stats()), series)
}

/// Builds the soak's moving parts around `db`: budget pool, scrape target,
/// push lane.  Re-invoked after the mid-soak crash on the recovered handle.
fn rig(db: &TimeSeriesDb, endpoint: &Arc<ScriptedEndpoint>) -> (Scraper, PushLane) {
    let budgets = CardinalityBudgets::new();
    // Generous pools: admission is exercised every repair, but the soak is
    // sized to never clip — overflow anywhere fails the run.
    budgets.set_job_limit("sgx_exporter", 4_096);
    budgets.set_job_limit("remote_write", 4_096);
    let scraper = Scraper::new(db.clone()).with_budgets(budgets.clone());
    scraper.add_target(
        ScrapeTargetConfig::new("sgx_exporter", "node-1:9090").with_series_budget(2_048),
        Arc::clone(endpoint) as Arc<dyn MetricsEndpoint>,
    );
    let lane = PushLane::new(
        db.clone(),
        &ScrapeTargetConfig::new("remote_write", "agent-7").with_series_budget(2_048),
    )
    .with_budgets(budgets);
    (scraper, lane)
}

#[test]
fn churn_soak_survives_a_crash_with_bounded_memory() {
    let rounds: u64 = std::env::var("TEEMON_SOAK_ROUNDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&r| r >= 24)
        .unwrap_or(48);
    let warmup = 2 * WINDOW_ROUNDS; // first window fills + cooling matures
    let crash_at = rounds / 2;

    let fs = FaultFs::new();
    let endpoint = Arc::new(ScriptedEndpoint::default());
    let mut db = open(&fs);
    let (mut scraper, mut lane) = rig(&db, &endpoint);

    let mut totals: Vec<(u64, u64)> = Vec::new(); // (round, total_bytes)
    let mut peak_symbols = 0u64;
    for round in 1..=rounds {
        let now = round * STEP_MS;
        *endpoint.0.lock() = scrape_families(round);

        // Retention first: its WAL records ride this round's commit.
        db.apply_retention();
        let pushed = lane.push(&push_families(round), now);
        assert_eq!(pushed.overflow, 0, "round {round}: the push edge must not clip");
        assert_eq!(
            pushed.ingested,
            (4 + PUSH_CHURN) as u64,
            "round {round}: every pushed sample lands"
        );
        // The scrape drive ends with the WAL flush — the round's ack point.
        let outcomes = scraper.scrape_once(now);
        assert!(outcomes.iter().all(|o| o.up), "round {round}: the scrape edge must stay healthy");

        let stats = db.stats();
        assert_eq!(stats.wal_failed_shards, 0, "round {round}: the log must stay clean");
        if round > warmup {
            totals.push((round, stats.total_bytes()));
            peak_symbols = peak_symbols.max(stats.symbols);
        }

        if round == crash_at {
            // Crash: cut the disk at the last journalled operation and
            // recover.  Everything acked must come back byte-identical —
            // ids, creation order, strings, samples, aggregates.
            let before = fingerprint(&db);
            drop((scraper, lane));
            drop(db);
            let image = fs.crashed_at_op(u64::MAX, CrashModel::Torn);
            db = open(&image);
            assert_eq!(
                fingerprint(&db),
                before,
                "mid-soak crash recovery diverged from the acked state"
            );
            (scraper, lane) = rig(&db, &endpoint);
            // The soak continues on the *image*'s filesystem from here on;
            // the original `fs` keeps only the pre-crash ops, which is
            // exactly what a real crash leaves behind.
        }
    }

    // Bounded symbols: the table never holds more than the stable strings
    // plus the churn strings still inside the retention window, the cooling
    // queue and the sweep cadence.  Without GC the count would instead grow
    // by (SCRAPE_CHURN + PUSH_CHURN) every round, unbounded.
    let per_round = (SCRAPE_CHURN + PUSH_CHURN) as u64;
    let stable_strings = 64; // names, keys, stable values, meta metrics — generous
    let live_budget = (WINDOW_ROUNDS + 6) * per_round + stable_strings;
    assert!(
        peak_symbols <= live_budget,
        "symbol table failed to plateau: peak {peak_symbols} symbols, budget {live_budget} \
         (churn leak — sweeps are not reclaiming)"
    );

    // Plateau: the peak footprint of the soak's second half must not
    // meaningfully exceed the first half's — memory is flat under sustained
    // churn, not growing.  (10% slack absorbs chunk-seal granularity.)
    let half = totals.len() / 2;
    let early_peak = totals.iter().take(half).map(|&(_, b)| b).max().unwrap_or(0);
    let late_peak = totals.iter().skip(half).map(|&(_, b)| b).max().unwrap_or(0);
    assert!(
        early_peak > 0 && (late_peak as f64) <= (early_peak as f64) * 1.10,
        "footprint grew across the soak: first-half peak {early_peak}B, \
         second-half peak {late_peak}B"
    );
}
