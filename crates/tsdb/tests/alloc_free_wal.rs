//! Code-level proof that durability keeps the warm ingest round
//! allocation-free: a counting global allocator wraps the system allocator,
//! and a steady-state `append_batch` + `wal_flush` round against a durable
//! database (real files on tmpfs) must perform zero heap allocations — the
//! WAL stages into per-shard buffers whose capacity is retained round over
//! round, and the flush is one sequential `write_all` + fsync per dirty
//! shard.

// Audit bookkeeping (held-lock stacks, the order graph) allocates by
// design, so the zero-allocation proofs only hold without `lock_audit`;
// `tests/lock_audit.rs` covers the allocation rule in that mode.
#![cfg(not(lock_audit))]

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::path::PathBuf;

use teemon_metrics::Labels;
use teemon_tsdb::{SeriesHandle, TimeSeriesDb, TsdbConfig};

struct CountingAllocator;

thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

// SAFETY: delegates every operation to `System`; only bookkeeping is added.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.with(Cell::get)
}

/// A scratch directory on tmpfs (falls back to the target dir when the
/// machine has no /dev/shm), removed on drop.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> Self {
        let base = if PathBuf::from("/dev/shm").is_dir() {
            PathBuf::from("/dev/shm")
        } else {
            std::env::temp_dir()
        };
        Self(base.join(format!("teemon-alloc-wal-{tag}-{}", std::process::id())))
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn warm_durable_ingest_round_is_allocation_free() {
    let scratch = ScratchDir::new("round");
    // chunk_size 120: the head never seals inside this short workload.
    let config = TsdbConfig { chunk_size: 120, retention_ms: 86_400_000, raw_chunks: false };
    let db = TimeSeriesDb::open(&scratch.0, config).expect("open durable db on tmpfs");
    assert!(db.durable());

    let labels: Vec<Labels> = (0..64)
        .map(|i| Labels::from_pairs([("node", "n1"), ("idx", format!("{i}").as_str())]))
        .collect();
    let handles: Vec<SeriesHandle> =
        labels.iter().map(|l| db.resolve("teemon_syscalls_total", l)).collect();

    let mut batch: Vec<(SeriesHandle, u64, f64)> = Vec::with_capacity(handles.len());
    let mut round = |t: u64| {
        batch.clear();
        for (i, &handle) in handles.iter().enumerate() {
            batch.push((handle, t, i as f64));
        }
        let outcome = db.append_batch(&batch);
        assert_eq!(outcome.appended, handles.len() as u64);
        assert!(db.wal_flush(), "flush on a healthy filesystem must stay clean");
    };

    // Warm-up: create series, open the log files lazily, grow the staging
    // buffers to their steady-state capacity.
    for t in 1..=8u64 {
        round(t * 1_000);
    }
    let before = allocations();
    for t in 9..=28u64 {
        round(t * 1_000);
    }
    assert_eq!(
        allocations() - before,
        0,
        "a warm durable ingest round (batch append + WAL flush) must not allocate"
    );
    assert_eq!(db.stats().samples, 28 * 64);
    assert_eq!(db.stats().wal_failed_shards, 0);
}

#[test]
fn recovery_restores_the_durable_state_from_real_files() {
    let scratch = ScratchDir::new("reopen");
    let config = TsdbConfig { chunk_size: 4, retention_ms: 86_400_000, raw_chunks: false };
    let samples: Vec<(u64, f64)> = (1..=10u64).map(|t| (t * 1_000, t as f64)).collect();
    {
        let db = TimeSeriesDb::open(&scratch.0, config.clone()).expect("open");
        let labels = Labels::from_pairs([("node", "n1")]);
        for &(t, v) in &samples {
            assert!(db.append("sgx_epc_pages", &labels, t, v));
        }
        db.wal_flush();
    }
    let db = TimeSeriesDb::open(&scratch.0, config).expect("reopen");
    let selected = db.select(&teemon_tsdb::Selector::metric("sgx_epc_pages"));
    assert_eq!(selected.len(), 1);
    assert_eq!(selected[0].points_in(0, u64::MAX), samples);
    assert_eq!(db.stats().samples, 10);
    assert_eq!(db.stats().wal_failed_shards, 0);
}
