//! The fast lane's correctness oracle: generated scrape workloads — series
//! churn, label-insertion reorderings, explicit/out-of-order timestamps,
//! retention (including whole-series eviction) and explicit series drops
//! kicking in mid-stream — ingested through the cached batch path
//! ([`IngestMode::FastLane`]) and through the pre-cache per-sample path
//! ([`IngestMode::PerSample`]) must produce **identical** databases: same
//! series in the same creation order with the same ids, same samples, same
//! aggregate stats (including rejection counts and resident bytes).

use std::sync::Arc;

use parking_lot::Mutex;
use proptest::{proptest, TestRng};
use teemon_metrics::{FamilySnapshot, Labels, MetricKind, MetricPoint, PointValue};
use teemon_tsdb::{
    IngestMode, MetricsEndpoint, ScrapeError, ScrapeTargetConfig, Scraper, Selector, TimeSeriesDb,
    TsdbConfig,
};

/// An endpoint whose snapshot set the test rewrites every round.  Shared by
/// both scrapers so they observe byte-identical rounds.
#[derive(Default)]
struct ScriptedEndpoint(Mutex<Vec<FamilySnapshot>>);

impl ScriptedEndpoint {
    fn set(&self, families: Vec<FamilySnapshot>) {
        *self.0.lock() = families;
    }
}

impl MetricsEndpoint for ScriptedEndpoint {
    fn scrape(&self) -> Result<Vec<FamilySnapshot>, ScrapeError> {
        Ok(self.0.lock().clone())
    }
}

/// One logical series of the generated workload.
#[derive(Clone)]
struct GenSeries {
    metric: usize,
    labels: Vec<(String, String)>,
}

const METRICS: [&str; 4] =
    ["sgx_epc_pages", "teemon_syscalls_total", "proc_cpu_seconds", "container_mem_bytes"];
const LABEL_KEYS: [&str; 3] = ["node", "syscall", "pod"];
const LABEL_VALUES: [&str; 4] = ["n1", "n2", "read", "web-0"];

fn gen_series(rng: &mut TestRng) -> GenSeries {
    let metric = rng.below(METRICS.len() as u64) as usize;
    let label_count = rng.below(3) as usize;
    let mut labels = Vec::new();
    for key in LABEL_KEYS.iter().take(label_count) {
        let value = LABEL_VALUES[rng.below(LABEL_VALUES.len() as u64) as usize];
        labels.push((key.to_string(), value.to_string()));
    }
    GenSeries { metric, labels }
}

/// Builds the round's snapshot: one family per metric in metric order,
/// points in pool order, label pairs inserted in a per-round shuffled order
/// (`Labels` normalises, so identity is unaffected — which is the point).
fn build_families(
    pool: &[GenSeries],
    active: &[bool],
    rng: &mut TestRng,
    now: u64,
) -> Vec<FamilySnapshot> {
    let mut families: Vec<FamilySnapshot> = Vec::new();
    for (metric_idx, metric) in METRICS.iter().enumerate() {
        let mut family = FamilySnapshot::new(*metric, "generated", MetricKind::Gauge);
        for (series, &on) in pool.iter().zip(active) {
            if !on || series.metric != metric_idx {
                continue;
            }
            let mut pairs = series.labels.clone();
            if pairs.len() > 1 && rng.below(2) == 0 {
                pairs.reverse();
            }
            let labels = Labels::from_pairs(pairs);
            let value = (now as f64 / 1000.0) + series.metric as f64;
            let mut point = MetricPoint::new(labels, PointValue::Gauge(value));
            match rng.below(10) {
                // Explicit timestamp behind the scraper clock — sometimes far
                // enough back to be rejected as out of order.
                0 => point = point.at(now.saturating_sub(rng.below(20_000))),
                1 => point = point.at(now + rng.below(2_000)),
                _ => {}
            }
            family.points.push(point);
        }
        if !family.points.is_empty() {
            families.push(family);
        }
    }
    families
}

/// One series as compared across databases: id, name, rendered labels, data.
type SeriesDump = (u64, String, String, Vec<(u64, f64)>);

/// Everything observable about a database, in creation order.
fn fingerprint(db: &TimeSeriesDb) -> (String, Vec<SeriesDump>) {
    let series = db
        .select(&Selector::all())
        .iter()
        .map(|s| {
            (
                s.series_id().as_u64(),
                s.name().to_string(),
                s.to_labels().to_string(),
                s.points_in(0, u64::MAX),
            )
        })
        .collect();
    (format!("{:?}", db.stats()), series)
}

proptest! {
    #[test]
    fn fast_lane_and_per_sample_build_identical_databases(
        initial_series in 4usize..16,
        rounds in 5u64..12,
        case in 0u64..1_000_000,
    ) {
        let mut rng = TestRng::deterministic(&format!("ingest-equivalence-{case}"));
        let config = TsdbConfig {
            chunk_size: 4,          // low, so rounds seal chunks mid-stream
            retention_ms: 20_000,   // four rounds: retention bites and evicts
            raw_chunks: false,
        };
        let fast_db = TimeSeriesDb::with_config(config.clone());
        let slow_db = TimeSeriesDb::with_config(config);
        let endpoint = Arc::new(ScriptedEndpoint::default());
        let target = || {
            ScrapeTargetConfig::new("gen_exporter", "node-1:9999").with_label("node", "node-1")
        };
        // Modelled durations: outcome equality includes `duration_seconds`,
        // which measured wall time would never reproduce across two runs.
        let fast = Scraper::new(fast_db.clone()).with_modelled_durations(); // FastLane default
        fast.add_target(target(), endpoint.clone());
        let slow = Scraper::new(slow_db.clone())
            .with_ingest_mode(IngestMode::PerSample)
            .with_modelled_durations();
        slow.add_target(target(), endpoint.clone());

        let mut pool: Vec<GenSeries> = (0..initial_series).map(|_| gen_series(&mut rng)).collect();
        for round in 1..=rounds {
            let now = round * 5_000;
            // Churn: occasionally a new series joins the pool…
            if rng.below(3) == 0 {
                pool.push(gen_series(&mut rng));
            }
            // …and every series skips some rounds (vanish + reappear).
            let active: Vec<bool> = pool.iter().map(|_| rng.below(10) < 8).collect();
            endpoint.set(build_families(&pool, &active, &mut rng, now));

            fast.scrape_once(now);
            slow.scrape_once(now);

            // Mid-stream maintenance, applied to both sides identically.
            if rng.below(4) == 0 {
                assert_eq!(fast_db.apply_retention(), slow_db.apply_retention());
            }
            if rng.below(5) == 0 {
                let metric = METRICS[rng.below(METRICS.len() as u64) as usize];
                let selector = Selector::metric(metric);
                assert_eq!(fast_db.drop_series(&selector), slow_db.drop_series(&selector));
            }

            assert_eq!(
                fingerprint(&fast_db),
                fingerprint(&slow_db),
                "databases diverged at round {round} (case {case})"
            );
        }
        // The property is only interesting if the workload exercised the db.
        assert!(fast_db.stats().samples > 0 || rounds == 0);
    }
}
