//! Dynamic lock-audit run over the real engine (`RUSTFLAGS="--cfg
//! lock_audit"`, see `vendor/parking_lot/src/audit.rs`).  Under the
//! instrumented shim every acquisition feeds the lock-order graph and any
//! violation — a lock-order cycle, a recursive acquisition, an unordered
//! multi-shard hold — panics at the acquisition site, so simply driving the
//! engine hard *is* the assertion.  On top of that, a counting global
//! allocator records every allocation that arrives while an exclusive shard
//! lock is held outside an approved `allow_alloc` scope — the dynamic twin
//! of the `alloc_free_*` proofs, which are compiled out in this mode.

#![cfg(lock_audit)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::audit;
use teemon_metrics::{Labels, Registry, RegistryCollector};
use teemon_tsdb::{
    CardinalityBudgets, ScrapeTargetConfig, Scraper, Selector, TimeSeriesDb, TsdbConfig,
};

/// Allocations observed while [`audit::alloc_armed`] reported `true` — i.e.
/// while some thread held an exclusive `no_alloc` (shard) lock outside an
/// `allow_alloc` scope.  Must stay zero; counted rather than panicked on, so
/// the failure surfaces as a readable assertion instead of an allocator
/// panic mid-unwinding.
static ARMED_ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct AuditingAllocator;

// SAFETY: delegates every operation to `System`; only bookkeeping is added.
unsafe impl GlobalAlloc for AuditingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if audit::alloc_armed() {
            ARMED_ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if audit::alloc_armed() {
            ARMED_ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: AuditingAllocator = AuditingAllocator;

fn armed_allocations() -> u64 {
    ARMED_ALLOCATIONS.load(Ordering::Relaxed)
}

/// Drives every storage path that takes shard write locks — series creation,
/// warm appends, chunk sealing, handle batches with stale repair, retention
/// eviction, selector drops — and checks that no allocation escaped the
/// documented `allow_alloc` scopes.
#[test]
fn engine_exercise_allocates_only_in_approved_scopes() {
    let before = armed_allocations();
    let db = TimeSeriesDb::with_config(TsdbConfig {
        chunk_size: 8,
        retention_ms: 40_000,
        raw_chunks: false,
    });
    let labels: Vec<Labels> = (0..64)
        .map(|i| Labels::from_pairs([("node", format!("n{}", i % 4)), ("idx", format!("{i}"))]))
        .collect();
    // Creation (allocates inside create_series' scope) + warm appends.
    for t in 0..50u64 {
        for (i, l) in labels.iter().enumerate() {
            db.append("teemon_syscalls_total", l, t * 1_000, (t + i as u64) as f64);
        }
    }
    // The fast lane: resolve once, batch per round, chunk seals included.
    let handles: Vec<_> = labels.iter().map(|l| db.resolve("teemon_syscalls_total", l)).collect();
    for t in 50..80u64 {
        let batch: Vec<_> = handles.iter().map(|&h| (h, t * 1_000, t as f64)).collect();
        let outcome = db.append_batch(&batch);
        assert_eq!(outcome.appended, 64);
    }
    // Maintenance: selector drop + retention eviction (both allow-scoped),
    // then a stale-handle batch (the `stale` report may grow under the lock).
    assert!(db.drop_series(&Selector::all().with_label("node", "n3")) > 0);
    let batch: Vec<_> = handles.iter().map(|&h| (h, 90_000, 1.0)).collect();
    db.append_batch(&batch);
    db.append("fresh", &Labels::new(), 200_000, 1.0);
    db.apply_retention();
    assert_eq!(
        armed_allocations() - before,
        0,
        "allocations under an exclusive shard lock outside allow_alloc scopes"
    );
    assert!(audit::acquisition_count() > 0, "the instrumentation must have been live");
}

/// A full multi-threaded scrape/query workload under the audit: concurrent
/// scrapers (targets → target cache → shard → symbols) and queriers
/// (symbols, then shards) must establish a cycle-free lock order — any
/// inversion panics inside the audit and fails the test.
#[test]
fn concurrent_scrape_and_query_establish_a_clean_lock_order() {
    let db = TimeSeriesDb::new();
    // Shared admission budgets: every cache rebuild runs begin/commit on the
    // `scrape.budgets` pool while holding the target cache lock, so the
    // admission edge joins the audited graph.
    let budgets = CardinalityBudgets::new();
    budgets.set_job_limit("job", 1 << 20);
    let scraper = Scraper::new(db.clone()).with_budgets(budgets);
    let registry = Registry::new();
    let family = registry.counter_family("events_total", "events");
    for case in ["a", "b", "c"] {
        family.with(&Labels::from_pairs([("case", case)])).inc_by(1.0);
    }
    scraper.add_collector(
        ScrapeTargetConfig::new("job", "n1:1").with_series_budget(1 << 20),
        Arc::new(RegistryCollector::new("job", registry.clone())),
    );
    let threads: Vec<_> = (0..4)
        .map(|worker| {
            let scraper = scraper.clone();
            let db = db.clone();
            std::thread::spawn(move || {
                for round in 0..50u64 {
                    if worker % 2 == 0 {
                        scraper.scrape_once(round * 5_000);
                    } else {
                        db.query_range(&Selector::metric("events_total"), 0, u64::MAX);
                        db.query_instant(&Selector::all(), round * 5_000);
                        db.stats();
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("no audit violation may fire in any worker");
    }
    // The engine's documented order showed up in the graph; render the
    // report the way a CI log would.
    let report = audit::report();
    assert!(
        report.contains("tsdb.shard -> tsdb.symbols"),
        "series creation acquires symbols under the shard lock:\n{report}"
    );
    assert!(
        report.contains("scrape.target_cache -> tsdb.shard"),
        "the fast lane appends under the target cache lock:\n{report}"
    );
    assert!(
        report.contains("scrape.target_cache -> scrape.budgets"),
        "cache rebuilds run budget admission under the target cache lock:\n{report}"
    );
    println!("{report}");
}

/// The detector actually detects: a deliberately inverted acquisition order
/// (on fresh lock classes, so the engine's graph is untouched) must panic
/// with the offending cycle, and the poisoned edge must not survive.
#[test]
fn deliberate_lock_order_inversion_is_caught() {
    use parking_lot::{LockClass, Mutex};
    let a = Arc::new(Mutex::named((), LockClass::new("test.inversion.a")));
    let b = Arc::new(Mutex::named((), LockClass::new("test.inversion.b")));
    {
        let _ga = a.lock();
        let _gb = b.lock(); // establish a -> b
    }
    let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
    let result = std::thread::spawn(move || {
        let _gb = b2.lock();
        let _ga = a2.lock(); // b -> a: closes the cycle
    })
    .join();
    let err = result.expect_err("the inverted order must panic in the acquiring thread");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(msg.contains("lock-order cycle"), "unexpected panic: {msg}");
    // The graph was not poisoned: the legal order still passes.
    let _ga = a.lock();
    let _gb = b.lock();
}
