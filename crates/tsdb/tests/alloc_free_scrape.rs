//! Code-level proof that a warm steady-state scrape round is
//! **allocation-free end to end**: collect (an endpoint refreshing its
//! snapshots in place) → scrape-cache hit (structural hash + equality over
//! borrowed data) → shard-batched append → meta-metrics + storage
//! self-monitoring gauges.  A counting global allocator wraps the system
//! allocator, and after warm-up whole rounds must perform zero heap
//! allocations.
//!
//! Companion to `alloc_free_append.rs`, which proves the same property for
//! the raw `TimeSeriesDb::append` hot path in isolation.

// Audit bookkeeping (held-lock stacks, the order graph) allocates by
// design, so the zero-allocation proofs only hold without `lock_audit`;
// `tests/lock_audit.rs` covers the allocation rule in that mode.
#![cfg(not(lock_audit))]

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::Arc;

use parking_lot::Mutex;
use teemon_metrics::{FamilySnapshot, Labels, MetricKind, MetricPoint, PointValue};
use teemon_tsdb::{
    CardinalityBudgets, MetricsEndpoint, ScrapeError, ScrapeTargetConfig, Scraper, TimeSeriesDb,
};

struct CountingAllocator;

thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

// SAFETY: delegates every operation to `System`; only bookkeeping is added.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.with(Cell::get)
}

/// A collector-style endpoint that owns its snapshots and refreshes them
/// **in place** each round (gauges move, counters accumulate — no point is
/// added or removed, no string rebuilt).  This is the collect step of a
/// steady-state round: the exporter's series set is fixed, only values
/// change, so nothing needs to allocate.
struct InPlaceEndpoint(Mutex<Vec<FamilySnapshot>>);

impl InPlaceEndpoint {
    fn new(series_per_family: usize) -> Self {
        let mut families = Vec::new();
        let mut gauges = FamilySnapshot::new("sgx_nr_free_pages", "free pages", MetricKind::Gauge);
        let mut counters =
            FamilySnapshot::new("teemon_syscalls_total", "syscalls", MetricKind::Counter);
        for i in 0..series_per_family {
            let labels = Labels::from_pairs([("idx", format!("{i}")), ("node", "n1".to_string())]);
            gauges.points.push(MetricPoint::new(labels.clone(), PointValue::Gauge(24_000.0)));
            counters.points.push(MetricPoint::new(labels, PointValue::Counter(0.0)));
        }
        families.push(gauges);
        families.push(counters);
        Self(Mutex::new(families))
    }
}

impl MetricsEndpoint for InPlaceEndpoint {
    fn scrape(&self) -> Result<Vec<FamilySnapshot>, ScrapeError> {
        Ok(self.0.lock().clone())
    }

    fn scrape_visit(&self, visit: &mut dyn FnMut(&[FamilySnapshot])) -> Result<(), ScrapeError> {
        let mut families = self.0.lock();
        for family in families.iter_mut() {
            for point in &mut family.points {
                match &mut point.value {
                    PointValue::Gauge(v) => *v -= 1.0,
                    PointValue::Counter(v) => *v += 17.0,
                    _ => {}
                }
            }
        }
        visit(&families);
        Ok(())
    }
}

#[test]
fn steady_state_scrape_round_is_allocation_free() {
    let db = TimeSeriesDb::new(); // chunk_size 120: no chunk seals below
    let scraper = Scraper::new(db.clone());
    scraper.add_target(
        ScrapeTargetConfig::new("sgx_exporter", "node-1:9090").with_label("node", "node-1"),
        Arc::new(InPlaceEndpoint::new(24)),
    );

    // Warm-up: round 1 builds the scrape cache (captures identities,
    // resolves handles, sizes the batch buffer) and creates every series
    // including the meta-metrics; round 2 proves the cache holds.
    let summary = scraper.scrape_round(5_000);
    assert_eq!((summary.targets, summary.healthy), (1, 1));
    assert_eq!(summary.samples_scraped, 48);
    scraper.scrape_round(10_000);

    let before = allocations();
    for round in 3..40u64 {
        let summary = scraper.scrape_round(round * 5_000);
        assert_eq!(summary.samples_added, 48);
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "a warm steady-state scrape round (collect -> cache hit -> batch append -> \
         meta metrics) must not allocate"
    );

    // The rounds really happened: 37 measured + 2 warm-up rounds of samples.
    // (Storage self-gauges no longer arrive as ad-hoc appends — they flow
    // through the `ObsEndpoint` self-target, exercised separately below.)
    assert_eq!(db.stats().samples, 39 * 48 + 39 * 4, "samples + per-target meta metrics");
}

#[test]
fn warm_self_scrape_round_is_allocation_free() {
    // Dogfooding must meet the same bar as any other target: once the
    // engine's own telemetry snapshot is built and the scrape cache is warm,
    // a full self-scrape round — probe refresh, positional cache verify,
    // batch append, storage-stats publication — must not allocate.
    let db = TimeSeriesDb::new();
    let scraper = Scraper::new(db.clone());
    scraper.add_self_target("self:0");

    // Warm up: build the self snapshot, register every lock class on this
    // path, create the series and size the scrape cache.
    for round in 1..=3u64 {
        let summary = scraper.scrape_round(round * 5_000);
        assert_eq!((summary.targets, summary.healthy), (1, 1));
    }

    let before = allocations();
    for round in 4..20u64 {
        let summary = scraper.scrape_round(round * 5_000);
        assert!(summary.samples_added > 0);
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "a warm self-scrape round (snapshot refresh -> cache hit -> batch append ->          stats publication) must not allocate"
    );
}

#[test]
fn budget_clipped_steady_state_round_is_allocation_free() {
    // The cardinality defense must not tax the warm path: with a per-target
    // budget *and* a shared job pool active — and actively clipping samples
    // every round — a steady-state round (cache hit, overflow counting,
    // batch append, the overflow roll-up meta-metric) still performs zero
    // heap allocations.  Budget checks live entirely in the cold repair
    // path; the warm path only reads the `admitted` flag per entry.
    let db = TimeSeriesDb::new();
    let budgets = CardinalityBudgets::new();
    budgets.set_job_limit("sgx_exporter", 40);
    let scraper = Scraper::new(db.clone()).with_budgets(budgets);
    scraper.add_target(
        ScrapeTargetConfig::new("sgx_exporter", "node-1:9090").with_series_budget(30),
        Arc::new(InPlaceEndpoint::new(24)), // 48 wire samples, 30 admitted
    );

    // Warm-up: round 1 repairs under the budget (admits 30, clips 18) and
    // creates the roll-up series; round 2 proves the clipped cache holds.
    let summary = scraper.scrape_round(5_000);
    assert_eq!(summary.samples_scraped, 48);
    assert_eq!(summary.samples_added, 30, "18 of 48 samples budget-clipped");
    scraper.scrape_round(10_000);

    let before = allocations();
    for round in 3..40u64 {
        let summary = scraper.scrape_round(round * 5_000);
        assert_eq!(summary.samples_scraped, 48);
        assert_eq!(summary.samples_added, 30);
    }
    assert_eq!(
        allocations() - before,
        0,
        "a warm budget-clipped round (cache hit -> overflow count -> batch append -> \
         overflow roll-up) must not allocate"
    );
}

#[test]
fn churn_repairs_then_returns_to_allocation_free() {
    let db = TimeSeriesDb::new();
    let scraper = Scraper::new(db.clone());
    let endpoint = Arc::new(InPlaceEndpoint::new(8));
    scraper.add_target(ScrapeTargetConfig::new("job", "n1:1"), endpoint.clone());
    scraper.scrape_round(5_000);
    scraper.scrape_round(10_000);

    // A series appears: this round must repair (and may allocate)…
    endpoint
        .0
        .lock()
        .first_mut()
        .unwrap()
        .points
        .push(MetricPoint::new(Labels::from_pairs([("idx", "extra")]), PointValue::Gauge(1.0)));
    scraper.scrape_round(15_000);
    scraper.scrape_round(20_000);

    // …after which the enlarged round is allocation-free again.
    let before = allocations();
    for round in 5..12u64 {
        scraper.scrape_round(round * 5_000);
    }
    assert_eq!(allocations() - before, 0, "post-churn rounds must be allocation-free again");
}
