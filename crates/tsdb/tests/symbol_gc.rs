//! Property-based oracle for the symbol lifecycle: generated workloads of
//! series creation, explicit drops, retention and WAL flushes run against a
//! **durable** database (on the deterministic [`FaultFs`], with clean
//! restarts interleaved) and, op-for-op, against a volatile twin.  The
//! volatile twin never garbage-collects its symbol table — sweeps run only
//! at meta-log rotation, which only a durable log performs — so it is the
//! leak-free *upper bound*: the durable database must expose exactly the
//! same series with byte-identical name and label strings at every check
//! point (no live `SymbolId` may ever resolve to the wrong string, however
//! many sweeps, rebinds and restarts happened in between), while its symbol
//! accounting never exceeds the twin's.
//!
//! A deterministic churn coda then proves the reclaim side: rounds of
//! all-new label strings whose series are dropped the next round must leave
//! the durable table's symbol count *flat* while the never-swept twin grows
//! without bound.

use std::path::Path;
use std::sync::Arc;

use proptest::{proptest, TestRng};
use teemon_metrics::Labels;
use teemon_tsdb::{DurabilityOptions, FaultFs, FsyncMode, Selector, TimeSeriesDb, TsdbConfig};

const METRICS: [&str; 3] = ["sgx_epc_pages", "teemon_syscalls_total", "proc_cpu_seconds"];

fn config() -> TsdbConfig {
    TsdbConfig { chunk_size: 4, retention_ms: 30_000, raw_chunks: false }
}

fn open(fs: &FaultFs, segment_bytes: u64) -> TimeSeriesDb {
    let options = DurabilityOptions {
        segment_bytes,
        fsync: FsyncMode::EveryCommit,
        fs: Arc::new(fs.clone()),
    };
    TimeSeriesDb::open_with(Path::new("/wal"), config(), options).expect("FaultFs open cannot fail")
}

/// One series as compared across databases: name, rendered labels, data.
/// Ids are deliberately left out: a restart rewinds the id counter to the
/// highest *surviving* id, so a durable database legitimately reuses the
/// ids of dropped series where the never-restarted twin keeps counting.
type SeriesDump = (String, String, Vec<(u64, f64)>);

/// Every observable series string and sample, in creation order.
fn dump(db: &TimeSeriesDb) -> Vec<SeriesDump> {
    db.select(&Selector::all())
        .iter()
        .map(|s| (s.name().to_string(), s.to_labels().to_string(), s.points_in(0, u64::MAX)))
        .collect()
}

/// One generated mutation, applied identically to both databases.
enum Op {
    /// Append to a (possibly new) series with fully churny label strings.
    Churn { metric: usize, tag: String },
    /// Append to one of a small stable set.
    Stable { metric: usize, node: usize },
    /// Drop every series carrying this churn tag.
    Drop { tag: String },
    /// Drop one stable node's series across all metrics.
    DropStable { node: usize },
    /// Run a retention pass.
    Retention,
}

fn apply(db: &TimeSeriesDb, op: &Op, now: u64) {
    match op {
        Op::Churn { metric, tag } => {
            let labels = Labels::from_pairs([("churn", tag.as_str())]);
            db.append(METRICS[*metric], &labels, now, now as f64);
        }
        Op::Stable { metric, node } => {
            let labels = Labels::from_pairs([("node", format!("n{node}").as_str())]);
            db.append(METRICS[*metric], &labels, now, now as f64);
        }
        Op::Drop { tag } => {
            for metric in METRICS {
                db.drop_series(&Selector::metric(metric).with_label("churn", tag));
            }
        }
        Op::DropStable { node } => {
            let value = format!("n{node}");
            for metric in METRICS {
                db.drop_series(&Selector::metric(metric).with_label("node", &value));
            }
        }
        Op::Retention => {
            db.apply_retention();
        }
    }
}

proptest! {
    #[test]
    fn live_symbols_resolve_exactly_across_sweeps_and_restarts(
        rounds in 6u64..14,
        churn_per_round in 1usize..4,
        case in 0u64..1_000_000,
    ) {
        let mut rng = TestRng::deterministic(&format!("symbol-gc-{case}"));
        // Tiny segments rotate (and sweep) nearly every round; the huge
        // alternative exercises the no-rotation path, where cooling entries
        // simply accumulate until a sweep finally runs.
        let segment_bytes = if case % 2 == 0 { 96 } else { 1 << 20 };
        let fs = FaultFs::new();
        let mut durable = open(&fs, segment_bytes);
        let volatile = TimeSeriesDb::with_config(config());

        let mut live_tags: Vec<String> = Vec::new();
        for round in 1..=rounds {
            let now = round * 5_000;
            let mut ops: Vec<Op> = Vec::new();
            for i in 0..churn_per_round {
                let tag = format!("r{round}-{i}");
                ops.push(Op::Churn { metric: rng.below(METRICS.len() as u64) as usize, tag: tag.clone() });
                live_tags.push(tag);
            }
            for _ in 0..rng.below(3) {
                ops.push(Op::Stable {
                    metric: rng.below(METRICS.len() as u64) as usize,
                    node: rng.below(3) as usize,
                });
            }
            // Drop a random live churn tag (usually an old one), sometimes a
            // stable node, sometimes run retention.
            if !live_tags.is_empty() && rng.below(3) > 0 {
                let at = rng.below(live_tags.len() as u64) as usize;
                ops.push(Op::Drop { tag: live_tags.swap_remove(at) });
            }
            if rng.below(6) == 0 {
                ops.push(Op::DropStable { node: rng.below(3) as usize });
            }
            if rng.below(4) == 0 {
                ops.push(Op::Retention);
            }
            for op in &ops {
                apply(&durable, op, now);
                apply(&volatile, op, now);
            }
            assert!(durable.wal_flush(), "fault-free flush must stay clean");

            // A clean restart mid-workload: sweeps, frees and rebinds done
            // so far must round-trip the log.
            if rng.below(3) == 0 {
                drop(durable);
                durable = open(&fs, segment_bytes);
            }

            // The oracle: byte-identical series strings and samples.  The
            // twin never sweeps, so its interned set only grows; the
            // durable table must never exceed it while resolving the same.
            assert_eq!(
                dump(&durable),
                dump(&volatile),
                "case {case} round {round}: durable series diverged from the volatile twin"
            );
            let (d, v) = (durable.stats(), volatile.stats());
            assert_eq!(
                (d.series, d.samples, d.chunks, d.rejected_samples, d.resident_bytes),
                (v.series, v.samples, v.chunks, v.rejected_samples, v.resident_bytes),
                "case {case} round {round}: aggregate stats diverged"
            );
            assert!(
                d.symbols <= v.symbols && d.symbol_bytes <= v.symbol_bytes,
                "case {case} round {round}: the GC'd table ({} syms, {} bytes) must never \
                 exceed the never-swept twin ({} syms, {} bytes)",
                d.symbols, d.symbol_bytes, v.symbols, v.symbol_bytes
            );
        }

        // Churn coda: every round interns brand-new strings and drops the
        // previous round's.  With tiny segments the meta log rotates each
        // round, so the durable symbol count must plateau (stable strings +
        // one live churn round + two cooling rounds) while the never-swept
        // twin keeps absorbing every tag it ever saw.
        if segment_bytes == 96 {
            let base = rounds;
            for round in 0..12u64 {
                let now = (base + round + 1) * 5_000;
                let tag = format!("coda-{round}");
                let op = Op::Churn { metric: 0, tag: tag.clone() };
                apply(&durable, &op, now);
                apply(&volatile, &op, now);
                if round > 0 {
                    let gone = Op::Drop { tag: format!("coda-{}", round - 1) };
                    apply(&durable, &gone, now);
                    apply(&volatile, &gone, now);
                }
                assert!(durable.wal_flush(), "coda flush must stay clean");
            }
            let (d, v) = (durable.stats(), volatile.stats());
            assert_eq!(dump(&durable), dump(&volatile), "case {case}: coda dumps diverged");
            assert!(
                d.symbols + 8 <= v.symbols,
                "case {case}: 12 churn rounds must leave the swept table ({}) well below \
                 the leak baseline ({})",
                d.symbols, v.symbols
            );
        }
    }
}
