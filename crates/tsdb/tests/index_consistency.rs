//! The inverted index must be indistinguishable from the naive all-series
//! matcher scan it replaced, and the sharded engine must not lose samples
//! under concurrent appenders.

use std::collections::BTreeSet;

use proptest::proptest;
use teemon_metrics::Labels;
use teemon_tsdb::{Selector, TimeSeriesDb, SHARD_COUNT};

const METRICS: &[&str] = &["up", "teemon_syscalls_total", "sgx_nr_free_pages"];
const KEYS: &[&str] = &["node", "syscall", "job", "pod"];
const VALUES: &[&str] = &["n1", "n2", "read", "write", "sgx_exporter", ""];

/// One generated series: metric index plus up to three label pairs (key and
/// value indices; a key index past the pool end means "no label").
type SeriesSpec = (u8, Vec<(u8, u8)>);

fn build_series(spec: &SeriesSpec) -> (String, Labels) {
    let (metric, pairs) = spec;
    let name = METRICS[*metric as usize % METRICS.len()].to_string();
    let labels = Labels::from_pairs(pairs.iter().filter_map(|(k, v)| {
        let k = *k as usize;
        // Skip some keys so label sets vary in size.
        (k < KEYS.len()).then(|| (KEYS[k], VALUES[*v as usize % VALUES.len()]))
    }));
    (name, labels)
}

fn build_selector(spec: &(u8, Vec<(u8, u8, u8)>)) -> Selector {
    let (metric, matchers) = spec;
    // Metric index past the pool means a name-less selector.
    let mut selector = match METRICS.get(*metric as usize) {
        Some(name) => Selector::metric(*name),
        None => Selector::all(),
    };
    for (kind, k, v) in matchers {
        let key = KEYS[*k as usize % KEYS.len()];
        let value = VALUES[*v as usize % VALUES.len()];
        selector = match kind % 3 {
            0 => selector.with_label(key, value),
            1 => selector.without_label_value(key, value),
            _ => selector.with_label_present(key),
        };
    }
    selector
}

proptest! {
    /// Index-driven selection must agree exactly (members AND order) with a
    /// naive scan over every series in creation order.
    #[test]
    fn selection_agrees_with_naive_scan(
        series in proptest::collection::vec(
            (0u8..8, proptest::collection::vec((0u8..8, 0u8..8), 0..4)),
            1..24,
        ),
        selectors in proptest::collection::vec(
            (0u8..6, proptest::collection::vec((0u8..6, 0u8..8, 0u8..8), 0..3)),
            1..8,
        ),
    ) {
        let db = TimeSeriesDb::new();
        // Creation order with duplicates collapsed, as the naive reference.
        let mut created: Vec<(String, Labels)> = Vec::new();
        let mut seen = BTreeSet::new();
        for (i, spec) in series.iter().enumerate() {
            let (name, labels) = build_series(spec);
            assert!(db.append(&name, &labels, 1_000 + i as u64, i as f64));
            if seen.insert((name.clone(), labels.clone())) {
                created.push((name, labels));
            }
        }
        for spec in &selectors {
            let selector = build_selector(spec);
            let expected: Vec<(String, Labels)> = created
                .iter()
                .filter(|(name, labels)| selector.matches(name, labels))
                .cloned()
                .collect();
            let got: Vec<(String, Labels)> = db
                .select(&selector)
                .iter()
                .map(|snap| (snap.name().to_string(), snap.to_labels()))
                .collect();
            assert_eq!(got, expected, "selector {selector} diverged from the naive scan");
        }
    }
}

#[test]
fn concurrent_appends_lose_nothing() {
    let db = TimeSeriesDb::new();
    const THREADS: u64 = 8;
    const SERIES_PER_THREAD: u64 = 16;
    const SAMPLES_PER_SERIES: u64 = 500;
    std::thread::scope(|scope| {
        for thread in 0..THREADS {
            let db = db.clone();
            scope.spawn(move || {
                for t in 0..SAMPLES_PER_SERIES {
                    for series in 0..SERIES_PER_THREAD {
                        let labels = Labels::from_pairs([
                            ("node", format!("node-{thread}")),
                            ("idx", format!("s{series}")),
                        ]);
                        assert!(db.append("concurrent_total", &labels, t * 1_000, t as f64));
                    }
                }
            });
        }
        // A concurrent reader exercising select/stats against live shards.
        let reader = db.clone();
        scope.spawn(move || {
            for _ in 0..200 {
                let stats = reader.stats();
                assert!(stats.rejected_samples == 0);
                let _ = reader.select(&Selector::metric("concurrent_total"));
                let _ = reader.newest_timestamp();
            }
        });
    });

    let stats = db.stats();
    assert_eq!(stats.series, THREADS * SERIES_PER_THREAD);
    assert_eq!(stats.samples, THREADS * SERIES_PER_THREAD * SAMPLES_PER_SERIES);
    assert_eq!(stats.rejected_samples, 0);
    assert_eq!(db.series_count() as u64, stats.series);
    assert_eq!(db.newest_timestamp(), Some((SAMPLES_PER_SERIES - 1) * 1_000));
    assert_eq!(db.oldest_timestamp(), Some(0));
    // Chunk accounting must be consistent with what selection sees.
    let snaps = db.select(&Selector::all());
    assert_eq!(snaps.len() as u64, stats.series);
    assert_eq!(snaps.iter().map(|s| s.len() as u64).sum::<u64>(), stats.samples);
    assert_eq!(snaps.iter().map(|s| s.chunk_count() as u64).sum::<u64>(), stats.chunks);
    // Every series kept every sample in order.
    for snap in &snaps {
        assert_eq!(snap.len() as u64, SAMPLES_PER_SERIES);
        let timestamps: Vec<u64> = snap.samples().map(|s| s.timestamp_ms).collect();
        assert!(timestamps.windows(2).all(|w| w[0] < w[1]));
    }
    // The key-hash distribution actually spreads series over the lock
    // shards.  The hash is deterministic, so this cannot flake run to run;
    // for a uniform hash an empty shard among 16 with 128 series would be a
    // (15/16)^128 ≈ 0.03 % per-shard event.
    let shard_counts = db.shard_series_counts();
    let populated = shard_counts.iter().filter(|&&c| c > 0).count();
    assert!(
        populated >= SHARD_COUNT / 2,
        "series concentrated in too few shards: {shard_counts:?}"
    );
    assert_eq!(shard_counts.iter().sum::<usize>() as u64, stats.series);
}
