//! The storage engine: interned series keys, an inverted label index, sharded
//! locks and zero-copy reads.
//!
//! Layout:
//!
//! * one shared symbol table interns every metric name, label key and label
//!   value once,
//! * series are spread over [`SHARD_COUNT`] lock shards by series-key hash,
//!   so concurrent scrapers append without serialising on one lock,
//! * each shard keeps a postings index (name and `(label, value)` →
//!   series) and cheap aggregates (sample/chunk/rejection counts, min/max
//!   timestamp), so selection and [`TimeSeriesDb::stats`] never scan series,
//! * the append hot path resolves an existing series by hashing the borrowed
//!   `(&str, &Labels)` key directly — no `String` or `Labels` clone, no
//!   allocation at all,
//! * reads hand out [`SeriesSnapshot`]s: sealed chunks are `Arc`-shared, only
//!   the open head chunk (at most `chunk_size` samples) is copied,
//! * sealed chunks are Gorilla-compressed ([`crate::chunk_codec`]): the open
//!   head stays a plain `Vec<Sample>` so the append hot path is untouched,
//!   and when the head fills it is encoded once into a delta-of-delta /
//!   XOR-float block that snapshots decode *streamingly* at read time.  The
//!   per-shard `bytes` aggregate tracks the resident footprint, surfaced as
//!   [`StorageStats::resident_bytes`] / [`StorageStats::bytes_per_sample`].

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use teemon_metrics::Labels;

use crate::index::{Candidates, Postings, SelectorPlan};
use crate::query::{QueryResult, Selector};
use crate::series::{at_in_chunks, sample_at, Chunk, Sample, SeriesId, SAMPLE_BYTES};
use crate::snapshot::SeriesSnapshot;
use crate::symbols::{SymbolId, SymbolTable};

/// Number of lock shards.  A power of two so the shard of a key hash is a
/// mask, sized for "more shards than scraper threads" on typical hosts.
pub const SHARD_COUNT: usize = 16;

/// Static configuration of the database.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TsdbConfig {
    /// Samples per chunk.
    pub chunk_size: usize,
    /// Retention window in milliseconds; samples older than
    /// `newest - retention_ms` may be dropped by [`TimeSeriesDb::apply_retention`].
    pub retention_ms: u64,
    /// Keep sealed chunks as raw samples instead of Gorilla-compressing them
    /// (see [`crate::chunk_codec`]).  Off by default; the raw mode exists as
    /// an escape hatch and as the like-for-like baseline in the benches.
    #[serde(default)]
    pub raw_chunks: bool,
}

impl Default for TsdbConfig {
    fn default() -> Self {
        Self { chunk_size: 120, retention_ms: 24 * 60 * 60 * 1000, raw_chunks: false }
    }
}

/// Storage statistics (what the aggregator's own `/metrics` would expose).
/// Served from per-shard aggregates; never scans series.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StorageStats {
    /// Number of distinct series.
    pub series: u64,
    /// Total stored samples.
    pub samples: u64,
    /// Total chunks.
    pub chunks: u64,
    /// Samples rejected because they were out of order.
    pub rejected_samples: u64,
    /// Estimated bytes resident in sample storage: the compressed size of
    /// sealed chunks plus 16 bytes per unsealed head sample.  Maintained
    /// incrementally per shard (appends, seals, retention), so reading it
    /// never scans storage.
    pub resident_bytes: u64,
}

impl StorageStats {
    /// Average resident bytes per stored sample (`0.0` when empty) — the
    /// headline compression number; raw samples cost 16 bytes each.
    pub fn bytes_per_sample(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.resident_bytes as f64 / self.samples as f64
        }
    }
}

/// One stored series: interned key, resolved key strings (shared with the
/// symbol table) and chunked samples — sealed immutable chunks behind `Arc`
/// plus the open head.
struct MemSeries {
    id: SeriesId,
    name: Arc<str>,
    labels: Arc<[(Arc<str>, Arc<str>)]>,
    label_syms: Box<[(SymbolId, SymbolId)]>,
    sealed: Vec<Arc<Chunk>>,
    head: Vec<Sample>,
}

/// What one append did, so the shard can maintain its aggregates.
enum Appended {
    Rejected,
    Accepted {
        /// The head chunk went from empty to non-empty (a new chunk exists).
        opened_chunk: bool,
        /// When the append filled the head, the sealed chunk's payload size
        /// in bytes (compressed unless `raw_chunks` is set).
        sealed_bytes: Option<usize>,
    },
}

impl MemSeries {
    fn last_timestamp(&self) -> Option<u64> {
        self.head
            .last()
            .map(|s| s.timestamp_ms)
            .or_else(|| self.sealed.last().and_then(|c| c.end()))
    }

    fn first_timestamp(&self) -> Option<u64> {
        self.sealed
            .first()
            .and_then(|c| c.start())
            .or_else(|| self.head.first().map(|s| s.timestamp_ms))
    }

    /// Appends in the hot path: no allocation unless the head chunk seals
    /// (the head keeps `chunk_size` capacity reserved).  Sealing compresses
    /// the full head into a Gorilla block unless `raw_chunks` is set.
    fn append(&mut self, sample: Sample, chunk_size: usize, raw_chunks: bool) -> Appended {
        if let Some(last) = self.last_timestamp() {
            if sample.timestamp_ms < last {
                return Appended::Rejected;
            }
        }
        let opened_chunk = self.head.is_empty();
        self.head.push(sample);
        let mut sealed_bytes = None;
        if self.head.len() >= chunk_size {
            let samples = std::mem::replace(&mut self.head, Vec::with_capacity(chunk_size));
            let chunk = Chunk::sealed(samples, !raw_chunks);
            sealed_bytes = Some(chunk.data_bytes());
            self.sealed.push(Arc::new(chunk));
        }
        Appended::Accepted { opened_chunk, sealed_bytes }
    }

    fn at(&self, at_ms: u64) -> Option<Sample> {
        // Head samples are the newest; fall back to the sealed chunks.
        sample_at(&self.head, at_ms).or_else(|| at_in_chunks(&self.sealed, at_ms))
    }

    fn points_in(&self, start_ms: u64, end_ms: u64) -> Vec<(u64, f64)> {
        let mut out = Vec::new();
        crate::series::extend_range(&self.sealed, start_ms, end_ms, &mut out, |s| {
            (s.timestamp_ms, s.value)
        });
        let a = self.head.partition_point(|s| s.timestamp_ms < start_ms);
        let b = self.head.partition_point(|s| s.timestamp_ms <= end_ms);
        out.reserve(b.saturating_sub(a));
        out.extend(self.head[a..b].iter().map(|s| (s.timestamp_ms, s.value)));
        out
    }

    fn snapshot(&self) -> SeriesSnapshot {
        let mut chunks = self.sealed.clone();
        if !self.head.is_empty() {
            chunks.push(Arc::new(Chunk::from_samples(self.head.clone())));
        }
        SeriesSnapshot::new(self.id, Arc::clone(&self.name), Arc::clone(&self.labels), chunks)
    }

    /// Drops whole chunks (and the head) whose newest sample is older than
    /// `cutoff_ms`.  Returns `(samples_dropped, chunks_dropped,
    /// bytes_dropped)` so the shard can maintain its aggregates.
    fn drop_before(&mut self, cutoff_ms: u64) -> (usize, usize, u64) {
        let mut samples = 0;
        let mut chunks = 0;
        let mut bytes = 0u64;
        let keep_from = self.sealed.partition_point(|c| match c.end() {
            Some(end) => end < cutoff_ms,
            None => false,
        });
        for chunk in self.sealed.drain(..keep_from) {
            samples += chunk.len();
            chunks += 1;
            bytes += chunk.data_bytes() as u64;
        }
        if self.sealed.is_empty() {
            if let Some(last) = self.head.last() {
                if last.timestamp_ms < cutoff_ms {
                    samples += self.head.len();
                    chunks += 1;
                    bytes += (self.head.len() * SAMPLE_BYTES) as u64;
                    self.head.clear();
                }
            }
        }
        (samples, chunks, bytes)
    }

    /// The value symbol of label `key`, if the series carries that label.
    fn label_value_sym(&self, key: SymbolId) -> Option<SymbolId> {
        self.label_syms.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
    }

    /// `true` when the borrowed key equals this series' interned key.
    fn key_matches(&self, name: &str, labels: &Labels) -> bool {
        &*self.name == name
            && self.labels.len() == labels.len()
            && self
                .labels
                .iter()
                .zip(labels.iter())
                .all(|((sk, sv), (k, v))| &**sk == k && &**sv == v)
    }
}

/// Near-pass-through hasher for the key index: its keys are already uniform
/// 64-bit series-key hashes, so re-hashing them through SipHash on every
/// append would be wasted hot-path work.  A single Fibonacci multiply still
/// redistributes the bits, because every key in one shard shares its low
/// bits (the shard selector) and `HashMap` derives bucket indices from them.
#[derive(Default)]
struct PreHashed(u64);

impl Hasher for PreHashed {
    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("key index only hashes u64 keys");
    }

    fn write_u64(&mut self, value: u64) {
        self.0 = value.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[derive(Default)]
struct ShardInner {
    series: Vec<MemSeries>,
    /// Series-key hash → shard-local indices with that hash (collision list).
    key_index: HashMap<u64, Vec<u32>, std::hash::BuildHasherDefault<PreHashed>>,
    postings: Postings,
    samples: u64,
    chunks: u64,
    rejected: u64,
    /// Resident payload bytes (sealed chunk data + 16 per head sample).
    bytes: u64,
    min_ts: Option<u64>,
    max_ts: Option<u64>,
}

impl ShardInner {
    /// Borrowed-key lookup: no allocation, no string clone.
    fn find(&self, key_hash: u64, name: &str, labels: &Labels) -> Option<u32> {
        self.key_index
            .get(&key_hash)?
            .iter()
            .copied()
            .find(|&local| self.series[local as usize].key_matches(name, labels))
    }

    /// Shard-local matches for a compiled selector, postings-first with the
    /// `!=` value checks applied per candidate.
    fn matches(&self, plan: &SelectorPlan) -> Vec<u32> {
        let mut candidates = match plan.candidates(&self.postings) {
            Candidates::All => (0..self.series.len() as u32).collect::<Vec<u32>>(),
            Candidates::Listed(list) => list,
        };
        let neq = plan.neq_pairs();
        if !neq.is_empty() {
            candidates.retain(|&local| {
                let series = &self.series[local as usize];
                neq.iter().all(|&(key, value)| {
                    series.label_value_sym(key).map(|actual| actual != value).unwrap_or(false)
                })
            });
        }
        candidates
    }
}

struct DbShared {
    symbols: RwLock<SymbolTable>,
    shards: [RwLock<ShardInner>; SHARD_COUNT],
    next_id: AtomicU64,
}

impl Default for DbShared {
    fn default() -> Self {
        Self {
            symbols: RwLock::default(),
            shards: std::array::from_fn(|_| RwLock::default()),
            next_id: AtomicU64::new(0),
        }
    }
}

/// A pull-based, labelled time-series database.  Clones share storage.
#[derive(Clone, Default)]
pub struct TimeSeriesDb {
    config: TsdbConfig,
    shared: Arc<DbShared>,
}

/// Stable hash of a borrowed series key (metric name + sorted label pairs).
/// Used both to pick the lock shard and as the key-index hash, so one hash
/// computation serves the whole append path.
fn series_key_hash(name: &str, labels: &Labels) -> u64 {
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    name.hash(&mut hasher);
    for (k, v) in labels.iter() {
        k.hash(&mut hasher);
        v.hash(&mut hasher);
    }
    hasher.finish()
}

fn shard_of(key_hash: u64) -> usize {
    (key_hash as usize) & (SHARD_COUNT - 1)
}

impl TimeSeriesDb {
    /// Creates a database with default configuration.
    pub fn new() -> Self {
        Self::with_config(TsdbConfig::default())
    }

    /// Creates a database with explicit configuration.
    pub fn with_config(config: TsdbConfig) -> Self {
        Self { config, shared: Arc::new(DbShared::default()) }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &TsdbConfig {
        &self.config
    }

    /// Appends one sample to the series identified by `name` + `labels`,
    /// creating the series on first use.  Returns `false` when the sample was
    /// rejected (out of order).
    ///
    /// Appending to an existing series is allocation-free: the borrowed key
    /// is hashed directly (picking the lock shard and the key-index slot) and
    /// verified against the interned key strings, and the head chunk has its
    /// capacity pre-reserved.  Only series creation and chunk sealing
    /// allocate.
    pub fn append(&self, name: &str, labels: &Labels, timestamp_ms: u64, value: f64) -> bool {
        let key_hash = series_key_hash(name, labels);
        let mut inner = self.shared.shards[shard_of(key_hash)].write();
        let local = match inner.find(key_hash, name, labels) {
            Some(local) => local,
            None => self.create_series(&mut inner, key_hash, name, labels),
        };
        let chunk_size = self.config.chunk_size.max(1);
        let raw_chunks = self.config.raw_chunks;
        match inner.series[local as usize].append(
            Sample { timestamp_ms, value },
            chunk_size,
            raw_chunks,
        ) {
            Appended::Rejected => {
                inner.rejected += 1;
                false
            }
            Appended::Accepted { opened_chunk, sealed_bytes } => {
                inner.samples += 1;
                inner.bytes += SAMPLE_BYTES as u64;
                if let Some(sealed) = sealed_bytes {
                    // The head's raw samples became a (usually smaller) block.
                    inner.bytes = inner
                        .bytes
                        .saturating_sub((chunk_size * SAMPLE_BYTES) as u64)
                        .saturating_add(sealed as u64);
                }
                if opened_chunk {
                    inner.chunks += 1;
                }
                inner.max_ts = Some(inner.max_ts.map_or(timestamp_ms, |m| m.max(timestamp_ms)));
                inner.min_ts = Some(inner.min_ts.map_or(timestamp_ms, |m| m.min(timestamp_ms)));
                true
            }
        }
    }

    /// Slow path: intern the key and register the series in the shard's
    /// postings.  Called with the shard write lock held; the symbol-table
    /// lock is the inner lock of the pair (query paths release it before
    /// touching any shard).
    fn create_series(
        &self,
        inner: &mut ShardInner,
        key_hash: u64,
        name: &str,
        labels: &Labels,
    ) -> u32 {
        let mut symbols = self.shared.symbols.write();
        let name_sym = symbols.intern(name);
        let name_arc = Arc::clone(symbols.resolve(name_sym));
        let mut label_syms = Vec::with_capacity(labels.len());
        let mut label_arcs = Vec::with_capacity(labels.len());
        for (k, v) in labels.iter() {
            let key_sym = symbols.intern(k);
            let value_sym = symbols.intern(v);
            label_syms.push((key_sym, value_sym));
            label_arcs.push((
                Arc::clone(symbols.resolve(key_sym)),
                Arc::clone(symbols.resolve(value_sym)),
            ));
        }
        drop(symbols);

        let id = SeriesId(self.shared.next_id.fetch_add(1, Ordering::Relaxed));
        let local = u32::try_from(inner.series.len()).expect("fewer than 2^32 series per shard");
        inner.postings.register(local, name_sym, &label_syms);
        inner.key_index.entry(key_hash).or_default().push(local);
        inner.series.push(MemSeries {
            id,
            name: name_arc,
            labels: label_arcs.into(),
            label_syms: label_syms.into_boxed_slice(),
            sealed: Vec::new(),
            head: Vec::with_capacity(self.config.chunk_size.max(1)),
        });
        local
    }

    /// Number of distinct series.
    pub fn series_count(&self) -> usize {
        self.shared.next_id.load(Ordering::Relaxed) as usize
    }

    /// Number of distinct interned strings (metric names, label keys, label
    /// values).
    pub fn symbol_count(&self) -> usize {
        self.shared.symbols.read().len()
    }

    /// Number of series per lock shard — a diagnostic for how evenly the
    /// series-key hash spreads ingest load.
    pub fn shard_series_counts(&self) -> [usize; SHARD_COUNT] {
        std::array::from_fn(|i| self.shared.shards[i].read().series.len())
    }

    /// Storage statistics, folded from the per-shard aggregates in O(shards).
    pub fn stats(&self) -> StorageStats {
        let mut stats = StorageStats::default();
        for shard in &self.shared.shards {
            let inner = shard.read();
            stats.series += inner.series.len() as u64;
            stats.samples += inner.samples;
            stats.chunks += inner.chunks;
            stats.rejected_samples += inner.rejected;
            stats.resident_bytes += inner.bytes;
        }
        stats
    }

    /// Compiles `selector` once against the symbol table.  The symbol lock is
    /// released before any shard lock is taken (lock order: shard, then
    /// symbols).
    fn plan(&self, selector: &Selector) -> SelectorPlan {
        let symbols = self.shared.symbols.read();
        SelectorPlan::compile(selector, &symbols)
    }

    /// Runs `f` over every series matching `selector`, shard by shard, and
    /// returns the collected results in series-creation order.
    fn for_matching<T>(&self, selector: &Selector, f: impl Fn(&MemSeries) -> Option<T>) -> Vec<T> {
        let plan = self.plan(selector);
        if matches!(plan, SelectorPlan::Nothing) {
            return Vec::new();
        }
        let mut out: Vec<(SeriesId, T)> = Vec::new();
        for shard in &self.shared.shards {
            let inner = shard.read();
            for local in inner.matches(&plan) {
                let series = &inner.series[local as usize];
                if let Some(value) = f(series) {
                    out.push((series.id, value));
                }
            }
        }
        out.sort_unstable_by_key(|(id, _)| *id);
        out.into_iter().map(|(_, value)| value).collect()
    }

    /// Zero-copy selection: a [`SeriesSnapshot`] for every series matching
    /// `selector`, in creation order.  Sealed chunks are shared, not cloned;
    /// only the open head chunk of each series is copied.
    pub fn select(&self, selector: &Selector) -> Vec<SeriesSnapshot> {
        self.for_matching(selector, |series| Some(series.snapshot()))
    }

    /// Instant query: the newest sample at or before `at_ms` for every
    /// matching series.
    pub fn query_instant(&self, selector: &Selector, at_ms: u64) -> Vec<QueryResult> {
        self.for_matching(selector, |series| {
            series.at(at_ms).map(|sample| QueryResult {
                name: series.name.to_string(),
                labels: materialise_labels(&series.labels),
                points: vec![(sample.timestamp_ms, sample.value)],
            })
        })
    }

    /// Range query: all samples in `[start_ms, end_ms]` for every matching
    /// series.
    pub fn query_range(&self, selector: &Selector, start_ms: u64, end_ms: u64) -> Vec<QueryResult> {
        self.for_matching(selector, |series| {
            let points = series.points_in(start_ms, end_ms);
            if points.is_empty() {
                return None;
            }
            Some(QueryResult {
                name: series.name.to_string(),
                labels: materialise_labels(&series.labels),
                points,
            })
        })
    }

    /// The newest timestamp across every series, folded from the per-shard
    /// maxima in O(shards).
    pub fn newest_timestamp(&self) -> Option<u64> {
        self.shared.shards.iter().filter_map(|s| s.read().max_ts).max()
    }

    /// The oldest retained timestamp across every series (used by query
    /// consumers to clamp open-ended ranges), folded from the per-shard
    /// minima in O(shards).
    pub fn oldest_timestamp(&self) -> Option<u64> {
        self.shared.shards.iter().filter_map(|s| s.read().min_ts).min()
    }

    /// Applies the retention policy relative to the newest stored timestamp.
    /// Returns the number of samples dropped.
    pub fn apply_retention(&self) -> usize {
        let Some(newest) = self.newest_timestamp() else { return 0 };
        let cutoff = newest.saturating_sub(self.config.retention_ms);
        let mut dropped_total = 0;
        for shard in &self.shared.shards {
            let mut inner = shard.write();
            let mut dropped_samples = 0u64;
            let mut dropped_chunks = 0u64;
            let mut dropped_bytes = 0u64;
            let mut min_ts = None;
            for series in &mut inner.series {
                let (samples, chunks, bytes) = series.drop_before(cutoff);
                dropped_samples += samples as u64;
                dropped_chunks += chunks as u64;
                dropped_bytes += bytes;
                min_ts = match (min_ts, series.first_timestamp()) {
                    (Some(a), Some(b)) => Some(std::cmp::min::<u64>(a, b)),
                    (a, b) => a.or(b),
                };
            }
            inner.samples -= dropped_samples;
            inner.chunks -= dropped_chunks;
            inner.bytes = inner.bytes.saturating_sub(dropped_bytes);
            inner.min_ts = min_ts;
            dropped_total += dropped_samples as usize;
        }
        dropped_total
    }

    /// All distinct values of label `label` among series matching `selector`
    /// (used by dashboards to build filter drop-downs, e.g. the process filter
    /// of Figure 3).
    pub fn label_values(&self, selector: &Selector, label: &str) -> Vec<String> {
        let mut values =
            self.for_matching(selector, |series| series.label_value(label).map(str::to_string));
        values.sort();
        values.dedup();
        values
    }
}

impl MemSeries {
    /// The value of one label by key string.
    fn label_value(&self, name: &str) -> Option<&str> {
        crate::snapshot::label_value(&self.labels, name)
    }
}

fn materialise_labels(labels: &[(Arc<str>, Arc<str>)]) -> Labels {
    Labels::from_pairs(labels.iter().map(|(k, v)| (&**k, &**v)))
}

impl std::fmt::Debug for TimeSeriesDb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimeSeriesDb").field("stats", &self.stats()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(pairs: &[(&str, &str)]) -> Labels {
        Labels::from_pairs(pairs.iter().copied())
    }

    #[test]
    fn append_creates_series_lazily() {
        let db = TimeSeriesDb::new();
        assert!(db.append("sgx_nr_free_pages", &labels(&[("node", "n1")]), 1_000, 24_000.0));
        assert!(db.append("sgx_nr_free_pages", &labels(&[("node", "n1")]), 2_000, 23_500.0));
        assert!(db.append("sgx_nr_free_pages", &labels(&[("node", "n2")]), 1_000, 24_064.0));
        assert_eq!(db.series_count(), 2);
        let stats = db.stats();
        assert_eq!(stats.series, 2);
        assert_eq!(stats.samples, 3);
        assert_eq!(stats.chunks, 2);
        assert_eq!(stats.rejected_samples, 0);
        assert_eq!(db.oldest_timestamp(), Some(1_000));
        assert_eq!(db.newest_timestamp(), Some(2_000));
        assert_eq!(TimeSeriesDb::new().oldest_timestamp(), None);
    }

    #[test]
    fn symbols_are_interned_once() {
        let db = TimeSeriesDb::new();
        for node in ["n1", "n2", "n3"] {
            for syscall in ["read", "write"] {
                db.append(
                    "teemon_syscalls_total",
                    &labels(&[("node", node), ("syscall", syscall)]),
                    1_000,
                    1.0,
                );
            }
        }
        // 1 metric name + 2 label keys + 3 node values + 2 syscall values.
        assert_eq!(db.symbol_count(), 8);
        assert_eq!(db.series_count(), 6);
    }

    #[test]
    fn out_of_order_rejection_is_counted() {
        let db = TimeSeriesDb::new();
        db.append("m", &Labels::new(), 5_000, 1.0);
        assert!(!db.append("m", &Labels::new(), 1_000, 2.0));
        assert_eq!(db.stats().rejected_samples, 1);
    }

    #[test]
    fn instant_and_range_queries() {
        let db = TimeSeriesDb::new();
        for t in 0..10u64 {
            db.append("syscalls_total", &labels(&[("syscall", "read")]), t * 1000, t as f64);
            db.append(
                "syscalls_total",
                &labels(&[("syscall", "clock_gettime")]),
                t * 1000,
                (t * 100) as f64,
            );
        }
        let selector = Selector::metric("syscalls_total");
        let instant = db.query_instant(&selector, 4_500);
        assert_eq!(instant.len(), 2);
        assert!(instant.iter().all(|r| r.points[0].0 == 4_000));

        let only_read = Selector::metric("syscalls_total").with_label("syscall", "read");
        let range = db.query_range(&only_read, 2_000, 5_000);
        assert_eq!(range.len(), 1);
        assert_eq!(range[0].points.len(), 4);
        assert!(db.query_range(&Selector::metric("missing"), 0, u64::MAX).is_empty());
    }

    #[test]
    fn results_come_back_in_creation_order() {
        let db = TimeSeriesDb::new();
        let names: Vec<String> = (0..40).map(|i| format!("node-{i:02}")).collect();
        for (i, node) in names.iter().enumerate() {
            db.append("up", &labels(&[("node", node)]), 1_000 + i as u64, 1.0);
        }
        let results = db.query_instant(&Selector::metric("up"), u64::MAX);
        let got: Vec<&str> = results.iter().map(|r| r.labels.get("node").unwrap()).collect();
        assert_eq!(got, names.iter().map(String::as_str).collect::<Vec<_>>());
        let snaps = db.select(&Selector::metric("up"));
        assert!(snaps.windows(2).all(|w| w[0].series_id() < w[1].series_id()));
    }

    #[test]
    fn inverted_index_answers_matchers() {
        let db = TimeSeriesDb::new();
        for node in ["n1", "n2"] {
            for syscall in ["read", "write", "futex"] {
                db.append(
                    "teemon_syscalls_total",
                    &labels(&[("node", node), ("syscall", syscall)]),
                    1_000,
                    1.0,
                );
            }
            db.append("sgx_nr_free_pages", &labels(&[("node", node)]), 1_000, 24_000.0);
        }
        // Equality postings.
        let eq = Selector::metric("teemon_syscalls_total").with_label("syscall", "read");
        assert_eq!(db.select(&eq).len(), 2);
        // Existence: only syscall series carry the label.
        let exists = Selector::all().with_label_present("syscall");
        assert_eq!(db.select(&exists).len(), 6);
        // Not-equals: label must exist and differ.
        let neq = Selector::all().without_label_value("syscall", "read");
        assert_eq!(db.select(&neq).len(), 4);
        // Not-equals against a value the db never saw degenerates to exists.
        let neq_unseen = Selector::all().without_label_value("syscall", "unseen");
        assert_eq!(db.select(&neq_unseen).len(), 6);
        // A never-interned name or label short-circuits to nothing.
        assert!(db.select(&Selector::metric("missing")).is_empty());
        assert!(db.select(&Selector::all().with_label("node", "n3")).is_empty());
        assert!(db.select(&Selector::all().with_label_present("pod")).is_empty());
    }

    #[test]
    fn snapshots_share_sealed_chunks() {
        let db = TimeSeriesDb::with_config(TsdbConfig {
            chunk_size: 4,
            retention_ms: u64::MAX,
            raw_chunks: false,
        });
        for t in 0..10u64 {
            db.append("m", &Labels::new(), t * 1000, t as f64);
        }
        let a = &db.select(&Selector::metric("m"))[0];
        let b = &db.select(&Selector::metric("m"))[0];
        assert_eq!(a.len(), 10);
        assert_eq!(a.chunk_count(), 3, "two sealed chunks plus the head copy");
        assert_eq!(a.at(3_500).unwrap().value, 3.0);
        assert_eq!(a.points_in(2_000, 5_000).len(), 4);
        let collected: Vec<u64> = a.cursor(2_000, 5_000).map(|s| s.timestamp_ms).collect();
        assert_eq!(collected, vec![2_000, 3_000, 4_000, 5_000]);
        // Snapshots taken before later appends stay frozen.
        db.append("m", &Labels::new(), 20_000, 99.0);
        assert_eq!(a.len(), 10);
        assert_eq!(b.last_timestamp(), Some(9_000));
    }

    #[test]
    fn retention_respects_window() {
        let db = TimeSeriesDb::with_config(TsdbConfig {
            chunk_size: 10,
            retention_ms: 5_000,
            raw_chunks: false,
        });
        for t in 0..100u64 {
            db.append("m", &Labels::new(), t * 1000, t as f64);
        }
        let dropped = db.apply_retention();
        assert!(dropped > 50, "dropped {dropped}");
        // Recent data must survive.
        let recent = db.query_range(&Selector::metric("m"), 95_000, 99_000);
        assert_eq!(recent[0].points.len(), 5);
        // The per-shard aggregates track the drop.
        let stats = db.stats();
        assert_eq!(stats.samples, 100 - dropped as u64);
        assert_eq!(
            db.oldest_timestamp(),
            db.query_range(&Selector::metric("m"), 0, u64::MAX)[0].points.first().map(|(t, _)| *t)
        );
    }

    #[test]
    fn compressed_and_raw_storage_answer_identically() {
        let compressed = TimeSeriesDb::with_config(TsdbConfig {
            chunk_size: 16,
            retention_ms: u64::MAX,
            raw_chunks: false,
        });
        let raw = TimeSeriesDb::with_config(TsdbConfig {
            chunk_size: 16,
            retention_ms: u64::MAX,
            raw_chunks: true,
        });
        for t in 0..100u64 {
            for db in [&compressed, &raw] {
                db.append("counter_total", &labels(&[("node", "n1")]), t * 5_000, (t * 40) as f64);
                db.append("gauge", &labels(&[("node", "n1")]), t * 5_000, (t as f64 * 0.37).sin());
            }
        }
        for selector in [Selector::metric("counter_total"), Selector::metric("gauge")] {
            let a = &compressed.select(&selector)[0];
            let b = &raw.select(&selector)[0];
            assert_eq!(a.points_in(0, u64::MAX), b.points_in(0, u64::MAX));
            assert_eq!(a.points_in(17_000, 333_000), b.points_in(17_000, 333_000));
            for at in [0, 4_999, 5_000, 123_456, u64::MAX] {
                assert_eq!(a.at(at), b.at(at), "at {at}");
            }
            assert_eq!(
                a.cursor(40_000, 200_000).collect::<Vec<_>>(),
                b.cursor(40_000, 200_000).collect::<Vec<_>>(),
            );
            assert_eq!(
                a.owned_cursor(0, u64::MAX).collect::<Vec<_>>(),
                a.samples().collect::<Vec<_>>(),
            );
            assert_eq!(a.last_sample(), b.last_sample());
        }
        // Identical logical contents, far fewer resident bytes.
        let (c, r) = (compressed.stats(), raw.stats());
        assert_eq!(c.samples, r.samples);
        assert_eq!((c.series, c.chunks), (r.series, r.chunks));
        assert_eq!(r.resident_bytes, r.samples * SAMPLE_BYTES as u64);
        assert!(
            c.resident_bytes * 2 < r.resident_bytes,
            "compression saved too little: {} vs {}",
            c.resident_bytes,
            r.resident_bytes
        );
        assert!(c.bytes_per_sample() < 8.0, "{}", c.bytes_per_sample());
        assert_eq!(StorageStats::default().bytes_per_sample(), 0.0);
    }

    #[test]
    fn resident_bytes_track_retention() {
        let db = TimeSeriesDb::with_config(TsdbConfig {
            chunk_size: 10,
            retention_ms: 20_000,
            raw_chunks: false,
        });
        for t in 0..200u64 {
            db.append("m", &Labels::new(), t * 1_000, t as f64);
        }
        let before = db.stats();
        assert!(before.resident_bytes > 0);
        let dropped = db.apply_retention();
        assert!(dropped > 0);
        let after = db.stats();
        assert!(after.resident_bytes < before.resident_bytes);
        assert_eq!(after.samples, before.samples - dropped as u64);
        // The estimate stays consistent with what snapshots report.
        let snap_bytes: u64 =
            db.select(&Selector::all()).iter().map(|s| s.resident_bytes() as u64).sum();
        assert_eq!(after.resident_bytes, snap_bytes);
    }

    #[test]
    fn label_values_lists_distinct_values() {
        let db = TimeSeriesDb::new();
        for (proc_name, value) in [("redis-server", 1.0), ("nginx", 2.0), ("redis-server", 3.0)] {
            let ts = db.newest_timestamp().unwrap_or(0) + 1000;
            db.append("proc_cpu", &labels(&[("process", proc_name)]), ts, value);
        }
        let values = db.label_values(&Selector::metric("proc_cpu"), "process");
        assert_eq!(values, vec!["nginx", "redis-server"]);
        assert!(db.label_values(&Selector::metric("proc_cpu"), "missing").is_empty());
    }

    #[test]
    fn clones_share_storage() {
        let db = TimeSeriesDb::new();
        let clone = db.clone();
        clone.append("m", &Labels::new(), 1, 1.0);
        assert_eq!(db.series_count(), 1);
    }
}
