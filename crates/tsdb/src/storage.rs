//! The storage engine: interned series keys, an inverted label index, sharded
//! locks and zero-copy reads.
//!
//! Layout:
//!
//! * one shared symbol table interns every metric name, label key and label
//!   value once,
//! * series are spread over [`SHARD_COUNT`] lock shards by series-key hash,
//!   so concurrent scrapers append without serialising on one lock,
//! * each shard keeps a postings index (name and `(label, value)` →
//!   series) and cheap aggregates (sample/chunk/rejection counts, min/max
//!   timestamp), so selection and [`TimeSeriesDb::stats`] never scan series,
//! * the append hot path resolves an existing series by hashing the borrowed
//!   `(&str, &Labels)` key directly — no `String` or `Labels` clone, no
//!   allocation at all,
//! * reads hand out [`SeriesSnapshot`]s: sealed chunks are `Arc`-shared, only
//!   the open head chunk (at most `chunk_size` samples) is copied,
//! * sealed chunks are Gorilla-compressed ([`crate::chunk_codec`]): the open
//!   head stays a plain `Vec<Sample>` so the append hot path is untouched,
//!   and when the head fills it is encoded once into a delta-of-delta /
//!   XOR-float block that snapshots decode *streamingly* at read time.  The
//!   per-shard `bytes` aggregate tracks the resident footprint, surfaced as
//!   [`StorageStats::resident_bytes`] / [`StorageStats::bytes_per_sample`],
//! * the **ingest fast lane**: [`TimeSeriesDb::resolve`] turns a series key
//!   into a cheap [`SeriesHandle`] once, and
//!   [`TimeSeriesDb::append_batch`] appends a whole scrape round of
//!   `(handle, timestamp, value)` samples taking each shard lock **once per
//!   round** instead of once per sample.  Handles carry the owning shard's
//!   generation: series eviction ([`TimeSeriesDb::apply_retention`] dropping
//!   fully-aged series, [`TimeSeriesDb::drop_series`]) bumps the generation,
//!   so a stale handle is reported back for re-resolution instead of ever
//!   writing to the wrong series.

use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{LockClass, RwLock, RwLockWriteGuard};
use serde::{Deserialize, Serialize};
use teemon_metrics::Labels;
use teemon_obs::{probes, Stopwatch};

use crate::index::{Candidates, Postings, SelectorPlan};
use crate::query::{QueryResult, Selector};
use crate::series::{at_in_chunks, sample_at, Chunk, Sample, SeriesId, SAMPLE_BYTES};
use crate::snapshot::SeriesSnapshot;
use crate::symbols::{SymbolId, SymbolTable, REPLAY_HOLE_MARKER};
use crate::wal::{self, DurabilityOptions, Wal};

/// Number of lock shards.  A power of two so the shard of a key hash is a
/// mask, sized for "more shards than scraper threads" on typical hosts.
pub const SHARD_COUNT: usize = 16;

// The per-shard telemetry slots in `teemon_obs` are sized statically (obs
// sits *below* this crate in the dependency graph, so it cannot read
// `SHARD_COUNT` itself); fail the build if the two ever drift.
const _: () =
    assert!(probes::SHARDS == SHARD_COUNT, "teemon_obs::SHARDS must equal the storage shard count");

/// Static configuration of the database.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TsdbConfig {
    /// Samples per chunk.
    pub chunk_size: usize,
    /// Retention window in milliseconds; samples older than
    /// `newest - retention_ms` may be dropped by [`TimeSeriesDb::apply_retention`].
    pub retention_ms: u64,
    /// Keep sealed chunks as raw samples instead of Gorilla-compressing them
    /// (see [`crate::chunk_codec`]).  Off by default; the raw mode exists as
    /// an escape hatch and as the like-for-like baseline in the benches.
    #[serde(default)]
    pub raw_chunks: bool,
}

impl Default for TsdbConfig {
    fn default() -> Self {
        Self { chunk_size: 120, retention_ms: 24 * 60 * 60 * 1000, raw_chunks: false }
    }
}

/// Storage statistics (what the aggregator's own `/metrics` would expose).
/// Served from per-shard aggregates; never scans series.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StorageStats {
    /// Number of distinct series.
    pub series: u64,
    /// Total stored samples.
    pub samples: u64,
    /// Total chunks.
    pub chunks: u64,
    /// Samples rejected because they were out of order.
    pub rejected_samples: u64,
    /// Estimated bytes resident in sample storage: the compressed size of
    /// sealed chunks plus 16 bytes per unsealed head sample.  Maintained
    /// incrementally per shard (appends, seals, retention), so reading it
    /// never scans storage.
    pub resident_bytes: u64,
    /// Shards whose write-ahead log has failed (write/fsync errors, or
    /// unrecoverable corruption found at startup).  Always `0` for a
    /// volatile database; `16` when the shared meta log itself is broken.
    /// Failed shards keep serving from memory but no longer persist.
    #[serde(default)]
    pub wal_failed_shards: u64,
    /// Number of live interned symbols (names, label keys, label values).
    #[serde(default)]
    pub symbols: u64,
    /// Estimated bytes held by the symbol table, maintained incrementally
    /// like `resident_bytes` (string lengths plus per-slot overhead).
    #[serde(default)]
    pub symbol_bytes: u64,
    /// Estimated bytes held by the per-shard postings indexes, maintained
    /// incrementally on register/rebuild.
    #[serde(default)]
    pub index_bytes: u64,
}

impl StorageStats {
    /// Average resident bytes per stored sample (`0.0` when empty) — the
    /// headline compression number; raw samples cost 16 bytes each.
    pub fn bytes_per_sample(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.resident_bytes as f64 / self.samples as f64
        }
    }

    /// Total estimated footprint: sample storage + symbol table + postings
    /// indexes.  `resident_bytes` alone under-reports real memory under
    /// high cardinality, where keys and postings dominate — this is the
    /// number the cardinality soak asserts a plateau on.
    pub fn total_bytes(&self) -> u64 {
        self.resident_bytes + self.symbol_bytes + self.index_bytes
    }
}

/// A resolved reference to one stored series: the owning lock shard, the
/// shard-local series slot, and the shard generation the resolution happened
/// under.  Handles are the currency of the ingest fast lane
/// ([`TimeSeriesDb::resolve`] / [`TimeSeriesDb::append_batch`]): a scrape
/// cache resolves each series once and then appends by handle, skipping key
/// hashing, symbol interning and index lookups on every later round.
///
/// Handles are plain `Copy` values and never dangle: any operation that can
/// move or drop series within a shard (retention evicting fully-aged series,
/// [`TimeSeriesDb::drop_series`]) bumps that shard's generation, after which
/// every previously issued handle into the shard is *stale*.  Stale handles
/// are reported back (never silently redirected), and the holder re-resolves
/// by key — see [`BatchOutcome::stale`] and [`HandleAppend::Stale`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SeriesHandle {
    shard: u16,
    local: u32,
    generation: u64,
}

impl SeriesHandle {
    /// A handle that is never live: the scrape cache stores it in
    /// over-budget entries, which intentionally have no backing series.
    /// [`TimeSeriesDb::handle_live_under`] always reports it stale, and the
    /// cache never lets it reach an append.
    pub(crate) fn unresolved() -> Self {
        Self { shard: u16::MAX, local: u32::MAX, generation: u64::MAX }
    }
}

/// What one handle-addressed append did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HandleAppend {
    /// The sample was stored.
    Appended,
    /// The sample was out of order and rejected (counted in
    /// [`StorageStats::rejected_samples`]).
    Rejected,
    /// The handle's shard generation has moved on (series were evicted or
    /// dropped); nothing was written.  Re-resolve the key with
    /// [`TimeSeriesDb::resolve`] and retry.
    Stale,
}

/// Result of one [`TimeSeriesDb::append_batch`] round.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Samples stored.
    pub appended: u64,
    /// Samples rejected as out of order.
    pub rejected: u64,
    /// Indices into the input batch whose handles were stale; nothing was
    /// written for them.  Empty on a steady-state round — and an empty `Vec`
    /// does not allocate, keeping the batch path allocation-free.
    pub stale: Vec<usize>,
}

/// One stored series: interned key, resolved key strings (shared with the
/// symbol table) and chunked samples — sealed immutable chunks behind `Arc`
/// plus the open head.
struct MemSeries {
    id: SeriesId,
    name: Arc<str>,
    name_sym: SymbolId,
    labels: Arc<[(Arc<str>, Arc<str>)]>,
    label_syms: Box<[(SymbolId, SymbolId)]>,
    sealed: Vec<Arc<Chunk>>,
    head: Vec<Sample>,
    /// `true` once any sample was stored.  Guards retention eviction: a
    /// freshly resolved series that has not seen its first append yet is
    /// *new*, not *fully aged* — evicting it would pointlessly invalidate
    /// every handle in the shard.
    ever_appended: bool,
}

/// What one append did, so the shard can maintain its aggregates.
enum Appended {
    Rejected,
    Accepted {
        /// The head chunk went from empty to non-empty (a new chunk exists).
        opened_chunk: bool,
        /// When the append filled the head, the sealed chunk's payload size
        /// in bytes (compressed unless `raw_chunks` is set).
        sealed_bytes: Option<usize>,
    },
}

impl MemSeries {
    fn last_timestamp(&self) -> Option<u64> {
        self.head
            .last()
            .map(|s| s.timestamp_ms)
            .or_else(|| self.sealed.last().and_then(|c| c.end()))
    }

    fn first_timestamp(&self) -> Option<u64> {
        self.sealed
            .first()
            .and_then(|c| c.start())
            .or_else(|| self.head.first().map(|s| s.timestamp_ms))
    }

    /// Appends in the hot path: no allocation unless the head chunk seals
    /// (the head keeps `chunk_size` capacity reserved).  Sealing compresses
    /// the full head into a Gorilla block unless `raw_chunks` is set.
    fn append(&mut self, sample: Sample, chunk_size: usize, raw_chunks: bool) -> Appended {
        if let Some(last) = self.last_timestamp() {
            if sample.timestamp_ms < last {
                return Appended::Rejected;
            }
        }
        let opened_chunk = self.head.is_empty();
        self.head.push(sample);
        self.ever_appended = true;
        let mut sealed_bytes = None;
        if self.head.len() >= chunk_size {
            // Sealing is the one allocating step in a chunk's lifetime; the
            // lock audit's no-alloc check is suspended for it explicitly.
            #[cfg(lock_audit)]
            let _allow = parking_lot::audit::allow_alloc();
            let samples = std::mem::replace(&mut self.head, Vec::with_capacity(chunk_size));
            let chunk = Chunk::sealed(samples, !raw_chunks);
            sealed_bytes = Some(chunk.data_bytes());
            self.sealed.push(Arc::new(chunk));
        }
        Appended::Accepted { opened_chunk, sealed_bytes }
    }

    fn at(&self, at_ms: u64) -> Option<Sample> {
        // Head samples are the newest; fall back to the sealed chunks.
        sample_at(&self.head, at_ms).or_else(|| at_in_chunks(&self.sealed, at_ms))
    }

    fn points_in(&self, start_ms: u64, end_ms: u64) -> Vec<(u64, f64)> {
        let mut out = Vec::new();
        crate::series::extend_range(&self.sealed, start_ms, end_ms, &mut out, |s| {
            (s.timestamp_ms, s.value)
        });
        let a = self.head.partition_point(|s| s.timestamp_ms < start_ms);
        let b = self.head.partition_point(|s| s.timestamp_ms <= end_ms);
        out.reserve(b.saturating_sub(a));
        // teemon-verify: allow(no-index): partition_point bounds satisfy a <= b <= len
        out.extend(self.head[a..b].iter().map(|s| (s.timestamp_ms, s.value)));
        out
    }

    fn snapshot(&self) -> SeriesSnapshot {
        let mut chunks = self.sealed.clone();
        if !self.head.is_empty() {
            chunks.push(Arc::new(Chunk::from_samples(self.head.clone())));
        }
        SeriesSnapshot::new(self.id, Arc::clone(&self.name), Arc::clone(&self.labels), chunks)
    }

    /// Drops whole chunks (and the head) whose newest sample is older than
    /// `cutoff_ms`.  Returns `(samples_dropped, chunks_dropped,
    /// bytes_dropped)` so the shard can maintain its aggregates.
    fn drop_before(&mut self, cutoff_ms: u64) -> (usize, usize, u64) {
        let mut samples = 0;
        let mut chunks = 0;
        let mut bytes = 0u64;
        let keep_from = self.sealed.partition_point(|c| match c.end() {
            Some(end) => end < cutoff_ms,
            None => false,
        });
        for chunk in self.sealed.drain(..keep_from) {
            samples += chunk.len();
            chunks += 1;
            bytes += chunk.data_bytes() as u64;
        }
        if self.sealed.is_empty() {
            if let Some(last) = self.head.last() {
                if last.timestamp_ms < cutoff_ms {
                    samples += self.head.len();
                    chunks += 1;
                    bytes += (self.head.len() * SAMPLE_BYTES) as u64;
                    self.head.clear();
                }
            }
        }
        (samples, chunks, bytes)
    }

    /// `true` when the series once held data and retention has since drained
    /// every chunk — the eviction criterion.  A freshly resolved series that
    /// is still waiting for its first append is empty but NOT drained.
    fn is_drained(&self) -> bool {
        self.ever_appended && self.sealed.is_empty() && self.head.is_empty()
    }

    /// Stored samples (sealed + head), for aggregate maintenance on drops.
    fn sample_count(&self) -> u64 {
        self.sealed.iter().map(|c| c.len() as u64).sum::<u64>() + self.head.len() as u64
    }

    /// Held chunks (sealed + the head when non-empty).
    fn chunk_total(&self) -> u64 {
        self.sealed.len() as u64 + u64::from(!self.head.is_empty())
    }

    /// Resident payload bytes, matching the shard's incremental `bytes`
    /// accounting (sealed chunk payloads + 16 per head sample).
    fn resident_bytes(&self) -> u64 {
        self.sealed.iter().map(|c| c.data_bytes() as u64).sum::<u64>()
            + (self.head.len() * SAMPLE_BYTES) as u64
    }

    /// The value symbol of label `key`, if the series carries that label.
    fn label_value_sym(&self, key: SymbolId) -> Option<SymbolId> {
        self.label_syms.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
    }

    /// Releases the symbol references this series' key holds (name + every
    /// label pair).  Called when the series is removed (drop or retention
    /// eviction); the symbols become sweepable once nothing else references
    /// them and the GC cooling window has passed.
    fn release_symbols(&self, table: &mut SymbolTable) {
        table.release(self.name_sym);
        for &(k, v) in self.label_syms.iter() {
            table.release(k);
            table.release(v);
        }
    }

    /// `true` when the borrowed key equals this series' interned key.
    fn key_matches(&self, name: &str, labels: &Labels) -> bool {
        &*self.name == name
            && self.labels.len() == labels.len()
            && self
                .labels
                .iter()
                .zip(labels.iter())
                .all(|((sk, sv), (k, v))| &**sk == k && &**sv == v)
    }
}

/// Near-pass-through hasher for the key index: its keys are already uniform
/// 64-bit series-key hashes, so re-hashing them through SipHash on every
/// append would be wasted hot-path work.  A single Fibonacci multiply still
/// redistributes the bits, because every key in one shard shares its low
/// bits (the shard selector) and `HashMap` derives bucket indices from them.
#[derive(Default)]
struct PreHashed(u64);

impl Hasher for PreHashed {
    fn write(&mut self, _bytes: &[u8]) {
        // teemon-verify: allow(no-panic): invariant — this hasher is only built for u64-keyed maps
        unreachable!("key index only hashes u64 keys");
    }

    fn write_u64(&mut self, value: u64) {
        self.0 = value.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[derive(Default)]
struct ShardInner {
    series: Vec<MemSeries>,
    /// Series-key hash → shard-local indices with that hash (collision list).
    key_index: HashMap<u64, Vec<u32>, std::hash::BuildHasherDefault<PreHashed>>,
    postings: Postings,
    /// Bumped whenever shard-local series indices are invalidated (series
    /// evicted by retention or dropped); stale [`SeriesHandle`]s are detected
    /// by comparing against this.
    generation: u64,
    samples: u64,
    chunks: u64,
    rejected: u64,
    /// Resident payload bytes (sealed chunk data + 16 per head sample).
    bytes: u64,
    min_ts: Option<u64>,
    max_ts: Option<u64>,
}

impl ShardInner {
    /// The series at shard-local index `local`.  The only raw series indexing
    /// in the crate: every caller passes an index from the key index or the
    /// postings, maintained under the same shard lock, or has validated it
    /// against `series.len()` under the current generation.
    fn series_at(&self, local: u32) -> &MemSeries {
        // teemon-verify: allow(no-index): shard-local indices come from the key index/postings under this lock
        &self.series[local as usize]
    }

    /// Mutable sibling of [`ShardInner::series_at`], same invariant.
    fn series_at_mut(&mut self, local: u32) -> &mut MemSeries {
        // teemon-verify: allow(no-index): shard-local indices come from the key index/postings under this lock
        &mut self.series[local as usize]
    }

    /// Borrowed-key lookup: no allocation, no string clone.
    fn find(&self, key_hash: u64, name: &str, labels: &Labels) -> Option<u32> {
        self.key_index
            .get(&key_hash)?
            .iter()
            .copied()
            .find(|&local| self.series_at(local).key_matches(name, labels))
    }

    /// Folds the result of one [`MemSeries::append`] into the shard
    /// aggregates.  Returns `true` when the sample was stored.  Shared by the
    /// per-sample and the batched append paths so the accounting cannot
    /// diverge.
    fn record_append(&mut self, result: Appended, timestamp_ms: u64, chunk_size: usize) -> bool {
        match result {
            Appended::Rejected => {
                self.rejected += 1;
                false
            }
            Appended::Accepted { opened_chunk, sealed_bytes } => {
                self.samples += 1;
                self.bytes += SAMPLE_BYTES as u64;
                if let Some(sealed) = sealed_bytes {
                    // The head's raw samples became a (usually smaller) block.
                    self.bytes = self
                        .bytes
                        .saturating_sub((chunk_size * SAMPLE_BYTES) as u64)
                        .saturating_add(sealed as u64);
                }
                if opened_chunk {
                    self.chunks += 1;
                }
                self.max_ts = Some(self.max_ts.map_or(timestamp_ms, |m| m.max(timestamp_ms)));
                self.min_ts = Some(self.min_ts.map_or(timestamp_ms, |m| m.min(timestamp_ms)));
                true
            }
        }
    }

    /// Rebuilds the key index and postings from the stored series without
    /// touching the generation — WAL replay reconstructs a shard whose
    /// durable generation is restored explicitly.
    fn reindex(&mut self) {
        self.key_index.clear();
        self.postings = Postings::default();
        for (local, series) in self.series.iter().enumerate() {
            // teemon-verify: allow(no-unwrap): invariant — u32 handles cap a shard at 2^32 series, unreachable in memory
            let local = u32::try_from(local).expect("fewer than 2^32 series per shard");
            let hash = series_key_hash_pairs(
                &series.name,
                series.labels.iter().map(|(k, v)| (&**k, &**v)),
            );
            self.key_index.entry(hash).or_default().push(local);
            self.postings.register(local, series.name_sym, &series.label_syms);
        }
    }

    /// Rebuilds the key index and postings from the surviving series and
    /// bumps the shard generation.  Must be called after any operation that
    /// removes series (and thereby renumbers shard-local indices); every
    /// previously issued handle into this shard becomes stale.
    fn rebuild_after_removal(&mut self) {
        self.reindex();
        self.generation += 1;
    }

    /// Removes the series at `victims` (ascending pre-removal shard-local
    /// indices), maintains the shard aggregates, releases the victims'
    /// symbol references and renumbers the shard.  Shared by
    /// [`TimeSeriesDb::drop_series`] and WAL replay so the live and the
    /// replayed state cannot diverge (during replay the releases are no-ops
    /// — refcounts are rebuilt wholesale at the end of recovery).  Returns
    /// how many series were removed.
    fn remove_locals(&mut self, victims: &[u32], symbols: &RwLock<SymbolTable>) -> usize {
        if victims.is_empty() {
            return 0;
        }
        {
            // Lock order: the caller holds this shard's lock; `tsdb.symbols`
            // nests inside it, same as the series-creation path.
            let mut table = symbols.write();
            for &victim in victims {
                if let Some(series) = self.series.get(victim as usize) {
                    series.release_symbols(&mut table);
                }
            }
        }
        // `victims` is ascending; walk it alongside a retain pass.
        let mut next_victim = 0usize;
        let mut local = 0u32;
        let mut removed = 0usize;
        let mut removed_samples = 0u64;
        let mut removed_chunks = 0u64;
        let mut removed_bytes = 0u64;
        self.series.retain(|series| {
            let doomed = victims.get(next_victim) == Some(&local);
            if doomed {
                next_victim += 1;
                removed += 1;
                removed_samples += series.sample_count();
                removed_chunks += series.chunk_total();
                removed_bytes += series.resident_bytes();
            }
            local += 1;
            !doomed
        });
        self.samples = self.samples.saturating_sub(removed_samples);
        self.chunks = self.chunks.saturating_sub(removed_chunks);
        self.bytes = self.bytes.saturating_sub(removed_bytes);
        self.rebuild_after_removal();
        self.refresh_time_bounds();
        removed
    }

    /// One shard's retention sweep at `cutoff`: drops aged chunks, evicts
    /// fully drained series and maintains the aggregates.  Shared by
    /// [`TimeSeriesDb::apply_retention`] and WAL replay.  Returns how many
    /// samples were dropped.
    fn retention_pass(&mut self, cutoff: u64, symbols: &RwLock<SymbolTable>) -> u64 {
        let mut dropped_samples = 0u64;
        let mut dropped_chunks = 0u64;
        let mut dropped_bytes = 0u64;
        let mut drained = false;
        let mut min_ts = None;
        for series in &mut self.series {
            let (samples, chunks, bytes) = series.drop_before(cutoff);
            dropped_samples += samples as u64;
            dropped_chunks += chunks as u64;
            dropped_bytes += bytes;
            drained |= series.is_drained();
            min_ts = match (min_ts, series.first_timestamp()) {
                (Some(a), Some(b)) => Some(std::cmp::min::<u64>(a, b)),
                (a, b) => a.or(b),
            };
        }
        self.samples -= dropped_samples;
        self.chunks -= dropped_chunks;
        self.bytes = self.bytes.saturating_sub(dropped_bytes);
        if drained {
            // Evicting renumbers the shard; the second walk to refresh
            // both time bounds only runs on this rare path.
            {
                let mut table = symbols.write();
                for series in self.series.iter().filter(|s| s.is_drained()) {
                    series.release_symbols(&mut table);
                }
            }
            self.series.retain(|series| !series.is_drained());
            self.rebuild_after_removal();
            self.refresh_time_bounds();
        } else {
            // Dropping old data can only raise the minimum (folded for
            // free above); the maximum is untouched by retention.
            self.min_ts = min_ts;
        }
        dropped_samples
    }

    /// Recomputes the min/max timestamp aggregates from the stored series
    /// (used after removals, where incremental maintenance cannot shrink).
    fn refresh_time_bounds(&mut self) {
        self.min_ts = self.series.iter().filter_map(MemSeries::first_timestamp).min();
        self.max_ts = self.series.iter().filter_map(MemSeries::last_timestamp).max();
    }

    /// Shard-local matches for a compiled selector, postings-first with the
    /// `!=` value checks applied per candidate.
    fn matches(&self, plan: &SelectorPlan) -> Vec<u32> {
        let mut candidates = match plan.candidates(&self.postings) {
            Candidates::All => (0..self.series.len() as u32).collect::<Vec<u32>>(),
            Candidates::Listed(list) => list,
        };
        let neq = plan.neq_pairs();
        if !neq.is_empty() {
            candidates.retain(|&local| {
                let series = self.series_at(local);
                neq.iter().all(|&(key, value)| {
                    series.label_value_sym(key).map(|actual| actual != value).unwrap_or(false)
                })
            });
        }
        candidates
    }
}

struct DbShared {
    symbols: RwLock<SymbolTable>,
    shards: [RwLock<ShardInner>; SHARD_COUNT],
    next_id: AtomicU64,
    /// The write-ahead log, present only for databases opened through
    /// [`TimeSeriesDb::open`] / [`TimeSeriesDb::open_with`].
    wal: Option<Wal>,
}

impl Default for DbShared {
    fn default() -> Self {
        Self {
            // Lock audit classes (see `parking_lot::audit`): the shard locks
            // are `ordered` (multi-hold only via the ascending ordered path)
            // and `no_alloc` (the append hot path must not allocate while a
            // shard is write-locked); the symbol table is acquired *after* a
            // shard on the creation path, never the other way around.
            symbols: RwLock::named(SymbolTable::default(), LockClass::new("tsdb.symbols")),
            shards: std::array::from_fn(|i| {
                RwLock::named(
                    ShardInner::default(),
                    LockClass::new("tsdb.shard").instance(i as u32).ordered().no_alloc(),
                )
            }),
            next_id: AtomicU64::new(0),
            wal: None,
        }
    }
}

impl DbShared {
    fn with_wal(wal: Wal) -> Self {
        Self { wal: Some(wal), ..Self::default() }
    }

    /// The lock shard at `index`.  Masked with `SHARD_COUNT - 1`, so the
    /// accessor itself can never panic; every caller derives `index` from a
    /// key hash or a [`SeriesHandle`], both already in range.
    fn shard(&self, index: usize) -> &RwLock<ShardInner> {
        // teemon-verify: allow(no-index): masked by SHARD_COUNT - 1, always in bounds
        &self.shards[index & (SHARD_COUNT - 1)]
    }
}

/// A pull-based, labelled time-series database.  Clones share storage.
#[derive(Clone, Default)]
pub struct TimeSeriesDb {
    config: TsdbConfig,
    shared: Arc<DbShared>,
}

/// Stable hash of a borrowed series key (metric name + sorted label pairs).
/// Used both to pick the lock shard and as the key-index hash, so one hash
/// computation serves the whole append path.
fn series_key_hash(name: &str, labels: &Labels) -> u64 {
    series_key_hash_pairs(name, labels.iter())
}

/// [`series_key_hash`] over any borrowed pair iterator, so index rebuilds can
/// hash a stored series' interned strings without materialising a `Labels`.
fn series_key_hash_pairs<'a>(name: &str, pairs: impl Iterator<Item = (&'a str, &'a str)>) -> u64 {
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    name.hash(&mut hasher);
    for (k, v) in pairs {
        k.hash(&mut hasher);
        v.hash(&mut hasher);
    }
    hasher.finish()
}

fn shard_of(key_hash: u64) -> usize {
    (key_hash as usize) & (SHARD_COUNT - 1)
}

impl TimeSeriesDb {
    /// Creates a database with default configuration.
    pub fn new() -> Self {
        Self::with_config(TsdbConfig::default())
    }

    /// Creates a database with explicit configuration.
    pub fn with_config(config: TsdbConfig) -> Self {
        Self { config, shared: Arc::new(DbShared::default()) }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &TsdbConfig {
        &self.config
    }

    /// Opens a durable database rooted at `dir` with default
    /// [`DurabilityOptions`], replaying any write-ahead logs found there.
    /// See [`TimeSeriesDb::open_with`].
    pub fn open(dir: &Path, config: TsdbConfig) -> io::Result<Self> {
        Self::open_with(dir, config, DurabilityOptions::default())
    }

    /// Opens a durable database rooted at `dir`: creates the directory if
    /// missing, recovers symbols, series and samples from the per-shard
    /// write-ahead logs (salvaging corrupt tails, isolating unreadable
    /// shards — see the [`crate::wal`] module docs), and arms the WAL so
    /// every subsequent mutation is staged for the next
    /// [`TimeSeriesDb::wal_flush`].
    ///
    /// Only I/O errors creating the directory surface as `Err`; *corruption*
    /// never does.  A damaged shard log comes up empty and is counted in
    /// [`StorageStats::wal_failed_shards`], leaving the other shards intact.
    pub fn open_with(
        dir: &Path,
        config: TsdbConfig,
        options: DurabilityOptions,
    ) -> io::Result<Self> {
        let watch = Stopwatch::start();
        let (wal, recovery) = Wal::open(dir, &options)?;
        let db = Self { config, shared: Arc::new(DbShared::with_wal(wal)) };
        db.replay(recovery);
        probes::WAL_RECOVERY_SECONDS.set(watch.elapsed_ns() as f64 / 1e9);
        if let Some(wal) = &db.shared.wal {
            probes::WAL_FAILED_SHARDS.set(wal.failed_shard_count() as f64);
        }
        Ok(db)
    }

    /// `true` when this database writes a WAL (opened via
    /// [`TimeSeriesDb::open`] / [`TimeSeriesDb::open_with`]).
    pub fn durable(&self) -> bool {
        self.shared.wal.is_some()
    }

    /// Flushes the staged WAL round: symbol delta, one sequential write +
    /// fsync per dirty shard, then the commit marker.  Volatile databases
    /// return `true` immediately.  Returns `false` once any log has hit a
    /// write or fsync error (sticky; the failed shards are also surfaced in
    /// [`StorageStats::wal_failed_shards`]).
    ///
    /// Called once per scrape round by the scrape driver; crash-exactness is
    /// defined for that single-flusher discipline.  After a commit, shards
    /// whose log outgrew the segment budget are rotated: sealed state is
    /// snapshotted (Gorilla blocks re-used verbatim) and the log truncated.
    pub fn wal_flush(&self) -> bool {
        let Some(wal) = &self.shared.wal else {
            return true;
        };
        let stats = wal.flush(&self.shared.symbols);
        if let Some(committed) = stats.committed {
            self.rotate_wal(wal, committed);
            let swept = wal.maybe_rotate_meta(&self.shared.symbols, committed);
            if swept > 0 {
                probes::SYMBOLS_SWEPT.add(swept as u64);
            }
        }
        probes::WAL_FAILED_SHARDS.set(wal.failed_shard_count() as f64);
        stats.clean
    }

    /// Rotates any shard log past its segment budget: snapshot the shard's
    /// state as of round `committed`, install it atomically, truncate the
    /// log.  Rotation errors are swallowed — the oversized log keeps working
    /// and rotation is retried after the next commit.
    fn rotate_wal(&self, wal: &Wal, committed: u64) {
        for index in 0..SHARD_COUNT {
            // Lock order: `tsdb.shard` (read) strictly before
            // `tsdb.wal.shard` — the same order as the append paths.  Taking
            // the shard lock *first* also closes the race where an append
            // stages new records between the rotation check and the
            // snapshot: `wants_rotation` only fires on an empty staging
            // buffer, and with the shard lock held nothing can stage.
            let inner = self.shared.shard(index).read();
            if !wal.wants_rotation(index) {
                continue;
            }
            // Rotation is a cold path: encoding the snapshot allocates.
            #[cfg(lock_audit)]
            let _allow = parking_lot::audit::allow_alloc();
            let refs: Vec<wal::SnapSeriesRef<'_>> = inner
                .series
                .iter()
                .map(|series| wal::SnapSeriesRef {
                    id: series.id.0,
                    name_sym: series.name_sym,
                    label_syms: &series.label_syms,
                    ever_appended: series.ever_appended,
                    head: &series.head,
                    sealed: &series.sealed,
                })
                .collect();
            let snapshot =
                wal::encode_shard_snapshot(committed, inner.generation, inner.rejected, &refs);
            // An install error leaves the old log in place; retried later.
            let _ = wal.install_shard_snapshot(index, &snapshot);
        }
    }

    /// Rebuilds in-memory state from what [`Wal::open`] recovered.  A shard
    /// whose recovered records fail validation (symbol ids or local indices
    /// out of range — possible only through corruption that still passed the
    /// CRC) comes up empty and flagged, never panics.
    fn replay(&self, recovery: wal::Recovery) {
        {
            // Bindings install in file order, last-wins per slot: the
            // overlap left by an interrupted meta rotation and the rebind
            // of a swept-and-reused slot both resolve to the state the
            // live table ended in.
            let mut symbols = self.shared.symbols.write();
            for (raw, s) in &recovery.bindings {
                symbols.install_binding(*raw, s);
            }
            symbols.set_epoch(recovery.epoch);
        }
        let mut max_id: Option<u64> = None;
        for (index, shard) in recovery.shards.into_iter().enumerate() {
            match shard {
                wal::ShardRecovery::Empty => {}
                wal::ShardRecovery::Failed => {}
                wal::ShardRecovery::Loaded(load) => {
                    if !self.replay_shard(index, load, recovery.committed, &mut max_id) {
                        // Validation failed mid-replay: drop the partial
                        // state, bring the shard up empty and flagged.
                        probes::WAL_SALVAGE.inc();
                        if let Some(wal) = &self.shared.wal {
                            wal.mark_shard_failed(index);
                        }
                    }
                }
            }
        }
        if let Some(max) = max_id {
            self.shared.next_id.store(max + 1, Ordering::Relaxed);
        }
        // Rebuild symbol refcounts wholesale: one reference per use by a
        // surviving series.  (Releases during replayed drops/retention were
        // no-ops against all-zero counts, so this is the single source of
        // truth.)  Lock order per shard: `tsdb.shard` first, `tsdb.symbols`
        // inside, same as the creation path.
        for index in 0..SHARD_COUNT {
            let inner = self.shared.shard(index).read();
            let mut symbols = self.shared.symbols.write();
            for series in &inner.series {
                symbols.acquire(series.name_sym);
                for &(k, v) in series.label_syms.iter() {
                    symbols.acquire(k);
                    symbols.acquire(v);
                }
            }
        }
        // Recovered bindings nothing references (their series were dropped
        // before the crash, or they were written ahead of a round that
        // never committed) enter the cooling queue instead of leaking.
        self.shared.symbols.write().finish_recovery();
    }

    /// Replays one shard: restore the snapshot (sealed Gorilla blocks
    /// verbatim), then re-apply the logged ops through the *same* code paths
    /// live ingest uses (`MemSeries::append`, `record_append`,
    /// `remove_locals`, `retention_pass`), so acceptance decisions and
    /// aggregates reproduce exactly.  Returns `false` when validation fails;
    /// the shard is then left empty.
    ///
    /// A record referencing a symbol with no recovered binding does not
    /// fail the shard outright: the GC sweep legitimately removes a
    /// symbol's binding once every series using it is dropped, and the
    /// dropping record may be later in this very log.  The unresolvable id
    /// gets a unique placeholder binding and the series is marked *doomed*;
    /// only a doomed series that survives to the end of replay — which the
    /// cooling discipline makes impossible without corruption or a
    /// power-loss-torn drop record — fails the shard.
    fn replay_shard(
        &self,
        index: usize,
        load: wal::ShardLoad,
        committed: u64,
        max_id: &mut Option<u64>,
    ) -> bool {
        let chunk_size = self.config.chunk_size.max(1);
        let raw_chunks = self.config.raw_chunks;
        let mut inner = ShardInner::default();
        let mut base_seq = 0u64;
        let mut doomed: HashSet<u64> = HashSet::new();
        if let Some(snapshot) = load.snapshot {
            base_seq = snapshot.base_seq;
            inner.generation = snapshot.generation;
            inner.rejected = snapshot.rejected;
            let mut symbols = self.shared.symbols.write();
            for series in snapshot.series {
                let mut holed = false;
                let name = resolve_or_hole(&mut symbols, series.name_sym, &mut holed);
                let mut labels = Vec::with_capacity(series.label_syms.len());
                for &(k, v) in &series.label_syms {
                    labels.push((
                        resolve_or_hole(&mut symbols, k, &mut holed),
                        resolve_or_hole(&mut symbols, v, &mut holed),
                    ));
                }
                if holed {
                    doomed.insert(series.id);
                }
                *max_id = Some(max_id.map_or(series.id, |m| m.max(series.id)));
                let mut head = Vec::with_capacity(chunk_size.max(series.head.len()));
                head.extend_from_slice(&series.head);
                inner.series.push(MemSeries {
                    id: SeriesId(series.id),
                    name,
                    name_sym: series.name_sym,
                    labels: labels.into(),
                    label_syms: series.label_syms.into_boxed_slice(),
                    sealed: series.sealed.into_iter().map(Arc::new).collect(),
                    head,
                    ever_appended: series.ever_appended,
                });
            }
            drop(symbols);
            inner.reindex();
            inner.samples = inner.series.iter().map(MemSeries::sample_count).sum();
            inner.chunks = inner.series.iter().map(MemSeries::chunk_total).sum();
            inner.bytes = inner.series.iter().map(MemSeries::resident_bytes).sum();
            inner.refresh_time_bounds();
        }
        let mut round = 0u64;
        for op in load.ops {
            if let wal::ShardOp::Round(seq) = op {
                round = seq;
                continue;
            }
            if round <= base_seq {
                // Already folded into the snapshot this log rotated from.
                continue;
            }
            if round > committed {
                // Tail of a round that never committed — it was never acked.
                probes::WAL_RECORDS_DROPPED.inc();
                continue;
            }
            probes::WAL_RECORDS_REPLAYED.inc();
            match op {
                wal::ShardOp::Round(_) => {}
                wal::ShardOp::Series { id, name_sym, label_syms } => {
                    let mut symbols = self.shared.symbols.write();
                    let mut holed = false;
                    let name = resolve_or_hole(&mut symbols, name_sym, &mut holed);
                    let mut labels = Vec::with_capacity(label_syms.len());
                    for &(k, v) in &label_syms {
                        labels.push((
                            resolve_or_hole(&mut symbols, k, &mut holed),
                            resolve_or_hole(&mut symbols, v, &mut holed),
                        ));
                    }
                    drop(symbols);
                    if holed {
                        doomed.insert(id);
                    }
                    *max_id = Some(max_id.map_or(id, |m| m.max(id)));
                    let Ok(local) = u32::try_from(inner.series.len()) else {
                        return false;
                    };
                    let hash =
                        series_key_hash_pairs(&name, labels.iter().map(|(k, v)| (&**k, &**v)));
                    inner.postings.register(local, name_sym, &label_syms);
                    inner.key_index.entry(hash).or_default().push(local);
                    inner.series.push(MemSeries {
                        id: SeriesId(id),
                        name,
                        name_sym,
                        labels: labels.into(),
                        label_syms: label_syms.into_boxed_slice(),
                        sealed: Vec::new(),
                        head: Vec::with_capacity(chunk_size),
                        ever_appended: false,
                    });
                }
                wal::ShardOp::Sample { local, timestamp_ms, value } => {
                    if (local as usize) >= inner.series.len() {
                        return false;
                    }
                    let result = inner.series_at_mut(local).append(
                        Sample { timestamp_ms, value },
                        chunk_size,
                        raw_chunks,
                    );
                    inner.record_append(result, timestamp_ms, chunk_size);
                }
                wal::ShardOp::Drop { victims } => {
                    // Out-of-range victims cannot match any local index and
                    // fall through `remove_locals` harmlessly.
                    inner.remove_locals(&victims, &self.shared.symbols);
                }
                wal::ShardOp::Retention { cutoff_ms } => {
                    inner.retention_pass(cutoff_ms, &self.shared.symbols);
                }
            }
        }
        // A doomed series still standing means a record referenced a symbol
        // binding that is durably gone while the series itself survived —
        // its key cannot be reconstructed, so the shard comes up empty and
        // flagged rather than serving a fabricated key.
        if !doomed.is_empty() && inner.series.iter().any(|series| doomed.contains(&series.id.0)) {
            return false;
        }
        let mut slot = self.shared.shard(index).write();
        // Replay is startup-only; swapping in the rebuilt shard allocates
        // nothing but dropping the placeholder is outside the hot path.
        #[cfg(lock_audit)]
        let _allow = parking_lot::audit::allow_alloc();
        *slot = inner;
        true
    }

    /// Appends one sample to the series identified by `name` + `labels`,
    /// creating the series on first use.  Returns `false` when the sample was
    /// rejected (out of order).
    ///
    /// Appending to an existing series is allocation-free: the borrowed key
    /// is hashed directly (picking the lock shard and the key-index slot) and
    /// verified against the interned key strings, and the head chunk has its
    /// capacity pre-reserved.  Only series creation and chunk sealing
    /// allocate.
    pub fn append(&self, name: &str, labels: &Labels, timestamp_ms: u64, value: f64) -> bool {
        let key_hash = series_key_hash(name, labels);
        let shard = shard_of(key_hash);
        let mut inner = self.shared.shard(shard).write();
        let local = match inner.find(key_hash, name, labels) {
            Some(local) => local,
            None => self.create_series(&mut inner, shard, key_hash, name, labels),
        };
        if let Some(wal) = &self.shared.wal {
            if let Some(mut writer) = wal.shard_writer(shard) {
                writer.sample(local, timestamp_ms, value);
            }
        }
        let chunk_size = self.config.chunk_size.max(1);
        let raw_chunks = self.config.raw_chunks;
        let result = inner.series_at_mut(local).append(
            Sample { timestamp_ms, value },
            chunk_size,
            raw_chunks,
        );
        inner.record_append(result, timestamp_ms, chunk_size)
    }

    /// Resolves `name` + `labels` to a [`SeriesHandle`], creating the series
    /// on first use — the slow half of the ingest fast lane, paid once per
    /// series per cache (re)build.  The returned handle stays valid until the
    /// owning shard evicts or drops series (see [`SeriesHandle`]); appending
    /// through it afterwards reports [`HandleAppend::Stale`] rather than ever
    /// touching another series.
    pub fn resolve(&self, name: &str, labels: &Labels) -> SeriesHandle {
        let key_hash = series_key_hash(name, labels);
        let shard = shard_of(key_hash);
        {
            // Optimistic read: steady-state re-resolves share the lock.
            let inner = self.shared.shard(shard).read();
            if let Some(local) = inner.find(key_hash, name, labels) {
                return SeriesHandle { shard: shard as u16, local, generation: inner.generation };
            }
        }
        let mut inner = self.shared.shard(shard).write();
        let local = match inner.find(key_hash, name, labels) {
            Some(local) => local,
            None => self.create_series(&mut inner, shard, key_hash, name, labels),
        };
        SeriesHandle { shard: shard as u16, local, generation: inner.generation }
    }

    /// `true` when `handle` still addresses a live series (its shard has not
    /// evicted or dropped series since the handle was resolved).
    pub fn handle_live(&self, handle: SeriesHandle) -> bool {
        let inner = self.shared.shard(handle.shard as usize).read();
        handle.generation == inner.generation && (handle.local as usize) < inner.series.len()
    }

    /// The current generation of every lock shard, in shard order.  A scrape
    /// cache snapshots these once per repair pass to validate a batch of
    /// handles without locking per handle.
    pub fn shard_generations(&self) -> [u64; SHARD_COUNT] {
        std::array::from_fn(|i| self.shared.shard(i).read().generation)
    }

    /// Whether `handle` is still live under the given generation snapshot
    /// (from [`TimeSeriesDb::shard_generations`]).  Lock-free.
    pub fn handle_live_under(
        &self,
        handle: SeriesHandle,
        generations: &[u64; SHARD_COUNT],
    ) -> bool {
        generations.get(handle.shard as usize).is_some_and(|&g| g == handle.generation)
    }

    /// Appends one sample through a resolved handle.  Unlike
    /// [`TimeSeriesDb::append`] this never hashes the key or touches the key
    /// index; unlike [`TimeSeriesDb::append_batch`] it locks the shard for a
    /// single sample — use it for stragglers (e.g. re-appending after a stale
    /// handle was re-resolved), not for whole rounds.
    pub fn append_handle(
        &self,
        handle: SeriesHandle,
        timestamp_ms: u64,
        value: f64,
    ) -> HandleAppend {
        let chunk_size = self.config.chunk_size.max(1);
        let raw_chunks = self.config.raw_chunks;
        let mut inner = self.shared.shard(handle.shard as usize).write();
        if handle.generation != inner.generation || (handle.local as usize) >= inner.series.len() {
            return HandleAppend::Stale;
        }
        if let Some(wal) = &self.shared.wal {
            if let Some(mut writer) = wal.shard_writer(handle.shard as usize) {
                writer.sample(handle.local, timestamp_ms, value);
            }
        }
        let result = inner.series_at_mut(handle.local).append(
            Sample { timestamp_ms, value },
            chunk_size,
            raw_chunks,
        );
        if inner.record_append(result, timestamp_ms, chunk_size) {
            HandleAppend::Appended
        } else {
            HandleAppend::Rejected
        }
    }

    /// Appends a whole scrape round of handle-addressed samples, taking each
    /// shard's write lock **once per round** instead of once per sample.
    /// Samples are grouped by shard; within a shard they apply in input
    /// order, so per-series semantics (out-of-order rejection, chunk sealing)
    /// are identical to issuing the same appends one by one.
    ///
    /// Stale handles (their shard evicted or dropped series since
    /// resolution) are skipped and reported by input index in
    /// [`BatchOutcome::stale`]; the caller re-resolves those keys and retries
    /// — a stale handle can miss a beat but never write to the wrong series.
    /// On a steady-state round the call performs zero heap allocations.
    pub fn append_batch(&self, batch: &[(SeriesHandle, u64, f64)]) -> BatchOutcome {
        let chunk_size = self.config.chunk_size.max(1);
        let raw_chunks = self.config.raw_chunks;
        let mut outcome = BatchOutcome::default();
        // This loop is the one approved multi-shard path: shards are visited
        // in ascending index order, so under the lock audit it runs as an
        // ordered section.  (Today each shard guard drops before the next is
        // taken; the section future-proofs overlapping holds.)
        #[cfg(lock_audit)]
        let _ordered = parking_lot::audit::ordered_section();
        // 16 passes over the input beat one lock round-trip per sample: the
        // scan is branch-predictable integer compares, and shards whose
        // samples were all consumed earlier are skipped without locking.
        let mut remaining = batch.len();
        let mut appended_per_shard = [0u64; SHARD_COUNT];
        let wal = self.shared.wal.as_ref();
        for shard in 0..SHARD_COUNT as u16 {
            if remaining == 0 {
                break;
            }
            let mut inner: Option<RwLockWriteGuard<'_, ShardInner>> = None;
            // The WAL writer is taken lazily alongside the shard guard, so a
            // shard with no live samples this round stages nothing and an
            // idle round writes no bytes.
            let mut writer: Option<wal::ShardWriter<'_>> = None;
            let mut appended_here = 0u64;
            for (index, &(handle, timestamp_ms, value)) in batch.iter().enumerate() {
                if handle.shard != shard {
                    continue;
                }
                remaining -= 1;
                let inner = inner.get_or_insert_with(|| self.shared.shard(shard as usize).write());
                if handle.generation != inner.generation
                    || (handle.local as usize) >= inner.series.len()
                {
                    // Stale handles are rare (a drop/retention pass raced the
                    // round); growing the report is allowed to allocate.
                    #[cfg(lock_audit)]
                    let _allow = parking_lot::audit::allow_alloc();
                    outcome.stale.push(index);
                    continue;
                }
                if let Some(wal) = wal {
                    if writer.is_none() {
                        writer = wal.shard_writer(shard as usize);
                    }
                    if let Some(writer) = writer.as_mut() {
                        writer.sample(handle.local, timestamp_ms, value);
                    }
                }
                let result = inner.series_at_mut(handle.local).append(
                    Sample { timestamp_ms, value },
                    chunk_size,
                    raw_chunks,
                );
                if inner.record_append(result, timestamp_ms, chunk_size) {
                    outcome.appended += 1;
                    appended_here += 1;
                } else {
                    outcome.rejected += 1;
                }
            }
            // teemon-verify: allow(no-index): invariant — `shard` iterates 0..SHARD_COUNT, the array length
            appended_per_shard[shard as usize] = appended_here;
        }
        // Probe the shard heat map after the batch loops finish: calling
        // into the probe statics inside the per-shard loop measurably
        // degrades the inner scan's codegen (~15% on `micro/ingest`), so
        // the counts stage in a stack array and flush here, off the hot
        // path.
        for (shard, &appended) in appended_per_shard.iter().enumerate() {
            if appended > 0 {
                probes::SHARD_APPENDS.add(shard, appended);
            }
        }
        if !outcome.stale.is_empty() {
            probes::STALE_HANDLES.add(outcome.stale.len() as u64);
        }
        outcome
    }

    /// Drops every series matching `selector` — chunks, head and index
    /// entries — and returns how many series were removed.  Affected shards
    /// bump their generation, so outstanding [`SeriesHandle`]s into them
    /// become stale (reported, never misrouted).  This is the cardinality
    /// clean-up knife: vanished scrape targets, renamed metrics, runaway
    /// label values.
    ///
    /// Dropping series also releases their interned symbols (name, label
    /// keys/values).  A symbol whose refcount reaches zero is parked in a
    /// cooling queue and reclaimed at the next meta-log rotation once two
    /// durable commits have passed — so an all-time-unique label value gives
    /// its string memory back instead of leaking it (see the lifecycle notes
    /// on `crate::symbols::SymbolTable`).
    pub fn drop_series(&self, selector: &Selector) -> usize {
        let plan = self.plan(selector);
        if matches!(plan, SelectorPlan::Nothing) {
            return 0;
        }
        let mut dropped = 0;
        for (index, shard) in self.shared.shards.iter().enumerate() {
            let mut inner = shard.write();
            // Dropping series is a cold maintenance path: collecting victims
            // and rebuilding the index allocate under the shard lock.
            #[cfg(lock_audit)]
            let _allow = parking_lot::audit::allow_alloc();
            let victims = inner.matches(&plan);
            if victims.is_empty() {
                continue;
            }
            // Stage the removal before mutating, in the same order replay
            // will apply it (`matches` returns ascending local indices).
            if let Some(wal) = &self.shared.wal {
                if let Some(mut writer) = wal.shard_writer(index) {
                    writer.drop_locals(&victims);
                }
            }
            dropped += inner.remove_locals(&victims, &self.shared.symbols);
        }
        dropped
    }

    /// Slow path: intern the key and register the series in the shard's
    /// postings.  Called with the shard write lock held; the symbol-table
    /// lock is the inner lock of the pair (query paths release it before
    /// touching any shard).
    fn create_series(
        &self,
        inner: &mut ShardInner,
        shard: usize,
        key_hash: u64,
        name: &str,
        labels: &Labels,
    ) -> u32 {
        // First sight of a series key: interning, postings registration and
        // the series record itself all allocate, by design, under the shard
        // write lock the caller holds.
        #[cfg(lock_audit)]
        let _allow = parking_lot::audit::allow_alloc();
        let mut symbols = self.shared.symbols.write();
        let (name_sym, name_arc) = symbols.intern_acquire(name);
        let mut label_syms = Vec::with_capacity(labels.len());
        let mut label_arcs = Vec::with_capacity(labels.len());
        for (k, v) in labels.iter() {
            let (key_sym, key_arc) = symbols.intern_acquire(k);
            let (value_sym, value_arc) = symbols.intern_acquire(v);
            label_syms.push((key_sym, value_sym));
            label_arcs.push((key_arc, value_arc));
        }
        drop(symbols);

        let id = SeriesId(self.shared.next_id.fetch_add(1, Ordering::Relaxed));
        if let Some(wal) = &self.shared.wal {
            if let Some(mut writer) = wal.shard_writer(shard) {
                writer.series(id.0, name_sym, &label_syms);
            }
        }
        // teemon-verify: allow(no-unwrap): invariant — u32 handles cap a shard at 2^32 series, unreachable in memory
        let local = u32::try_from(inner.series.len()).expect("fewer than 2^32 series per shard");
        inner.postings.register(local, name_sym, &label_syms);
        inner.key_index.entry(key_hash).or_default().push(local);
        inner.series.push(MemSeries {
            id,
            name: name_arc,
            name_sym,
            labels: label_arcs.into(),
            label_syms: label_syms.into_boxed_slice(),
            sealed: Vec::new(),
            head: Vec::with_capacity(self.config.chunk_size.max(1)),
            ever_appended: false,
        });
        local
    }

    /// Number of live series, folded from the shards in O(shards).  (Evicted
    /// and dropped series no longer count; the total ever created is the
    /// upper bound of [`SeriesId`] values.)
    pub fn series_count(&self) -> usize {
        self.shared.shards.iter().map(|s| s.read().series.len()).sum()
    }

    /// Number of distinct interned strings (metric names, label keys, label
    /// values).
    pub fn symbol_count(&self) -> usize {
        self.shared.symbols.read().len()
    }

    /// Number of series per lock shard — a diagnostic for how evenly the
    /// series-key hash spreads ingest load.
    pub fn shard_series_counts(&self) -> [usize; SHARD_COUNT] {
        std::array::from_fn(|i| self.shared.shard(i).read().series.len())
    }

    /// Storage statistics, folded from the per-shard aggregates in O(shards).
    pub fn stats(&self) -> StorageStats {
        let mut stats = StorageStats::default();
        for shard in &self.shared.shards {
            let inner = shard.read();
            stats.series += inner.series.len() as u64;
            stats.samples += inner.samples;
            stats.chunks += inner.chunks;
            stats.rejected_samples += inner.rejected;
            stats.resident_bytes += inner.bytes;
            stats.index_bytes += inner.postings.bytes() as u64;
        }
        stats.wal_failed_shards =
            self.shared.wal.as_ref().map(|wal| wal.failed_shard_count()).unwrap_or(0);
        // No shard lock is held here, so taking the symbol lock respects the
        // shard-then-symbols lock order.
        let symbols = self.shared.symbols.read();
        stats.symbols = symbols.len() as u64;
        stats.symbol_bytes = symbols.bytes();
        stats
    }

    /// Compiles `selector` once against the symbol table.  The symbol lock is
    /// released before any shard lock is taken (lock order: shard, then
    /// symbols).
    fn plan(&self, selector: &Selector) -> SelectorPlan {
        let symbols = self.shared.symbols.read();
        SelectorPlan::compile(selector, &symbols)
    }

    /// Runs `f` over every series matching `selector`, shard by shard, and
    /// returns the collected results in series-creation order.
    fn for_matching<T>(&self, selector: &Selector, f: impl Fn(&MemSeries) -> Option<T>) -> Vec<T> {
        let plan = self.plan(selector);
        if matches!(plan, SelectorPlan::Nothing) {
            return Vec::new();
        }
        let mut out: Vec<(SeriesId, T)> = Vec::new();
        for shard in &self.shared.shards {
            let inner = shard.read();
            for local in inner.matches(&plan) {
                let series = inner.series_at(local);
                if let Some(value) = f(series) {
                    out.push((series.id, value));
                }
            }
        }
        out.sort_unstable_by_key(|(id, _)| *id);
        out.into_iter().map(|(_, value)| value).collect()
    }

    /// Zero-copy selection: a [`SeriesSnapshot`] for every series matching
    /// `selector`, in creation order.  Sealed chunks are shared, not cloned;
    /// only the open head chunk of each series is copied.
    pub fn select(&self, selector: &Selector) -> Vec<SeriesSnapshot> {
        self.for_matching(selector, |series| Some(series.snapshot()))
    }

    /// Instant query: the newest sample at or before `at_ms` for every
    /// matching series.
    pub fn query_instant(&self, selector: &Selector, at_ms: u64) -> Vec<QueryResult> {
        self.for_matching(selector, |series| {
            series.at(at_ms).map(|sample| QueryResult {
                name: series.name.to_string(),
                labels: materialise_labels(&series.labels),
                points: vec![(sample.timestamp_ms, sample.value)],
            })
        })
    }

    /// Range query: all samples in `[start_ms, end_ms]` for every matching
    /// series.
    pub fn query_range(&self, selector: &Selector, start_ms: u64, end_ms: u64) -> Vec<QueryResult> {
        self.for_matching(selector, |series| {
            let points = series.points_in(start_ms, end_ms);
            if points.is_empty() {
                return None;
            }
            Some(QueryResult {
                name: series.name.to_string(),
                labels: materialise_labels(&series.labels),
                points,
            })
        })
    }

    /// The newest timestamp across every series, folded from the per-shard
    /// maxima in O(shards).
    pub fn newest_timestamp(&self) -> Option<u64> {
        self.shared.shards.iter().filter_map(|s| s.read().max_ts).max()
    }

    /// The oldest retained timestamp across every series (used by query
    /// consumers to clamp open-ended ranges), folded from the per-shard
    /// minima in O(shards).
    pub fn oldest_timestamp(&self) -> Option<u64> {
        self.shared.shards.iter().filter_map(|s| s.read().min_ts).min()
    }

    /// Applies the retention policy relative to the newest stored timestamp.
    /// Returns the number of samples dropped.
    ///
    /// A series whose every chunk ages out is **evicted** — its key leaves
    /// the index and the shard bumps its generation, so cached
    /// [`SeriesHandle`]s into that shard become stale (see [`SeriesHandle`]).
    /// A target that stops exporting a metric therefore stops costing index
    /// space one retention window later, instead of leaking a dead series
    /// forever.
    pub fn apply_retention(&self) -> usize {
        let Some(newest) = self.newest_timestamp() else { return 0 };
        let cutoff = newest.saturating_sub(self.config.retention_ms);
        let mut dropped_total = 0;
        for (index, shard) in self.shared.shards.iter().enumerate() {
            let mut inner = shard.write();
            // Retention is a cold maintenance path; evicting drained series
            // rebuilds the index, which allocates under the shard lock.
            #[cfg(lock_audit)]
            let _allow = parking_lot::audit::allow_alloc();
            // Stage the cutoff so replay re-runs the identical sweep.
            if let Some(wal) = &self.shared.wal {
                if let Some(mut writer) = wal.shard_writer(index) {
                    writer.retention(cutoff);
                }
            }
            dropped_total += inner.retention_pass(cutoff, &self.shared.symbols) as usize;
        }
        dropped_total
    }

    /// All distinct values of label `label` among series matching `selector`
    /// (used by dashboards to build filter drop-downs, e.g. the process filter
    /// of Figure 3).
    pub fn label_values(&self, selector: &Selector, label: &str) -> Vec<String> {
        let mut values =
            self.for_matching(selector, |series| series.label_value(label).map(str::to_string));
        values.sort();
        values.dedup();
        values
    }
}

impl MemSeries {
    /// The value of one label by key string.
    fn label_value(&self, name: &str) -> Option<&str> {
        crate::snapshot::label_value(&self.labels, name)
    }
}

fn materialise_labels(labels: &[(Arc<str>, Arc<str>)]) -> Labels {
    Labels::from_pairs(labels.iter().map(|(k, v)| (&**k, &**v)))
}

/// Replay-side symbol resolution.  A missing binding installs a unique
/// placeholder (`\u{1}` prefix keeps it out of any legal metric/label
/// namespace) and flags the caller via `holed`; series built from
/// placeholders are *doomed* — tolerated only if a later replayed drop
/// removes them (see [`TimeSeriesDb::replay_shard`]).
fn resolve_or_hole(table: &mut SymbolTable, sym: SymbolId, holed: &mut bool) -> Arc<str> {
    if let Some(s) = table.resolve(sym) {
        return Arc::clone(s);
    }
    *holed = true;
    let placeholder = format!("{REPLAY_HOLE_MARKER}wal-hole-{}", sym.as_u32());
    table.install_binding(sym.as_u32(), &placeholder);
    match table.resolve(sym) {
        Some(s) => Arc::clone(s),
        None => Arc::from(placeholder.as_str()),
    }
}

impl std::fmt::Debug for TimeSeriesDb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimeSeriesDb").field("stats", &self.stats()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(pairs: &[(&str, &str)]) -> Labels {
        Labels::from_pairs(pairs.iter().copied())
    }

    #[test]
    fn append_creates_series_lazily() {
        let db = TimeSeriesDb::new();
        assert!(db.append("sgx_nr_free_pages", &labels(&[("node", "n1")]), 1_000, 24_000.0));
        assert!(db.append("sgx_nr_free_pages", &labels(&[("node", "n1")]), 2_000, 23_500.0));
        assert!(db.append("sgx_nr_free_pages", &labels(&[("node", "n2")]), 1_000, 24_064.0));
        assert_eq!(db.series_count(), 2);
        let stats = db.stats();
        assert_eq!(stats.series, 2);
        assert_eq!(stats.samples, 3);
        assert_eq!(stats.chunks, 2);
        assert_eq!(stats.rejected_samples, 0);
        assert_eq!(db.oldest_timestamp(), Some(1_000));
        assert_eq!(db.newest_timestamp(), Some(2_000));
        assert_eq!(TimeSeriesDb::new().oldest_timestamp(), None);
    }

    #[test]
    fn symbols_are_interned_once() {
        let db = TimeSeriesDb::new();
        for node in ["n1", "n2", "n3"] {
            for syscall in ["read", "write"] {
                db.append(
                    "teemon_syscalls_total",
                    &labels(&[("node", node), ("syscall", syscall)]),
                    1_000,
                    1.0,
                );
            }
        }
        // 1 metric name + 2 label keys + 3 node values + 2 syscall values.
        assert_eq!(db.symbol_count(), 8);
        assert_eq!(db.series_count(), 6);
    }

    #[test]
    fn out_of_order_rejection_is_counted() {
        let db = TimeSeriesDb::new();
        db.append("m", &Labels::new(), 5_000, 1.0);
        assert!(!db.append("m", &Labels::new(), 1_000, 2.0));
        assert_eq!(db.stats().rejected_samples, 1);
    }

    #[test]
    fn instant_and_range_queries() {
        let db = TimeSeriesDb::new();
        for t in 0..10u64 {
            db.append("syscalls_total", &labels(&[("syscall", "read")]), t * 1000, t as f64);
            db.append(
                "syscalls_total",
                &labels(&[("syscall", "clock_gettime")]),
                t * 1000,
                (t * 100) as f64,
            );
        }
        let selector = Selector::metric("syscalls_total");
        let instant = db.query_instant(&selector, 4_500);
        assert_eq!(instant.len(), 2);
        assert!(instant.iter().all(|r| r.points[0].0 == 4_000));

        let only_read = Selector::metric("syscalls_total").with_label("syscall", "read");
        let range = db.query_range(&only_read, 2_000, 5_000);
        assert_eq!(range.len(), 1);
        assert_eq!(range[0].points.len(), 4);
        assert!(db.query_range(&Selector::metric("missing"), 0, u64::MAX).is_empty());
    }

    #[test]
    fn results_come_back_in_creation_order() {
        let db = TimeSeriesDb::new();
        let names: Vec<String> = (0..40).map(|i| format!("node-{i:02}")).collect();
        for (i, node) in names.iter().enumerate() {
            db.append("up", &labels(&[("node", node)]), 1_000 + i as u64, 1.0);
        }
        let results = db.query_instant(&Selector::metric("up"), u64::MAX);
        let got: Vec<&str> = results.iter().map(|r| r.labels.get("node").unwrap()).collect();
        assert_eq!(got, names.iter().map(String::as_str).collect::<Vec<_>>());
        let snaps = db.select(&Selector::metric("up"));
        assert!(snaps.windows(2).all(|w| w[0].series_id() < w[1].series_id()));
    }

    #[test]
    fn inverted_index_answers_matchers() {
        let db = TimeSeriesDb::new();
        for node in ["n1", "n2"] {
            for syscall in ["read", "write", "futex"] {
                db.append(
                    "teemon_syscalls_total",
                    &labels(&[("node", node), ("syscall", syscall)]),
                    1_000,
                    1.0,
                );
            }
            db.append("sgx_nr_free_pages", &labels(&[("node", node)]), 1_000, 24_000.0);
        }
        // Equality postings.
        let eq = Selector::metric("teemon_syscalls_total").with_label("syscall", "read");
        assert_eq!(db.select(&eq).len(), 2);
        // Existence: only syscall series carry the label.
        let exists = Selector::all().with_label_present("syscall");
        assert_eq!(db.select(&exists).len(), 6);
        // Not-equals: label must exist and differ.
        let neq = Selector::all().without_label_value("syscall", "read");
        assert_eq!(db.select(&neq).len(), 4);
        // Not-equals against a value the db never saw degenerates to exists.
        let neq_unseen = Selector::all().without_label_value("syscall", "unseen");
        assert_eq!(db.select(&neq_unseen).len(), 6);
        // A never-interned name or label short-circuits to nothing.
        assert!(db.select(&Selector::metric("missing")).is_empty());
        assert!(db.select(&Selector::all().with_label("node", "n3")).is_empty());
        assert!(db.select(&Selector::all().with_label_present("pod")).is_empty());
    }

    #[test]
    fn snapshots_share_sealed_chunks() {
        let db = TimeSeriesDb::with_config(TsdbConfig {
            chunk_size: 4,
            retention_ms: u64::MAX,
            raw_chunks: false,
        });
        for t in 0..10u64 {
            db.append("m", &Labels::new(), t * 1000, t as f64);
        }
        let a = &db.select(&Selector::metric("m"))[0];
        let b = &db.select(&Selector::metric("m"))[0];
        assert_eq!(a.len(), 10);
        assert_eq!(a.chunk_count(), 3, "two sealed chunks plus the head copy");
        assert_eq!(a.at(3_500).unwrap().value, 3.0);
        assert_eq!(a.points_in(2_000, 5_000).len(), 4);
        let collected: Vec<u64> = a.cursor(2_000, 5_000).map(|s| s.timestamp_ms).collect();
        assert_eq!(collected, vec![2_000, 3_000, 4_000, 5_000]);
        // Snapshots taken before later appends stay frozen.
        db.append("m", &Labels::new(), 20_000, 99.0);
        assert_eq!(a.len(), 10);
        assert_eq!(b.last_timestamp(), Some(9_000));
    }

    #[test]
    fn retention_respects_window() {
        let db = TimeSeriesDb::with_config(TsdbConfig {
            chunk_size: 10,
            retention_ms: 5_000,
            raw_chunks: false,
        });
        for t in 0..100u64 {
            db.append("m", &Labels::new(), t * 1000, t as f64);
        }
        let dropped = db.apply_retention();
        assert!(dropped > 50, "dropped {dropped}");
        // Recent data must survive.
        let recent = db.query_range(&Selector::metric("m"), 95_000, 99_000);
        assert_eq!(recent[0].points.len(), 5);
        // The per-shard aggregates track the drop.
        let stats = db.stats();
        assert_eq!(stats.samples, 100 - dropped as u64);
        assert_eq!(
            db.oldest_timestamp(),
            db.query_range(&Selector::metric("m"), 0, u64::MAX)[0].points.first().map(|(t, _)| *t)
        );
    }

    #[test]
    fn compressed_and_raw_storage_answer_identically() {
        let compressed = TimeSeriesDb::with_config(TsdbConfig {
            chunk_size: 16,
            retention_ms: u64::MAX,
            raw_chunks: false,
        });
        let raw = TimeSeriesDb::with_config(TsdbConfig {
            chunk_size: 16,
            retention_ms: u64::MAX,
            raw_chunks: true,
        });
        for t in 0..100u64 {
            for db in [&compressed, &raw] {
                db.append("counter_total", &labels(&[("node", "n1")]), t * 5_000, (t * 40) as f64);
                db.append("gauge", &labels(&[("node", "n1")]), t * 5_000, (t as f64 * 0.37).sin());
            }
        }
        for selector in [Selector::metric("counter_total"), Selector::metric("gauge")] {
            let a = &compressed.select(&selector)[0];
            let b = &raw.select(&selector)[0];
            assert_eq!(a.points_in(0, u64::MAX), b.points_in(0, u64::MAX));
            assert_eq!(a.points_in(17_000, 333_000), b.points_in(17_000, 333_000));
            for at in [0, 4_999, 5_000, 123_456, u64::MAX] {
                assert_eq!(a.at(at), b.at(at), "at {at}");
            }
            assert_eq!(
                a.cursor(40_000, 200_000).collect::<Vec<_>>(),
                b.cursor(40_000, 200_000).collect::<Vec<_>>(),
            );
            assert_eq!(
                a.owned_cursor(0, u64::MAX).collect::<Vec<_>>(),
                a.samples().collect::<Vec<_>>(),
            );
            assert_eq!(a.last_sample(), b.last_sample());
        }
        // Identical logical contents, far fewer resident bytes.
        let (c, r) = (compressed.stats(), raw.stats());
        assert_eq!(c.samples, r.samples);
        assert_eq!((c.series, c.chunks), (r.series, r.chunks));
        assert_eq!(r.resident_bytes, r.samples * SAMPLE_BYTES as u64);
        assert!(
            c.resident_bytes * 2 < r.resident_bytes,
            "compression saved too little: {} vs {}",
            c.resident_bytes,
            r.resident_bytes
        );
        assert!(c.bytes_per_sample() < 8.0, "{}", c.bytes_per_sample());
        assert_eq!(StorageStats::default().bytes_per_sample(), 0.0);
    }

    #[test]
    fn resident_bytes_track_retention() {
        let db = TimeSeriesDb::with_config(TsdbConfig {
            chunk_size: 10,
            retention_ms: 20_000,
            raw_chunks: false,
        });
        for t in 0..200u64 {
            db.append("m", &Labels::new(), t * 1_000, t as f64);
        }
        let before = db.stats();
        assert!(before.resident_bytes > 0);
        let dropped = db.apply_retention();
        assert!(dropped > 0);
        let after = db.stats();
        assert!(after.resident_bytes < before.resident_bytes);
        assert_eq!(after.samples, before.samples - dropped as u64);
        // The estimate stays consistent with what snapshots report.
        let snap_bytes: u64 =
            db.select(&Selector::all()).iter().map(|s| s.resident_bytes() as u64).sum();
        assert_eq!(after.resident_bytes, snap_bytes);
    }

    #[test]
    fn label_values_lists_distinct_values() {
        let db = TimeSeriesDb::new();
        for (proc_name, value) in [("redis-server", 1.0), ("nginx", 2.0), ("redis-server", 3.0)] {
            let ts = db.newest_timestamp().unwrap_or(0) + 1000;
            db.append("proc_cpu", &labels(&[("process", proc_name)]), ts, value);
        }
        let values = db.label_values(&Selector::metric("proc_cpu"), "process");
        assert_eq!(values, vec!["nginx", "redis-server"]);
        assert!(db.label_values(&Selector::metric("proc_cpu"), "missing").is_empty());
    }

    #[test]
    fn clones_share_storage() {
        let db = TimeSeriesDb::new();
        let clone = db.clone();
        clone.append("m", &Labels::new(), 1, 1.0);
        assert_eq!(db.series_count(), 1);
    }

    #[test]
    fn handles_resolve_once_and_batch_append() {
        let db = TimeSeriesDb::new();
        let keys: Vec<(String, Labels)> = (0..64)
            .map(|i| (format!("metric_{}", i % 4), labels(&[("idx", &format!("{i}"))])))
            .collect();
        let handles: Vec<_> = keys.iter().map(|(n, l)| db.resolve(n, l)).collect();
        assert_eq!(db.series_count(), 64, "resolve creates series on first use");
        // Re-resolving returns the same handle.
        for ((n, l), h) in keys.iter().zip(&handles) {
            assert_eq!(db.resolve(n, l), *h);
            assert!(db.handle_live(*h));
        }

        let batch: Vec<(SeriesHandle, u64, f64)> =
            handles.iter().enumerate().map(|(i, &h)| (h, 1_000, i as f64)).collect();
        let outcome = db.append_batch(&batch);
        assert_eq!(outcome.appended, 64);
        assert_eq!(outcome.rejected, 0);
        assert!(outcome.stale.is_empty());

        // Batched contents equal per-sample contents.
        let other = TimeSeriesDb::new();
        for (i, (n, l)) in keys.iter().enumerate() {
            other.append(n, l, 1_000, i as f64);
        }
        assert_eq!(db.stats(), other.stats());
        let (a, b) = (db.select(&Selector::all()), other.select(&Selector::all()));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name(), y.name());
            assert_eq!(x.to_labels(), y.to_labels());
            assert_eq!(x.points_in(0, u64::MAX), y.points_in(0, u64::MAX));
        }
    }

    #[test]
    fn batch_rejections_and_duplicate_handles_match_per_sample_semantics() {
        let db = TimeSeriesDb::new();
        let l = labels(&[("node", "n1")]);
        let h = db.resolve("m", &l);
        // In-order, duplicate-timestamp and out-of-order samples for the same
        // handle within one batch behave exactly like sequential appends.
        let outcome =
            db.append_batch(&[(h, 1_000, 1.0), (h, 1_000, 2.0), (h, 500, 3.0), (h, 2_000, 4.0)]);
        assert_eq!(outcome.appended, 3);
        assert_eq!(outcome.rejected, 1);
        assert_eq!(db.stats().rejected_samples, 1);
        let points = db.query_range(&Selector::metric("m"), 0, u64::MAX);
        assert_eq!(points[0].points, vec![(1_000, 1.0), (1_000, 2.0), (2_000, 4.0)]);
        assert_eq!(db.append_handle(h, 2_500, 5.0), HandleAppend::Appended);
        assert_eq!(db.append_handle(h, 100, 0.0), HandleAppend::Rejected);
    }

    #[test]
    fn drop_series_invalidates_handles_and_index() {
        let db = TimeSeriesDb::new();
        let keep = labels(&[("node", "n1")]);
        let drop = labels(&[("node", "n2")]);
        let h_keep = db.resolve("m", &keep);
        let h_drop = db.resolve("m", &drop);
        db.append_handle(h_keep, 1_000, 1.0);
        db.append_handle(h_drop, 1_000, 2.0);

        assert_eq!(db.drop_series(&Selector::metric("m").with_label("node", "n2")), 1);
        assert_eq!(db.series_count(), 1);
        assert!(db.select(&Selector::all().with_label("node", "n2")).is_empty());
        let stats = db.stats();
        assert_eq!((stats.series, stats.samples, stats.chunks), (1, 1, 1));

        // Both handles lived in some shard; any handle into a rebuilt shard
        // is stale now — appending through it must never hit another series.
        let generations = db.shard_generations();
        for (h, key) in [(h_keep, &keep), (h_drop, &drop)] {
            if db.handle_live_under(h, &generations) {
                assert_eq!(db.append_handle(h, 2_000, 9.0), HandleAppend::Appended);
            } else {
                assert!(!db.handle_live(h));
                assert_eq!(db.append_handle(h, 2_000, 9.0), HandleAppend::Stale);
                // Re-resolving repairs the fast lane.
                let fresh = db.resolve("m", key);
                assert_eq!(db.append_handle(fresh, 2_000, 9.0), HandleAppend::Appended);
            }
        }
        // Nothing about n2's old data leaked into n1.
        let n1 = db.query_range(&Selector::metric("m").with_label("node", "n1"), 0, u64::MAX);
        assert_eq!(n1[0].points.first(), Some(&(1_000, 1.0)));
        assert_eq!(db.drop_series(&Selector::metric("missing")), 0);
    }

    #[test]
    fn batch_reports_stale_handles_mid_round() {
        let db = TimeSeriesDb::new();
        let a = db.resolve("m", &labels(&[("node", "n1")]));
        let b = db.resolve("gone", &labels(&[("node", "n1")]));
        db.append_batch(&[(a, 1_000, 1.0), (b, 1_000, 1.0)]);
        // The drop lands between two rounds of a cached scraper: the cache
        // still holds handles resolved under the old generation.
        db.drop_series(&Selector::metric("gone"));
        let outcome = db.append_batch(&[(a, 2_000, 2.0), (b, 2_000, 2.0)]);
        let fresh_appends = outcome.appended;
        // Every input either appended or came back stale — none vanished and
        // none was misrouted into a surviving series.
        assert_eq!(fresh_appends as usize + outcome.stale.len(), 2);
        for &idx in &outcome.stale {
            let (_, ts, v) = [(a, 2_000u64, 2.0f64), (b, 2_000, 2.0)][idx];
            let key = if idx == 0 { "m" } else { "gone" };
            let fresh = db.resolve(key, &labels(&[("node", "n1")]));
            assert_eq!(db.append_handle(fresh, ts, v), HandleAppend::Appended);
        }
        let m = db.query_range(&Selector::metric("m"), 0, u64::MAX);
        assert_eq!(m[0].points, vec![(1_000, 1.0), (2_000, 2.0)], "no lost samples for m");
        let gone = db.query_range(&Selector::metric("gone"), 0, u64::MAX);
        assert_eq!(gone[0].points, vec![(2_000, 2.0)], "re-resolved series got the new sample");
    }

    #[test]
    fn retention_evicts_fully_aged_series() {
        let db = TimeSeriesDb::with_config(TsdbConfig {
            chunk_size: 4,
            retention_ms: 10_000,
            raw_chunks: false,
        });
        let dead = labels(&[("node", "old")]);
        let live = labels(&[("node", "new")]);
        let dead_handle = db.resolve("m", &dead);
        for t in 0..8u64 {
            db.append_handle(dead_handle, t * 1_000, 1.0);
        }
        for t in 0..40u64 {
            db.append("m", &live, t * 1_000, 2.0);
        }
        let dropped = db.apply_retention();
        assert!(dropped > 0);
        // The dead series aged out entirely: evicted from storage and index.
        assert_eq!(db.series_count(), 1);
        assert!(db.select(&Selector::all().with_label("node", "old")).is_empty());
        assert_eq!(db.stats().series, 1);
        assert_eq!(db.append_handle(dead_handle, 50_000, 1.0), HandleAppend::Stale);
        // The survivor still answers, and its creation-order id is retained.
        let results = db.query_range(&Selector::metric("m"), 0, u64::MAX);
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].labels.get("node"), Some("new"));
        // A re-resolved key gets a fresh series (new id, empty history).
        let reborn = db.resolve("m", &dead);
        assert_eq!(db.append_handle(reborn, 60_000, 3.0), HandleAppend::Appended);
        assert_eq!(db.series_count(), 2);
    }

    #[test]
    fn retention_spares_resolved_but_never_appended_series() {
        let db = TimeSeriesDb::with_config(TsdbConfig {
            chunk_size: 4,
            retention_ms: 5_000,
            raw_chunks: false,
        });
        db.append("old", &Labels::new(), 1_000, 1.0);
        db.append("old", &Labels::new(), 100_000, 1.0);
        // Resolved (e.g. by a scrape cache mid-build) but not yet written.
        let pending = db.resolve("pending", &labels(&[("node", "n1")]));
        db.apply_retention();
        // The empty-but-new series survives and its handle stays live — a
        // maintenance pass between resolve and first append must not
        // invalidate every handle in the shard.
        assert!(db.handle_live(pending));
        assert_eq!(db.append_handle(pending, 100_000, 2.0), HandleAppend::Appended);
        assert_eq!(db.series_count(), 2);
    }
}
