//! The time-series database: labelled series, append, retention.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use teemon_metrics::Labels;

use crate::query::{QueryResult, Selector};
use crate::series::{Sample, Series, SeriesId};

/// Static configuration of the database.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TsdbConfig {
    /// Samples per chunk.
    pub chunk_size: usize,
    /// Retention window in milliseconds; samples older than
    /// `newest - retention_ms` may be dropped by [`TimeSeriesDb::apply_retention`].
    pub retention_ms: u64,
}

impl Default for TsdbConfig {
    fn default() -> Self {
        Self { chunk_size: 120, retention_ms: 24 * 60 * 60 * 1000 }
    }
}

/// Storage statistics (what the aggregator's own `/metrics` would expose).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StorageStats {
    /// Number of distinct series.
    pub series: u64,
    /// Total stored samples.
    pub samples: u64,
    /// Total chunks.
    pub chunks: u64,
    /// Samples rejected because they were out of order.
    pub rejected_samples: u64,
}

#[derive(Default)]
struct DbInner {
    series: Vec<Series>,
    index: HashMap<(String, Labels), SeriesId>,
    rejected: u64,
}

/// A pull-based, labelled time-series database.  Clones share storage.
#[derive(Clone, Default)]
pub struct TimeSeriesDb {
    config: TsdbConfig,
    inner: Arc<RwLock<DbInner>>,
}

impl TimeSeriesDb {
    /// Creates a database with default configuration.
    pub fn new() -> Self {
        Self::with_config(TsdbConfig::default())
    }

    /// Creates a database with explicit configuration.
    pub fn with_config(config: TsdbConfig) -> Self {
        Self { config, inner: Arc::new(RwLock::new(DbInner::default())) }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &TsdbConfig {
        &self.config
    }

    /// Appends one sample to the series identified by `name` + `labels`,
    /// creating the series on first use.  Returns `false` when the sample was
    /// rejected (out of order).
    pub fn append(&self, name: &str, labels: &Labels, timestamp_ms: u64, value: f64) -> bool {
        let mut inner = self.inner.write();
        let id = match inner.index.get(&(name.to_string(), labels.clone())) {
            Some(id) => *id,
            None => {
                let id = SeriesId(inner.series.len() as u64);
                inner.series.push(Series::new(
                    name.to_string(),
                    labels.clone(),
                    self.config.chunk_size,
                ));
                inner.index.insert((name.to_string(), labels.clone()), id);
                id
            }
        };
        let accepted = inner.series[id.0 as usize].append(Sample { timestamp_ms, value });
        if !accepted {
            inner.rejected += 1;
        }
        accepted
    }

    /// Number of distinct series.
    pub fn series_count(&self) -> usize {
        self.inner.read().series.len()
    }

    /// Storage statistics.
    pub fn stats(&self) -> StorageStats {
        let inner = self.inner.read();
        StorageStats {
            series: inner.series.len() as u64,
            samples: inner.series.iter().map(|s| s.len() as u64).sum(),
            chunks: inner.series.iter().map(|s| s.chunk_count() as u64).sum(),
            rejected_samples: inner.rejected,
        }
    }

    /// Returns clones of every series matching `selector`.
    pub fn select(&self, selector: &Selector) -> Vec<Series> {
        self.inner
            .read()
            .series
            .iter()
            .filter(|s| selector.matches(&s.name, &s.labels))
            .cloned()
            .collect()
    }

    /// Instant query: the newest sample at or before `at_ms` for every
    /// matching series.
    pub fn query_instant(&self, selector: &Selector, at_ms: u64) -> Vec<QueryResult> {
        self.inner
            .read()
            .series
            .iter()
            .filter(|s| selector.matches(&s.name, &s.labels))
            .filter_map(|s| {
                s.at(at_ms).map(|sample| QueryResult {
                    name: s.name.clone(),
                    labels: s.labels.clone(),
                    points: vec![(sample.timestamp_ms, sample.value)],
                })
            })
            .collect()
    }

    /// Range query: all samples in `[start_ms, end_ms]` for every matching
    /// series.
    pub fn query_range(&self, selector: &Selector, start_ms: u64, end_ms: u64) -> Vec<QueryResult> {
        self.inner
            .read()
            .series
            .iter()
            .filter(|s| selector.matches(&s.name, &s.labels))
            .map(|s| QueryResult {
                name: s.name.clone(),
                labels: s.labels.clone(),
                points: s
                    .range(start_ms, end_ms)
                    .iter()
                    .map(|p| (p.timestamp_ms, p.value))
                    .collect(),
            })
            .filter(|r| !r.points.is_empty())
            .collect()
    }

    /// The newest timestamp across every series.
    pub fn newest_timestamp(&self) -> Option<u64> {
        self.inner.read().series.iter().filter_map(|s| s.last_timestamp()).max()
    }

    /// The oldest retained timestamp across every series (used by query
    /// consumers to clamp open-ended ranges to the data actually stored).
    pub fn oldest_timestamp(&self) -> Option<u64> {
        self.inner.read().series.iter().filter_map(|s| s.first_timestamp()).min()
    }

    /// Applies the retention policy relative to the newest stored timestamp.
    /// Returns the number of samples dropped.
    pub fn apply_retention(&self) -> usize {
        let Some(newest) = self.newest_timestamp() else { return 0 };
        let cutoff = newest.saturating_sub(self.config.retention_ms);
        let mut inner = self.inner.write();
        inner.series.iter_mut().map(|s| s.drop_before(cutoff)).sum()
    }

    /// All distinct values of label `label` among series matching `selector`
    /// (used by dashboards to build filter drop-downs, e.g. the process filter
    /// of Figure 3).
    pub fn label_values(&self, selector: &Selector, label: &str) -> Vec<String> {
        let mut values: Vec<String> = self
            .inner
            .read()
            .series
            .iter()
            .filter(|s| selector.matches(&s.name, &s.labels))
            .filter_map(|s| s.labels.get(label).map(str::to_string))
            .collect();
        values.sort();
        values.dedup();
        values
    }
}

impl std::fmt::Debug for TimeSeriesDb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimeSeriesDb").field("stats", &self.stats()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(pairs: &[(&str, &str)]) -> Labels {
        Labels::from_pairs(pairs.iter().copied())
    }

    #[test]
    fn append_creates_series_lazily() {
        let db = TimeSeriesDb::new();
        assert!(db.append("sgx_nr_free_pages", &labels(&[("node", "n1")]), 1_000, 24_000.0));
        assert!(db.append("sgx_nr_free_pages", &labels(&[("node", "n1")]), 2_000, 23_500.0));
        assert!(db.append("sgx_nr_free_pages", &labels(&[("node", "n2")]), 1_000, 24_064.0));
        assert_eq!(db.series_count(), 2);
        let stats = db.stats();
        assert_eq!(stats.samples, 3);
        assert_eq!(stats.rejected_samples, 0);
        assert_eq!(db.oldest_timestamp(), Some(1_000));
        assert_eq!(db.newest_timestamp(), Some(2_000));
        assert_eq!(TimeSeriesDb::new().oldest_timestamp(), None);
    }

    #[test]
    fn out_of_order_rejection_is_counted() {
        let db = TimeSeriesDb::new();
        db.append("m", &Labels::new(), 5_000, 1.0);
        assert!(!db.append("m", &Labels::new(), 1_000, 2.0));
        assert_eq!(db.stats().rejected_samples, 1);
    }

    #[test]
    fn instant_and_range_queries() {
        let db = TimeSeriesDb::new();
        for t in 0..10u64 {
            db.append("syscalls_total", &labels(&[("syscall", "read")]), t * 1000, t as f64);
            db.append(
                "syscalls_total",
                &labels(&[("syscall", "clock_gettime")]),
                t * 1000,
                (t * 100) as f64,
            );
        }
        let selector = Selector::metric("syscalls_total");
        let instant = db.query_instant(&selector, 4_500);
        assert_eq!(instant.len(), 2);
        assert!(instant.iter().all(|r| r.points[0].0 == 4_000));

        let only_read = Selector::metric("syscalls_total").with_label("syscall", "read");
        let range = db.query_range(&only_read, 2_000, 5_000);
        assert_eq!(range.len(), 1);
        assert_eq!(range[0].points.len(), 4);
        assert!(db.query_range(&Selector::metric("missing"), 0, u64::MAX).is_empty());
    }

    #[test]
    fn retention_respects_window() {
        let db = TimeSeriesDb::with_config(TsdbConfig { chunk_size: 10, retention_ms: 5_000 });
        for t in 0..100u64 {
            db.append("m", &Labels::new(), t * 1000, t as f64);
        }
        let dropped = db.apply_retention();
        assert!(dropped > 50, "dropped {dropped}");
        // Recent data must survive.
        let recent = db.query_range(&Selector::metric("m"), 95_000, 99_000);
        assert_eq!(recent[0].points.len(), 5);
    }

    #[test]
    fn label_values_lists_distinct_values() {
        let db = TimeSeriesDb::new();
        for (proc_name, value) in [("redis-server", 1.0), ("nginx", 2.0), ("redis-server", 3.0)] {
            let ts = db.newest_timestamp().unwrap_or(0) + 1000;
            db.append("proc_cpu", &labels(&[("process", proc_name)]), ts, value);
        }
        let values = db.label_values(&Selector::metric("proc_cpu"), "process");
        assert_eq!(values, vec!["nginx", "redis-server"]);
        assert!(db.label_values(&Selector::metric("proc_cpu"), "missing").is_empty());
    }

    #[test]
    fn clones_share_storage() {
        let db = TimeSeriesDb::new();
        let clone = db.clone();
        clone.append("m", &Labels::new(), 1, 1.0);
        assert_eq!(db.series_count(), 1);
    }
}
