//! A single time series: one metric name + label set and its samples.

use serde::{Deserialize, Serialize};
use teemon_metrics::Labels;

/// Identifier of a series inside one [`crate::TimeSeriesDb`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SeriesId(pub(crate) u64);

impl SeriesId {
    /// The raw id value.
    pub fn as_u64(&self) -> u64 {
        self.0
    }
}

/// One timestamped sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Timestamp in milliseconds since the simulation epoch.
    pub timestamp_ms: u64,
    /// Sample value.
    pub value: f64,
}

/// Samples are grouped into fixed-size chunks for retrieval and retention, the
/// way Prometheus groups samples into head/immutable chunks.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub(crate) struct Chunk {
    pub(crate) samples: Vec<Sample>,
}

impl Chunk {
    pub(crate) fn start(&self) -> Option<u64> {
        self.samples.first().map(|s| s.timestamp_ms)
    }

    pub(crate) fn end(&self) -> Option<u64> {
        self.samples.last().map(|s| s.timestamp_ms)
    }
}

/// The newest sample at or before `at_ms` in a timestamp-ordered slice
/// (binary search; ties resolve to the last stored sample).
pub(crate) fn sample_at(samples: &[Sample], at_ms: u64) -> Option<Sample> {
    let idx = samples.partition_point(|s| s.timestamp_ms <= at_ms);
    if idx == 0 {
        None
    } else {
        Some(samples[idx - 1])
    }
}

/// The newest sample at or before `at_ms` across time-ordered chunks: binary
/// search to the covering chunk, then binary search inside it.  Empty chunks
/// may only appear at the tail (the open head), which both partition
/// predicates treat as "after everything".
pub(crate) fn at_in_chunks<C: std::borrow::Borrow<Chunk>>(
    chunks: &[C],
    at_ms: u64,
) -> Option<Sample> {
    let idx = chunks.partition_point(|c| match c.borrow().start() {
        Some(start) => start <= at_ms,
        None => false,
    });
    if idx == 0 {
        None
    } else {
        sample_at(&chunks[idx - 1].borrow().samples, at_ms)
    }
}

/// Appends every sample in `[start_ms, end_ms]` to `out` (mapped through
/// `map`), binary-searching to the first overlapping chunk and pre-reserving
/// the exact chunk span instead of testing every chunk's bounds.
pub(crate) fn extend_range<C: std::borrow::Borrow<Chunk>, T>(
    chunks: &[C],
    start_ms: u64,
    end_ms: u64,
    out: &mut Vec<T>,
    map: impl Fn(Sample) -> T,
) {
    let lo = chunks.partition_point(|c| match c.borrow().end() {
        Some(end) => end < start_ms,
        None => false,
    });
    let hi = chunks.partition_point(|c| match c.borrow().start() {
        Some(start) => start <= end_ms,
        None => false,
    });
    if lo >= hi {
        return;
    }
    let overlapping = &chunks[lo..hi];
    out.reserve(overlapping.iter().map(|c| c.borrow().samples.len()).sum());
    for (i, chunk) in overlapping.iter().enumerate() {
        let samples = &chunk.borrow().samples;
        // Only the boundary chunks can straddle the range.
        let slice = if i == 0 || i + 1 == overlapping.len() {
            let a = samples.partition_point(|s| s.timestamp_ms < start_ms);
            let b = samples.partition_point(|s| s.timestamp_ms <= end_ms);
            &samples[a..b]
        } else {
            &samples[..]
        };
        out.extend(slice.iter().map(|s| map(*s)));
    }
}

/// A labelled time series with chunked, append-only sample storage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Metric name.
    pub name: String,
    /// Label set identifying the series.
    pub labels: Labels,
    pub(crate) chunks: Vec<Chunk>,
    pub(crate) chunk_size: usize,
}

impl Series {
    /// Creates an empty series.  `chunk_size` is clamped to at least one
    /// sample per chunk.
    pub fn new(name: String, labels: Labels, chunk_size: usize) -> Self {
        Self { name, labels, chunks: vec![Chunk::default()], chunk_size: chunk_size.max(1) }
    }

    /// Appends a sample; samples older than the newest stored timestamp are
    /// rejected (the pull model only ever moves forward in time).
    pub fn append(&mut self, sample: Sample) -> bool {
        if let Some(last) = self.last_timestamp() {
            if sample.timestamp_ms < last {
                return false;
            }
        }
        if self.chunks.last().map(|c| c.samples.len() >= self.chunk_size).unwrap_or(true) {
            self.chunks.push(Chunk::default());
        }
        self.chunks.last_mut().expect("chunk pushed above").samples.push(sample);
        true
    }

    /// Timestamp of the newest sample.
    pub fn last_timestamp(&self) -> Option<u64> {
        self.chunks.iter().rev().find_map(|c| c.end())
    }

    /// Timestamp of the oldest retained sample.
    pub fn first_timestamp(&self) -> Option<u64> {
        self.chunks.iter().find_map(|c| c.start())
    }

    /// The newest sample.
    pub fn last_sample(&self) -> Option<Sample> {
        self.chunks.iter().rev().find_map(|c| c.samples.last().copied())
    }

    /// Number of stored samples.
    pub fn len(&self) -> usize {
        self.chunks.iter().map(|c| c.samples.len()).sum()
    }

    /// `true` when the series holds no samples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of chunks currently held.
    pub fn chunk_count(&self) -> usize {
        self.chunks.iter().filter(|c| !c.samples.is_empty()).count()
    }

    /// Samples within `[start_ms, end_ms]` in chronological order.  Binary
    /// searches to the first overlapping chunk and pre-sizes the output, so
    /// the cost scales with the samples returned, not the samples stored.
    pub fn range(&self, start_ms: u64, end_ms: u64) -> Vec<Sample> {
        let mut out = Vec::new();
        extend_range(&self.chunks, start_ms, end_ms, &mut out, |s| s);
        out
    }

    /// The newest sample at or before `at_ms` (instant-query semantics).
    /// Chunks are time-ordered, so this binary searches to the covering chunk
    /// and then within it instead of flat-scanning every sample.
    pub fn at(&self, at_ms: u64) -> Option<Sample> {
        at_in_chunks(&self.chunks, at_ms)
    }

    /// Drops every chunk whose newest sample is older than `cutoff_ms`.
    /// Returns the number of samples dropped.
    pub fn drop_before(&mut self, cutoff_ms: u64) -> usize {
        let mut dropped = 0;
        self.chunks.retain(|chunk| match chunk.end() {
            Some(end) if end < cutoff_ms => {
                dropped += chunk.samples.len();
                false
            }
            _ => true,
        });
        if self.chunks.is_empty() {
            self.chunks.push(Chunk::default());
        }
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series() -> Series {
        Series::new("m".into(), Labels::new(), 4)
    }

    #[test]
    fn append_and_query_in_order() {
        let mut s = series();
        for i in 0..10u64 {
            assert!(s.append(Sample { timestamp_ms: i * 1000, value: i as f64 }));
        }
        assert_eq!(s.len(), 10);
        assert!(s.chunk_count() >= 3, "chunk size 4 should split 10 samples");
        assert_eq!(s.last_timestamp(), Some(9_000));
        assert_eq!(s.range(2_000, 5_000).len(), 4);
        assert_eq!(s.at(3_500).unwrap().value, 3.0);
        assert_eq!(s.at(0).unwrap().value, 0.0);
        assert!(s.range(20_000, 30_000).is_empty());
    }

    #[test]
    fn out_of_order_samples_rejected() {
        let mut s = series();
        assert!(s.append(Sample { timestamp_ms: 5_000, value: 1.0 }));
        assert!(!s.append(Sample { timestamp_ms: 4_000, value: 2.0 }));
        assert!(s.append(Sample { timestamp_ms: 5_000, value: 3.0 }), "equal timestamps allowed");
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn retention_drops_old_chunks() {
        let mut s = series();
        for i in 0..20u64 {
            s.append(Sample { timestamp_ms: i * 1000, value: i as f64 });
        }
        let dropped = s.drop_before(10_000);
        assert!(dropped >= 8, "dropped {dropped}");
        assert!(s.len() <= 12);
        assert!(s.range(0, 7_000).is_empty() || s.range(0, 7_000).len() <= 4);
        assert_eq!(s.last_timestamp(), Some(19_000));
    }

    #[test]
    fn empty_series_queries() {
        let s = series();
        assert!(s.is_empty());
        assert_eq!(s.last_sample(), None);
        assert_eq!(s.at(1_000), None);
        assert!(s.range(0, u64::MAX).is_empty());
    }
}
