//! A single time series: one metric name + label set and its samples.

use serde::{Deserialize, Serialize};
use teemon_metrics::Labels;

/// Identifier of a series inside one [`crate::TimeSeriesDb`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SeriesId(pub(crate) u64);

impl SeriesId {
    /// The raw id value.
    pub fn as_u64(&self) -> u64 {
        self.0
    }
}

/// One timestamped sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Timestamp in milliseconds since the simulation epoch.
    pub timestamp_ms: u64,
    /// Sample value.
    pub value: f64,
}

/// Samples are grouped into fixed-size chunks for retrieval and retention, the
/// way Prometheus groups samples into head/immutable chunks.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub(crate) struct Chunk {
    pub(crate) samples: Vec<Sample>,
}

impl Chunk {
    pub(crate) fn start(&self) -> Option<u64> {
        self.samples.first().map(|s| s.timestamp_ms)
    }

    pub(crate) fn end(&self) -> Option<u64> {
        self.samples.last().map(|s| s.timestamp_ms)
    }
}

/// A labelled time series with chunked, append-only sample storage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Metric name.
    pub name: String,
    /// Label set identifying the series.
    pub labels: Labels,
    pub(crate) chunks: Vec<Chunk>,
    pub(crate) chunk_size: usize,
}

impl Series {
    pub(crate) fn new(name: String, labels: Labels, chunk_size: usize) -> Self {
        Self { name, labels, chunks: vec![Chunk::default()], chunk_size: chunk_size.max(1) }
    }

    /// Appends a sample; samples older than the newest stored timestamp are
    /// rejected (the pull model only ever moves forward in time).
    pub fn append(&mut self, sample: Sample) -> bool {
        if let Some(last) = self.last_timestamp() {
            if sample.timestamp_ms < last {
                return false;
            }
        }
        if self.chunks.last().map(|c| c.samples.len() >= self.chunk_size).unwrap_or(true) {
            self.chunks.push(Chunk::default());
        }
        self.chunks.last_mut().expect("chunk pushed above").samples.push(sample);
        true
    }

    /// Timestamp of the newest sample.
    pub fn last_timestamp(&self) -> Option<u64> {
        self.chunks.iter().rev().find_map(|c| c.end())
    }

    /// Timestamp of the oldest retained sample.
    pub fn first_timestamp(&self) -> Option<u64> {
        self.chunks.iter().find_map(|c| c.start())
    }

    /// The newest sample.
    pub fn last_sample(&self) -> Option<Sample> {
        self.chunks.iter().rev().find_map(|c| c.samples.last().copied())
    }

    /// Number of stored samples.
    pub fn len(&self) -> usize {
        self.chunks.iter().map(|c| c.samples.len()).sum()
    }

    /// `true` when the series holds no samples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of chunks currently held.
    pub fn chunk_count(&self) -> usize {
        self.chunks.iter().filter(|c| !c.samples.is_empty()).count()
    }

    /// Samples within `[start_ms, end_ms]` in chronological order.
    pub fn range(&self, start_ms: u64, end_ms: u64) -> Vec<Sample> {
        let mut out = Vec::new();
        for chunk in &self.chunks {
            match (chunk.start(), chunk.end()) {
                (Some(s), Some(e)) if e >= start_ms && s <= end_ms => {
                    out.extend(
                        chunk
                            .samples
                            .iter()
                            .filter(|s| s.timestamp_ms >= start_ms && s.timestamp_ms <= end_ms)
                            .copied(),
                    );
                }
                _ => {}
            }
        }
        out
    }

    /// The newest sample at or before `at_ms` (instant-query semantics).
    pub fn at(&self, at_ms: u64) -> Option<Sample> {
        self.chunks
            .iter()
            .flat_map(|c| c.samples.iter())
            .rfind(|s| s.timestamp_ms <= at_ms)
            .copied()
    }

    /// Drops every chunk whose newest sample is older than `cutoff_ms`.
    /// Returns the number of samples dropped.
    pub fn drop_before(&mut self, cutoff_ms: u64) -> usize {
        let mut dropped = 0;
        self.chunks.retain(|chunk| match chunk.end() {
            Some(end) if end < cutoff_ms => {
                dropped += chunk.samples.len();
                false
            }
            _ => true,
        });
        if self.chunks.is_empty() {
            self.chunks.push(Chunk::default());
        }
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series() -> Series {
        Series::new("m".into(), Labels::new(), 4)
    }

    #[test]
    fn append_and_query_in_order() {
        let mut s = series();
        for i in 0..10u64 {
            assert!(s.append(Sample { timestamp_ms: i * 1000, value: i as f64 }));
        }
        assert_eq!(s.len(), 10);
        assert!(s.chunk_count() >= 3, "chunk size 4 should split 10 samples");
        assert_eq!(s.last_timestamp(), Some(9_000));
        assert_eq!(s.range(2_000, 5_000).len(), 4);
        assert_eq!(s.at(3_500).unwrap().value, 3.0);
        assert_eq!(s.at(0).unwrap().value, 0.0);
        assert!(s.range(20_000, 30_000).is_empty());
    }

    #[test]
    fn out_of_order_samples_rejected() {
        let mut s = series();
        assert!(s.append(Sample { timestamp_ms: 5_000, value: 1.0 }));
        assert!(!s.append(Sample { timestamp_ms: 4_000, value: 2.0 }));
        assert!(s.append(Sample { timestamp_ms: 5_000, value: 3.0 }), "equal timestamps allowed");
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn retention_drops_old_chunks() {
        let mut s = series();
        for i in 0..20u64 {
            s.append(Sample { timestamp_ms: i * 1000, value: i as f64 });
        }
        let dropped = s.drop_before(10_000);
        assert!(dropped >= 8, "dropped {dropped}");
        assert!(s.len() <= 12);
        assert!(s.range(0, 7_000).is_empty() || s.range(0, 7_000).len() <= 4);
        assert_eq!(s.last_timestamp(), Some(19_000));
    }

    #[test]
    fn empty_series_queries() {
        let s = series();
        assert!(s.is_empty());
        assert_eq!(s.last_sample(), None);
        assert_eq!(s.at(1_000), None);
        assert!(s.range(0, u64::MAX).is_empty());
    }
}
