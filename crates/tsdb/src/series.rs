//! A single time series: one metric name + label set and its samples.

use serde::{Deserialize, Serialize};
use teemon_metrics::Labels;

use crate::chunk_codec::{self, GorillaState};

/// Identifier of a series inside one [`crate::TimeSeriesDb`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SeriesId(pub(crate) u64);

impl SeriesId {
    /// The raw id value.
    pub fn as_u64(&self) -> u64 {
        self.0
    }
}

/// One timestamped sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Timestamp in milliseconds since the simulation epoch.
    pub timestamp_ms: u64,
    /// Sample value.
    pub value: f64,
}

/// In-memory size of one raw sample, used for the resident-bytes estimate in
/// [`crate::StorageStats`].
pub(crate) const SAMPLE_BYTES: usize = std::mem::size_of::<Sample>();

/// How a chunk stores its samples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) enum ChunkData {
    /// Plain samples: the open head chunk, and sealed chunks when compression
    /// is disabled (or the codec declined the input).
    Raw(Vec<Sample>),
    /// A sealed, Gorilla-compressed block (see [`crate::chunk_codec`]).
    Compressed(Vec<u8>),
}

/// Samples are grouped into chunks for retrieval and retention, the way
/// Prometheus groups samples into head/immutable chunks.  Every chunk carries
/// a `(start, end, count)` footer so time-based seeks (`at`, `points_in`,
/// cursors, retention) never touch — let alone decompress — the payload of a
/// chunk outside the queried range.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct Chunk {
    pub(crate) start_ms: u64,
    pub(crate) end_ms: u64,
    pub(crate) count: u32,
    pub(crate) data: ChunkData,
}

impl Default for Chunk {
    fn default() -> Self {
        Self::new_open()
    }
}

impl Chunk {
    /// An empty, appendable raw chunk.
    pub(crate) fn new_open() -> Self {
        Self { start_ms: 0, end_ms: 0, count: 0, data: ChunkData::Raw(Vec::new()) }
    }

    /// A raw chunk over `samples` (assumed time-ordered).
    pub(crate) fn from_samples(samples: Vec<Sample>) -> Self {
        Self {
            start_ms: samples.first().map(|s| s.timestamp_ms).unwrap_or(0),
            end_ms: samples.last().map(|s| s.timestamp_ms).unwrap_or(0),
            count: samples.len() as u32,
            data: ChunkData::Raw(samples),
        }
    }

    /// Seals `samples` into an immutable chunk, Gorilla-compressing the
    /// payload when `compress` is set (falling back to raw storage if the
    /// codec rejects the input, which ordered appends never produce).
    pub(crate) fn sealed(samples: Vec<Sample>, compress: bool) -> Self {
        if compress {
            if let Some(bytes) = chunk_codec::encode(&samples) {
                return Self {
                    start_ms: samples.first().map(|s| s.timestamp_ms).unwrap_or(0),
                    end_ms: samples.last().map(|s| s.timestamp_ms).unwrap_or(0),
                    count: samples.len() as u32,
                    data: ChunkData::Compressed(bytes),
                };
            }
        }
        Self::from_samples(samples)
    }

    /// Appends to an open (raw) chunk, maintaining the footer.
    pub(crate) fn push(&mut self, sample: Sample) {
        let ChunkData::Raw(samples) = &mut self.data else {
            unreachable!("appends only target the open raw chunk");
        };
        if samples.is_empty() {
            self.start_ms = sample.timestamp_ms;
        }
        self.end_ms = sample.timestamp_ms;
        self.count += 1;
        samples.push(sample);
    }

    /// Timestamp of the first sample, `None` when empty.
    pub(crate) fn start(&self) -> Option<u64> {
        (self.count > 0).then_some(self.start_ms)
    }

    /// Timestamp of the last sample, `None` when empty.
    pub(crate) fn end(&self) -> Option<u64> {
        (self.count > 0).then_some(self.end_ms)
    }

    /// Number of stored samples (from the footer; never decodes).
    pub(crate) fn len(&self) -> usize {
        self.count as usize
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Bytes held by the payload (raw samples or the compressed block); the
    /// basis of the engine's resident-bytes estimate.
    pub(crate) fn data_bytes(&self) -> usize {
        match &self.data {
            ChunkData::Raw(samples) => samples.len() * SAMPLE_BYTES,
            ChunkData::Compressed(bytes) => bytes.len(),
        }
    }

    /// The last sample (decodes the tail of a compressed chunk).
    pub(crate) fn last_sample(&self) -> Option<Sample> {
        if self.is_empty() {
            return None;
        }
        match &self.data {
            ChunkData::Raw(samples) => samples.last().copied(),
            ChunkData::Compressed(_) => self.iter_samples().last(),
        }
    }

    /// The newest sample at or before `at_ms`: binary search in a raw chunk,
    /// a bounded streaming scan (at most `count` decodes) in a compressed one.
    pub(crate) fn sample_at(&self, at_ms: u64) -> Option<Sample> {
        match &self.data {
            ChunkData::Raw(samples) => sample_at(samples, at_ms),
            ChunkData::Compressed(_) => {
                if self.is_empty() || self.start_ms > at_ms {
                    return None;
                }
                let mut best = None;
                for sample in self.iter_samples() {
                    if sample.timestamp_ms > at_ms {
                        break;
                    }
                    best = Some(sample);
                }
                best
            }
        }
    }

    /// Appends every sample in `[start_ms, end_ms]` to `out` through `map`.
    /// Raw chunks slice by binary search; compressed chunks stream-decode,
    /// skipping the filter when the footer proves full containment.
    pub(crate) fn extend_into<T>(
        &self,
        start_ms: u64,
        end_ms: u64,
        out: &mut Vec<T>,
        map: &impl Fn(Sample) -> T,
    ) {
        match &self.data {
            ChunkData::Raw(samples) => {
                let a = samples.partition_point(|s| s.timestamp_ms < start_ms);
                let b = samples.partition_point(|s| s.timestamp_ms <= end_ms);
                out.extend(samples[a..b].iter().map(|s| map(*s)));
            }
            ChunkData::Compressed(_) => {
                if self.is_empty() || self.start_ms > end_ms || self.end_ms < start_ms {
                    return;
                }
                if start_ms <= self.start_ms && self.end_ms <= end_ms {
                    out.extend(self.iter_samples().map(map));
                } else {
                    for sample in self.iter_samples() {
                        if sample.timestamp_ms > end_ms {
                            break;
                        }
                        if sample.timestamp_ms >= start_ms {
                            out.push(map(sample));
                        }
                    }
                }
            }
        }
    }

    /// Iterates the chunk's samples in order (streaming decode when
    /// compressed).
    pub(crate) fn iter_samples(&self) -> ChunkSamples<'_> {
        ChunkSamples { chunk: self, state: ChunkIterState::start(self) }
    }
}

/// Per-chunk cursor position: a slice index for raw chunks, the streaming
/// decoder registers for compressed ones.  Kept separate from the chunk so
/// owning cursors (which hold the chunk behind an `Arc`) need no
/// self-reference.
#[derive(Debug, Clone)]
pub(crate) enum ChunkIterState {
    Raw(usize),
    Compressed(GorillaState),
}

impl ChunkIterState {
    /// A cursor at the beginning of `chunk`.
    pub(crate) fn start(chunk: &Chunk) -> Self {
        match &chunk.data {
            ChunkData::Raw(_) => ChunkIterState::Raw(0),
            ChunkData::Compressed(_) => ChunkIterState::Compressed(GorillaState::new()),
        }
    }

    /// A cursor positioned at the first sample with `timestamp_ms >=
    /// start_ms` — O(log n) for raw chunks.  Compressed chunks start at the
    /// beginning (the caller's `< start_ms` skip loop pays the bounded
    /// decode), since the bit stream cannot be entered mid-way.
    pub(crate) fn positioned(chunk: &Chunk, start_ms: u64) -> Self {
        match &chunk.data {
            ChunkData::Raw(samples) => {
                ChunkIterState::Raw(samples.partition_point(|s| s.timestamp_ms < start_ms))
            }
            ChunkData::Compressed(_) => ChunkIterState::Compressed(GorillaState::new()),
        }
    }

    /// The next sample of `chunk`, or `None` when exhausted.
    pub(crate) fn next(&mut self, chunk: &Chunk) -> Option<Sample> {
        match (self, &chunk.data) {
            (ChunkIterState::Raw(idx), ChunkData::Raw(samples)) => {
                let sample = samples.get(*idx).copied()?;
                *idx += 1;
                Some(sample)
            }
            (ChunkIterState::Compressed(state), ChunkData::Compressed(bytes)) => {
                (state.emitted() < chunk.count).then(|| state.next(bytes))
            }
            _ => unreachable!("cursor state built from this chunk"),
        }
    }
}

/// Borrowed iterator over one chunk's samples.
pub(crate) struct ChunkSamples<'a> {
    chunk: &'a Chunk,
    state: ChunkIterState,
}

impl Iterator for ChunkSamples<'_> {
    type Item = Sample;

    fn next(&mut self) -> Option<Sample> {
        self.state.next(self.chunk)
    }
}

/// The newest sample at or before `at_ms` in a timestamp-ordered slice
/// (binary search; ties resolve to the last stored sample).
pub(crate) fn sample_at(samples: &[Sample], at_ms: u64) -> Option<Sample> {
    let idx = samples.partition_point(|s| s.timestamp_ms <= at_ms);
    if idx == 0 {
        None
    } else {
        Some(samples[idx - 1])
    }
}

/// The newest sample at or before `at_ms` across time-ordered chunks: binary
/// search over the chunk footers to the covering chunk, then a search inside
/// it.  Empty chunks may only appear at the tail (the open head), which both
/// partition predicates treat as "after everything".
pub(crate) fn at_in_chunks<C: std::borrow::Borrow<Chunk>>(
    chunks: &[C],
    at_ms: u64,
) -> Option<Sample> {
    let idx = chunks.partition_point(|c| match c.borrow().start() {
        Some(start) => start <= at_ms,
        None => false,
    });
    if idx == 0 {
        None
    } else {
        chunks[idx - 1].borrow().sample_at(at_ms)
    }
}

/// Appends every sample in `[start_ms, end_ms]` to `out` (mapped through
/// `map`), binary-searching the chunk footers to the overlapping span and
/// pre-reserving its exact sample count instead of testing every chunk.
pub(crate) fn extend_range<C: std::borrow::Borrow<Chunk>, T>(
    chunks: &[C],
    start_ms: u64,
    end_ms: u64,
    out: &mut Vec<T>,
    map: impl Fn(Sample) -> T,
) {
    let lo = chunks.partition_point(|c| match c.borrow().end() {
        Some(end) => end < start_ms,
        None => false,
    });
    let hi = chunks.partition_point(|c| match c.borrow().start() {
        Some(start) => start <= end_ms,
        None => false,
    });
    if lo >= hi {
        return;
    }
    let overlapping = &chunks[lo..hi];
    out.reserve(overlapping.iter().map(|c| c.borrow().len()).sum());
    for chunk in overlapping {
        chunk.borrow().extend_into(start_ms, end_ms, out, &map);
    }
}

/// A labelled time series with chunked, append-only sample storage.
///
/// This standalone type keeps every chunk raw; the compressing sealed-chunk
/// path lives in the storage engine ([`crate::TimeSeriesDb`]), which also
/// retains this representation as the uncompressed baseline for benches.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Metric name.
    pub name: String,
    /// Label set identifying the series.
    pub labels: Labels,
    pub(crate) chunks: Vec<Chunk>,
    pub(crate) chunk_size: usize,
}

impl Series {
    /// Creates an empty series.  `chunk_size` is clamped to at least one
    /// sample per chunk.
    pub fn new(name: String, labels: Labels, chunk_size: usize) -> Self {
        Self { name, labels, chunks: vec![Chunk::new_open()], chunk_size: chunk_size.max(1) }
    }

    /// Appends a sample; samples older than the newest stored timestamp are
    /// rejected (the pull model only ever moves forward in time).
    pub fn append(&mut self, sample: Sample) -> bool {
        if let Some(last) = self.last_timestamp() {
            if sample.timestamp_ms < last {
                return false;
            }
        }
        if self.chunks.last().map(|c| c.len() >= self.chunk_size).unwrap_or(true) {
            self.chunks.push(Chunk::new_open());
        }
        self.chunks.last_mut().expect("chunk pushed above").push(sample);
        true
    }

    /// Timestamp of the newest sample.
    pub fn last_timestamp(&self) -> Option<u64> {
        self.chunks.iter().rev().find_map(|c| c.end())
    }

    /// Timestamp of the oldest retained sample.
    pub fn first_timestamp(&self) -> Option<u64> {
        self.chunks.iter().find_map(|c| c.start())
    }

    /// The newest sample.
    pub fn last_sample(&self) -> Option<Sample> {
        self.chunks.iter().rev().find_map(|c| c.last_sample())
    }

    /// Number of stored samples.
    pub fn len(&self) -> usize {
        self.chunks.iter().map(|c| c.len()).sum()
    }

    /// `true` when the series holds no samples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of chunks currently held.
    pub fn chunk_count(&self) -> usize {
        self.chunks.iter().filter(|c| !c.is_empty()).count()
    }

    /// Samples within `[start_ms, end_ms]` in chronological order.  Binary
    /// searches to the first overlapping chunk and pre-sizes the output, so
    /// the cost scales with the samples returned, not the samples stored.
    pub fn range(&self, start_ms: u64, end_ms: u64) -> Vec<Sample> {
        let mut out = Vec::new();
        extend_range(&self.chunks, start_ms, end_ms, &mut out, |s| s);
        out
    }

    /// The newest sample at or before `at_ms` (instant-query semantics).
    /// Chunks are time-ordered, so this binary searches to the covering chunk
    /// and then within it instead of flat-scanning every sample.
    pub fn at(&self, at_ms: u64) -> Option<Sample> {
        at_in_chunks(&self.chunks, at_ms)
    }

    /// Drops every chunk whose newest sample is older than `cutoff_ms`.
    /// Returns the number of samples dropped.
    pub fn drop_before(&mut self, cutoff_ms: u64) -> usize {
        let mut dropped = 0;
        self.chunks.retain(|chunk| match chunk.end() {
            Some(end) if end < cutoff_ms => {
                dropped += chunk.len();
                false
            }
            _ => true,
        });
        if self.chunks.is_empty() {
            self.chunks.push(Chunk::new_open());
        }
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series() -> Series {
        Series::new("m".into(), Labels::new(), 4)
    }

    #[test]
    fn append_and_query_in_order() {
        let mut s = series();
        for i in 0..10u64 {
            assert!(s.append(Sample { timestamp_ms: i * 1000, value: i as f64 }));
        }
        assert_eq!(s.len(), 10);
        assert!(s.chunk_count() >= 3, "chunk size 4 should split 10 samples");
        assert_eq!(s.last_timestamp(), Some(9_000));
        assert_eq!(s.range(2_000, 5_000).len(), 4);
        assert_eq!(s.at(3_500).unwrap().value, 3.0);
        assert_eq!(s.at(0).unwrap().value, 0.0);
        assert!(s.range(20_000, 30_000).is_empty());
    }

    #[test]
    fn out_of_order_samples_rejected() {
        let mut s = series();
        assert!(s.append(Sample { timestamp_ms: 5_000, value: 1.0 }));
        assert!(!s.append(Sample { timestamp_ms: 4_000, value: 2.0 }));
        assert!(s.append(Sample { timestamp_ms: 5_000, value: 3.0 }), "equal timestamps allowed");
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn retention_drops_old_chunks() {
        let mut s = series();
        for i in 0..20u64 {
            s.append(Sample { timestamp_ms: i * 1000, value: i as f64 });
        }
        let dropped = s.drop_before(10_000);
        assert!(dropped >= 8, "dropped {dropped}");
        assert!(s.len() <= 12);
        assert!(s.range(0, 7_000).is_empty() || s.range(0, 7_000).len() <= 4);
        assert_eq!(s.last_timestamp(), Some(19_000));
    }

    #[test]
    fn empty_series_queries() {
        let s = series();
        assert!(s.is_empty());
        assert_eq!(s.last_sample(), None);
        assert_eq!(s.at(1_000), None);
        assert!(s.range(0, u64::MAX).is_empty());
    }

    #[test]
    fn sealed_chunks_answer_like_raw_ones() {
        let samples: Vec<Sample> =
            (0..40u64).map(|t| Sample { timestamp_ms: t * 500, value: (t as f64).cos() }).collect();
        let raw = Chunk::sealed(samples.clone(), false);
        let compressed = Chunk::sealed(samples.clone(), true);
        assert!(matches!(compressed.data, ChunkData::Compressed(_)));
        assert!(compressed.data_bytes() < raw.data_bytes());
        assert_eq!(raw.start(), compressed.start());
        assert_eq!(raw.end(), compressed.end());
        assert_eq!(raw.len(), compressed.len());
        assert_eq!(raw.last_sample(), compressed.last_sample());
        for at in [0, 499, 500, 7_777, 19_500, u64::MAX] {
            assert_eq!(raw.sample_at(at), compressed.sample_at(at), "at {at}");
        }
        let collect = |c: &Chunk, lo, hi| {
            let mut out = Vec::new();
            c.extend_into(lo, hi, &mut out, &|s| s);
            out
        };
        for (lo, hi) in [(0, u64::MAX), (250, 1_750), (500, 19_500), (20_000, 30_000)] {
            assert_eq!(collect(&raw, lo, hi), collect(&compressed, lo, hi), "[{lo}, {hi}]");
        }
        assert_eq!(compressed.iter_samples().collect::<Vec<_>>(), samples);
    }
}
