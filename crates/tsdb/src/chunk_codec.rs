//! Gorilla-style chunk compression: delta-of-delta timestamps and
//! XOR-encoded `f64` values.
//!
//! Sealed chunks hold their samples in the bit format Facebook's Gorilla
//! paper introduced (and Prometheus adopted): monitoring timestamps arrive at
//! a near-constant cadence, so the *change of the change* between consecutive
//! timestamps is almost always zero and costs one bit; values drift slowly,
//! so the XOR of consecutive IEEE 754 bit patterns has long runs of zeros and
//! only a short "meaningful" window needs storing.  On the monotone counters
//! the bench suite models this lands well under 4 bytes per 16-byte
//! [`Sample`] — roughly an order of magnitude less resident memory at high
//! cardinality.
//!
//! The format, per chunk:
//!
//! * sample 0: raw 64-bit timestamp, raw 64-bit value bits;
//! * timestamps thereafter: `Δ²` buckets `0` / `10`+7 bits / `110`+9 bits /
//!   `1110`+12 bits, with `1111` + a raw 64-bit *delta* as the escape (so
//!   arbitrary `u64` timestamps round-trip without overflow);
//! * values thereafter: `0` for an identical bit pattern, otherwise `1` and
//!   either `0` + the meaningful bits inside the previous leading/trailing
//!   window, or `1` + 6-bit leading-zero count + 6-bit length + the bits.
//!
//! Decoding is *streaming*: [`GorillaState`] is a few words of cursor state
//! that yields one [`Sample`] per call without materialising the chunk, so
//! query cursors walk compressed chunks with no intermediate buffer.  The
//! number of encoded samples is not part of the byte stream — chunks store it
//! in their footer — and the decoder must be stopped after that many samples.
//! Malformed bytes can produce garbage samples but never panic or read out of
//! bounds (reads past the end observe zero bits).
//!
//! [`encode`] rejects (returns `None` for) timestamp sequences that go
//! backwards: the storage engine never produces them (out-of-order appends
//! are rejected at ingest), and refusing them here keeps "decode inverts
//! encode" a total statement.  Equal consecutive timestamps are legal and
//! round-trip.

use crate::series::Sample;

/// Appends bits to a byte buffer, most-significant bit of each value first.
#[derive(Debug, Default)]
struct BitWriter {
    bytes: Vec<u8>,
    /// Bits already used in the last byte (0 = the last byte is full/absent).
    used: u32,
}

impl BitWriter {
    fn write_bit(&mut self, bit: bool) {
        if self.used == 0 {
            self.bytes.push(0);
            self.used = 8;
        }
        if bit {
            let last = self.bytes.last_mut().expect("pushed above");
            *last |= 1 << (self.used - 1);
        }
        self.used -= 1;
    }

    /// Writes the low `count` bits of `value`, MSB first.  `count <= 64`.
    fn write_bits(&mut self, value: u64, count: u32) {
        for i in (0..count).rev() {
            self.write_bit((value >> i) & 1 == 1);
        }
    }

    fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

/// Reads the bit at absolute position `pos`; positions past the end read 0.
fn read_bit(bytes: &[u8], pos: &mut u64) -> bool {
    let byte = (*pos / 8) as usize;
    let bit = 7 - (*pos % 8) as u32;
    *pos += 1;
    bytes.get(byte).map(|b| (b >> bit) & 1 == 1).unwrap_or(false)
}

/// Reads `count` bits MSB-first; bits past the end read 0.  `count <= 64`.
/// Consumes whole bytes per step rather than looping bit by bit — this is
/// the query path's decode hot loop.
fn read_bits(bytes: &[u8], pos: &mut u64, count: u32) -> u64 {
    let mut out = 0u64;
    let mut remaining = count;
    while remaining > 0 {
        let bit_off = (*pos % 8) as u32;
        let avail = 8 - bit_off;
        let take = avail.min(remaining);
        let byte = bytes.get((*pos / 8) as usize).copied().unwrap_or(0);
        let chunk = (u64::from(byte) >> (avail - take)) & ((1u64 << take) - 1);
        out = (out << take) | chunk;
        *pos += u64::from(take);
        remaining -= take;
    }
    out
}

/// Sentinel for "no value window established yet".
const NO_WINDOW: u32 = u32::MAX;

/// Encodes time-ordered samples into a Gorilla-compressed byte block.
///
/// Returns `None` for an empty slice and for input whose timestamps decrease
/// anywhere (equal consecutive timestamps are fine).  The sample count is
/// *not* encoded; keep it alongside the bytes (the chunk footer does) and
/// pass it to [`decode`] / stop [`GorillaState`] after that many samples.
pub fn encode(samples: &[Sample]) -> Option<Vec<u8>> {
    let first = samples.first()?;
    let mut w = BitWriter::default();
    w.write_bits(first.timestamp_ms, 64);
    w.write_bits(first.value.to_bits(), 64);
    let mut prev_ts = first.timestamp_ms;
    let mut prev_delta: u64 = 0;
    let mut prev_bits = first.value.to_bits();
    let mut prev_leading: u32 = NO_WINDOW;
    let mut prev_trailing: u32 = 0;
    for sample in &samples[1..] {
        if sample.timestamp_ms < prev_ts {
            return None;
        }
        let delta = sample.timestamp_ms - prev_ts;
        // i128 so the delta-of-delta of arbitrary u64 deltas cannot overflow.
        let dod = delta as i128 - prev_delta as i128;
        match dod {
            0 => w.write_bit(false),
            -63..=64 => {
                w.write_bits(0b10, 2);
                w.write_bits((dod + 63) as u64, 7);
            }
            -255..=256 => {
                w.write_bits(0b110, 3);
                w.write_bits((dod + 255) as u64, 9);
            }
            -2047..=2048 => {
                w.write_bits(0b1110, 4);
                w.write_bits((dod + 2047) as u64, 12);
            }
            _ => {
                // Escape: the raw delta (not the Δ²), so huge jumps stay exact.
                w.write_bits(0b1111, 4);
                w.write_bits(delta, 64);
            }
        }
        prev_ts = sample.timestamp_ms;
        prev_delta = delta;

        let bits = sample.value.to_bits();
        let xor = bits ^ prev_bits;
        if xor == 0 {
            w.write_bit(false);
        } else {
            w.write_bit(true);
            let leading = xor.leading_zeros();
            let trailing = xor.trailing_zeros();
            if prev_leading != NO_WINDOW && leading >= prev_leading && trailing >= prev_trailing {
                // The meaningful bits fit the previous window: reuse it.
                let len = 64 - prev_leading - prev_trailing;
                w.write_bit(false);
                w.write_bits(xor >> prev_trailing, len);
            } else {
                let len = 64 - leading - trailing;
                w.write_bit(true);
                w.write_bits(u64::from(leading), 6);
                w.write_bits(u64::from(len - 1), 6);
                w.write_bits(xor >> trailing, len);
                prev_leading = leading;
                prev_trailing = trailing;
            }
        }
        prev_bits = bits;
    }
    Some(w.into_bytes())
}

/// Streaming decoder state: a bit cursor plus the previous timestamp/delta/
/// value-window registers.  A few words of plain data — cloning one is how
/// two independent cursors walk the same compressed chunk.
#[derive(Debug, Clone)]
pub struct GorillaState {
    bit_pos: u64,
    emitted: u32,
    prev_ts: u64,
    prev_delta: u64,
    prev_bits: u64,
    prev_leading: u32,
    prev_trailing: u32,
}

impl Default for GorillaState {
    fn default() -> Self {
        Self::new()
    }
}

impl GorillaState {
    /// A decoder positioned at the start of a chunk.
    pub fn new() -> Self {
        Self {
            bit_pos: 0,
            emitted: 0,
            prev_ts: 0,
            prev_delta: 0,
            prev_bits: 0,
            prev_leading: NO_WINDOW,
            prev_trailing: 0,
        }
    }

    /// Number of samples decoded so far.
    pub fn emitted(&self) -> u32 {
        self.emitted
    }

    /// Decodes the next sample from `bytes` (the same block every call).
    ///
    /// The stream does not carry its own length: the caller must stop after
    /// the chunk footer's sample count.  Reading past the encoded data (or
    /// feeding bytes that [`encode`] did not produce) yields garbage samples,
    /// never a panic.
    pub fn next(&mut self, bytes: &[u8]) -> Sample {
        if self.emitted == 0 {
            self.prev_ts = read_bits(bytes, &mut self.bit_pos, 64);
            self.prev_bits = read_bits(bytes, &mut self.bit_pos, 64);
            self.emitted = 1;
            return Sample { timestamp_ms: self.prev_ts, value: f64::from_bits(self.prev_bits) };
        }
        // Timestamp: Δ² bucket prefix.
        let delta = if !read_bit(bytes, &mut self.bit_pos) {
            self.prev_delta
        } else if !read_bit(bytes, &mut self.bit_pos) {
            self.bucket_delta(bytes, 7, 63)
        } else if !read_bit(bytes, &mut self.bit_pos) {
            self.bucket_delta(bytes, 9, 255)
        } else if !read_bit(bytes, &mut self.bit_pos) {
            self.bucket_delta(bytes, 12, 2047)
        } else {
            read_bits(bytes, &mut self.bit_pos, 64)
        };
        self.prev_ts = self.prev_ts.wrapping_add(delta);
        self.prev_delta = delta;

        // Value: XOR against the previous bit pattern.
        if read_bit(bytes, &mut self.bit_pos) {
            let (leading, trailing) = if read_bit(bytes, &mut self.bit_pos) {
                let leading = read_bits(bytes, &mut self.bit_pos, 6) as u32;
                let len = read_bits(bytes, &mut self.bit_pos, 6) as u32 + 1;
                self.prev_leading = leading;
                self.prev_trailing = 64u32.saturating_sub(leading + len);
                (leading, self.prev_trailing)
            } else {
                (self.prev_leading.min(63), self.prev_trailing)
            };
            let len = 64u32.saturating_sub(leading + trailing).max(1);
            let xor = read_bits(bytes, &mut self.bit_pos, len) << trailing;
            self.prev_bits ^= xor;
        }
        self.emitted += 1;
        Sample { timestamp_ms: self.prev_ts, value: f64::from_bits(self.prev_bits) }
    }

    fn bucket_delta(&mut self, bytes: &[u8], bits: u32, bias: i128) -> u64 {
        let dod = read_bits(bytes, &mut self.bit_pos, bits) as i128 - bias;
        (self.prev_delta as i128).wrapping_add(dod) as u64
    }
}

/// Decodes `count` samples from a block produced by [`encode`].
///
/// The streaming [`GorillaState`] is what the query path uses; this
/// materialising form exists for tests, tools and benches.
pub fn decode(bytes: &[u8], count: usize) -> Vec<Sample> {
    let mut state = GorillaState::new();
    (0..count).map(|_| state.next(bytes)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(samples: &[Sample]) {
        let bytes = encode(samples).expect("ordered input must encode");
        let back = decode(&bytes, samples.len());
        assert_eq!(back.len(), samples.len());
        for (a, b) in samples.iter().zip(&back) {
            assert_eq!(a.timestamp_ms, b.timestamp_ms);
            assert_eq!(a.value.to_bits(), b.value.to_bits(), "{} vs {}", a.value, b.value);
        }
    }

    #[test]
    fn empty_input_is_rejected() {
        assert_eq!(encode(&[]), None);
    }

    #[test]
    fn backwards_timestamps_are_rejected() {
        let samples = [
            Sample { timestamp_ms: 10_000, value: 1.0 },
            Sample { timestamp_ms: 9_999, value: 2.0 },
        ];
        assert_eq!(encode(&samples), None);
    }

    #[test]
    fn single_sample_round_trips() {
        roundtrip(&[Sample { timestamp_ms: u64::MAX, value: -0.0 }]);
    }

    #[test]
    fn steady_cadence_and_duplicates_round_trip() {
        let mut samples: Vec<Sample> = (0..240u64)
            .map(|t| Sample { timestamp_ms: t * 15_000, value: (t * 37) as f64 })
            .collect();
        samples.push(Sample { timestamp_ms: samples.last().unwrap().timestamp_ms, value: 1.5 });
        roundtrip(&samples);
    }

    #[test]
    fn negative_delta_of_deltas_round_trip() {
        // Deltas shrink (5s, 1s, 0s) and grow hugely: every Δ² bucket and the
        // raw-delta escape are exercised.
        let ts = [0u64, 5_000, 6_000, 6_000, 6_001, 4_000_000_000_000, u64::MAX];
        let samples: Vec<Sample> = ts
            .iter()
            .enumerate()
            .map(|(i, &t)| Sample { timestamp_ms: t, value: i as f64 })
            .collect();
        roundtrip(&samples);
    }

    #[test]
    fn non_finite_values_round_trip() {
        let values = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -f64::NAN, 0.0, -0.0, 1e-308];
        let samples: Vec<Sample> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| Sample { timestamp_ms: i as u64 * 1000, value: v })
            .collect();
        roundtrip(&samples);
    }

    #[test]
    fn counters_compress_below_four_bytes_per_sample() {
        let samples: Vec<Sample> = (0..120u64)
            .map(|t| Sample { timestamp_ms: t * 5_000, value: (t * 100) as f64 })
            .collect();
        let bytes = encode(&samples).unwrap();
        let per_sample = bytes.len() as f64 / samples.len() as f64;
        assert!(per_sample <= 4.0, "{per_sample} bytes/sample");
        roundtrip(&samples);
    }

    #[test]
    fn malformed_bytes_never_panic() {
        let garbage: Vec<u8> = (0..64u8).map(|b| b.wrapping_mul(113)).collect();
        let decoded = decode(&garbage, 100);
        assert_eq!(decoded.len(), 100);
        // Truncated real data decodes without panicking too.
        let samples: Vec<Sample> =
            (0..50u64).map(|t| Sample { timestamp_ms: t * 250, value: (t as f64).sin() }).collect();
        let bytes = encode(&samples).unwrap();
        let _ = decode(&bytes[..bytes.len() / 2], 50);
    }
}
