//! Label selectors, query results and aggregation functions.
//!
//! PMAG "supports data queries over specified time ranges and labeled
//! dimensions.  It provides detailed quantitative analysis by selecting and
//! applying aggregation functions to query results" (§4).  This module
//! provides that query layer: [`Selector`]s pick series, and the free
//! functions aggregate the resulting [`QueryResult`]s.

use std::fmt;

use serde::{Deserialize, Serialize};
use teemon_metrics::Labels;

/// How one label must compare for a series to match.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum LabelMatch {
    /// Label must equal the value.
    Equals(String, String),
    /// Label must exist and differ from the value.
    NotEquals(String, String),
    /// Label must exist (any value).
    Exists(String),
}

/// Escapes a label value for TeeQL / exposition-style rendering.
fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

impl fmt::Display for LabelMatch {
    /// Renders the matcher in TeeQL syntax.  [`LabelMatch::Exists`] prints as
    /// `label!=""` — the TeeQL parser canonicalises that form back to
    /// `Exists`, so a `NotEquals(_, "")` matcher is not representable in
    /// query text (construct it programmatically if you really need it).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LabelMatch::Equals(k, v) => write!(f, "{k}=\"{}\"", escape_label_value(v)),
            LabelMatch::NotEquals(k, v) => write!(f, "{k}!=\"{}\"", escape_label_value(v)),
            LabelMatch::Exists(k) => write!(f, "{k}!=\"\""),
        }
    }
}

/// A series selector: an optional metric-name filter plus label matchers.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Selector {
    /// Metric name to match exactly; `None` matches every name.
    pub name: Option<String>,
    /// Label matchers, all of which must hold.
    pub matchers: Vec<LabelMatch>,
}

impl Selector {
    /// Matches every series.
    pub fn all() -> Self {
        Self::default()
    }

    /// Matches series of one metric name.
    pub fn metric(name: impl Into<String>) -> Self {
        Self { name: Some(name.into()), matchers: Vec::new() }
    }

    /// Adds an equality matcher.
    #[must_use]
    pub fn with_label(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.matchers.push(LabelMatch::Equals(name.into(), value.into()));
        self
    }

    /// Adds a not-equals matcher.
    #[must_use]
    pub fn without_label_value(
        mut self,
        name: impl Into<String>,
        value: impl Into<String>,
    ) -> Self {
        self.matchers.push(LabelMatch::NotEquals(name.into(), value.into()));
        self
    }

    /// Adds an existence matcher.
    #[must_use]
    pub fn with_label_present(mut self, name: impl Into<String>) -> Self {
        self.matchers.push(LabelMatch::Exists(name.into()));
        self
    }

    /// `true` when a series with `name` and `labels` matches this selector.
    pub fn matches(&self, name: &str, labels: &Labels) -> bool {
        if let Some(wanted) = &self.name {
            if wanted != name {
                return false;
            }
        }
        self.matchers.iter().all(|m| match m {
            LabelMatch::Equals(k, v) => labels.get(k) == Some(v.as_str()),
            LabelMatch::NotEquals(k, v) => labels.get(k).map(|actual| actual != v).unwrap_or(false),
            LabelMatch::Exists(k) => labels.get(k).is_some(),
        })
    }
}

impl fmt::Display for Selector {
    /// Renders the selector in TeeQL syntax: `name`, `name{matchers}`,
    /// `{matchers}` for a name-less selector, or `{}` for the match-all
    /// selector.  The output parses back to an equal selector with
    /// `teemon_query`'s parser (modulo the [`LabelMatch::Exists`] caveat).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(name) = &self.name {
            f.write_str(name)?;
            if self.matchers.is_empty() {
                return Ok(());
            }
        }
        write!(f, "{{")?;
        for (i, m) in self.matchers.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{m}")?;
        }
        write!(f, "}}")
    }
}

/// One series' contribution to a query answer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryResult {
    /// Metric name.
    pub name: String,
    /// Series labels.
    pub labels: Labels,
    /// `(timestamp_ms, value)` points in chronological order.
    pub points: Vec<(u64, f64)>,
}

/// A point of an aggregated range: timestamp plus aggregated value.
pub type RangePoint = (u64, f64);

/// Aggregation operators applied across series or across time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AggregateOp {
    /// Sum of values.
    Sum,
    /// Arithmetic mean.
    Avg,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Number of values.
    Count,
}

impl AggregateOp {
    /// Applies the operator to a slice of values; returns `None` for empty
    /// input.
    pub fn apply(&self, values: &[f64]) -> Option<f64> {
        if values.is_empty() {
            return None;
        }
        Some(match self {
            AggregateOp::Sum => values.iter().sum(),
            AggregateOp::Avg => values.iter().sum::<f64>() / values.len() as f64,
            AggregateOp::Min => values.iter().copied().fold(f64::INFINITY, f64::min),
            AggregateOp::Max => values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            AggregateOp::Count => values.len() as f64,
        })
    }
}

/// Aggregates the *latest* value of every result with `op` (e.g. total free
/// EPC pages across all nodes).
pub fn aggregate_latest(results: &[QueryResult], op: AggregateOp) -> Option<f64> {
    let values: Vec<f64> =
        results.iter().filter_map(|r| r.points.last().map(|(_, v)| *v)).collect();
    op.apply(&values)
}

/// Aggregates across series per timestamp.  Timestamps are the union of all
/// series' timestamps; series contribute their most recent value at or before
/// each timestamp.
///
/// Each series' points must be in chronological order (which
/// [`crate::TimeSeriesDb`] guarantees).  The walk keeps one forward cursor
/// per series over the merged timestamp union, so the cost is
/// `O(total_points + timestamps × series)` instead of the quadratic
/// per-timestamp reverse scan it replaces.
pub fn aggregate_over_time(results: &[QueryResult], op: AggregateOp) -> Vec<RangePoint> {
    let series: Vec<&[(u64, f64)]> = results.iter().map(|r| r.points.as_slice()).collect();
    aggregate_series_over_time(&series, op)
}

/// [`aggregate_over_time`] over bare point series, for callers that read
/// through the zero-copy snapshot API and never materialise
/// [`QueryResult`]s.
pub fn aggregate_series_over_time<P: AsRef<[(u64, f64)]>>(
    series: &[P],
    op: AggregateOp,
) -> Vec<RangePoint> {
    let mut timestamps: Vec<u64> =
        series.iter().flat_map(|p| p.as_ref().iter().map(|(t, _)| *t)).collect();
    timestamps.sort_unstable();
    timestamps.dedup();
    let mut cursors = vec![0usize; series.len()];
    let mut latest: Vec<Option<f64>> = vec![None; series.len()];
    let mut values = Vec::with_capacity(series.len());
    let mut out = Vec::with_capacity(timestamps.len());
    for ts in timestamps {
        values.clear();
        for (i, p) in series.iter().enumerate() {
            let points = p.as_ref();
            while cursors[i] < points.len() && points[cursors[i]].0 <= ts {
                latest[i] = Some(points[cursors[i]].1);
                cursors[i] += 1;
            }
            if let Some(v) = latest[i] {
                values.push(v);
            }
        }
        if let Some(v) = op.apply(&values) {
            out.push((ts, v));
        }
    }
    out
}

/// The contribution of one adjacent counter-sample pair to `increase()`/
/// `rate()`, handling counter resets the way Prometheus does: a decrease
/// means the counter restarted, so the post-reset value *is* the increase.
///
/// Exposed as the shared building block between the whole-window functions
/// below and the query engine's sliding-window streamer, which adds a pair's
/// contribution when its samples enter the window and subtracts it when they
/// leave instead of rescanning the window every step.
pub fn reset_adjusted_delta(prev: f64, next: f64) -> f64 {
    if next >= prev {
        next - prev
    } else {
        next
    }
}

/// Per-second rate of increase of a counter over the window covered by
/// `points`, handling counter resets the way Prometheus' `rate()` does
/// (a decrease is treated as a reset to zero).
pub fn rate(points: &[(u64, f64)]) -> Option<f64> {
    if points.len() < 2 {
        return None;
    }
    let (t0, _) = points[0];
    let (t1, _) = *points.last().expect("len >= 2");
    if t1 <= t0 {
        return None;
    }
    let mut increase = 0.0;
    for window in points.windows(2) {
        increase += reset_adjusted_delta(window[0].1, window[1].1);
    }
    Some(increase / ((t1 - t0) as f64 / 1000.0))
}

/// `increase()` over the window: like [`rate`] but not divided by time.
pub fn increase(points: &[(u64, f64)]) -> Option<f64> {
    if points.len() < 2 {
        return None;
    }
    let mut total = 0.0;
    for window in points.windows(2) {
        total += reset_adjusted_delta(window[0].1, window[1].1);
    }
    Some(total)
}

/// Exact quantile (`0 ≤ q ≤ 1`) of the values in `points`.
///
/// `NaN` inputs are ordered after every finite value (IEEE 754 total order),
/// so upper quantiles of a window containing `NaN`s are `NaN` while lower
/// quantiles stay meaningful — and the sort is deterministic regardless of
/// where the `NaN`s appear in the input.
pub fn quantile_over_time(points: &[(u64, f64)], q: f64) -> Option<f64> {
    let mut values: Vec<f64> = points.iter().map(|(_, v)| *v).collect();
    values.sort_by(|a, b| a.total_cmp(b));
    quantile_of_sorted(&values, q)
}

/// Exact interpolated quantile of values already sorted by
/// [`f64::total_cmp`]; `None` for an empty slice.  The interpolation core of
/// [`quantile_over_time`], exposed separately so callers that keep a reusable
/// scratch buffer (the query engine's per-series window streamer) avoid
/// allocating a fresh value vector per evaluation step.
pub fn quantile_of_sorted(values: &[f64], q: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let q = q.clamp(0.0, 1.0);
    let pos = q * (values.len() - 1) as f64;
    let lower = pos.floor() as usize;
    let upper = pos.ceil() as usize;
    Some(if lower == upper {
        values[lower]
    } else {
        let w = pos - lower as f64;
        values[lower] * (1.0 - w) + values[upper] * w
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(pairs: &[(&str, &str)]) -> Labels {
        Labels::from_pairs(pairs.iter().copied())
    }

    #[test]
    fn selector_matching_rules() {
        let series_labels = labels(&[("node", "n1"), ("job", "sgx_exporter")]);
        assert!(Selector::all().matches("anything", &series_labels));
        assert!(Selector::metric("up").matches("up", &series_labels));
        assert!(!Selector::metric("up").matches("down", &series_labels));
        assert!(Selector::metric("up").with_label("node", "n1").matches("up", &series_labels));
        assert!(!Selector::metric("up").with_label("node", "n2").matches("up", &series_labels));
        assert!(Selector::all().without_label_value("node", "n2").matches("up", &series_labels));
        assert!(!Selector::all().without_label_value("node", "n1").matches("up", &series_labels));
        assert!(Selector::all().with_label_present("job").matches("up", &series_labels));
        assert!(!Selector::all().with_label_present("pod").matches("up", &series_labels));
    }

    #[test]
    fn aggregate_ops() {
        let values = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(AggregateOp::Sum.apply(&values), Some(10.0));
        assert_eq!(AggregateOp::Avg.apply(&values), Some(2.5));
        assert_eq!(AggregateOp::Min.apply(&values), Some(1.0));
        assert_eq!(AggregateOp::Max.apply(&values), Some(4.0));
        assert_eq!(AggregateOp::Count.apply(&values), Some(4.0));
        assert_eq!(AggregateOp::Sum.apply(&[]), None);
    }

    #[test]
    fn aggregate_latest_across_series() {
        let results = vec![
            QueryResult {
                name: "free".into(),
                labels: labels(&[("node", "n1")]),
                points: vec![(1000, 10.0), (2000, 20.0)],
            },
            QueryResult {
                name: "free".into(),
                labels: labels(&[("node", "n2")]),
                points: vec![(1500, 5.0)],
            },
        ];
        assert_eq!(aggregate_latest(&results, AggregateOp::Sum), Some(25.0));
        assert_eq!(aggregate_latest(&[], AggregateOp::Sum), None);

        let over_time = aggregate_over_time(&results, AggregateOp::Sum);
        assert_eq!(over_time, vec![(1000, 10.0), (1500, 15.0), (2000, 25.0)]);
    }

    #[test]
    fn rate_handles_monotonic_counters() {
        let points = vec![(0, 0.0), (5_000, 50.0), (10_000, 100.0)];
        assert_eq!(rate(&points), Some(10.0));
        assert_eq!(increase(&points), Some(100.0));
        assert_eq!(rate(&[(0, 1.0)]), None);
        assert_eq!(rate(&[(5, 1.0), (5, 2.0)]), None);
    }

    #[test]
    fn rate_handles_counter_resets() {
        // Counter resets at t=10s (process restart), then continues.
        let points = vec![(0, 100.0), (5_000, 200.0), (10_000, 10.0), (15_000, 30.0)];
        let total_increase = increase(&points).unwrap();
        assert_eq!(total_increase, 100.0 + 10.0 + 20.0);
        let r = rate(&points).unwrap();
        assert!((r - total_increase / 15.0).abs() < 1e-9);
    }

    #[test]
    fn aggregate_over_time_with_staggered_series() {
        // Three series whose timestamps interleave without ever coinciding:
        // the per-series cursors must carry the last-seen value forward.
        let results: Vec<QueryResult> = (0..3u64)
            .map(|i| QueryResult {
                name: "m".into(),
                labels: labels(&[("node", &format!("n{i}"))]),
                points: (0..4u64).map(|j| (j * 300 + i * 100, (i * 10 + j) as f64)).collect(),
            })
            .collect();
        let summed = aggregate_over_time(&results, AggregateOp::Sum);
        assert_eq!(summed.len(), 12, "union of 3x4 distinct timestamps");
        // At t=0 only series 0 has reported; at t=200 all three have.
        assert_eq!(summed[0], (0, 0.0));
        assert_eq!(summed[2], (200, 0.0 + 10.0 + 20.0));
        // The last point sums every series' final value.
        assert_eq!(summed.last(), Some(&(1100, 3.0 + 13.0 + 23.0)));
        // Count reflects how many series have reported so far.
        let counted = aggregate_over_time(&results, AggregateOp::Count);
        assert_eq!(counted[0].1, 1.0);
        assert_eq!(counted[1].1, 2.0);
        assert_eq!(counted[11].1, 3.0);
    }

    #[test]
    fn quantiles_over_time() {
        let points: Vec<(u64, f64)> = (0..100).map(|i| (i as u64, i as f64)).collect();
        assert_eq!(quantile_over_time(&points, 0.0), Some(0.0));
        assert_eq!(quantile_over_time(&points, 1.0), Some(99.0));
        let median = quantile_over_time(&points, 0.5).unwrap();
        assert!((median - 49.5).abs() < 1e-9);
        assert_eq!(quantile_over_time(&[], 0.5), None);
    }

    #[test]
    fn quantiles_are_nan_safe() {
        // NaNs sort after every finite value under the IEEE total order, so
        // the result is deterministic no matter where the NaN sits.
        let with_nan = vec![(0, 3.0), (1, f64::NAN), (2, 1.0), (3, 2.0)];
        assert_eq!(quantile_over_time(&with_nan, 0.0), Some(1.0));
        // The median interpolates the two middle finite values: [1, 2, 3, NaN].
        let median = quantile_over_time(&with_nan, 0.5).unwrap();
        assert!((median - 2.5).abs() < 1e-9);
        assert!(quantile_over_time(&with_nan, 1.0).unwrap().is_nan());
        // A NaN in any position yields the same answers.
        let nan_first = vec![(0, f64::NAN), (1, 3.0), (2, 1.0), (3, 2.0)];
        assert_eq!(quantile_over_time(&nan_first, 0.0), Some(1.0));
        assert!(quantile_over_time(&nan_first, 1.0).unwrap().is_nan());
    }

    #[test]
    fn selector_display_is_teeql_syntax() {
        assert_eq!(Selector::all().to_string(), "{}");
        assert_eq!(Selector::metric("up").to_string(), "up");
        assert_eq!(Selector::metric("up").with_label("node", "n1").to_string(), "up{node=\"n1\"}");
        assert_eq!(
            Selector::metric("m")
                .with_label("a", "x")
                .without_label_value("b", "y")
                .with_label_present("c")
                .to_string(),
            "m{a=\"x\", b!=\"y\", c!=\"\"}"
        );
        let nameless = Selector::all().with_label("node", "n1");
        assert_eq!(nameless.to_string(), "{node=\"n1\"}");
        // Quotes and backslashes in values are escaped.
        assert_eq!(
            Selector::metric("m").with_label("a", "q\"\\u").to_string(),
            "m{a=\"q\\\"\\\\u\"}"
        );
    }
}
