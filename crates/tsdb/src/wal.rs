//! Per-shard write-ahead log: durability for [`crate::TimeSeriesDb`].
//!
//! The ingest fast lane already batches appends per shard per scrape round,
//! which is exactly the boundary a sequential log wants.  Every mutation of a
//! shard (series creation, every sample append — including rejected ones,
//! series drops, retention passes) is staged into that shard's reusable in-memory
//! buffer while the shard lock is held, and once per round the scrape driver
//! calls [`crate::TimeSeriesDb::wal_flush`], which performs **one sequential
//! write per dirty shard** (sample appends are packed into one batched,
//! CRC-checksummed record per shard per round).  When the write lands is
//! governed by [`FsyncMode`]: the default syncs only on snapshot rotation —
//! appends survive a process crash via the page cache, power loss may lose
//! the tail since the last rotation — while [`FsyncMode::EveryCommit`] adds
//! an fsync per dirty log per round and makes every acked round power-loss
//! safe.  The staged buffers are preallocated and reused, so the warm
//! durable path stays allocation-free.
//!
//! # On-disk layout
//!
//! A durability directory holds four kinds of files (`NN` = shard `00`..`15`):
//!
//! | file           | contents                                               |
//! |----------------|--------------------------------------------------------|
//! | `meta.wal`     | symbol-table deltas + round `COMMIT` markers           |
//! | `meta.snap`    | full symbol table snapshot (rotation of `meta.wal`)    |
//! | `shard-NN.wal` | the shard's round batches since its last snapshot      |
//! | `shard-NN.snap`| the shard's state at rotation (Gorilla-sealed chunks)  |
//!
//! Every record in every file uses the same frame:
//!
//! ```text
//! +----------+----------+---------------------------+
//! | len: u32 | crc: u32 | payload (len bytes)       |   little-endian;
//! +----------+----------+---------------------------+   crc32(payload)
//!      payload[0] = record type, rest type-specific
//! ```
//!
//! Shard records carry no sequence number of their own.  Instead, the first
//! record staged into an empty shard buffer is a `ROUND(seq)` marker; a
//! record's round is the most recent preceding `ROUND` in the file.  A round
//! is durable once `meta.wal` holds `COMMIT(seq)`, which is written (and
//! fsynced) *after* every shard batch of that round.  Recovery applies an op
//! iff `snapshot.base_seq < round <= committed`, so a torn tail — a shard
//! batch without its commit — is dropped deterministically, and a stale
//! shard log left behind by an interrupted rotation is skipped harmlessly.
//!
//! # Salvage and isolation
//!
//! Recovery scans each log until the first frame whose length, CRC or payload
//! does not verify, then physically truncates the file back to the last valid
//! record, counting what was dropped through `teemon_obs` probes
//! (`teemon_wal_salvage_total`, `teemon_wal_salvaged_bytes_total`).  A shard
//! whose *snapshot* is unreadable cannot be reconstructed at all: it comes up
//! empty and flagged in [`crate::StorageStats::wal_failed_shards`], without
//! affecting the other shards.  Runtime write/fsync errors likewise fail only
//! the shard (or the meta log) they hit; the database keeps serving.
//!
//! # Locking
//!
//! Two new lock classes, neither ever nested with the other:
//!
//! * `"tsdb.wal.shard"` (one instance per shard) guards a shard's staged
//!   buffer + file handle.  Acquired *after* the corresponding `tsdb.shard`
//!   lock on the staging path, and after `tsdb.wal.meta` on the flush path.
//! * `"tsdb.wal.meta"` guards the meta log.  Acquired first on the flush
//!   path, with `tsdb.symbols` (write: delta capture, commit aging and the
//!   rotation-point symbol sweep) and `tsdb.wal.shard` taken inside.
//!
//! The resulting order — `tsdb.shard → tsdb.wal.meta → {tsdb.symbols,
//! tsdb.wal.shard}`, `tsdb.shard → tsdb.wal.shard` — is acyclic (the
//! `tsdb.shard → tsdb.wal.meta` edge comes from rotation, which syncs the
//! meta log while holding the shard's data lock).  The WAL
//! classes are deliberately not marked `no_alloc`: cold-path buffer growth
//! (and the in-memory [`FaultFs`] used by tests) allocates under them, and
//! the allocation-freedom of the *warm* durable round is proven directly by
//! the counting-allocator test instead.

use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{LockClass, Mutex, MutexGuard, RwLock};
use teemon_obs::{probes, Stopwatch};

use crate::chunk_codec;
use crate::series::{Chunk, ChunkData, Sample};
use crate::storage::SHARD_COUNT;
use crate::symbols::{SymbolId, SymbolTable};

// ---------------------------------------------------------------------------
// CRC32 (IEEE) and record framing
// ---------------------------------------------------------------------------

/// IEEE CRC-32 slice-by-8 tables (polynomial `0xEDB88320`), built at
/// compile time.  `CRC_TABLES[0]` is the classic byte-at-a-time table; table
/// `k` advances a byte seen `k` positions earlier, so eight table lookups
/// retire eight input bytes per iteration — the staging hot path runs one
/// CRC over each record's whole payload, and at ~0.5 cycles/byte it stays
/// negligible next to the write syscall.
const CRC_TABLES: [[u32; 256]; 8] = {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 == 1 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        // teemon-verify: allow(no-index): i is bounded to 0..256 by the loop.
        tables[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            // teemon-verify: allow(no-index): k < 8 and i < 256 by the loops.
            let prev = tables[k - 1][i];
            // teemon-verify: allow(no-index): the value is byte-masked first.
            tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
};

/// One slice-by-8 table lookup: both indices are masked in range, so the
/// bounds checks fold away.
#[inline(always)]
fn crc_tab(k: usize, idx: u32) -> u32 {
    // teemon-verify: allow(no-index): k masked to 0..8, idx masked to a byte.
    CRC_TABLES[k & 7][(idx & 0xFF) as usize]
}

/// CRC-32 (IEEE) of `bytes`, eight bytes per step.
fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let (a, b) = chunk.split_at(4);
        let lo = u32::from_le_bytes(a.try_into().unwrap_or_default()) ^ crc;
        let hi = u32::from_le_bytes(b.try_into().unwrap_or_default());
        crc = crc_tab(7, lo)
            ^ crc_tab(6, lo >> 8)
            ^ crc_tab(5, lo >> 16)
            ^ crc_tab(4, lo >> 24)
            ^ crc_tab(3, hi)
            ^ crc_tab(2, hi >> 8)
            ^ crc_tab(1, hi >> 16)
            ^ crc_tab(0, hi >> 24);
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ crc_tab(0, crc ^ u32::from(b));
    }
    !crc
}

/// Frame header size: `len: u32` + `crc: u32`.
const FRAME_BYTES: usize = 8;
/// Upper bound a frame length must pass before it is believed (256 MiB).
const MAX_RECORD_LEN: usize = 1 << 28;
/// Upper bound for element counts inside payloads (defends against garbage
/// lengths in CRC-colliding corruption).
const MAX_COUNT: u32 = 1 << 24;

// Record types.  Meta log:
const REC_SYMBOLS: u8 = 1;
const REC_COMMIT: u8 = 2;
const REC_SNAP_SYMBOLS: u8 = 3;
// Shard log:
const REC_ROUND: u8 = 16;
const REC_SERIES: u8 = 17;
const REC_SAMPLES: u8 = 18;
const REC_DROP: u8 = 19;
const REC_RETENTION: u8 = 20;

/// Bytes of one entry inside a `REC_SAMPLES` batch: `local: u32`,
/// `value: f64`.  The batch header carries the shared `timestamp_ms` once —
/// every sample of a scrape target's round lands at the same timestamp, so
/// hoisting it saves 40% of the staged (and written, and checksummed) bytes;
/// a sample at a different timestamp seals the batch and opens a new one.
const SAMPLE_ENTRY_BYTES: usize = 12;
/// Bytes of a `REC_SAMPLES` batch header: type, entry count, timestamp.
const SAMPLE_HEADER_BYTES: usize = 13;
// Shard snapshot:
const REC_SNAP_HEADER: u8 = 32;
const REC_SNAP_SERIES: u8 = 33;
const REC_SNAP_FOOTER: u8 = 34;

/// Opens a frame in `buf`: reserves the 8-byte header, returns its offset.
fn begin_record(buf: &mut Vec<u8>) -> usize {
    let at = buf.len();
    buf.extend_from_slice(&[0u8; FRAME_BYTES]);
    at
}

/// Closes the frame opened at `at`: patches payload length and CRC in place.
fn end_record(buf: &mut [u8], at: usize) {
    let payload_len = buf.len().saturating_sub(at + FRAME_BYTES) as u32;
    let crc = crc32(buf.get(at + FRAME_BYTES..).unwrap_or(&[]));
    if let Some(header) = buf.get_mut(at..at + FRAME_BYTES) {
        let (len_bytes, crc_bytes) = header.split_at_mut(4);
        len_bytes.copy_from_slice(&payload_len.to_le_bytes());
        crc_bytes.copy_from_slice(&crc.to_le_bytes());
    }
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Bounds-checked little-endian cursor over one frame's payload.
struct Cur<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.bytes.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).and_then(|b| b.first().copied())
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4).and_then(|b| <[u8; 4]>::try_from(b).ok()).map(u32::from_le_bytes)
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8).and_then(|b| <[u8; 8]>::try_from(b).ok()).map(u64::from_le_bytes)
    }

    fn done(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

/// Walks the frames of a log image, yielding `(type, payload)` per valid
/// record and stopping at the first frame that fails to verify.  `valid_len`
/// after iteration is the salvage point.
struct FrameScanner<'a> {
    bytes: &'a [u8],
    valid_len: usize,
}

impl<'a> FrameScanner<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, valid_len: 0 }
    }
}

impl<'a> Iterator for FrameScanner<'a> {
    type Item = (u8, &'a [u8]);

    fn next(&mut self) -> Option<(u8, &'a [u8])> {
        let at = self.valid_len;
        let header = self.bytes.get(at..at + FRAME_BYTES)?;
        let (len_bytes, crc_bytes) = header.split_at(4);
        let len = <[u8; 4]>::try_from(len_bytes).ok().map(u32::from_le_bytes)? as usize;
        let crc = <[u8; 4]>::try_from(crc_bytes).ok().map(u32::from_le_bytes)?;
        if len > MAX_RECORD_LEN {
            return None;
        }
        let payload = self.bytes.get(at + FRAME_BYTES..at + FRAME_BYTES + len)?;
        if crc32(payload) != crc {
            return None;
        }
        let kind = *payload.first()?;
        self.valid_len = at + FRAME_BYTES + len;
        Some((kind, payload.get(1..).unwrap_or(&[])))
    }
}

// ---------------------------------------------------------------------------
// Filesystem abstraction
// ---------------------------------------------------------------------------

/// One open log file: sequential appends plus durability flushes.
///
/// Implemented by [`RealFs`] over `std::fs::File`, by the deterministic
/// in-memory [`FaultFs`] the fault-injection suite uses, and by
/// [`FailpointWriter`], which wraps any other implementation with injected
/// failures.
pub trait WalFile: Send {
    /// Appends `bytes` at the end of the file.
    fn append(&mut self, bytes: &[u8]) -> io::Result<()>;
    /// Durably flushes all previous appends (fsync).
    fn sync(&mut self) -> io::Result<()>;
}

/// The filesystem facade the WAL writes through, so tests can substitute a
/// deterministic, fault-injecting implementation for real files.
pub trait WalFs: Send + Sync {
    /// Opens `path` for appending (creating it if absent); also returns the
    /// file's current length.
    fn open_append(&self, path: &Path) -> io::Result<(Box<dyn WalFile>, u64)>;
    /// Reads the whole file; `Ok(None)` when it does not exist.
    fn read(&self, path: &Path) -> io::Result<Option<Vec<u8>>>;
    /// Atomically replaces `path` with `bytes` (tmp file + rename).
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Truncates `path` to `len` bytes, durably.
    fn truncate(&self, path: &Path, len: u64) -> io::Result<()>;
    /// Creates `path` and any missing parents.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
}

/// Production [`WalFs`]: real files, `sync_data` for fsync, atomic replace
/// via tmp file + rename + best-effort parent directory sync.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealFs;

struct RealFile {
    file: fs::File,
}

impl WalFile for RealFile {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.file.write_all(bytes)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }
}

impl WalFs for RealFs {
    fn open_append(&self, path: &Path) -> io::Result<(Box<dyn WalFile>, u64)> {
        let file = fs::OpenOptions::new().create(true).append(true).open(path)?;
        let len = file.metadata()?.len();
        Ok((Box::new(RealFile { file }), len))
    }

    fn read(&self, path: &Path) -> io::Result<Option<Vec<u8>>> {
        match fs::read(path) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let tmp = path.with_extension("tmp");
        {
            let mut file = fs::File::create(&tmp)?;
            file.write_all(bytes)?;
            file.sync_data()?;
        }
        fs::rename(&tmp, path)?;
        if let Some(parent) = path.parent() {
            if let Ok(dir) = fs::File::open(parent) {
                let _ = dir.sync_data();
            }
        }
        Ok(())
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        let file = fs::OpenOptions::new().write(true).open(path)?;
        file.set_len(len)?;
        file.sync_data()
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        fs::create_dir_all(path)
    }
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

/// How [`FaultFs::crashed`] decides what survives the crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashModel {
    /// Writes reach disk in order and tear mid-write once the byte budget is
    /// spent — the classic torn-tail model.
    Torn,
    /// Only data covered by a completed fsync (or an atomic replace) survives;
    /// everything after the last sync point is lost.
    SyncedOnly,
}

#[derive(Debug, Clone)]
enum FsOp {
    Write { path: PathBuf, bytes: Vec<u8> },
    Sync { path: PathBuf },
    Atomic { path: PathBuf, bytes: Vec<u8> },
    Truncate { path: PathBuf, len: u64 },
}

#[derive(Debug, Default)]
struct FaultState {
    files: HashMap<PathBuf, Vec<u8>>,
    /// The files this filesystem started with — empty for [`FaultFs::new`],
    /// the crash image's contents for a filesystem built by
    /// [`FaultFs::crashed`]/[`FaultFs::crashed_at_op`].  Crash images replay
    /// the (post-creation) journal on top of this baseline, so reopening a
    /// crash image, writing to it, and crashing it *again* keeps the files
    /// the second run never touched.
    baseline: HashMap<PathBuf, Vec<u8>>,
    ops: Vec<FsOp>,
    writes: u64,
    fsyncs: u64,
    fail_write_from: Option<u64>,
    fail_fsync_from: Option<u64>,
}

/// Deterministic in-memory [`WalFs`] for the fault-injection suite.
///
/// Every mutation is journalled, so [`FaultFs::crashed`] can reconstruct the
/// exact disk image "as of a crash after `k` appended bytes" under either
/// [`CrashModel`]; [`FaultFs::corrupt`] flips bits in place; and the
/// `fail_*_from` knobs turn later writes into short writes and later fsyncs
/// into errors.
#[derive(Debug, Default, Clone)]
pub struct FaultFs {
    state: Arc<Mutex<FaultState>>,
}

impl FaultFs {
    /// An empty in-memory filesystem.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total bytes passed to [`WalFile::append`] so far — the budget domain
    /// for [`FaultFs::crashed`].
    pub fn total_write_bytes(&self) -> u64 {
        let state = self.state.lock();
        state
            .ops
            .iter()
            .map(|op| match op {
                FsOp::Write { bytes, .. } => bytes.len() as u64,
                _ => 0,
            })
            .sum()
    }

    /// The disk image after a crash that let `budget` appended bytes reach
    /// the (simulated) disk, under `model`.  The returned filesystem has an
    /// empty journal of its own.
    ///
    /// The budget is charged per *appended byte*: a crash can tear inside
    /// any append, but non-append operations (atomic replaces, truncations,
    /// fsyncs) consume nothing and are applied together with the append
    /// that precedes them.  Use [`FaultFs::crashed_at_op`] to place a crash
    /// *between* two journalled operations — e.g. between a snapshot's
    /// atomic install and the truncation of the log it replaces.
    pub fn crashed(&self, budget: u64, model: CrashModel) -> FaultFs {
        let state = self.state.lock();
        Self::image(&state.baseline, &state.ops, budget, model)
    }

    /// Number of journalled filesystem operations so far — the sweep domain
    /// for [`FaultFs::crashed_at_op`].
    pub fn op_count(&self) -> u64 {
        self.state.lock().ops.len() as u64
    }

    /// The disk image after a crash between journalled operations: the
    /// first `ops` operations applied in full, everything later lost.
    /// Unlike the byte budget of [`FaultFs::crashed`], this axis can land a
    /// crash between two non-append operations, covering windows like an
    /// interrupted meta rotation (snapshot installed, log not yet
    /// truncated).
    pub fn crashed_at_op(&self, ops: u64, model: CrashModel) -> FaultFs {
        let state = self.state.lock();
        let keep = usize::try_from(ops).unwrap_or(usize::MAX).min(state.ops.len());
        Self::image(&state.baseline, state.ops.get(..keep).unwrap_or(&[]), u64::MAX, model)
    }

    /// Replays `ops` onto `baseline` (empty for a [`FaultFs::new`]
    /// filesystem; for a crash image, the files it was created with, all
    /// counted as synced — they were on disk), tearing the first append that
    /// exceeds `budget` bytes and dropping everything after it.
    fn image(
        baseline: &HashMap<PathBuf, Vec<u8>>,
        ops: &[FsOp],
        budget: u64,
        model: CrashModel,
    ) -> FaultFs {
        let mut files: HashMap<PathBuf, Vec<u8>> = baseline.clone();
        let mut synced: HashMap<PathBuf, usize> =
            files.iter().map(|(path, data)| (path.clone(), data.len())).collect();
        let mut remaining = budget;
        for op in ops {
            match op {
                FsOp::Write { path, bytes } => {
                    let take = usize::try_from(remaining).unwrap_or(usize::MAX).min(bytes.len());
                    let entry = files.entry(path.clone()).or_default();
                    entry.extend_from_slice(bytes.get(..take).unwrap_or(&[]));
                    remaining -= take as u64;
                    if take < bytes.len() {
                        break;
                    }
                }
                FsOp::Sync { path } => {
                    let len = files.get(path).map(|f| f.len()).unwrap_or(0);
                    synced.insert(path.clone(), len);
                }
                FsOp::Atomic { path, bytes } => {
                    synced.insert(path.clone(), bytes.len());
                    files.insert(path.clone(), bytes.clone());
                }
                FsOp::Truncate { path, len } => {
                    let entry = files.entry(path.clone()).or_default();
                    entry.truncate(*len as usize);
                    synced.insert(path.clone(), entry.len());
                }
            }
        }
        if model == CrashModel::SyncedOnly {
            for (path, data) in files.iter_mut() {
                let keep = synced.get(path).copied().unwrap_or(0);
                data.truncate(keep);
            }
        }
        let baseline = files.clone();
        FaultFs {
            state: Arc::new(Mutex::new(FaultState { files, baseline, ..FaultState::default() })),
        }
    }

    /// XORs the byte at `offset` of `path` with `xor` (no journal entry —
    /// this models silent media corruption).
    pub fn corrupt(&self, path: &Path, offset: usize, xor: u8) {
        let mut state = self.state.lock();
        let state = &mut *state;
        // Media corruption is below the journal: flip the byte in the
        // baseline too, so further crash images keep the damage.
        for files in [&mut state.files, &mut state.baseline] {
            if let Some(b) = files.get_mut(path).and_then(|bytes| bytes.get_mut(offset)) {
                *b ^= xor;
            }
        }
    }

    /// Paths of all files currently present, sorted.
    pub fn file_paths(&self) -> Vec<PathBuf> {
        let state = self.state.lock();
        let mut paths: Vec<PathBuf> = state.files.keys().cloned().collect();
        paths.sort();
        paths
    }

    /// Length of `path`, `None` when absent.
    pub fn file_len(&self, path: &Path) -> Option<u64> {
        let state = self.state.lock();
        state.files.get(path).map(|f| f.len() as u64)
    }

    /// Makes every append after the first `n` a short write that errors.
    pub fn fail_writes_from(&self, n: u64) {
        self.state.lock().fail_write_from = Some(n);
    }

    /// Makes every fsync after the first `n` return an error.
    pub fn fail_fsyncs_from(&self, n: u64) {
        self.state.lock().fail_fsync_from = Some(n);
    }
}

struct FaultFile {
    state: Arc<Mutex<FaultState>>,
    path: PathBuf,
}

impl WalFile for FaultFile {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        let mut state = self.state.lock();
        state.writes += 1;
        let fail = state.fail_write_from.map(|n| state.writes > n).unwrap_or(false);
        let written = if fail { bytes.get(..bytes.len() / 2).unwrap_or(&[]) } else { bytes };
        state.ops.push(FsOp::Write { path: self.path.clone(), bytes: written.to_vec() });
        state.files.entry(self.path.clone()).or_default().extend_from_slice(written);
        if fail {
            return Err(io::Error::other("injected short write"));
        }
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        let mut state = self.state.lock();
        state.fsyncs += 1;
        if state.fail_fsync_from.map(|n| state.fsyncs > n).unwrap_or(false) {
            return Err(io::Error::other("injected fsync failure"));
        }
        state.ops.push(FsOp::Sync { path: self.path.clone() });
        Ok(())
    }
}

impl WalFs for FaultFs {
    fn open_append(&self, path: &Path) -> io::Result<(Box<dyn WalFile>, u64)> {
        let len = self.file_len(path).unwrap_or(0);
        Ok((Box::new(FaultFile { state: Arc::clone(&self.state), path: path.to_path_buf() }), len))
    }

    fn read(&self, path: &Path) -> io::Result<Option<Vec<u8>>> {
        let state = self.state.lock();
        Ok(state.files.get(path).cloned())
    }

    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut state = self.state.lock();
        state.ops.push(FsOp::Atomic { path: path.to_path_buf(), bytes: bytes.to_vec() });
        state.files.insert(path.to_path_buf(), bytes.to_vec());
        Ok(())
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        let mut state = self.state.lock();
        state.ops.push(FsOp::Truncate { path: path.to_path_buf(), len });
        if let Some(bytes) = state.files.get_mut(path) {
            bytes.truncate(len as usize);
        }
        Ok(())
    }

    fn create_dir_all(&self, _path: &Path) -> io::Result<()> {
        Ok(())
    }
}

/// Wraps a [`WalFile`] with failure injection: appends past
/// `fail_write_from` become short writes that error, fsyncs past
/// `fail_fsync_from` fail outright.
pub struct FailpointWriter {
    inner: Box<dyn WalFile>,
    writes: u64,
    fsyncs: u64,
    fail_write_from: Option<u64>,
    fail_fsync_from: Option<u64>,
}

impl FailpointWriter {
    /// Wraps `inner`; `None` thresholds never fire.
    pub fn new(
        inner: Box<dyn WalFile>,
        fail_write_from: Option<u64>,
        fail_fsync_from: Option<u64>,
    ) -> Self {
        Self { inner, writes: 0, fsyncs: 0, fail_write_from, fail_fsync_from }
    }
}

impl WalFile for FailpointWriter {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.writes += 1;
        if self.fail_write_from.map(|n| self.writes > n).unwrap_or(false) {
            let half = bytes.get(..bytes.len() / 2).unwrap_or(&[]);
            let _ = self.inner.append(half);
            return Err(io::Error::other("injected short write"));
        }
        self.inner.append(bytes)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.fsyncs += 1;
        if self.fail_fsync_from.map(|n| self.fsyncs > n).unwrap_or(false) {
            return Err(io::Error::other("injected fsync failure"));
        }
        self.inner.sync()
    }
}

// ---------------------------------------------------------------------------
// Options
// ---------------------------------------------------------------------------

/// When the write-ahead log calls fsync.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncMode {
    /// Fsync every commit: one write **and one fsync** per dirty log per
    /// round.  Every acked round survives even power loss; the price is a
    /// fsync syscall per dirty shard per round, which dominates the
    /// durability overhead at small batch sizes.  The crash-exactness
    /// property tests run in this mode — it is the mode in which "acked"
    /// equals "synced".
    EveryCommit,
    /// Fsync only when a log rotates onto its snapshot (the snapshot's
    /// atomic replace is always synced).  Round appends still hit the
    /// kernel with one `write` per dirty shard, so they survive a process
    /// crash at full fidelity — the page cache persists — but power loss
    /// may lose the tail written since the last rotation.  This is the
    /// default, the same trade Prometheus' WAL makes.
    #[default]
    OnRotation,
}

/// Durability configuration for [`crate::TimeSeriesDb::open_with`].
#[derive(Clone)]
pub struct DurabilityOptions {
    /// A shard log is rotated into a snapshot once it exceeds this many
    /// bytes (and the same bound rotates the meta log).
    pub segment_bytes: u64,
    /// Fsync policy; see [`FsyncMode`].
    pub fsync: FsyncMode,
    /// Filesystem implementation; tests substitute [`FaultFs`].
    pub fs: Arc<dyn WalFs>,
}

impl Default for DurabilityOptions {
    fn default() -> Self {
        Self { segment_bytes: 4 << 20, fsync: FsyncMode::default(), fs: Arc::new(RealFs) }
    }
}

impl fmt::Debug for DurabilityOptions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DurabilityOptions")
            .field("segment_bytes", &self.segment_bytes)
            .field("fsync", &self.fsync)
            .finish_non_exhaustive()
    }
}

// ---------------------------------------------------------------------------
// The log itself
// ---------------------------------------------------------------------------

/// Reserves `additional` bytes of staging capacity.  Growth is the cold path
/// (buffers are retained round over round); the lock audit's no-alloc check
/// is suspended for it because staging runs under the `tsdb.shard` lock.
fn reserve_staged(buf: &mut Vec<u8>, additional: usize) {
    if buf.capacity().wrapping_sub(buf.len()) < additional {
        #[cfg(lock_audit)]
        let _allow = parking_lot::audit::allow_alloc();
        buf.reserve(additional.max(1024));
    }
}

struct MetaLog {
    file: Option<Box<dyn WalFile>>,
    staged: Vec<u8>,
    size: u64,
}

struct ShardLog {
    file: Option<Box<dyn WalFile>>,
    staged: Vec<u8>,
    size: u64,
    /// Offset and shared timestamp of the currently open `REC_SAMPLES`
    /// frame in `staged`, if the most recently staged record is a sample
    /// batch still accepting entries.  Consecutive same-timestamp samples
    /// of a round append to one batch (one frame + one CRC for the whole
    /// round's samples per shard); staging any other record type, a sample
    /// at a different timestamp, or the flush seals it first.
    open_samples: Option<(usize, u64)>,
}

impl ShardLog {
    /// Seals the open sample batch, if any: patches the entry count and the
    /// frame header (length + CRC) in place.
    fn close_samples(&mut self) {
        if let Some((at, _)) = self.open_samples.take() {
            let entries = self.staged.len().saturating_sub(at + FRAME_BYTES + SAMPLE_HEADER_BYTES)
                / SAMPLE_ENTRY_BYTES;
            if let Some(slot) = self.staged.get_mut(at + FRAME_BYTES + 1..at + FRAME_BYTES + 5) {
                slot.copy_from_slice(&(entries as u32).to_le_bytes());
            }
            end_record(&mut self.staged, at);
        }
    }
}

/// Result of one [`Wal::flush`].
pub(crate) struct FlushStats {
    /// The round sequence number just made durable, if any round committed.
    pub(crate) committed: Option<u64>,
    /// `false` when any shard (or the meta log) hit a write/fsync error,
    /// this round or earlier.
    pub(crate) clean: bool,
}

/// Bit in [`Wal::failed`] marking the meta log broken (shard bits are
/// `1 << shard`).
const META_FAILED_BIT: u64 = 1 << 63;

/// The per-shard write-ahead log of one durable [`crate::TimeSeriesDb`].
pub(crate) struct Wal {
    fs: Arc<dyn WalFs>,
    fsync: FsyncMode,
    segment_bytes: u64,
    /// Sequence number the *next* round will commit under (committed + 1).
    next_seq: AtomicU64,
    /// Failure bits: `1 << shard` per broken shard, [`META_FAILED_BIT`] for
    /// the meta log.  Sticky — a failed log is never written again.
    failed: AtomicU64,
    meta_path: PathBuf,
    meta_snap_path: PathBuf,
    shard_paths: [PathBuf; SHARD_COUNT],
    shard_snap_paths: [PathBuf; SHARD_COUNT],
    meta: Mutex<MetaLog>,
    shards: [Mutex<ShardLog>; SHARD_COUNT],
}

impl Wal {
    /// Marks `shard` broken (sticky): no further writes, counted in
    /// [`Wal::failed_shard_count`].  Also used by the storage layer when a
    /// shard's recovered state fails validation during replay.
    pub(crate) fn mark_shard_failed(&self, shard: usize) {
        if shard < SHARD_COUNT {
            self.failed.fetch_or(1 << shard, Ordering::Relaxed);
        }
    }

    fn mark_meta_failed(&self) {
        self.failed.fetch_or(META_FAILED_BIT, Ordering::Relaxed);
    }

    fn shard_failed(&self, shard: usize) -> bool {
        let mask = self.failed.load(Ordering::Relaxed);
        mask & META_FAILED_BIT != 0 || shard < SHARD_COUNT && mask & (1 << shard) != 0
    }

    fn meta_failed(&self) -> bool {
        self.failed.load(Ordering::Relaxed) & META_FAILED_BIT != 0
    }

    /// Number of shards currently flagged as failed (all of them once the
    /// meta log is broken) — surfaced in [`crate::StorageStats`].
    pub(crate) fn failed_shard_count(&self) -> u64 {
        let mask = self.failed.load(Ordering::Relaxed);
        if mask & META_FAILED_BIT != 0 {
            SHARD_COUNT as u64
        } else {
            u64::from((mask & ((1 << SHARD_COUNT) - 1)).count_ones())
        }
    }

    /// A staging handle for `shard`, or `None` once the shard (or the meta
    /// log) has failed.  Locks the shard's `tsdb.wal.shard` mutex — the
    /// caller already holds the matching `tsdb.shard` lock.
    pub(crate) fn shard_writer(&self, shard: usize) -> Option<ShardWriter<'_>> {
        if self.shard_failed(shard) {
            return None;
        }
        let log = self.shards.get(shard)?.lock();
        Some(ShardWriter { wal: self, log })
    }

    fn write_out(
        &self,
        path: &Path,
        file: &mut Option<Box<dyn WalFile>>,
        size: &mut u64,
        staged: &mut Vec<u8>,
    ) -> io::Result<()> {
        if file.is_none() {
            let (handle, len) = self.fs.open_append(path)?;
            *file = Some(handle);
            *size = len;
        }
        let Some(handle) = file.as_mut() else {
            return Ok(());
        };
        handle.append(staged)?;
        if self.fsync == FsyncMode::EveryCommit {
            let watch = Stopwatch::start();
            handle.sync()?;
            probes::WAL_FSYNC_NS.record_ns(watch.elapsed_ns());
        }
        probes::WAL_BYTES_WRITTEN.add(staged.len() as u64);
        *size += staged.len() as u64;
        staged.clear();
        Ok(())
    }

    /// Flushes all staged data for the round: every dirty shard first (one
    /// sequential write + fsync each), then the symbol delta and the
    /// `COMMIT` marker in one sequential meta write.  Errors fail only the
    /// log they hit; surviving shards still commit.  Called once per scrape
    /// round by the single flush driver — crash-exactness ("recover
    /// precisely the acked rounds") is defined for that single-flusher
    /// discipline — but appends racing a flush from other threads stay
    /// safe: `next_seq` is advanced *before* any shard buffer is drained,
    /// so a record staged after its shard's batch was written stamps the
    /// next round (the release/acquire on the shard's WAL mutex publishes
    /// the store), and the symbol delta is captured *after* the drain, so
    /// every symbol a drained record references reaches the meta log ahead
    /// of the commit that makes the record replayable.
    pub(crate) fn flush(&self, symbols: &RwLock<SymbolTable>) -> FlushStats {
        let mut meta = self.meta.lock();
        if self.meta_failed() {
            return FlushStats { committed: None, clean: false };
        }
        let seq = self.next_seq.load(Ordering::Relaxed);
        // Seal round `seq` before touching any shard buffer.  A record
        // staged into a shard whose batch for this round was already
        // drained would otherwise claim a round about to commit without
        // it; replay would then treat the record — physically written by
        // the *next* flush — as committed, resurrecting samples that were
        // never acked after a crash before the next commit.
        self.next_seq.store(seq + 1, Ordering::Relaxed);

        // Per-shard round batches.
        let mut clean = true;
        let mut wrote_any = false;
        for (i, slot) in self.shards.iter().enumerate() {
            if self.shard_failed(i) {
                clean = false;
                continue;
            }
            let mut log = slot.lock();
            if log.staged.is_empty() {
                continue;
            }
            log.close_samples();
            let path = match self.shard_paths.get(i) {
                Some(path) => path,
                None => continue,
            };
            let ShardLog { file, staged, size, .. } = &mut *log;
            match self.write_out(path, file, size, staged) {
                Ok(()) => wrote_any = true,
                Err(_) => {
                    self.mark_shard_failed(i);
                    clean = false;
                }
            }
        }

        // Stage the symbol delta: the `(id, string)` bindings interned (or
        // rebound onto reused slots) since the last capture.  Captured after
        // the drain so it also covers series records staged while the
        // batches were being written; it precedes the commit in the meta
        // log, so recovery always sees a round's bindings before believing
        // the records that reference them.  Draining the dirty list before
        // the write is safe: a failed meta write marks the meta log failed
        // (sticky), so the lost delta can never be missed by a later flush.
        {
            let new = symbols.write().take_dirty_bindings();
            if !new.is_empty() {
                let need: usize =
                    FRAME_BYTES + 5 + new.iter().map(|(_, s)| 8 + s.len()).sum::<usize>();
                reserve_staged(&mut meta.staged, need);
                let buf = &mut meta.staged;
                let at = begin_record(buf);
                buf.push(REC_SYMBOLS);
                put_u32(buf, new.len() as u32);
                for (raw, s) in &new {
                    put_u32(buf, *raw);
                    put_u32(buf, s.len() as u32);
                    buf.extend_from_slice(s.as_bytes());
                }
                end_record(buf, at);
            }
        }

        if !wrote_any {
            // No round to commit; new symbols (if any) still go durable.
            if !meta.staged.is_empty() {
                let MetaLog { file, staged, size } = &mut *meta;
                if self.write_out(&self.meta_path, file, size, staged).is_err() {
                    self.mark_meta_failed();
                    return FlushStats { committed: None, clean: false };
                }
            }
            return FlushStats { committed: None, clean };
        }

        // Commit the round: symbol delta + COMMIT land in one write.
        reserve_staged(&mut meta.staged, FRAME_BYTES + 9);
        {
            let buf = &mut meta.staged;
            let at = begin_record(buf);
            buf.push(REC_COMMIT);
            put_u64(buf, seq);
            end_record(buf, at);
        }
        let MetaLog { file, staged, size } = &mut *meta;
        if self.write_out(&self.meta_path, file, size, staged).is_err() {
            self.mark_meta_failed();
            return FlushStats { committed: None, clean: false };
        }
        // Age the symbol-GC cooling queue: zero-ref bindings become
        // sweepable only after two of these boundaries, which guarantees
        // the shard record that released them is durable first.
        symbols.write().commit_durable();
        FlushStats { committed: Some(seq), clean }
    }

    /// Whether `shard`'s log has outgrown its segment and is idle (nothing
    /// staged), i.e. it is time to snapshot + truncate it.
    pub(crate) fn wants_rotation(&self, shard: usize) -> bool {
        if self.shard_failed(shard) {
            return false;
        }
        self.shards
            .get(shard)
            .map(|slot| {
                let log = slot.lock();
                log.staged.is_empty() && log.size > self.segment_bytes
            })
            .unwrap_or(false)
    }

    /// Installs `snapshot` (already encoded via [`encode_shard_snapshot`])
    /// for `shard` and truncates its log.  Ordering makes every crash point
    /// safe: the meta log is fsynced first (under [`FsyncMode::OnRotation`]
    /// the symbols and commits the snapshot references may still sit in the
    /// page cache — a snapshot durable without them would be orphaned by a
    /// power crash), then the snapshot replaces atomically, and a log that
    /// survives an interrupted truncation only holds rounds `<= base_seq`,
    /// which replay skips.
    pub(crate) fn install_shard_snapshot(&self, shard: usize, snapshot: &[u8]) -> io::Result<()> {
        let (Some(snap_path), Some(wal_path)) =
            (self.shard_snap_paths.get(shard), self.shard_paths.get(shard))
        else {
            return Ok(());
        };
        {
            let mut meta = self.meta.lock();
            if let Some(file) = meta.file.as_mut() {
                let watch = Stopwatch::start();
                file.sync()?;
                probes::WAL_FSYNC_NS.record_ns(watch.elapsed_ns());
            }
        }
        self.fs.write_atomic(snap_path, snapshot)?;
        let Some(slot) = self.shards.get(shard) else {
            return Ok(());
        };
        let mut log = slot.lock();
        self.fs.truncate(wal_path, 0)?;
        log.size = 0;
        Ok(())
    }

    /// Rotates the meta log once it outgrows the segment bound: sweeps the
    /// symbol table (rotation is the only GC point, so segment snapshots
    /// stay self-consistent), then writes a sparse symbol snapshot — every
    /// live `(id, string)` binding plus the sweep epoch and `committed`
    /// (the round the caller just committed) — and truncates `meta.wal`.
    /// Errors are swallowed (rotation retries next round); only the
    /// truncation failing after a successful snapshot replace fails the
    /// meta log, because the stale tail would otherwise resurrect on
    /// recovery.  A crash *between* the snapshot replace and the truncation
    /// leaves deltas in `meta.wal` that overlap the snapshot; recovery
    /// applies bindings last-wins in file order, so the overlap is
    /// harmless.  Sweeping before a snapshot write that then fails is also
    /// safe: the stale snapshot merely carries extra unreferenced bindings,
    /// which the next recovery parks back in the cooling queue.
    pub(crate) fn maybe_rotate_meta(&self, symbols: &RwLock<SymbolTable>, committed: u64) -> usize {
        let mut meta = self.meta.lock();
        if self.meta_failed() || !meta.staged.is_empty() || meta.size <= self.segment_bytes {
            return 0;
        }
        let mut buf = Vec::new();
        // The symbol write lock is held across the snapshot install so no
        // binding can be interned between the capture below and the
        // `clear_dirty` that declares every pending delta subsumed by it.
        let mut table = symbols.write();
        let swept = table.sweep();
        let live = table.live_bindings();
        let at = begin_record(&mut buf);
        buf.push(REC_SNAP_SYMBOLS);
        put_u64(&mut buf, table.epoch());
        put_u64(&mut buf, committed);
        put_u32(&mut buf, live.len() as u32);
        for (raw, s) in &live {
            put_u32(&mut buf, *raw);
            put_u32(&mut buf, s.len() as u32);
            buf.extend_from_slice(s.as_bytes());
        }
        end_record(&mut buf, at);
        if self.fs.write_atomic(&self.meta_snap_path, &buf).is_err() {
            return swept;
        }
        if self.fs.truncate(&self.meta_path, 0).is_err() {
            self.mark_meta_failed();
            return swept;
        }
        table.clear_dirty();
        meta.size = 0;
        meta.file = None;
        swept
    }
}

/// Staging handle for one shard's WAL buffer, held alongside the shard's
/// data lock while a round's mutations are applied.
pub(crate) struct ShardWriter<'a> {
    wal: &'a Wal,
    log: MutexGuard<'a, ShardLog>,
}

impl ShardWriter<'_> {
    /// Reserves room for `extra` staged bytes and lazily opens the round:
    /// the first record of an empty buffer is the `ROUND(seq)` marker.
    /// The load below cannot observe a round whose batch for this shard
    /// was already drained: [`Wal::flush`] advances `next_seq` before it
    /// takes any shard's WAL lock, so once the drain released the lock
    /// this staging path is acquiring, the advanced value is visible.
    fn ensure_round(&mut self, extra: usize) {
        let seq = self.wal.next_seq.load(Ordering::Relaxed);
        let buf = &mut self.log.staged;
        reserve_staged(buf, extra + FRAME_BYTES + 9);
        if buf.is_empty() {
            let at = begin_record(buf);
            buf.push(REC_ROUND);
            put_u64(buf, seq);
            end_record(buf, at);
        }
    }

    /// Stages a series-creation record.
    pub(crate) fn series(
        &mut self,
        id: u64,
        name_sym: SymbolId,
        label_syms: &[(SymbolId, SymbolId)],
    ) {
        let need = FRAME_BYTES + 17 + label_syms.len() * 8;
        self.ensure_round(need);
        self.log.close_samples();
        let buf = &mut self.log.staged;
        let at = begin_record(buf);
        buf.push(REC_SERIES);
        put_u64(buf, id);
        put_u32(buf, name_sym.as_u32());
        put_u32(buf, label_syms.len() as u32);
        for (k, v) in label_syms {
            put_u32(buf, k.as_u32());
            put_u32(buf, v.as_u32());
        }
        end_record(buf, at);
    }

    /// Stages one attempted append (accepted *or* rejected — replay re-runs
    /// the same ingest logic, so rejection is reproduced, not recorded).
    /// Consecutive samples at the same timestamp share one `REC_SAMPLES`
    /// batch frame, sealed when another record type (or a different
    /// timestamp) is staged or the round flushes — the per-sample cost is a
    /// 12-byte copy, with the timestamp and frame CRC paid once per batch.
    pub(crate) fn sample(&mut self, local: u32, timestamp_ms: u64, value: f64) {
        self.ensure_round(FRAME_BYTES + SAMPLE_HEADER_BYTES + SAMPLE_ENTRY_BYTES);
        let log = &mut *self.log;
        match log.open_samples {
            Some((_, ts)) if ts == timestamp_ms => {}
            _ => {
                log.close_samples();
                let at = begin_record(&mut log.staged);
                log.staged.push(REC_SAMPLES);
                put_u32(&mut log.staged, 0); // entry count, patched on close
                put_u64(&mut log.staged, timestamp_ms);
                log.open_samples = Some((at, timestamp_ms));
            }
        }
        let mut entry = [0u8; SAMPLE_ENTRY_BYTES];
        // teemon-verify: allow(no-index): fixed-size split of a stack array.
        entry[..4].copy_from_slice(&local.to_le_bytes());
        // teemon-verify: allow(no-index): fixed-size split of a stack array.
        entry[4..].copy_from_slice(&value.to_bits().to_le_bytes());
        log.staged.extend_from_slice(&entry);
    }

    /// Stages a drop of the series at `victims` (pre-removal local indexes,
    /// ascending — the same order the live path removes them in).
    pub(crate) fn drop_locals(&mut self, victims: &[u32]) {
        let need = FRAME_BYTES + 5 + victims.len() * 4;
        self.ensure_round(need);
        self.log.close_samples();
        let buf = &mut self.log.staged;
        let at = begin_record(buf);
        buf.push(REC_DROP);
        put_u32(buf, victims.len() as u32);
        for v in victims {
            put_u32(buf, *v);
        }
        end_record(buf, at);
    }

    /// Stages a retention pass at `cutoff_ms`.
    pub(crate) fn retention(&mut self, cutoff_ms: u64) {
        self.ensure_round(FRAME_BYTES + 9);
        self.log.close_samples();
        let buf = &mut self.log.staged;
        let at = begin_record(buf);
        buf.push(REC_RETENTION);
        put_u64(buf, cutoff_ms);
        end_record(buf, at);
    }
}

// ---------------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------------

/// Borrowed view of one series, assembled by the storage layer for
/// [`encode_shard_snapshot`].
pub(crate) struct SnapSeriesRef<'a> {
    pub(crate) id: u64,
    pub(crate) name_sym: SymbolId,
    pub(crate) label_syms: &'a [(SymbolId, SymbolId)],
    pub(crate) ever_appended: bool,
    pub(crate) head: &'a [Sample],
    pub(crate) sealed: &'a [Arc<Chunk>],
}

/// Chunk payload kind tags inside snapshot records.
const CHUNK_RAW: u8 = 0;
const CHUNK_GORILLA: u8 = 1;

fn put_samples(buf: &mut Vec<u8>, samples: &[Sample]) {
    for s in samples {
        put_u64(buf, s.timestamp_ms);
        put_u64(buf, s.value.to_bits());
    }
}

/// Encodes a shard's full state as a snapshot file image: header, one record
/// per series (heads Gorilla-compressed where the codec accepts them, sealed
/// chunk payloads carried byte-identically), and a footer whose series count
/// proves the file complete.
pub(crate) fn encode_shard_snapshot(
    base_seq: u64,
    generation: u64,
    rejected: u64,
    series: &[SnapSeriesRef<'_>],
) -> Vec<u8> {
    let mut buf = Vec::new();
    let at = begin_record(&mut buf);
    buf.push(REC_SNAP_HEADER);
    put_u64(&mut buf, base_seq);
    put_u64(&mut buf, generation);
    put_u64(&mut buf, rejected);
    put_u32(&mut buf, series.len() as u32);
    end_record(&mut buf, at);

    for s in series {
        let at = begin_record(&mut buf);
        buf.push(REC_SNAP_SERIES);
        put_u64(&mut buf, s.id);
        put_u32(&mut buf, s.name_sym.as_u32());
        buf.push(u8::from(s.ever_appended));
        put_u32(&mut buf, s.label_syms.len() as u32);
        for (k, v) in s.label_syms {
            put_u32(&mut buf, k.as_u32());
            put_u32(&mut buf, v.as_u32());
        }
        // Head: Gorilla when the codec accepts it, raw samples otherwise.
        put_u32(&mut buf, s.head.len() as u32);
        match chunk_codec::encode(s.head) {
            Some(block) if !s.head.is_empty() => {
                buf.push(CHUNK_GORILLA);
                put_u32(&mut buf, block.len() as u32);
                buf.extend_from_slice(&block);
            }
            _ => {
                buf.push(CHUNK_RAW);
                put_samples(&mut buf, s.head);
            }
        }
        // Sealed chunks, payloads verbatim so reopen is byte-identical.
        put_u32(&mut buf, s.sealed.len() as u32);
        for chunk in s.sealed {
            match &chunk.data {
                ChunkData::Raw(samples) => {
                    buf.push(CHUNK_RAW);
                    put_u32(&mut buf, chunk.count);
                    put_u64(&mut buf, chunk.start_ms);
                    put_u64(&mut buf, chunk.end_ms);
                    put_u32(&mut buf, (samples.len() * 16) as u32);
                    put_samples(&mut buf, samples);
                }
                ChunkData::Compressed(bytes) => {
                    buf.push(CHUNK_GORILLA);
                    put_u32(&mut buf, chunk.count);
                    put_u64(&mut buf, chunk.start_ms);
                    put_u64(&mut buf, chunk.end_ms);
                    put_u32(&mut buf, bytes.len() as u32);
                    buf.extend_from_slice(bytes);
                }
            }
        }
        end_record(&mut buf, at);
    }

    let at = begin_record(&mut buf);
    buf.push(REC_SNAP_FOOTER);
    put_u32(&mut buf, series.len() as u32);
    end_record(&mut buf, at);
    buf
}

/// One series restored from a shard snapshot.
pub(crate) struct SnapSeries {
    pub(crate) id: u64,
    pub(crate) name_sym: SymbolId,
    pub(crate) label_syms: Vec<(SymbolId, SymbolId)>,
    pub(crate) ever_appended: bool,
    pub(crate) head: Vec<Sample>,
    pub(crate) sealed: Vec<Chunk>,
}

/// A decoded shard snapshot: the state as of round `base_seq`.
pub(crate) struct ShardSnapshot {
    pub(crate) base_seq: u64,
    pub(crate) generation: u64,
    pub(crate) rejected: u64,
    pub(crate) series: Vec<SnapSeries>,
}

fn take_samples(cur: &mut Cur<'_>, count: u32) -> Option<Vec<Sample>> {
    if count > MAX_COUNT {
        return None;
    }
    let mut samples = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let timestamp_ms = cur.u64()?;
        let value = f64::from_bits(cur.u64()?);
        samples.push(Sample { timestamp_ms, value });
    }
    Some(samples)
}

fn decode_snap_series(payload: &[u8]) -> Option<SnapSeries> {
    let mut cur = Cur::new(payload);
    let id = cur.u64()?;
    let name_sym = SymbolId::from_u32(cur.u32()?);
    let ever_appended = cur.u8()? != 0;
    let label_count = cur.u32()?;
    if label_count > MAX_COUNT {
        return None;
    }
    let mut label_syms = Vec::with_capacity(label_count as usize);
    for _ in 0..label_count {
        let k = SymbolId::from_u32(cur.u32()?);
        let v = SymbolId::from_u32(cur.u32()?);
        label_syms.push((k, v));
    }
    let head_count = cur.u32()?;
    if head_count > MAX_COUNT {
        return None;
    }
    let head = match cur.u8()? {
        CHUNK_RAW => take_samples(&mut cur, head_count)?,
        CHUNK_GORILLA => {
            let len = cur.u32()? as usize;
            let block = cur.take(len)?;
            let samples = chunk_codec::decode(block, head_count as usize);
            if samples.len() != head_count as usize {
                return None;
            }
            samples
        }
        _ => return None,
    };
    let sealed_count = cur.u32()?;
    if sealed_count > MAX_COUNT {
        return None;
    }
    let mut sealed = Vec::with_capacity(sealed_count as usize);
    for _ in 0..sealed_count {
        let kind = cur.u8()?;
        let count = cur.u32()?;
        if count > MAX_COUNT {
            return None;
        }
        let start_ms = cur.u64()?;
        let end_ms = cur.u64()?;
        let len = cur.u32()? as usize;
        let data = match kind {
            CHUNK_RAW => {
                if len != count as usize * 16 {
                    return None;
                }
                ChunkData::Raw(take_samples(&mut cur, count)?)
            }
            CHUNK_GORILLA => ChunkData::Compressed(cur.take(len)?.to_vec()),
            _ => return None,
        };
        sealed.push(Chunk { start_ms, end_ms, count, data });
    }
    cur.done().then_some(SnapSeries { id, name_sym, label_syms, ever_appended, head, sealed })
}

fn decode_shard_snapshot(bytes: &[u8]) -> Option<ShardSnapshot> {
    let mut scanner = FrameScanner::new(bytes);
    let (kind, payload) = scanner.next()?;
    if kind != REC_SNAP_HEADER {
        return None;
    }
    let mut cur = Cur::new(payload);
    let base_seq = cur.u64()?;
    let generation = cur.u64()?;
    let rejected = cur.u64()?;
    let series_count = cur.u32()?;
    if !cur.done() || series_count > MAX_COUNT {
        return None;
    }
    let mut series = Vec::with_capacity(series_count as usize);
    for _ in 0..series_count {
        let (kind, payload) = scanner.next()?;
        if kind != REC_SNAP_SERIES {
            return None;
        }
        series.push(decode_snap_series(payload)?);
    }
    let (kind, payload) = scanner.next()?;
    if kind != REC_SNAP_FOOTER {
        return None;
    }
    let mut cur = Cur::new(payload);
    if cur.u32()? != series_count || !cur.done() || scanner.valid_len != bytes.len() {
        return None;
    }
    Some(ShardSnapshot { base_seq, generation, rejected, series })
}

/// A decoded meta snapshot: the live `(raw id, string)` bindings, the commit
/// seq the snapshot is based on, and the sweep epoch it captured.
type MetaSnap = (Vec<(u32, String)>, u64, u64);

fn decode_meta_snap(bytes: &[u8]) -> Option<MetaSnap> {
    let mut scanner = FrameScanner::new(bytes);
    let (kind, payload) = scanner.next()?;
    if kind != REC_SNAP_SYMBOLS || scanner.valid_len != bytes.len() {
        return None;
    }
    let mut cur = Cur::new(payload);
    let epoch = cur.u64()?;
    let committed = cur.u64()?;
    let count = cur.u32()?;
    if count > MAX_COUNT {
        return None;
    }
    let mut bindings = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let raw = cur.u32()?;
        let len = cur.u32()? as usize;
        let s = std::str::from_utf8(cur.take(len)?).ok()?;
        bindings.push((raw, s.to_owned()));
    }
    cur.done().then_some((bindings, committed, epoch))
}

// ---------------------------------------------------------------------------
// Recovery
// ---------------------------------------------------------------------------

/// One replayable shard-log operation, in file order.
pub(crate) enum ShardOp {
    /// Start of round `seq`; following ops belong to it until the next round.
    Round(u64),
    /// Series creation.
    Series { id: u64, name_sym: SymbolId, label_syms: Vec<(SymbolId, SymbolId)> },
    /// One attempted append (replay re-runs acceptance).
    Sample { local: u32, timestamp_ms: u64, value: f64 },
    /// `drop_series` removal of these pre-removal local indexes.
    Drop { victims: Vec<u32> },
    /// Retention pass at this cutoff.
    Retention { cutoff_ms: u64 },
}

/// What recovery found for one shard.
pub(crate) enum ShardRecovery {
    /// No durable state at all.
    Empty,
    /// The shard's snapshot was unreadable: it comes up empty and flagged,
    /// leaving the other shards untouched.
    Failed,
    /// Snapshot (if any) + the log ops to replay over it.
    Loaded(ShardLoad),
}

/// The replay input for one shard.
pub(crate) struct ShardLoad {
    pub(crate) snapshot: Option<ShardSnapshot>,
    pub(crate) ops: Vec<ShardOp>,
}

/// Everything [`Wal::open`] recovered; the storage layer replays it.
pub(crate) struct Recovery {
    /// Symbol bindings in file order (snapshot first, then `meta.wal`
    /// deltas).  A slot may appear more than once — an interrupted rotation
    /// overlaps, and a swept-and-reused slot is legitimately rebound — and
    /// the **last** binding for a slot wins, exactly as the live table ended.
    pub(crate) bindings: Vec<(u32, String)>,
    /// Sweep epoch recorded by the last meta rotation.
    pub(crate) epoch: u64,
    /// Highest committed round; ops in rounds beyond it are dropped.
    pub(crate) committed: u64,
    /// Per-shard recovery input, `SHARD_COUNT` entries.
    pub(crate) shards: Vec<ShardRecovery>,
}

/// Decodes one CRC-valid shard record into `ops` (a `REC_SAMPLES` batch
/// expands to one [`ShardOp::Sample`] per entry).  Returns `false` — with
/// `ops` rolled back — when the payload fails semantic validation.
fn decode_shard_ops(kind: u8, payload: &[u8], ops: &mut Vec<ShardOp>) -> bool {
    let before = ops.len();
    let mut cur = Cur::new(payload);
    let ok = (|| {
        match kind {
            REC_ROUND => ops.push(ShardOp::Round(cur.u64()?)),
            REC_SERIES => {
                let id = cur.u64()?;
                let name_sym = SymbolId::from_u32(cur.u32()?);
                let count = cur.u32()?;
                if count > MAX_COUNT {
                    return None;
                }
                let mut label_syms = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    let k = SymbolId::from_u32(cur.u32()?);
                    let v = SymbolId::from_u32(cur.u32()?);
                    label_syms.push((k, v));
                }
                ops.push(ShardOp::Series { id, name_sym, label_syms });
            }
            REC_SAMPLES => {
                let count = cur.u32()?;
                if count > MAX_COUNT {
                    return None;
                }
                let timestamp_ms = cur.u64()?;
                ops.reserve(count as usize);
                for _ in 0..count {
                    ops.push(ShardOp::Sample {
                        local: cur.u32()?,
                        timestamp_ms,
                        value: f64::from_bits(cur.u64()?),
                    });
                }
            }
            REC_DROP => {
                let count = cur.u32()?;
                if count > MAX_COUNT {
                    return None;
                }
                let mut victims = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    victims.push(cur.u32()?);
                }
                ops.push(ShardOp::Drop { victims });
            }
            REC_RETENTION => ops.push(ShardOp::Retention { cutoff_ms: cur.u64()? }),
            _ => return None,
        }
        cur.done().then_some(())
    })()
    .is_some();
    if !ok {
        ops.truncate(before);
    }
    ok
}

/// Scans one shard log image into ops, stopping at the first invalid frame,
/// the first CRC-valid record that fails semantic decoding, *or* the first
/// `ROUND` marker whose sequence exceeds `committed` (all three are treated
/// as the salvage point).
///
/// The round cutoff matters beyond tidiness: a torn flush leaves physically
/// intact records from an uncommitted round at the tail of the file, and the
/// next run's flush commits under the *same* sequence number (`next_seq`
/// restarts at `committed + 1`).  If the stale tail survived, the new COMMIT
/// would retroactively confirm records — drops included — that the crash
/// already discarded, so the cutoff must be enforced here, where the caller
/// truncates the file, not merely at replay.  Rounds within one file are
/// strictly increasing, so everything past the first over-committed marker
/// is equally uncommitted.
fn scan_shard_log(bytes: &[u8], committed: u64) -> (Vec<ShardOp>, usize) {
    let mut ops = Vec::new();
    let mut scanner = FrameScanner::new(bytes);
    let mut valid = 0;
    while let Some((kind, payload)) = scanner.next() {
        let before = ops.len();
        if !decode_shard_ops(kind, payload, &mut ops) {
            break;
        }
        if matches!(ops.get(before), Some(&ShardOp::Round(seq)) if seq > committed) {
            ops.truncate(before);
            break;
        }
        valid = scanner.valid_len;
    }
    (ops, valid)
}

/// Counts a salvage event: `dropped` bytes of `path` did not survive
/// validation and are being cut off.
fn note_salvage(path: &Path, dropped: u64) {
    probes::WAL_SALVAGE.inc();
    probes::WAL_SALVAGED_BYTES.add(dropped);
    let _ = path;
}

impl Wal {
    /// Opens (or creates) the durability directory and recovers its
    /// contents.  Never panics on corrupt input: damaged log tails are
    /// salvaged by truncation, an unreadable shard snapshot fails only that
    /// shard, and an unreadable meta snapshot fails the whole log (symbols
    /// are global) — in every case the database still opens.
    pub(crate) fn open(dir: &Path, options: &DurabilityOptions) -> io::Result<(Self, Recovery)> {
        let fs = Arc::clone(&options.fs);
        fs.create_dir_all(dir)?;
        let meta_path = dir.join("meta.wal");
        let meta_snap_path = dir.join("meta.snap");
        let shard_paths: [PathBuf; SHARD_COUNT] =
            std::array::from_fn(|i| dir.join(format!("shard-{i:02}.wal")));
        let shard_snap_paths: [PathBuf; SHARD_COUNT] =
            std::array::from_fn(|i| dir.join(format!("shard-{i:02}.snap")));

        let mut bindings: Vec<(u32, String)> = Vec::new();
        let mut epoch = 0u64;
        let mut committed = 0u64;
        let mut meta_ok = true;
        let mut meta_size = 0u64;

        if let Some(bytes) = fs.read(&meta_snap_path)? {
            match decode_meta_snap(&bytes) {
                Some((snap_bindings, base, snap_epoch)) => {
                    bindings = snap_bindings;
                    committed = base;
                    epoch = snap_epoch;
                }
                None => {
                    note_salvage(&meta_snap_path, bytes.len() as u64);
                    meta_ok = false;
                }
            }
        }
        if meta_ok {
            if let Some(bytes) = fs.read(&meta_path)? {
                let mut scanner = FrameScanner::new(&bytes);
                let mut valid = 0;
                // Symbol deltas are written *before* the COMMIT of the flush
                // that captured them, so a delta with no durable COMMIT after
                // it belongs to a round the crash discarded — applying it
                // would resurrect bindings the acked state never had.  Hold
                // each batch until a COMMIT confirms it, and truncate the log
                // at the last confirmed frame so a future run's COMMIT cannot
                // retroactively confirm an orphaned delta.
                //
                // Deltas confirmed at or below the snapshot's base round are
                // *discarded*, not applied: a crash between a rotation's
                // snapshot install and its `meta.wal` truncation leaves the
                // pre-rotation log intact, and those deltas may bind slots
                // the rotation's sweep just freed — replaying them would
                // resurrect swept bindings the snapshot (the more current
                // capture of the same rounds) deliberately omits.
                let snap_base = committed;
                let mut pending: Vec<(u32, String)> = Vec::new();
                while let Some((kind, payload)) = scanner.next() {
                    let mut cur = Cur::new(payload);
                    let decoded = match kind {
                        REC_SYMBOLS => {
                            let count = cur.u32().filter(|&c| c <= MAX_COUNT);
                            // Buffer the batch so a record that fails half-way
                            // leaves the pending list untouched.
                            let mut batch = Vec::new();
                            let ok = count
                                .map(|count| {
                                    for _ in 0..count {
                                        let Some(id) = cur.u32() else { return false };
                                        let Some(len) = cur.u32() else { return false };
                                        let Some(raw) = cur.take(len as usize) else {
                                            return false;
                                        };
                                        let Ok(s) = std::str::from_utf8(raw) else {
                                            return false;
                                        };
                                        batch.push((id, s.to_owned()));
                                    }
                                    cur.done()
                                })
                                .unwrap_or(false);
                            if ok {
                                pending.append(&mut batch);
                            }
                            ok
                        }
                        REC_COMMIT => cur
                            .u64()
                            .map(|seq| {
                                committed = committed.max(seq);
                                if seq > snap_base {
                                    bindings.append(&mut pending);
                                } else {
                                    pending.clear();
                                }
                                cur.done()
                            })
                            .unwrap_or(false),
                        _ => false,
                    };
                    if !decoded {
                        break;
                    }
                    if kind == REC_COMMIT {
                        valid = scanner.valid_len;
                    }
                }
                meta_size = valid as u64;
                if valid < bytes.len() {
                    note_salvage(&meta_path, (bytes.len() - valid) as u64);
                    if fs.truncate(&meta_path, valid as u64).is_err() {
                        meta_ok = false;
                    }
                }
            }
        }

        let mut shards_rec = Vec::with_capacity(SHARD_COUNT);
        let mut shard_sizes = [0u64; SHARD_COUNT];
        for i in 0..SHARD_COUNT {
            let (Some(wal_path), Some(snap_path), Some(size_slot)) =
                (shard_paths.get(i), shard_snap_paths.get(i), shard_sizes.get_mut(i))
            else {
                shards_rec.push(ShardRecovery::Empty);
                continue;
            };
            if !meta_ok {
                // Without the symbol table nothing referencing it can be
                // trusted; a shard with any durable state is flagged.
                let has_data = fs.read(snap_path)?.map(|b| !b.is_empty()).unwrap_or(false)
                    || fs.read(wal_path)?.map(|b| !b.is_empty()).unwrap_or(false);
                shards_rec.push(if has_data {
                    ShardRecovery::Failed
                } else {
                    ShardRecovery::Empty
                });
                continue;
            }
            let snapshot = match fs.read(snap_path)? {
                Some(bytes) => match decode_shard_snapshot(&bytes) {
                    Some(snap) => Some(snap),
                    None => {
                        note_salvage(snap_path, bytes.len() as u64);
                        shards_rec.push(ShardRecovery::Failed);
                        continue;
                    }
                },
                None => None,
            };
            let (ops, valid, total) = match fs.read(wal_path)? {
                Some(bytes) => {
                    let (ops, valid) = scan_shard_log(&bytes, committed);
                    (ops, valid, bytes.len())
                }
                None => (Vec::new(), 0, 0),
            };
            if valid < total {
                note_salvage(wal_path, (total - valid) as u64);
                if fs.truncate(wal_path, valid as u64).is_err() {
                    shards_rec.push(ShardRecovery::Failed);
                    continue;
                }
            }
            *size_slot = valid as u64;
            if snapshot.is_none() && ops.is_empty() {
                shards_rec.push(ShardRecovery::Empty);
            } else {
                shards_rec.push(ShardRecovery::Loaded(ShardLoad { snapshot, ops }));
            }
        }

        let mut failed = 0u64;
        if !meta_ok {
            failed |= META_FAILED_BIT;
            bindings = Vec::new();
            epoch = 0;
            committed = 0;
        }
        for (i, rec) in shards_rec.iter().enumerate() {
            if matches!(rec, ShardRecovery::Failed) && i < SHARD_COUNT {
                failed |= 1 << i;
            }
        }

        // An interrupted meta rotation can leave `meta.wal` holding symbol
        // deltas that overlap the snapshot just installed (the crash landed
        // between the atomic snapshot replace and the truncation), so the
        // recovered list may bind the same slot more than once — as may a
        // legitimate sweep-and-reuse.  No dedup here: the storage layer
        // installs the bindings in file order and the last binding for a
        // slot wins, which is exactly the state the live table ended in.
        let wal = Wal {
            fs,
            fsync: options.fsync,
            segment_bytes: options.segment_bytes,
            next_seq: AtomicU64::new(committed + 1),
            failed: AtomicU64::new(failed),
            meta: Mutex::named(
                MetaLog { file: None, staged: Vec::new(), size: meta_size },
                LockClass::new("tsdb.wal.meta"),
            ),
            shards: std::array::from_fn(|i| {
                Mutex::named(
                    ShardLog {
                        file: None,
                        staged: Vec::new(),
                        size: shard_sizes.get(i).copied().unwrap_or(0),
                        open_samples: None,
                    },
                    LockClass::new("tsdb.wal.shard").instance(i as u32),
                )
            }),
            meta_path,
            meta_snap_path,
            shard_paths,
            shard_snap_paths,
        };
        Ok((wal, Recovery { bindings, epoch, committed, shards: shards_rec }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        // The standard CRC-32 (IEEE 802.3) check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    fn frame(kind: u8, body: &[u8]) -> Vec<u8> {
        let mut buf = Vec::new();
        let at = begin_record(&mut buf);
        buf.push(kind);
        buf.extend_from_slice(body);
        end_record(&mut buf, at);
        buf
    }

    #[test]
    fn frames_round_trip_through_the_scanner() {
        let mut log = frame(REC_ROUND, &7u64.to_le_bytes());
        log.extend_from_slice(&frame(REC_RETENTION, &42u64.to_le_bytes()));
        let mut scanner = FrameScanner::new(&log);
        assert!(
            matches!(scanner.next(), Some((REC_ROUND, payload)) if payload == 7u64.to_le_bytes())
        );
        assert!(matches!(scanner.next(), Some((REC_RETENTION, _))));
        assert!(scanner.next().is_none());
        assert_eq!(scanner.valid_len, log.len());
    }

    #[test]
    fn scanner_salvages_at_torn_and_corrupt_frames() {
        let first = frame(REC_ROUND, &1u64.to_le_bytes());
        let second = frame(REC_ROUND, &2u64.to_le_bytes());
        // Torn tail: any strict prefix of the second frame is rejected and
        // the salvage point is the end of the first.
        for cut in 0..second.len() {
            let mut log = first.clone();
            log.extend_from_slice(second.get(..cut).unwrap_or(&[]));
            let mut scanner = FrameScanner::new(&log);
            assert!(scanner.next().is_some());
            assert!(scanner.next().is_none(), "cut at {cut} must not verify");
            assert_eq!(scanner.valid_len, first.len());
        }
        // A flipped bit anywhere in the second frame fails its CRC (or its
        // length bound) and salvages at the same point.
        for bit in 0..second.len() * 8 {
            let mut log = first.clone();
            let mut broken = second.clone();
            if let Some(byte) = broken.get_mut(bit / 8) {
                *byte ^= 1 << (bit % 8);
            }
            log.extend_from_slice(&broken);
            let mut scanner = FrameScanner::new(&log);
            assert!(scanner.next().is_some());
            assert!(scanner.next().is_none(), "bit flip at {bit} must not verify");
            assert_eq!(scanner.valid_len, first.len());
        }
    }

    #[test]
    fn fault_fs_crash_models_honour_sync_points() {
        let fs = FaultFs::new();
        let path = Path::new("/x.wal");
        let (mut file, len) = fs.open_append(path).expect("FaultFs open");
        assert_eq!(len, 0);
        file.append(b"aaaa").expect("append");
        file.sync().expect("sync");
        file.append(b"bbbb").expect("append");
        // No sync after "bbbb".
        assert_eq!(fs.total_write_bytes(), 8);

        // Torn with a full budget keeps everything written...
        let torn = fs.crashed(8, CrashModel::Torn);
        assert_eq!(torn.file_len(path), Some(8));
        // ...a smaller budget tears mid-write...
        let torn = fs.crashed(6, CrashModel::Torn);
        assert_eq!(torn.file_len(path), Some(6));
        // ...and SyncedOnly drops everything after the last fsync.
        let synced = fs.crashed(8, CrashModel::SyncedOnly);
        assert_eq!(synced.file_len(path), Some(4));

        // Atomic replaces are all-or-nothing and consume no byte budget —
        // but they still honour journal order: a budget that tears an
        // earlier write never reaches them.
        fs.write_atomic(Path::new("/y.snap"), b"snapshot").expect("atomic");
        let image = fs.crashed(8, CrashModel::SyncedOnly);
        assert_eq!(image.file_len(Path::new("/y.snap")), Some(8));
        assert_eq!(image.file_len(path), Some(4));
        let image = fs.crashed(0, CrashModel::SyncedOnly);
        assert_eq!(image.file_len(Path::new("/y.snap")), None, "torn before the atomic");
    }

    #[test]
    fn op_boundary_crashes_split_non_append_operations() {
        let fs = FaultFs::new();
        let wal = Path::new("/m.wal");
        let snap = Path::new("/m.snap");
        let (mut file, _) = fs.open_append(wal).expect("FaultFs open");
        file.append(b"tail").expect("append");
        fs.write_atomic(snap, b"snapshot").expect("atomic");
        fs.truncate(wal, 0).expect("truncate");
        assert_eq!(fs.op_count(), 3);
        // The byte budget cannot separate the atomic replace from the
        // truncation that follows it: both ride on the last appended byte.
        let image = fs.crashed(4, CrashModel::Torn);
        assert_eq!(image.file_len(snap), Some(8));
        assert_eq!(image.file_len(wal), Some(0));
        // Op boundaries can: a crash after the snapshot install but before
        // the truncation — the window an interrupted rotation leaves.
        let image = fs.crashed_at_op(2, CrashModel::Torn);
        assert_eq!(image.file_len(snap), Some(8));
        assert_eq!(image.file_len(wal), Some(4), "log must not be truncated yet");
        let image = fs.crashed_at_op(1, CrashModel::Torn);
        assert_eq!(image.file_len(snap), None, "crash before the atomic install");
        assert_eq!(image.file_len(wal), Some(4));
    }

    #[test]
    fn failpoint_writer_injects_short_writes_and_fsync_errors() {
        let fs = FaultFs::new();
        let path = Path::new("/fp.wal");
        let (inner, _) = fs.open_append(path).expect("FaultFs open");
        let mut writer = FailpointWriter::new(inner, Some(1), Some(2));
        writer.append(b"12345678").expect("first write passes");
        let err = writer.append(b"12345678").expect_err("second write fails");
        assert_eq!(err.kind(), io::ErrorKind::Other);
        // The failing write left half the bytes behind — a torn tail.
        assert_eq!(fs.file_len(path), Some(12));
        writer.sync().expect("first fsync passes");
        writer.sync().expect("second fsync passes");
        assert!(writer.sync().is_err(), "third fsync must fail");
    }

    #[test]
    fn shard_snapshots_round_trip_byte_identically() {
        let head = vec![
            Sample { timestamp_ms: 1_000, value: 1.5 },
            Sample { timestamp_ms: 2_000, value: -2.25 },
        ];
        let sealed_samples: Vec<Sample> =
            (0..8).map(|i| Sample { timestamp_ms: 10_000 + i * 500, value: i as f64 }).collect();
        let gorilla = Arc::new(Chunk::sealed(sealed_samples.clone(), true));
        let raw = Arc::new(Chunk::sealed(sealed_samples.clone(), false));
        let series = [SnapSeriesRef {
            id: 9,
            name_sym: SymbolId::from_u32(3),
            label_syms: &[(SymbolId::from_u32(1), SymbolId::from_u32(2))],
            ever_appended: true,
            head: &head,
            sealed: &[Arc::clone(&gorilla), Arc::clone(&raw)],
        }];
        let bytes = encode_shard_snapshot(5, 2, 7, &series);
        let snap = decode_shard_snapshot(&bytes).expect("decode");
        assert_eq!(snap.base_seq, 5);
        assert_eq!(snap.generation, 2);
        assert_eq!(snap.rejected, 7);
        assert_eq!(snap.series.len(), 1);
        let s = &snap.series[0];
        assert_eq!(s.id, 9);
        assert_eq!(s.name_sym, SymbolId::from_u32(3));
        assert_eq!(s.label_syms, vec![(SymbolId::from_u32(1), SymbolId::from_u32(2))]);
        assert!(s.ever_appended);
        assert_eq!(s.head, head);
        assert_eq!(s.sealed.len(), 2);
        // The Gorilla payload is carried verbatim: byte-identical restore.
        match (&s.sealed[0].data, &gorilla.data) {
            (ChunkData::Compressed(restored), ChunkData::Compressed(original)) => {
                assert_eq!(restored, original);
            }
            _ => panic!("sealed chunk must stay compressed"),
        }
        match &s.sealed[1].data {
            ChunkData::Raw(samples) => assert_eq!(samples, &sealed_samples),
            ChunkData::Compressed(_) => panic!("raw chunk must stay raw"),
        }
        // Any truncation of the image is rejected outright — a snapshot is
        // only trusted whole.
        for cut in 0..bytes.len() {
            assert!(decode_shard_snapshot(bytes.get(..cut).unwrap_or(&[])).is_none());
        }
    }
}
