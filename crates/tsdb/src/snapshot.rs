//! Zero-copy read handles over stored series.
//!
//! A [`SeriesSnapshot`] is what [`crate::TimeSeriesDb::select`] returns: the
//! series' sealed chunks shared by `Arc` (no sample is copied), the open head
//! chunk copied once (bounded by `chunk_size` samples), and the metric
//! name/label strings shared with the database's symbol table.  Taking a
//! snapshot is O(chunks) regardless of how many samples the series holds, and
//! the snapshot stays consistent while the database keeps ingesting.
//!
//! Reads go through [`SeriesSnapshot::at`] (binary search),
//! [`SeriesSnapshot::points_in`] (pre-sized range materialisation) or the
//! streaming [`SampleCursor`].

use std::sync::Arc;

use teemon_metrics::Labels;

use crate::series::{at_in_chunks, extend_range, Chunk, Sample, SeriesId};

/// An immutable, cheaply clonable view of one series at selection time.
#[derive(Debug, Clone)]
pub struct SeriesSnapshot {
    pub(crate) id: SeriesId,
    name: Arc<str>,
    labels: Arc<[(Arc<str>, Arc<str>)]>,
    /// Time-ordered, non-empty chunks: the sealed chunks plus (when the
    /// series has unsealed samples) one chunk holding a copy of the head.
    chunks: Vec<Arc<Chunk>>,
}

impl SeriesSnapshot {
    pub(crate) fn new(
        id: SeriesId,
        name: Arc<str>,
        labels: Arc<[(Arc<str>, Arc<str>)]>,
        chunks: Vec<Arc<Chunk>>,
    ) -> Self {
        Self { id, name, labels, chunks }
    }

    /// The identifier the database assigned to this series (creation order).
    pub fn series_id(&self) -> SeriesId {
        self.id
    }

    /// The metric name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The labels as `(name, value)` pairs in sorted name order.
    pub fn labels(&self) -> impl Iterator<Item = (&str, &str)> {
        self.labels.iter().map(|(k, v)| (&**k, &**v))
    }

    /// The value of one label, if present.
    pub fn label_value(&self, name: &str) -> Option<&str> {
        label_value(&self.labels, name)
    }

    /// Materialises the labels as an owned [`Labels`] set (the boundary back
    /// into the string-keyed world; allocates).
    pub fn to_labels(&self) -> Labels {
        Labels::from_pairs(self.labels())
    }

    /// `name{labels}` in the same format the owned query results use, or the
    /// bare name for an unlabelled series.
    pub fn display_name(&self) -> String {
        if self.labels.is_empty() {
            self.name.to_string()
        } else {
            format!("{}{}", self.name, self.to_labels())
        }
    }

    /// Number of samples in the snapshot.
    pub fn len(&self) -> usize {
        self.chunks.iter().map(|c| c.samples.len()).sum()
    }

    /// `true` when the snapshot holds no samples.
    pub fn is_empty(&self) -> bool {
        self.chunks.is_empty()
    }

    /// Number of chunks backing the snapshot.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Timestamp of the oldest sample.
    pub fn first_timestamp(&self) -> Option<u64> {
        self.chunks.first().and_then(|c| c.start())
    }

    /// Timestamp of the newest sample.
    pub fn last_timestamp(&self) -> Option<u64> {
        self.chunks.last().and_then(|c| c.end())
    }

    /// The newest sample.
    pub fn last_sample(&self) -> Option<Sample> {
        self.chunks.last().and_then(|c| c.samples.last().copied())
    }

    /// The newest sample at or before `at_ms` (instant-query semantics);
    /// binary search over chunk bounds, then within the covering chunk.
    pub fn at(&self, at_ms: u64) -> Option<Sample> {
        at_in_chunks(&self.chunks, at_ms)
    }

    /// `(timestamp_ms, value)` points within `[start_ms, end_ms]`, pre-sized
    /// and in chronological order.
    pub fn points_in(&self, start_ms: u64, end_ms: u64) -> Vec<(u64, f64)> {
        let mut out = Vec::new();
        extend_range(&self.chunks, start_ms, end_ms, &mut out, |s| (s.timestamp_ms, s.value));
        out
    }

    /// A streaming cursor over the samples within `[start_ms, end_ms]`.
    /// Positions itself with the same chunk binary search as
    /// [`SeriesSnapshot::at`]; iteration never copies a chunk.
    pub fn cursor(&self, start_ms: u64, end_ms: u64) -> SampleCursor<'_> {
        let chunk = self.chunks.partition_point(|c| match c.end() {
            Some(end) => end < start_ms,
            None => false,
        });
        let sample = self
            .chunks
            .get(chunk)
            .map(|c| c.samples.partition_point(|s| s.timestamp_ms < start_ms))
            .unwrap_or(0);
        SampleCursor { chunks: &self.chunks, chunk, sample, end_ms }
    }

    /// A cursor over every sample in the snapshot.
    pub fn samples(&self) -> SampleCursor<'_> {
        self.cursor(0, u64::MAX)
    }
}

/// The value of `name` in an interned label slice (binary search; labels are
/// sorted by key).  Shared by snapshots and the storage engine's series.
pub(crate) fn label_value<'a>(labels: &'a [(Arc<str>, Arc<str>)], name: &str) -> Option<&'a str> {
    labels.binary_search_by(|(k, _)| (**k).cmp(name)).ok().map(|idx| &*labels[idx].1)
}

/// A forward cursor over one snapshot's samples, bounded by an end timestamp.
#[derive(Debug, Clone)]
pub struct SampleCursor<'a> {
    chunks: &'a [Arc<Chunk>],
    chunk: usize,
    sample: usize,
    end_ms: u64,
}

impl Iterator for SampleCursor<'_> {
    type Item = Sample;

    fn next(&mut self) -> Option<Sample> {
        loop {
            let chunk = self.chunks.get(self.chunk)?;
            match chunk.samples.get(self.sample) {
                Some(sample) if sample.timestamp_ms <= self.end_ms => {
                    self.sample += 1;
                    return Some(*sample);
                }
                Some(_) => return None,
                None => {
                    self.chunk += 1;
                    self.sample = 0;
                }
            }
        }
    }
}
