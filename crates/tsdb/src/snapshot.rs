//! Zero-copy read handles over stored series.
//!
//! A [`SeriesSnapshot`] is what [`crate::TimeSeriesDb::select`] returns: the
//! series' sealed chunks shared by `Arc` (no sample is copied or decoded),
//! the open head chunk copied once (bounded by `chunk_size` samples), and the
//! metric name/label strings shared with the database's symbol table.  Taking
//! a snapshot is O(chunks) regardless of how many samples the series holds,
//! and the snapshot stays consistent while the database keeps ingesting.
//!
//! Reads go through [`SeriesSnapshot::at`] (footer binary search, then a
//! bounded in-chunk search), [`SeriesSnapshot::points_in`] (pre-sized range
//! materialisation) or the streaming cursors.  Sealed chunks are
//! Gorilla-compressed (see [`crate::chunk_codec`]); the cursors decode them
//! incrementally — a few words of decoder state per chunk — so a range scan
//! never materialises a decompressed chunk, and chunks outside the queried
//! window are skipped by their `(start, end, count)` footers without touching
//! the compressed payload at all.
//!
//! [`SampleCursor`] borrows the snapshot; [`OwnedSampleCursor`] shares the
//! chunks by `Arc` instead, for long-lived consumers like the query engine's
//! sliding-window state machines that cannot hold a borrow.

use std::sync::Arc;

use teemon_metrics::Labels;

use crate::series::{at_in_chunks, extend_range, Chunk, ChunkIterState, Sample, SeriesId};

/// An immutable, cheaply clonable view of one series at selection time.
#[derive(Debug, Clone)]
pub struct SeriesSnapshot {
    pub(crate) id: SeriesId,
    name: Arc<str>,
    labels: Arc<[(Arc<str>, Arc<str>)]>,
    /// Time-ordered, non-empty chunks: the sealed chunks plus (when the
    /// series has unsealed samples) one chunk holding a copy of the head.
    chunks: Arc<[Arc<Chunk>]>,
}

impl SeriesSnapshot {
    pub(crate) fn new(
        id: SeriesId,
        name: Arc<str>,
        labels: Arc<[(Arc<str>, Arc<str>)]>,
        chunks: Vec<Arc<Chunk>>,
    ) -> Self {
        Self { id, name, labels, chunks: chunks.into() }
    }

    /// The identifier the database assigned to this series (creation order).
    pub fn series_id(&self) -> SeriesId {
        self.id
    }

    /// The metric name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The labels as `(name, value)` pairs in sorted name order.
    pub fn labels(&self) -> impl Iterator<Item = (&str, &str)> {
        self.labels.iter().map(|(k, v)| (&**k, &**v))
    }

    /// The value of one label, if present.
    pub fn label_value(&self, name: &str) -> Option<&str> {
        label_value(&self.labels, name)
    }

    /// Materialises the labels as an owned [`Labels`] set (the boundary back
    /// into the string-keyed world; allocates).
    pub fn to_labels(&self) -> Labels {
        Labels::from_pairs(self.labels())
    }

    /// `name{labels}` in the same format the owned query results use, or the
    /// bare name for an unlabelled series.
    pub fn display_name(&self) -> String {
        if self.labels.is_empty() {
            self.name.to_string()
        } else {
            format!("{}{}", self.name, self.to_labels())
        }
    }

    /// Number of samples in the snapshot (from chunk footers; never decodes).
    pub fn len(&self) -> usize {
        self.chunks.iter().map(|c| c.len()).sum()
    }

    /// `true` when the snapshot holds no samples.
    pub fn is_empty(&self) -> bool {
        self.chunks.is_empty()
    }

    /// Number of chunks backing the snapshot.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Bytes resident in the backing chunks (compressed size for sealed
    /// chunks, raw size for the head copy).
    pub fn resident_bytes(&self) -> usize {
        self.chunks.iter().map(|c| c.data_bytes()).sum()
    }

    /// Timestamp of the oldest sample.
    pub fn first_timestamp(&self) -> Option<u64> {
        self.chunks.first().and_then(|c| c.start())
    }

    /// Timestamp of the newest sample.
    pub fn last_timestamp(&self) -> Option<u64> {
        self.chunks.last().and_then(|c| c.end())
    }

    /// The newest sample.
    pub fn last_sample(&self) -> Option<Sample> {
        self.chunks.last().and_then(|c| c.last_sample())
    }

    /// The newest sample at or before `at_ms` (instant-query semantics):
    /// binary search over the chunk footers, then a bounded search inside the
    /// covering chunk.
    pub fn at(&self, at_ms: u64) -> Option<Sample> {
        at_in_chunks(&self.chunks, at_ms)
    }

    /// `(timestamp_ms, value)` points within `[start_ms, end_ms]`, pre-sized
    /// and in chronological order.
    pub fn points_in(&self, start_ms: u64, end_ms: u64) -> Vec<(u64, f64)> {
        let mut out = Vec::new();
        extend_range(&self.chunks, start_ms, end_ms, &mut out, |s| (s.timestamp_ms, s.value));
        out
    }

    /// A streaming cursor over the samples within `[start_ms, end_ms]`.
    /// Positions itself by the chunk footers; iteration decodes compressed
    /// chunks incrementally and never copies one.
    pub fn cursor(&self, start_ms: u64, end_ms: u64) -> SampleCursor<'_> {
        SampleCursor { chunks: &self.chunks, core: CursorCore::new(&self.chunks, start_ms, end_ms) }
    }

    /// A cursor over every sample in the snapshot.
    pub fn samples(&self) -> SampleCursor<'_> {
        self.cursor(0, u64::MAX)
    }

    /// Like [`SeriesSnapshot::cursor`], but sharing the chunks by `Arc` so
    /// the cursor is `'static` and can outlive the snapshot (the query
    /// engine's per-series sliding-window machines hold one for the whole
    /// range evaluation).
    pub fn owned_cursor(&self, start_ms: u64, end_ms: u64) -> OwnedSampleCursor {
        OwnedSampleCursor {
            core: CursorCore::new(&self.chunks, start_ms, end_ms),
            chunks: Arc::clone(&self.chunks),
        }
    }
}

/// The value of `name` in an interned label slice (binary search; labels are
/// sorted by key).  Shared by snapshots and the storage engine's series.
pub(crate) fn label_value<'a>(labels: &'a [(Arc<str>, Arc<str>)], name: &str) -> Option<&'a str> {
    labels.binary_search_by(|(k, _)| (**k).cmp(name)).ok().map(|idx| &*labels[idx].1)
}

/// Chunk-walking state shared by the borrowed and owning cursors: the index
/// of the chunk being read, the in-chunk position (slice index or streaming
/// decoder registers) and the `[start_ms, end_ms]` bounds.
#[derive(Debug, Clone)]
struct CursorCore {
    /// Index of the next chunk to open (the chunk being read is at
    /// `next_chunk - 1` while `state` is `Some`).
    next_chunk: usize,
    state: Option<ChunkIterState>,
    start_ms: u64,
    end_ms: u64,
    done: bool,
}

impl CursorCore {
    fn new(chunks: &[Arc<Chunk>], start_ms: u64, end_ms: u64) -> Self {
        // Skip chunks that end before the range starts via their footers.
        let next_chunk = chunks.partition_point(|c| match c.end() {
            Some(end) => end < start_ms,
            None => false,
        });
        Self { next_chunk, state: None, start_ms, end_ms, done: false }
    }

    fn next(&mut self, chunks: &[Arc<Chunk>]) -> Option<Sample> {
        if self.done {
            return None;
        }
        loop {
            if let Some(state) = &mut self.state {
                match state.next(&chunks[self.next_chunk - 1]) {
                    // Only the first opened chunk can straddle the range
                    // start; a compressed one is skipped sample by sample.
                    Some(s) if s.timestamp_ms < self.start_ms => continue,
                    Some(s) if s.timestamp_ms <= self.end_ms => return Some(s),
                    Some(_) => {
                        self.done = true;
                        return None;
                    }
                    None => self.state = None,
                }
            } else {
                match chunks.get(self.next_chunk) {
                    Some(chunk) => {
                        self.next_chunk += 1;
                        self.state = Some(ChunkIterState::positioned(chunk, self.start_ms));
                    }
                    None => {
                        self.done = true;
                        return None;
                    }
                }
            }
        }
    }
}

/// A forward cursor over one snapshot's samples, bounded by an end timestamp.
#[derive(Debug, Clone)]
pub struct SampleCursor<'a> {
    chunks: &'a [Arc<Chunk>],
    core: CursorCore,
}

impl Iterator for SampleCursor<'_> {
    type Item = Sample;

    fn next(&mut self) -> Option<Sample> {
        self.core.next(self.chunks)
    }
}

/// A forward cursor that co-owns the snapshot's chunks (`Arc`-shared), so it
/// has no lifetime tie to the [`SeriesSnapshot`] it came from.
#[derive(Debug, Clone)]
pub struct OwnedSampleCursor {
    chunks: Arc<[Arc<Chunk>]>,
    core: CursorCore,
}

impl Iterator for OwnedSampleCursor {
    type Item = Sample;

    fn next(&mut self) -> Option<Sample> {
        self.core.next(&self.chunks)
    }
}
