//! PMAG — the Performance Metrics Aggregation component.
//!
//! The paper implements PMAG with Prometheus (§5.2): a pull-based scraper that
//! collects OpenMetrics documents from every exporter endpoint, stores the
//! samples in a local time-series database grouped into chunks, and answers
//! label-matched range queries with aggregation functions.  This crate is the
//! Rust equivalent:
//!
//! * [`TimeSeriesDb`] — labelled series, chunked append-only storage,
//!   retention,
//! * [`Selector`] and the [`query`] module — instant/range queries, label
//!   matching, `rate`, `sum`/`avg`/`min`/`max` aggregation and quantiles,
//! * [`Scraper`] — the pull loop: scrapes typed [`MetricsEndpoint`]s on an
//!   interval (per-target intervals supported), attaches `job`/`instance`
//!   labels, records `up`/`scrape_duration_seconds`/`scrape_samples_scraped`
//!   meta-metrics, and tolerates target failures (the health-checking role
//!   the paper assigns to the monitoring service).
//!
//! The scrape path is typed end to end: exporters hand over
//! [`teemon_metrics::FamilySnapshot`]s and no OpenMetrics text is produced or
//! parsed in process.  The wire format lives at the edges only —
//! [`TextEndpoint`] for external consumers, [`scrape::TextSource`] for
//! external producers.

#![warn(missing_docs)]

pub mod query;
pub mod scrape;
pub mod series;
pub mod storage;

pub use query::{AggregateOp, LabelMatch, QueryResult, RangePoint, Selector};
pub use scrape::{
    CollectorEndpoint, MetricsEndpoint, ScrapeError, ScrapeOutcome, ScrapeTargetConfig, Scraper,
    TextEndpoint, TextSource,
};
pub use series::{Sample, Series, SeriesId};
pub use storage::{StorageStats, TimeSeriesDb, TsdbConfig};
