//! PMAG — the Performance Metrics Aggregation component.
//!
//! The paper implements PMAG with Prometheus (§5.2): a pull-based scraper that
//! collects OpenMetrics documents from every exporter endpoint, stores the
//! samples in a local time-series database grouped into chunks, and answers
//! label-matched range queries with aggregation functions.  This crate is the
//! Rust equivalent:
//!
//! * [`TimeSeriesDb`] — labelled series, chunked append-only storage,
//!   retention,
//! * [`Selector`] and the [`query`] module — instant/range queries, label
//!   matching, `rate`, `sum`/`avg`/`min`/`max` aggregation and quantiles,
//! * [`Scraper`] — the pull loop: scrapes [`MetricsEndpoint`]s on an interval,
//!   attaches `job`/`instance` labels, records `up` and scrape-duration
//!   meta-metrics, and tolerates target failures (the health-checking role the
//!   paper assigns to the monitoring service).

#![warn(missing_docs)]

pub mod query;
pub mod scrape;
pub mod series;
pub mod storage;

pub use query::{AggregateOp, QueryResult, RangePoint, Selector};
pub use scrape::{MetricsEndpoint, ScrapeOutcome, ScrapeTargetConfig, Scraper};
pub use series::{Sample, Series, SeriesId};
pub use storage::{StorageStats, TimeSeriesDb, TsdbConfig};
