//! PMAG — the Performance Metrics Aggregation component.
//!
//! The paper implements PMAG with Prometheus (§5.2): a pull-based scraper that
//! collects OpenMetrics documents from every exporter endpoint, stores the
//! samples in a local time-series database grouped into chunks, and answers
//! label-matched range queries with aggregation functions.  This crate is the
//! Rust equivalent:
//!
//! * [`TimeSeriesDb`] — the storage engine: interned series keys, an
//!   inverted label index answering selectors as postings intersections,
//!   series spread over lock shards so scrapers append concurrently, and
//!   chunked append-only storage with retention,
//! * [`chunk_codec`] — Gorilla-style sealed-chunk compression (delta-of-delta
//!   timestamps, XOR-encoded floats): sealed chunks cost a few bytes per
//!   16-byte sample, and the decoder streams so queries never materialise a
//!   decompressed chunk ([`StorageStats::bytes_per_sample`] reports the
//!   realised ratio),
//! * [`SeriesSnapshot`] — zero-copy reads: selection returns `Arc`-shared
//!   sealed chunks with a footer-seeking cursor API instead of deep-cloned
//!   series,
//! * [`Selector`] and the [`query`] module — instant/range queries, label
//!   matching, `rate`, `sum`/`avg`/`min`/`max` aggregation and quantiles,
//! * [`wal`] — the optional durability tier: a per-shard, CRC-checksummed
//!   write-ahead log flushed once per scrape round, with crash recovery
//!   ([`TimeSeriesDb::open`]), segment rotation onto Gorilla-block snapshots
//!   and corruption salvage that truncates torn tails and isolates damaged
//!   shards instead of panicking,
//! * [`Scraper`] — the pull loop: scrapes typed [`MetricsEndpoint`]s on an
//!   interval (per-target intervals supported), attaches `job`/`instance`
//!   labels, records `up`/`scrape_duration_seconds`/`scrape_samples_scraped`
//!   meta-metrics, and tolerates target failures (the health-checking role
//!   the paper assigns to the monitoring service).
//!
//! The scrape path is typed end to end: exporters hand over
//! [`teemon_metrics::FamilySnapshot`]s and no OpenMetrics text is produced or
//! parsed in process.  The wire format lives at the edges only —
//! [`TextEndpoint`] for external consumers, [`scrape::TextSource`] for
//! external producers.

#![warn(missing_docs)]

pub mod chunk_codec;
mod index;
pub mod query;
pub mod scrape;
pub mod series;
pub mod snapshot;
pub mod storage;
mod symbols;
pub mod wal;

pub use query::{AggregateOp, LabelMatch, QueryResult, RangePoint, Selector};
pub use scrape::{
    CardinalityBudgets, CollectorEndpoint, DurationMode, IngestMode, MetricsEndpoint, ObsEndpoint,
    PushLane, PushOutcome, RoundSummary, ScrapeError, ScrapeOutcome, ScrapeTargetConfig, Scraper,
    TextEndpoint, TextSource,
};
pub use series::{Sample, Series, SeriesId};
pub use snapshot::{OwnedSampleCursor, SampleCursor, SeriesSnapshot};
pub use storage::{
    BatchOutcome, HandleAppend, SeriesHandle, StorageStats, TimeSeriesDb, TsdbConfig, SHARD_COUNT,
};
pub use wal::{
    CrashModel, DurabilityOptions, FailpointWriter, FaultFs, FsyncMode, RealFs, WalFile, WalFs,
};
