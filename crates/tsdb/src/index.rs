//! The inverted index: postings lists from metric name and `(label, value)`
//! pairs to series, plus the compiled form of a [`Selector`].
//!
//! Each lock shard maintains one [`Postings`] over its own series.  Series
//! are registered in creation order, so every postings list is sorted and
//! selection is a sorted-list intersection over the lists named by the
//! selector — cost proportional to the smallest postings list touched, not to
//! the total number of series (the way Prometheus' head index answers
//! matchers).
//!
//! [`Selector`]: crate::query::Selector

use std::collections::HashMap;

use crate::query::{LabelMatch, Selector};
use crate::symbols::{SymbolId, SymbolTable};

/// Per-shard postings lists.  All lists hold shard-local series indices in
/// ascending order.
#[derive(Debug, Default)]
pub(crate) struct Postings {
    /// Metric name → series.
    names: HashMap<SymbolId, Vec<u32>>,
    /// `(label key, label value)` → series.
    pairs: HashMap<(SymbolId, SymbolId), Vec<u32>>,
    /// Label key (any value) → series; serves `Exists` and post-filtered
    /// `NotEquals` matchers.
    keys: HashMap<SymbolId, Vec<u32>>,
    /// Approximate resident bytes, maintained incrementally on register.
    /// Rebuilds (retention, drop_series reindex) start from `default()`, so
    /// the figure tracks the live index, not its high-water mark.
    bytes: usize,
}

/// Modelled cost of one postings entry: the `u32` plus amortised map/list
/// overhead.  Coarse on purpose — the gauge exists to expose *growth*, and
/// entry count is what grows with cardinality.
const POSTING_ENTRY_BYTES: usize = 16;
/// Modelled cost of a new postings list (map key + `Vec` header).
const POSTING_LIST_BYTES: usize = 48;

impl Postings {
    /// Registers a new series under its name and every label pair.  `local`
    /// must be greater than every previously registered index so the lists
    /// stay sorted.
    pub(crate) fn register(&mut self, local: u32, name: SymbolId, labels: &[(SymbolId, SymbolId)]) {
        self.bytes += Self::list_cost(self.names.entry(name).or_default(), local);
        for &(key, value) in labels {
            self.bytes += Self::list_cost(self.pairs.entry((key, value)).or_default(), local);
            self.bytes += Self::list_cost(self.keys.entry(key).or_default(), local);
        }
    }

    /// Approximate resident bytes of this shard's postings lists.
    pub(crate) fn bytes(&self) -> usize {
        self.bytes
    }

    fn list_cost(list: &mut Vec<u32>, local: u32) -> usize {
        let new_list = list.is_empty();
        list.push(local);
        POSTING_ENTRY_BYTES + if new_list { POSTING_LIST_BYTES } else { 0 }
    }

    fn name_list(&self, name: SymbolId) -> Option<&[u32]> {
        self.names.get(&name).map(Vec::as_slice)
    }

    fn pair_list(&self, key: SymbolId, value: SymbolId) -> Option<&[u32]> {
        self.pairs.get(&(key, value)).map(Vec::as_slice)
    }

    fn key_list(&self, key: SymbolId) -> Option<&[u32]> {
        self.keys.get(&key).map(Vec::as_slice)
    }
}

/// A [`Selector`] compiled against the symbol table.
///
/// Compilation resolves every string the selector mentions to its symbol
/// once, before any shard lock is taken.  A selector that names a string the
/// database has never interned can match nothing, which short-circuits the
/// whole query ([`SelectorPlan::Nothing`]).
#[derive(Debug)]
pub(crate) enum SelectorPlan {
    /// The selector cannot match any series in this database.
    Nothing,
    /// Intersect the postings lists, then post-filter.
    Filtered {
        /// Required metric name.
        name: Option<SymbolId>,
        /// `label == value` matchers (pure postings intersection).
        eq: Vec<(SymbolId, SymbolId)>,
        /// `label` must exist (postings on the label key).
        exists: Vec<SymbolId>,
        /// `label != value` matchers: candidates come from the label-key
        /// postings, the value inequality is checked per candidate.
        neq: Vec<(SymbolId, SymbolId)>,
    },
}

impl SelectorPlan {
    /// Compiles `selector` against `symbols`.
    pub(crate) fn compile(selector: &Selector, symbols: &SymbolTable) -> Self {
        let name = match &selector.name {
            Some(n) => match symbols.get(n) {
                Some(sym) => Some(sym),
                None => return SelectorPlan::Nothing,
            },
            None => None,
        };
        let mut eq = Vec::new();
        let mut exists = Vec::new();
        let mut neq = Vec::new();
        for matcher in &selector.matchers {
            match matcher {
                LabelMatch::Equals(k, v) => match (symbols.get(k), symbols.get(v)) {
                    (Some(k), Some(v)) => eq.push((k, v)),
                    // A never-interned key or value cannot be present.
                    _ => return SelectorPlan::Nothing,
                },
                LabelMatch::Exists(k) => match symbols.get(k) {
                    Some(k) => exists.push(k),
                    None => return SelectorPlan::Nothing,
                },
                LabelMatch::NotEquals(k, v) => match symbols.get(k) {
                    // A never-interned value differs from every stored value,
                    // so the matcher degenerates to existence of the key.
                    Some(k) => match symbols.get(v) {
                        Some(v) => neq.push((k, v)),
                        None => exists.push(k),
                    },
                    None => return SelectorPlan::Nothing,
                },
            }
        }
        SelectorPlan::Filtered { name, eq, exists, neq }
    }

    /// Shard-local candidate series for this plan: the intersection of every
    /// postings list the plan names.  `NotEquals` value checks are NOT
    /// applied here; the caller post-filters with [`SelectorPlan::neq_pairs`].
    pub(crate) fn candidates(&self, postings: &Postings) -> Candidates {
        let SelectorPlan::Filtered { name, eq, exists, neq } = self else {
            return Candidates::Listed(Vec::new());
        };
        // A matcher whose postings list is absent in this shard matches
        // nothing here.
        let mut required: Vec<Option<&[u32]>> = Vec::new();
        if let Some(name) = name {
            required.push(postings.name_list(*name));
        }
        for &(k, v) in eq {
            required.push(postings.pair_list(k, v));
        }
        for &k in exists {
            required.push(postings.key_list(k));
        }
        for &(k, _) in neq {
            required.push(postings.key_list(k));
        }
        if required.iter().any(Option::is_none) {
            Candidates::Listed(Vec::new())
        } else if required.is_empty() {
            Candidates::All
        } else {
            let mut lists: Vec<&[u32]> = required.into_iter().flatten().collect();
            Candidates::Listed(intersect(&mut lists))
        }
    }

    /// The `(key, value)` pairs candidates must NOT carry (value inequality
    /// checked per candidate series by the caller).
    pub(crate) fn neq_pairs(&self) -> &[(SymbolId, SymbolId)] {
        match self {
            SelectorPlan::Filtered { neq, .. } => neq,
            SelectorPlan::Nothing => &[],
        }
    }
}

/// The series of one shard a compiled selector may match.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum Candidates {
    /// Every series in the shard (the plan carries no postings constraint).
    All,
    /// Exactly these shard-local indices, ascending.
    Listed(Vec<u32>),
}

/// Intersection of sorted postings lists, smallest list first so the work is
/// bounded by the most selective matcher.
fn intersect(lists: &mut [&[u32]]) -> Vec<u32> {
    lists.sort_by_key(|l| l.len());
    let Some((smallest, rest)) = lists.split_first() else { return Vec::new() };
    smallest
        .iter()
        .copied()
        .filter(|id| rest.iter().all(|list| list.binary_search(id).is_ok()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_with(strings: &[&str]) -> SymbolTable {
        let mut table = SymbolTable::default();
        for s in strings {
            table.intern(s);
        }
        table
    }

    #[test]
    fn intersection_is_sorted_and_minimal() {
        let a: &[u32] = &[0, 2, 4, 6, 8];
        let b: &[u32] = &[2, 3, 4, 8, 9];
        let c: &[u32] = &[4, 8];
        assert_eq!(intersect(&mut [a, b, c]), vec![4, 8]);
        assert_eq!(intersect(&mut [a, &[]]), Vec::<u32>::new());
        assert_eq!(intersect(&mut [a]), a.to_vec());
    }

    #[test]
    fn unknown_strings_compile_to_nothing() {
        let table = table_with(&["up", "node", "n1"]);
        assert!(matches!(
            SelectorPlan::compile(&Selector::metric("missing"), &table),
            SelectorPlan::Nothing
        ));
        assert!(matches!(
            SelectorPlan::compile(&Selector::metric("up").with_label("node", "unseen"), &table),
            SelectorPlan::Nothing
        ));
        assert!(matches!(
            SelectorPlan::compile(&Selector::all().with_label_present("pod"), &table),
            SelectorPlan::Nothing
        ));
    }

    #[test]
    fn unknown_not_equals_value_degenerates_to_exists() {
        let table = table_with(&["node"]);
        let plan =
            SelectorPlan::compile(&Selector::all().without_label_value("node", "unseen"), &table);
        match plan {
            SelectorPlan::Filtered { exists, neq, .. } => {
                assert_eq!(exists.len(), 1);
                assert!(neq.is_empty());
            }
            SelectorPlan::Nothing => panic!("plan must stay satisfiable"),
        }
    }

    #[test]
    fn postings_drive_candidates() {
        let mut table = SymbolTable::default();
        let up = table.intern("up");
        let node = table.intern("node");
        let n1 = table.intern("n1");
        let n2 = table.intern("n2");
        let mut postings = Postings::default();
        postings.register(0, up, &[(node, n1)]);
        postings.register(1, up, &[(node, n2)]);

        let plan = SelectorPlan::compile(&Selector::metric("up").with_label("node", "n2"), &table);
        assert_eq!(plan.candidates(&postings), Candidates::Listed(vec![1]));
        let all = SelectorPlan::compile(&Selector::all(), &table);
        assert_eq!(all.candidates(&postings), Candidates::All);
        // A matcher absent from this shard's postings matches nothing here.
        let other_shard =
            SelectorPlan::compile(&Selector::metric("up").with_label_present("node"), &table);
        assert_eq!(other_shard.candidates(&Postings::default()), Candidates::Listed(Vec::new()));
    }
}
