//! String interning for series keys.
//!
//! Every metric name, label key and label value stored by the database is
//! interned exactly once.  A series key then becomes a small
//! `(SymbolId, [(SymbolId, SymbolId)])` tuple instead of an owned
//! `(String, Labels)` pair, so key comparisons are integer comparisons and a
//! ten-thousand-series database with three label keys shared by every series
//! stores each key string once, not ten thousand times.
//!
//! Interned strings are handed out as `Arc<str>` so read paths (snapshots,
//! query results) can share them without copying.

use std::collections::HashMap;
use std::sync::Arc;

/// Identifier of one interned string inside a [`SymbolTable`].
///
/// Two symbols compare equal if and only if the strings they intern are
/// equal, so label matching on the query path degenerates to `u32`
/// comparisons.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub(crate) struct SymbolId(u32);

impl SymbolId {
    /// The raw table index, for WAL serialisation.
    pub(crate) fn as_u32(self) -> u32 {
        self.0
    }

    /// Rebuilds an id from its WAL-serialised index.  The caller validates it
    /// against the table (see [`SymbolTable::resolve_checked`]) before use.
    pub(crate) fn from_u32(raw: u32) -> Self {
        Self(raw)
    }
}

/// The interner: deduplicated strings, addressable by [`SymbolId`] in O(1)
/// and by string content through a hash lookup.
#[derive(Debug, Default)]
pub(crate) struct SymbolTable {
    strings: Vec<Arc<str>>,
    ids: HashMap<Arc<str>, SymbolId>,
}

impl SymbolTable {
    /// Looks up the symbol for `s` without interning it.  Allocation-free.
    pub(crate) fn get(&self, s: &str) -> Option<SymbolId> {
        self.ids.get(s).copied()
    }

    /// Interns `s`, returning the existing symbol when already present.
    pub(crate) fn intern(&mut self, s: &str) -> SymbolId {
        if let Some(id) = self.ids.get(s) {
            return *id;
        }
        let id = SymbolId(u32::try_from(self.strings.len()).expect("fewer than 2^32 symbols"));
        let string: Arc<str> = Arc::from(s);
        self.strings.push(Arc::clone(&string));
        self.ids.insert(string, id);
        id
    }

    /// The interned string behind `id`.
    pub(crate) fn resolve(&self, id: SymbolId) -> &Arc<str> {
        &self.strings[id.0 as usize]
    }

    /// Bounds-checked sibling of [`SymbolTable::resolve`] for WAL replay,
    /// where an id comes from disk and may be corrupt.
    pub(crate) fn resolve_checked(&self, id: SymbolId) -> Option<&Arc<str>> {
        self.strings.get(id.0 as usize)
    }

    /// The interned strings from index `start` on, in interning order — the
    /// delta a WAL flush appends to its symbol log.
    pub(crate) fn strings_from(&self, start: usize) -> &[Arc<str>] {
        self.strings.get(start..).unwrap_or(&[])
    }

    /// Number of distinct interned strings.
    pub(crate) fn len(&self) -> usize {
        self.strings.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_deduplicates() {
        let mut table = SymbolTable::default();
        let a = table.intern("node");
        let b = table.intern("syscall");
        assert_ne!(a, b);
        assert_eq!(table.intern("node"), a);
        assert_eq!(table.len(), 2);
        assert_eq!(&**table.resolve(a), "node");
        assert_eq!(table.get("syscall"), Some(b));
        assert_eq!(table.get("missing"), None);
    }

    #[test]
    fn resolved_strings_are_shared() {
        let mut table = SymbolTable::default();
        let id = table.intern("teemon_syscalls_total");
        let first = Arc::clone(table.resolve(id));
        let again = table.intern("teemon_syscalls_total");
        let second = Arc::clone(table.resolve(again));
        assert!(Arc::ptr_eq(&first, &second));
    }
}
